//! `eoml-obsctl` — offline analysis of recorded run archives.
//!
//! The observability layer records runs into self-describing
//! [`RunArchive`] directories (span store, folded profile, tables, ops
//! slice, manifest). This tool drives everything you can do with them
//! after the run is gone:
//!
//! ```text
//! eoml-obsctl record --out DIR [--label L] [--seed N] [--files N]
//!                    [--nodes N] [--workers-per-node N]
//!                    [--download-workers N] [--days N]
//!     run the simulated campaign and freeze it as an archive
//!
//! eoml-obsctl diff BASE CUR [--json PATH] [--rel R] [--abs A]
//!     ranked attribution of what changed; exit 0 clean, 2 attributed
//!
//! eoml-obsctl top ARCHIVE [--by self_time|alloc] [-n N]
//!     hottest components of one archive
//!
//! eoml-obsctl flame-diff BASE CUR [--out PATH]
//!     differential collapsed stacks (stack base_µs cur_µs)
//!
//! eoml-obsctl attribute --baseline-dir DIR --archive CUR
//!                       [--baseline-archive BASE] [--json PATH]
//!     join a BaselineStore verdict to the archive deltas behind it
//! ```

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use eoml::core::campaign::{run_campaign, CampaignParams};
use eoml::obs::archive::RunArchive;
use eoml::obs::diff::{diff_archives, flame_diff, DEFAULT_DIFF_TOLERANCE};
use eoml::obs::{config_digest, BaselineStore, Cell, Obs, ObsReport, RunMeta, Table, Tolerance};

fn usage() -> ExitCode {
    eprintln!(
        "usage: eoml-obsctl <record|diff|top|flame-diff|attribute> [args]\n\
         \n\
         record     --out DIR [--label L] [--seed N] [--files N] [--nodes N]\n\
         \u{20}           [--workers-per-node N] [--download-workers N] [--days N]\n\
         diff       BASE CUR [--json PATH] [--rel R] [--abs A]\n\
         top        ARCHIVE [--by self_time|alloc] [-n N]\n\
         flame-diff BASE CUR [--out PATH]\n\
         attribute  --baseline-dir DIR --archive CUR [--baseline-archive BASE] [--json PATH]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "record" => cmd_record(rest),
        "diff" => cmd_diff(rest),
        "top" => cmd_top(rest),
        "flame-diff" => cmd_flame_diff(rest),
        "attribute" => cmd_attribute(rest),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("eoml-obsctl {cmd}: {e}");
            ExitCode::from(1)
        }
    }
}

/// Pull `--flag value` out of `args`, leaving positional arguments.
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                flags.push((name.to_string(), value.clone()));
            } else if arg == "-n" {
                let value = it.next().ok_or("-n expects a value")?;
                flags.push(("n".to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad value {v:?}")),
        }
    }
}

fn open_archive(path: &str) -> Result<RunArchive, String> {
    RunArchive::open(path).map_err(|e| format!("{path}: {e}"))
}

fn write_or_print(path: Option<&str>, body: &str) -> Result<(), String> {
    match path {
        Some(path) => {
            if let Some(parent) = Path::new(path)
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
            {
                std::fs::create_dir_all(parent).map_err(|e| format!("{path}: {e}"))?;
            }
            std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))
        }
        None => {
            print!("{body}");
            Ok(())
        }
    }
}

/// `record`: run the simulated campaign with an attached hub and freeze
/// the result. The config digest covers every parameter that shapes the
/// run, so `diff` can tell same-config noise from a real config change.
fn cmd_record(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args)?;
    let out = opts.get("out").ok_or("record: --out DIR is required")?;
    let label = opts.get("label").unwrap_or("run").to_string();
    let mut params = CampaignParams::paper_demo();
    params.seed = opts.num("seed", params.seed)?;
    params.days = opts.num("days", params.days)?;
    params.files_per_day = opts.num("files", params.files_per_day)?;
    params.nodes = opts.num("nodes", params.nodes)?;
    params.workers_per_node = opts.num("workers-per-node", params.workers_per_node)?;
    params.download_workers = opts.num("download-workers", params.download_workers)?;

    let digest = config_digest(&campaign_config_description(&params));
    let meta = RunMeta::new(&label, &digest, params.seed);
    let obs = Arc::new(Obs::new());
    params.obs = Some(Arc::clone(&obs));
    let report = run_campaign(params);

    let obs_report = ObsReport::from_obs(&obs);
    let mut tables = vec![
        obs_report.fig6_timeline.clone(),
        obs_report.stage_stats.clone(),
        obs_report.fig7_breakdown.clone(),
        obs_report.profile_hot.clone(),
    ];
    if !obs_report.memory.rows.is_empty() {
        tables.push(obs_report.memory.clone());
    }
    let mut summary = Table::new("run_summary", &["metric", "value"]);
    summary.row(vec![
        Cell::str("granules"),
        Cell::int(report.granules as i64),
    ]);
    summary.row(vec![
        Cell::str("tile_files"),
        Cell::int(report.tile_files as i64),
    ]);
    summary.row(vec![
        Cell::str("total_tiles"),
        Cell::num(report.total_tiles, 0),
    ]);
    summary.row(vec![
        Cell::str("labeled_files"),
        Cell::int(report.labeled_files as i64),
    ]);
    summary.row(vec![
        Cell::str("makespan_s"),
        Cell::num(report.makespan_s, 3),
    ]);
    let tiles_per_s = if report.makespan_s > 0.0 {
        report.total_tiles / report.makespan_s
    } else {
        0.0
    };
    summary.row(vec![Cell::str("tiles_per_s"), Cell::num(tiles_per_s, 3)]);
    tables.push(summary);

    let archive = RunArchive::record_obs(out, &meta, &obs, &tables, &[])
        .map_err(|e| format!("{out}: {e}"))?;
    println!(
        "recorded {} ({} spans, {} tables, seed {}, config {})",
        archive.dir.display(),
        archive.spans.len(),
        archive.tables.len(),
        archive.meta.sim_seed,
        archive.meta.config_digest
    );
    Ok(ExitCode::SUCCESS)
}

/// The canonical parameter string behind the config digest.
fn campaign_config_description(p: &CampaignParams) -> String {
    format!(
        "seed={} days={} files_per_day={} download_workers={} nodes={} workers_per_node={} \
         inference_workers={} inference_rate={} monitor_period_s={} tile_nc_bytes={}",
        p.seed,
        p.days,
        p.files_per_day,
        p.download_workers,
        p.nodes,
        p.workers_per_node,
        p.inference_workers,
        p.inference_rate,
        p.monitor_period_s,
        p.tile_nc_bytes
    )
}

fn tolerance_from(opts: &Opts) -> Result<Tolerance, String> {
    Ok(Tolerance {
        rel: opts.num("rel", DEFAULT_DIFF_TOLERANCE.rel)?,
        abs: opts.num("abs", DEFAULT_DIFF_TOLERANCE.abs)?,
    })
}

/// `diff`: ranked attribution between two archives. Exit 0 when clean,
/// 2 when deltas were attributed (1 is reserved for usage/IO errors).
fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args)?;
    let [base, cur] = opts.positional.as_slice() else {
        return Err("diff: expected BASE and CUR archive directories".to_string());
    };
    let base = open_archive(base)?;
    let cur = open_archive(cur)?;
    let report = diff_archives(&base, &cur, tolerance_from(&opts)?);
    if let Some(path) = opts.get("json") {
        let body = serde_json::to_string(&report.to_json()).expect("report serialization");
        write_or_print(Some(path), &body)?;
    }
    print!("{}", report.render_text());
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `top`: hottest components of one archive by self time or allocation.
fn cmd_top(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err("top: expected one ARCHIVE directory".to_string());
    };
    let n: usize = opts.num("n", 15)?;
    let archive = open_archive(path)?;
    match opts.get("by").unwrap_or("self_time") {
        "self_time" => {
            print!("{}", archive.profile().top_table(n).render_text(0));
        }
        "alloc" => {
            let mem = archive.memory_table();
            if mem.rows.is_empty() {
                println!(
                    "no allocator accounting in this archive (record with --features alloc-profile)"
                );
            } else {
                print!("{}", mem.render_text(0));
            }
        }
        other => return Err(format!("top: unknown --by {other:?} (self_time|alloc)")),
    }
    Ok(ExitCode::SUCCESS)
}

/// `flame-diff`: differential collapsed-stack document.
fn cmd_flame_diff(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args)?;
    let [base, cur] = opts.positional.as_slice() else {
        return Err("flame-diff: expected BASE and CUR archive directories".to_string());
    };
    let base = open_archive(base)?;
    let cur = open_archive(cur)?;
    let doc = flame_diff(&base, &cur)?;
    write_or_print(opts.get("out"), &doc)?;
    Ok(ExitCode::SUCCESS)
}

/// `attribute`: compare an archive's tables against a committed
/// `BaselineStore`; on regression, join the verdict to the archive-level
/// deltas (when a baseline archive is available). Exit 0 when the gate
/// passes, 2 when it regressed.
fn cmd_attribute(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args)?;
    let baseline_dir = opts
        .get("baseline-dir")
        .ok_or("attribute: --baseline-dir DIR is required")?;
    let archive_dir = opts
        .get("archive")
        .ok_or("attribute: --archive DIR is required")?;
    let archive = open_archive(archive_dir)?;
    let store = BaselineStore::load(baseline_dir).map_err(|e| format!("{baseline_dir}: {e}"))?;
    let comparison = store.compare_all(&archive.tables);
    print!("{}", comparison.render_text(0));
    let regressed = comparison.regressed();

    if let Some(base_dir) = opts.get("baseline-archive") {
        let base = open_archive(base_dir)?;
        let report = diff_archives(&base, &archive, tolerance_from(&opts)?);
        println!("--");
        print!("{}", report.render_text());
        if let Some(path) = opts.get("json") {
            let body = serde_json::to_string(&report.to_json()).expect("report serialization");
            write_or_print(Some(path), &body)?;
        }
    } else if regressed {
        println!("(no --baseline-archive given: verdict only, no hot-path attribution available)");
    }
    Ok(if regressed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

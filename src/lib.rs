//! Umbrella crate re-exporting the `eoml` workspace public API.
//!
//! Downstream users can depend on this single crate and reach every
//! subsystem: the five-stage multi-facility workflow ([`core`]), the
//! synthetic MODIS archive ([`modis`]), the Parsl-like executor
//! ([`executor`]), the Globus-like fabric ([`transfer`], [`compute`],
//! [`flows`]), the RICC/AICCA model ([`ricc`]), and the multi-tenant
//! campaign service ([`service`]).

pub use eoml_cluster as cluster;
pub use eoml_compute as compute;
pub use eoml_config as config;
pub use eoml_core as core;
pub use eoml_executor as executor;
pub use eoml_flows as flows;
pub use eoml_geo as geo;
pub use eoml_journal as journal;
pub use eoml_modis as modis;
pub use eoml_ncdf as ncdf;
pub use eoml_obs as obs;
pub use eoml_preprocess as preprocess;
pub use eoml_ricc as ricc;
pub use eoml_service as service;
pub use eoml_simtime as simtime;
pub use eoml_transfer as transfer;
pub use eoml_util as util;

//! `eoml-ncdf` — a NetCDF-3 "classic" file format implementation.
//!
//! The workflow's interchange format: preprocessed tiles are written as
//! NetCDF, the inference stage *appends* cloud-class labels to those files,
//! and the shipment stage moves them to the destination facility. Rather
//! than binding a C library, this crate implements the classic file format
//! (CDF-1, with CDF-2's 64-bit offsets on demand) from the specification —
//! files written here are readable by `ncdump` and vice versa for the
//! feature subset used (all six classic types, one optional record
//! dimension, global and per-variable attributes).
//!
//! # Example
//!
//! ```
//! use eoml_ncdf::{NcFile, NcType, NcValues};
//!
//! let mut f = NcFile::new();
//! let tile = f.add_dim("tile", 2);
//! let band = f.add_dim("band", 3);
//! f.add_global_attr("title", NcValues::text("AICCA tiles"));
//! let v = f
//!     .add_var("mean_radiance", NcType::Float, vec![tile, band])
//!     .unwrap();
//! f.put_values(v, NcValues::Float(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
//!     .unwrap();
//! let bytes = f.encode().unwrap();
//! let back = NcFile::decode(&bytes).unwrap();
//! assert_eq!(back.var_by_name("mean_radiance").unwrap().data.len(), 6);
//! ```

pub mod cdl;
mod format;
mod model;

pub use cdl::{to_cdl, CdlMode};
pub use format::{NcError, MAGIC};
pub use model::{AttrId, DimId, NcAttr, NcDim, NcFile, NcType, NcValues, NcVar, VarId};

//! In-memory model of a NetCDF classic file.

use crate::format;
use crate::format::NcError;

/// The six classic NetCDF external types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NcType {
    /// 8-bit signed (`NC_BYTE`, tag 1).
    Byte,
    /// 8-bit character data (`NC_CHAR`, tag 2).
    Char,
    /// 16-bit signed big-endian (`NC_SHORT`, tag 3).
    Short,
    /// 32-bit signed big-endian (`NC_INT`, tag 4).
    Int,
    /// IEEE-754 single (`NC_FLOAT`, tag 5).
    Float,
    /// IEEE-754 double (`NC_DOUBLE`, tag 6).
    Double,
}

impl NcType {
    /// On-disk tag.
    pub fn tag(self) -> u32 {
        match self {
            NcType::Byte => 1,
            NcType::Char => 2,
            NcType::Short => 3,
            NcType::Int => 4,
            NcType::Float => 5,
            NcType::Double => 6,
        }
    }

    /// Decode a tag.
    pub fn from_tag(tag: u32) -> Option<NcType> {
        Some(match tag {
            1 => NcType::Byte,
            2 => NcType::Char,
            3 => NcType::Short,
            4 => NcType::Int,
            5 => NcType::Float,
            6 => NcType::Double,
            _ => return None,
        })
    }

    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            NcType::Byte | NcType::Char => 1,
            NcType::Short => 2,
            NcType::Int | NcType::Float => 4,
            NcType::Double => 8,
        }
    }
}

/// Typed value array (attribute payloads and variable data).
#[derive(Debug, Clone, PartialEq)]
pub enum NcValues {
    /// `NC_BYTE` values.
    Byte(Vec<i8>),
    /// `NC_CHAR` values (raw bytes; usually ASCII text).
    Char(Vec<u8>),
    /// `NC_SHORT` values.
    Short(Vec<i16>),
    /// `NC_INT` values.
    Int(Vec<i32>),
    /// `NC_FLOAT` values.
    Float(Vec<f32>),
    /// `NC_DOUBLE` values.
    Double(Vec<f64>),
}

impl NcValues {
    /// Char values from a string.
    pub fn text(s: &str) -> Self {
        NcValues::Char(s.as_bytes().to_vec())
    }

    /// The external type of this payload.
    pub fn nc_type(&self) -> NcType {
        match self {
            NcValues::Byte(_) => NcType::Byte,
            NcValues::Char(_) => NcType::Char,
            NcValues::Short(_) => NcType::Short,
            NcValues::Int(_) => NcType::Int,
            NcValues::Float(_) => NcType::Float,
            NcValues::Double(_) => NcType::Double,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            NcValues::Byte(v) => v.len(),
            NcValues::Char(v) => v.len(),
            NcValues::Short(v) => v.len(),
            NcValues::Int(v) => v.len(),
            NcValues::Float(v) => v.len(),
            NcValues::Double(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empty payload of a given type.
    pub fn empty(t: NcType) -> Self {
        match t {
            NcType::Byte => NcValues::Byte(Vec::new()),
            NcType::Char => NcValues::Char(Vec::new()),
            NcType::Short => NcValues::Short(Vec::new()),
            NcType::Int => NcValues::Int(Vec::new()),
            NcType::Float => NcValues::Float(Vec::new()),
            NcType::Double => NcValues::Double(Vec::new()),
        }
    }

    /// Borrow as `&[f32]` if this is a float payload.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            NcValues::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[i32]` if this is an int payload.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            NcValues::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[f64]` if this is a double payload.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            NcValues::Double(v) => Some(v),
            _ => None,
        }
    }

    /// Interpret char data as UTF-8 text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            NcValues::Char(v) => std::str::from_utf8(v).ok(),
            _ => None,
        }
    }

    /// Append another payload of the same type (used when growing the
    /// record dimension).
    pub fn extend_from(&mut self, other: &NcValues) -> Result<(), NcError> {
        match (self, other) {
            (NcValues::Byte(a), NcValues::Byte(b)) => a.extend_from_slice(b),
            (NcValues::Char(a), NcValues::Char(b)) => a.extend_from_slice(b),
            (NcValues::Short(a), NcValues::Short(b)) => a.extend_from_slice(b),
            (NcValues::Int(a), NcValues::Int(b)) => a.extend_from_slice(b),
            (NcValues::Float(a), NcValues::Float(b)) => a.extend_from_slice(b),
            (NcValues::Double(a), NcValues::Double(b)) => a.extend_from_slice(b),
            _ => return Err(NcError::TypeMismatch),
        }
        Ok(())
    }
}

/// Index of a dimension within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimId(pub usize);

/// Index of a variable within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub usize);

/// Index of an attribute within a list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrId(pub usize);

/// A named dimension; length 0 marks the (single) record dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct NcDim {
    /// Dimension name.
    pub name: String,
    /// Fixed length, or 0 for the record (unlimited) dimension.
    pub len: usize,
}

impl NcDim {
    /// Whether this is the record dimension.
    pub fn is_record(&self) -> bool {
        self.len == 0
    }
}

/// A named attribute with a typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct NcAttr {
    /// Attribute name.
    pub name: String,
    /// Payload.
    pub values: NcValues,
}

/// A variable: name, shape (dimension ids, outermost first), attributes,
/// type, and its in-memory data.
#[derive(Debug, Clone, PartialEq)]
pub struct NcVar {
    /// Variable name.
    pub name: String,
    /// Shape as dimension ids, outermost first. If the first is the record
    /// dimension the variable is a record variable.
    pub dims: Vec<DimId>,
    /// Per-variable attributes.
    pub attrs: Vec<NcAttr>,
    /// External type.
    pub nc_type: NcType,
    /// Data; for record variables, `numrecs` records' worth.
    pub data: NcValues,
}

/// An in-memory NetCDF classic dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NcFile {
    /// Dimensions in definition order.
    pub dims: Vec<NcDim>,
    /// Global attributes.
    pub gatts: Vec<NcAttr>,
    /// Variables in definition order.
    pub vars: Vec<NcVar>,
    /// Record count (length of the record dimension).
    pub numrecs: usize,
}

impl NcFile {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a fixed dimension; `len` must be > 0 (use
    /// [`add_record_dim`](Self::add_record_dim) for the unlimited one).
    pub fn add_dim(&mut self, name: impl Into<String>, len: usize) -> DimId {
        assert!(len > 0, "fixed dimensions must have nonzero length");
        self.dims.push(NcDim {
            name: name.into(),
            len,
        });
        DimId(self.dims.len() - 1)
    }

    /// Define the record (unlimited) dimension; only one is allowed.
    pub fn add_record_dim(&mut self, name: impl Into<String>) -> Result<DimId, NcError> {
        if self.dims.iter().any(NcDim::is_record) {
            return Err(NcError::MultipleRecordDims);
        }
        self.dims.push(NcDim {
            name: name.into(),
            len: 0,
        });
        Ok(DimId(self.dims.len() - 1))
    }

    /// The record dimension's id, if defined.
    pub fn record_dim(&self) -> Option<DimId> {
        self.dims.iter().position(NcDim::is_record).map(DimId)
    }

    /// Define a variable. The record dimension, if used, must be the first
    /// (outermost) dimension — a classic-format constraint.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        nc_type: NcType,
        dims: Vec<DimId>,
    ) -> Result<VarId, NcError> {
        for (i, d) in dims.iter().enumerate() {
            let dim = self.dims.get(d.0).ok_or(NcError::UnknownDim)?;
            if dim.is_record() && i != 0 {
                return Err(NcError::RecordDimNotFirst);
            }
        }
        self.vars.push(NcVar {
            name: name.into(),
            dims,
            attrs: Vec::new(),
            nc_type,
            data: NcValues::empty(nc_type),
        });
        Ok(VarId(self.vars.len() - 1))
    }

    /// Add a global attribute.
    pub fn add_global_attr(&mut self, name: impl Into<String>, values: NcValues) -> AttrId {
        self.gatts.push(NcAttr {
            name: name.into(),
            values,
        });
        AttrId(self.gatts.len() - 1)
    }

    /// Add an attribute to a variable.
    pub fn add_var_attr(
        &mut self,
        var: VarId,
        name: impl Into<String>,
        values: NcValues,
    ) -> Result<AttrId, NcError> {
        let v = self.vars.get_mut(var.0).ok_or(NcError::UnknownVar)?;
        v.attrs.push(NcAttr {
            name: name.into(),
            values,
        });
        Ok(AttrId(v.attrs.len() - 1))
    }

    /// Whether `var` has the record dimension as its first dimension.
    pub fn is_record_var(&self, var: VarId) -> bool {
        self.vars[var.0]
            .dims
            .first()
            .map(|d| self.dims[d.0].is_record())
            .unwrap_or(false)
    }

    /// Number of elements in one record of `var` (the product of its
    /// non-record dimension lengths), or the full element count for a
    /// fixed variable.
    pub fn slab_len(&self, var: VarId) -> usize {
        let v = &self.vars[var.0];
        v.dims
            .iter()
            .map(|d| self.dims[d.0].len)
            .filter(|&l| l > 0)
            .product::<usize>()
            .max(1)
    }

    /// Store data for a fixed-size variable; the payload type and length
    /// must match the declaration.
    pub fn put_values(&mut self, var: VarId, values: NcValues) -> Result<(), NcError> {
        if self.is_record_var(var) {
            return Err(NcError::RecordVarNeedsRecords);
        }
        let expect = self.slab_len(var);
        let v = self.vars.get_mut(var.0).ok_or(NcError::UnknownVar)?;
        if values.nc_type() != v.nc_type {
            return Err(NcError::TypeMismatch);
        }
        if values.len() != expect {
            return Err(NcError::LengthMismatch {
                expected: expect,
                actual: values.len(),
            });
        }
        v.data = values;
        Ok(())
    }

    /// Append one record to every record variable; `records` must supply
    /// `(VarId, values)` for each record variable exactly once, with each
    /// payload exactly one record long. Grows `numrecs` by one.
    pub fn append_record(&mut self, records: Vec<(VarId, NcValues)>) -> Result<(), NcError> {
        let record_vars: Vec<VarId> = (0..self.vars.len())
            .map(VarId)
            .filter(|&v| self.is_record_var(v))
            .collect();
        if records.len() != record_vars.len()
            || !record_vars
                .iter()
                .all(|rv| records.iter().any(|(v, _)| v == rv))
        {
            return Err(NcError::IncompleteRecord);
        }
        // Validate all before mutating any.
        for (var, values) in &records {
            let v = &self.vars[var.0];
            if values.nc_type() != v.nc_type {
                return Err(NcError::TypeMismatch);
            }
            let expect = self.slab_len(*var);
            if values.len() != expect {
                return Err(NcError::LengthMismatch {
                    expected: expect,
                    actual: values.len(),
                });
            }
        }
        for (var, values) in &records {
            let v = &mut self.vars[var.0];
            v.data.extend_from(values)?;
        }
        self.numrecs += 1;
        Ok(())
    }

    /// Find a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<&NcVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Find a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(VarId)
    }

    /// Find a dimension by name.
    pub fn dim_by_name(&self, name: &str) -> Option<(DimId, &NcDim)> {
        self.dims
            .iter()
            .position(|d| d.name == name)
            .map(|i| (DimId(i), &self.dims[i]))
    }

    /// Find a global attribute by name.
    pub fn global_attr(&self, name: &str) -> Option<&NcAttr> {
        self.gatts.iter().find(|a| a.name == name)
    }

    /// Serialize to classic-format bytes (CDF-1, or CDF-2 when any data
    /// offset exceeds 2 GiB).
    pub fn encode(&self) -> Result<Vec<u8>, NcError> {
        format::encode(self)
    }

    /// Parse classic-format bytes (CDF-1 or CDF-2).
    pub fn decode(bytes: &[u8]) -> Result<NcFile, NcError> {
        format::decode(bytes)
    }

    /// Encode and write to a file path (via a `.part` rename so monitors
    /// never observe a partial file).
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let bytes = self
            .encode()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let part = path.with_extension("part.tmp");
        std::fs::write(&part, bytes)?;
        std::fs::rename(&part, path)
    }

    /// Read and decode from a file path.
    pub fn read_from(path: impl AsRef<std::path::Path>) -> std::io::Result<NcFile> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_and_var_definition() {
        let mut f = NcFile::new();
        let x = f.add_dim("x", 4);
        let y = f.add_dim("y", 3);
        let v = f.add_var("field", NcType::Float, vec![y, x]).unwrap();
        assert_eq!(f.slab_len(v), 12);
        assert!(!f.is_record_var(v));
        assert_eq!(f.dim_by_name("x").unwrap().1.len, 4);
        assert!(f.dim_by_name("zz").is_none());
    }

    #[test]
    fn record_dim_rules() {
        let mut f = NcFile::new();
        let t = f.add_record_dim("time").unwrap();
        assert!(f.add_record_dim("time2").is_err());
        let x = f.add_dim("x", 2);
        // Record dim must be outermost.
        assert_eq!(
            f.add_var("bad", NcType::Int, vec![x, t]).unwrap_err(),
            NcError::RecordDimNotFirst
        );
        let v = f.add_var("good", NcType::Int, vec![t, x]).unwrap();
        assert!(f.is_record_var(v));
        assert_eq!(f.slab_len(v), 2);
    }

    #[test]
    fn put_values_validates() {
        let mut f = NcFile::new();
        let x = f.add_dim("x", 3);
        let v = f.add_var("v", NcType::Short, vec![x]).unwrap();
        assert_eq!(
            f.put_values(v, NcValues::Int(vec![1, 2, 3])).unwrap_err(),
            NcError::TypeMismatch
        );
        assert_eq!(
            f.put_values(v, NcValues::Short(vec![1, 2])).unwrap_err(),
            NcError::LengthMismatch {
                expected: 3,
                actual: 2
            }
        );
        f.put_values(v, NcValues::Short(vec![1, 2, 3])).unwrap();
    }

    #[test]
    fn append_record_grows_all_vars() {
        let mut f = NcFile::new();
        let t = f.add_record_dim("tile").unwrap();
        let b = f.add_dim("band", 2);
        let rad = f.add_var("rad", NcType::Float, vec![t, b]).unwrap();
        let label = f.add_var("label", NcType::Int, vec![t]).unwrap();
        f.append_record(vec![
            (rad, NcValues::Float(vec![1.0, 2.0])),
            (label, NcValues::Int(vec![7])),
        ])
        .unwrap();
        f.append_record(vec![
            (label, NcValues::Int(vec![9])),
            (rad, NcValues::Float(vec![3.0, 4.0])),
        ])
        .unwrap();
        assert_eq!(f.numrecs, 2);
        assert_eq!(f.vars[rad.0].data.as_f32().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.vars[label.0].data.as_i32().unwrap(), &[7, 9]);
    }

    #[test]
    fn append_record_requires_all_record_vars() {
        let mut f = NcFile::new();
        let t = f.add_record_dim("t").unwrap();
        let a = f.add_var("a", NcType::Int, vec![t]).unwrap();
        let _b = f.add_var("b", NcType::Int, vec![t]).unwrap();
        assert_eq!(
            f.append_record(vec![(a, NcValues::Int(vec![1]))])
                .unwrap_err(),
            NcError::IncompleteRecord
        );
        assert_eq!(f.numrecs, 0, "failed append must not mutate");
    }

    #[test]
    fn values_helpers() {
        let v = NcValues::text("hello");
        assert_eq!(v.as_text(), Some("hello"));
        assert_eq!(v.nc_type(), NcType::Char);
        assert_eq!(v.len(), 5);
        assert!(NcValues::empty(NcType::Double).is_empty());
        let mut a = NcValues::Int(vec![1]);
        a.extend_from(&NcValues::Int(vec![2])).unwrap();
        assert_eq!(a.as_i32().unwrap(), &[1, 2]);
        assert!(a.extend_from(&NcValues::Float(vec![1.0])).is_err());
    }

    #[test]
    fn file_path_round_trip() {
        let mut f = NcFile::new();
        let x = f.add_dim("x", 2);
        let v = f.add_var("v", NcType::Int, vec![x]).unwrap();
        f.put_values(v, NcValues::Int(vec![1, 2])).unwrap();
        let path = std::env::temp_dir().join(format!(
            "eoml-ncfile-{}-{}.nc",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        f.write_to(&path).unwrap();
        let back = NcFile::read_from(&path).unwrap();
        assert_eq!(back, f);
        assert!(NcFile::read_from("/no/such/file.nc").is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn type_tags_round_trip() {
        for t in [
            NcType::Byte,
            NcType::Char,
            NcType::Short,
            NcType::Int,
            NcType::Float,
            NcType::Double,
        ] {
            assert_eq!(NcType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(NcType::from_tag(0), None);
        assert_eq!(NcType::from_tag(7), None);
    }
}

//! CDL rendering — `ncdump`-style text output for NetCDF datasets.
//!
//! The paper's §V-A calls for "publishing clear input and output schemas
//! for each workflow component"; CDL (the Common Data Language) is the
//! standard human-readable schema for NetCDF files. `to_cdl` renders the
//! header (dimensions, variables, attributes) and optionally the data
//! section, in the same layout `ncdump`/`ncdump -h` produce.

use crate::model::{NcAttr, NcFile, NcType, NcValues};
use std::fmt::Write as _;

/// How much of the file to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdlMode {
    /// Header only (`ncdump -h`).
    Header,
    /// Header plus the data section (`ncdump`). Large variables are
    /// elided with a count marker after `max_values` elements.
    Data {
        /// Maximum values printed per variable.
        max_values: usize,
    },
}

fn type_name(t: NcType) -> &'static str {
    match t {
        NcType::Byte => "byte",
        NcType::Char => "char",
        NcType::Short => "short",
        NcType::Int => "int",
        NcType::Float => "float",
        NcType::Double => "double",
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

fn render_values(v: &NcValues, max: usize) -> String {
    fn join<T: std::fmt::Display>(xs: &[T], max: usize, total: usize) -> String {
        let mut s = xs
            .iter()
            .take(max)
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        if total > max {
            let _ = write!(s, ", ... ({total} values)");
        }
        s
    }
    match v {
        NcValues::Byte(xs) => join(xs, max, xs.len()),
        NcValues::Char(xs) => {
            let text = String::from_utf8_lossy(xs);
            format!("\"{}\"", escape(&text))
        }
        NcValues::Short(xs) => join(xs, max, xs.len()),
        NcValues::Int(xs) => join(xs, max, xs.len()),
        NcValues::Float(xs) => {
            let mut s = xs
                .iter()
                .take(max)
                .map(|x| format!("{x}f"))
                .collect::<Vec<_>>()
                .join(", ");
            if xs.len() > max {
                let _ = write!(s, ", ... ({} values)", xs.len());
            }
            s
        }
        NcValues::Double(xs) => join(xs, max, xs.len()),
    }
}

fn render_attr(out: &mut String, owner: &str, attr: &NcAttr) {
    let _ = writeln!(
        out,
        "\t\t{owner}:{} = {} ;",
        attr.name,
        render_values(&attr.values, 16)
    );
}

/// Render a dataset as CDL text. `name` becomes the `netcdf <name>` header.
pub fn to_cdl(file: &NcFile, name: &str, mode: CdlMode) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "netcdf {name} {{");

    if !file.dims.is_empty() {
        let _ = writeln!(out, "dimensions:");
        for d in &file.dims {
            if d.is_record() {
                let _ = writeln!(
                    out,
                    "\t{} = UNLIMITED ; // ({} currently)",
                    d.name, file.numrecs
                );
            } else {
                let _ = writeln!(out, "\t{} = {} ;", d.name, d.len);
            }
        }
    }

    if !file.vars.is_empty() {
        let _ = writeln!(out, "variables:");
        for v in &file.vars {
            let dims: Vec<&str> = v
                .dims
                .iter()
                .map(|d| file.dims[d.0].name.as_str())
                .collect();
            if dims.is_empty() {
                let _ = writeln!(out, "\t{} {} ;", type_name(v.nc_type), v.name);
            } else {
                let _ = writeln!(
                    out,
                    "\t{} {}({}) ;",
                    type_name(v.nc_type),
                    v.name,
                    dims.join(", ")
                );
            }
            for a in &v.attrs {
                render_attr(&mut out, &v.name, a);
            }
        }
    }

    if !file.gatts.is_empty() {
        let _ = writeln!(out, "\n// global attributes:");
        for a in &file.gatts {
            render_attr(&mut out, "", a);
        }
    }

    if let CdlMode::Data { max_values } = mode {
        let _ = writeln!(out, "data:");
        for v in &file.vars {
            let _ = writeln!(
                out,
                "\n {} = {} ;",
                v.name,
                render_values(&v.data, max_values)
            );
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NcFile, NcType, NcValues};

    fn sample() -> NcFile {
        let mut f = NcFile::new();
        let t = f.add_record_dim("tile").unwrap();
        let b = f.add_dim("band", 2);
        f.add_global_attr("title", NcValues::text("AICCA tiles"));
        let rad = f.add_var("radiance", NcType::Float, vec![t, b]).unwrap();
        f.add_var_attr(rad, "units", NcValues::text("W/m2"))
            .unwrap();
        let lab = f.add_var("aicca_label", NcType::Int, vec![t]).unwrap();
        for i in 0..3 {
            f.append_record(vec![
                (rad, NcValues::Float(vec![i as f32, i as f32 + 0.5])),
                (lab, NcValues::Int(vec![i * 7])),
            ])
            .unwrap();
        }
        f
    }

    #[test]
    fn header_structure() {
        let cdl = to_cdl(&sample(), "tiles", CdlMode::Header);
        assert!(cdl.starts_with("netcdf tiles {"));
        assert!(cdl.contains("tile = UNLIMITED ; // (3 currently)"), "{cdl}");
        assert!(cdl.contains("band = 2 ;"));
        assert!(cdl.contains("float radiance(tile, band) ;"));
        assert!(cdl.contains("int aicca_label(tile) ;"));
        assert!(cdl.contains("radiance:units = \"W/m2\" ;"));
        assert!(cdl.contains(":title = \"AICCA tiles\" ;"));
        assert!(!cdl.contains("data:"), "header mode has no data section");
        assert!(cdl.trim_end().ends_with('}'));
    }

    #[test]
    fn data_section_and_elision() {
        let cdl = to_cdl(&sample(), "tiles", CdlMode::Data { max_values: 4 });
        assert!(cdl.contains("data:"));
        assert!(cdl.contains("aicca_label = 0, 7, 14 ;"));
        // 6 radiance values with max 4 → elided with a count.
        assert!(cdl.contains("... (6 values)"), "{cdl}");
        assert!(cdl.contains("0f, 0.5f"), "floats carry the f suffix: {cdl}");
    }

    #[test]
    fn scalar_and_empty_file() {
        let mut f = NcFile::new();
        let v = f.add_var("pi", NcType::Double, vec![]).unwrap();
        f.put_values(v, NcValues::Double(vec![3.5])).unwrap();
        let cdl = to_cdl(&f, "scalar", CdlMode::Data { max_values: 10 });
        assert!(cdl.contains("double pi ;"));
        assert!(cdl.contains("pi = 3.5 ;"));
        let empty = to_cdl(&NcFile::new(), "empty", CdlMode::Header);
        assert_eq!(empty, "netcdf empty {\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        let mut f = NcFile::new();
        f.add_global_attr("note", NcValues::text("a \"quoted\"\nline"));
        let cdl = to_cdl(&f, "x", CdlMode::Header);
        assert!(cdl.contains(r#":note = "a \"quoted\"\nline" ;"#), "{cdl}");
    }

    #[test]
    fn round_trip_of_real_tile_file_renders() {
        // Smoke-check CDL on a decoded file (no panics, contains names).
        let f = sample();
        let back = NcFile::decode(&f.encode().unwrap()).unwrap();
        let cdl = to_cdl(&back, "roundtrip", CdlMode::Data { max_values: 100 });
        assert!(cdl.contains("radiance"));
        assert!(cdl.len() > 100);
    }
}

//! Binary encoding/decoding of the NetCDF classic format.
//!
//! Reference: the NetCDF "classic format spec" (CDF-1/CDF-2). Everything is
//! big-endian; names and payloads are zero-padded to 4-byte boundaries;
//! fixed variables live at absolute `begin` offsets followed by the record
//! section, in which each record holds one slab per record variable (with
//! the classic special case: a *single* record variable's records are
//! packed without inter-record padding).

use crate::model::{DimId, NcAttr, NcDim, NcFile, NcType, NcValues, NcVar};

/// Magic bytes: `CDF`.
pub const MAGIC: &[u8; 3] = b"CDF";

const TAG_DIMENSION: u32 = 0x0A;
const TAG_VARIABLE: u32 = 0x0B;
const TAG_ATTRIBUTE: u32 = 0x0C;

/// Errors from the NetCDF model or codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NcError {
    /// Buffer ended early or a length field overruns it.
    Truncated,
    /// Not a `CDF` file.
    BadMagic,
    /// Version byte other than 1 or 2.
    BadVersion(u8),
    /// Unexpected list tag.
    BadTag(u32),
    /// Unknown external type tag.
    BadType(u32),
    /// A name is not valid UTF-8.
    BadUtf8,
    /// Payload type differs from the declared variable/attribute type.
    TypeMismatch,
    /// Payload length differs from the declared shape.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements supplied.
        actual: usize,
    },
    /// Reference to an undefined dimension.
    UnknownDim,
    /// Reference to an undefined variable.
    UnknownVar,
    /// The record dimension must be a variable's first dimension.
    RecordDimNotFirst,
    /// Only one record dimension is allowed.
    MultipleRecordDims,
    /// `put_values` called on a record variable.
    RecordVarNeedsRecords,
    /// `append_record` did not cover every record variable exactly once.
    IncompleteRecord,
    /// Structural inconsistency while decoding.
    Corrupt(&'static str),
}

impl std::fmt::Display for NcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NcError::Truncated => write!(f, "file truncated"),
            NcError::BadMagic => write!(f, "not a NetCDF classic file"),
            NcError::BadVersion(v) => write!(f, "unsupported CDF version {v}"),
            NcError::BadTag(t) => write!(f, "unexpected list tag {t:#x}"),
            NcError::BadType(t) => write!(f, "unknown external type {t}"),
            NcError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            NcError::TypeMismatch => write!(f, "value type mismatch"),
            NcError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            NcError::UnknownDim => write!(f, "unknown dimension id"),
            NcError::UnknownVar => write!(f, "unknown variable id"),
            NcError::RecordDimNotFirst => write!(f, "record dimension must be outermost"),
            NcError::MultipleRecordDims => write!(f, "only one record dimension is allowed"),
            NcError::RecordVarNeedsRecords => {
                write!(f, "use append_record for record variables")
            }
            NcError::IncompleteRecord => {
                write!(f, "append_record must cover every record variable once")
            }
            NcError::Corrupt(what) => write!(f, "corrupt file: {what}"),
        }
    }
}

impl std::error::Error for NcError {}

fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

// ---------------------------------------------------------------- encoding

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn name(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        for _ in s.len()..pad4(s.len()) {
            self.buf.push(0);
        }
    }
    fn values(&mut self, v: &NcValues) {
        let start = self.buf.len();
        match v {
            NcValues::Byte(xs) => {
                for &x in xs {
                    self.buf.push(x as u8);
                }
            }
            NcValues::Char(xs) => self.buf.extend_from_slice(xs),
            NcValues::Short(xs) => {
                for &x in xs {
                    self.buf.extend_from_slice(&x.to_be_bytes());
                }
            }
            NcValues::Int(xs) => {
                for &x in xs {
                    self.buf.extend_from_slice(&x.to_be_bytes());
                }
            }
            NcValues::Float(xs) => {
                for &x in xs {
                    self.buf.extend_from_slice(&x.to_be_bytes());
                }
            }
            NcValues::Double(xs) => {
                for &x in xs {
                    self.buf.extend_from_slice(&x.to_be_bytes());
                }
            }
        }
        let written = self.buf.len() - start;
        for _ in written..pad4(written) {
            self.buf.push(0);
        }
    }
    fn attr_list(&mut self, attrs: &[NcAttr]) {
        if attrs.is_empty() {
            self.u32(0);
            self.u32(0);
            return;
        }
        self.u32(TAG_ATTRIBUTE);
        self.u32(attrs.len() as u32);
        for a in attrs {
            self.name(&a.name);
            self.u32(a.values.nc_type().tag());
            self.u32(a.values.len() as u32);
            self.values(&a.values);
        }
    }
}

/// Unpadded byte size of one "slab": the full variable for fixed variables,
/// one record for record variables.
fn slab_bytes(file: &NcFile, var: &NcVar) -> usize {
    let elems: usize = var
        .dims
        .iter()
        .map(|d| file.dims[d.0].len)
        .filter(|&l| l > 0)
        .product::<usize>()
        .max(1);
    elems * var.nc_type.size()
}

fn is_record_var(file: &NcFile, var: &NcVar) -> bool {
    var.dims
        .first()
        .map(|d| file.dims[d.0].is_record())
        .unwrap_or(false)
}

/// Header size given an offset width (4 for CDF-1, 8 for CDF-2).
fn header_size(file: &NcFile, offset_width: usize) -> usize {
    let name_sz = |s: &str| 4 + pad4(s.len());
    let attrs_sz = |attrs: &[NcAttr]| -> usize {
        8 + attrs
            .iter()
            .map(|a| name_sz(&a.name) + 8 + pad4(a.values.len() * a.values.nc_type().size()))
            .sum::<usize>()
    };
    let mut sz = 4 + 4; // magic+version, numrecs
    sz += 8; // dim list tag+count (ABSENT is also 8 bytes)
    for d in &file.dims {
        sz += name_sz(&d.name) + 4;
    }
    sz += attrs_sz(&file.gatts);
    sz += 8; // var list tag+count
    for v in &file.vars {
        sz += name_sz(&v.name) + 4 + 4 * v.dims.len();
        sz += attrs_sz(&v.attrs);
        sz += 4 + 4 + offset_width; // nc_type, vsize, begin
    }
    sz
}

/// Encode to classic bytes. Chooses CDF-1 unless any offset needs 64 bits.
pub fn encode(file: &NcFile) -> Result<Vec<u8>, NcError> {
    validate(file)?;

    let fixed: Vec<usize> = (0..file.vars.len())
        .filter(|&i| !is_record_var(file, &file.vars[i]))
        .collect();
    let record: Vec<usize> = (0..file.vars.len())
        .filter(|&i| is_record_var(file, &file.vars[i]))
        .collect();

    // Decide version by laying out with 4-byte offsets first.
    let mut version = 1u8;
    let mut begins = vec![0u64; file.vars.len()];
    for pass in 0..2 {
        let width = if version == 1 { 4 } else { 8 };
        let mut off = header_size(file, width) as u64;
        for &i in &fixed {
            begins[i] = off;
            off += pad4(slab_bytes(file, &file.vars[i])) as u64;
        }
        for &i in &record {
            begins[i] = off;
            off += if record.len() == 1 {
                slab_bytes(file, &file.vars[i]) as u64
            } else {
                pad4(slab_bytes(file, &file.vars[i])) as u64
            };
        }
        let record_stride: u64 = record
            .iter()
            .map(|&i| {
                if record.len() == 1 {
                    slab_bytes(file, &file.vars[i]) as u64
                } else {
                    pad4(slab_bytes(file, &file.vars[i])) as u64
                }
            })
            .sum();
        let end = begins
            .iter()
            .copied()
            .max()
            .unwrap_or(off)
            .max(off + record_stride * file.numrecs.saturating_sub(1) as u64);
        if version == 1 && end > i32::MAX as u64 {
            version = 2;
            continue; // relayout with 8-byte offsets
        }
        let _ = pass;
        break;
    }

    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u8(version);
    w.u32(file.numrecs as u32);

    // dim list
    if file.dims.is_empty() {
        w.u32(0);
        w.u32(0);
    } else {
        w.u32(TAG_DIMENSION);
        w.u32(file.dims.len() as u32);
        for d in &file.dims {
            w.name(&d.name);
            w.u32(d.len as u32);
        }
    }

    w.attr_list(&file.gatts);

    // var list
    if file.vars.is_empty() {
        w.u32(0);
        w.u32(0);
    } else {
        w.u32(TAG_VARIABLE);
        w.u32(file.vars.len() as u32);
        for (i, v) in file.vars.iter().enumerate() {
            w.name(&v.name);
            w.u32(v.dims.len() as u32);
            for d in &v.dims {
                w.u32(d.0 as u32);
            }
            w.attr_list(&v.attrs);
            w.u32(v.nc_type.tag());
            let vsize = if is_record_var(file, v) && record.len() == 1 {
                // Spec: single record variable may carry unpadded vsize.
                slab_bytes(file, v)
            } else {
                pad4(slab_bytes(file, v))
            };
            w.u32(vsize.min(u32::MAX as usize) as u32);
            if version == 1 {
                w.u32(begins[i] as u32);
            } else {
                w.u64(begins[i]);
            }
        }
    }

    debug_assert_eq!(
        w.buf.len(),
        header_size(file, if version == 1 { 4 } else { 8 }),
        "header layout mismatch"
    );

    // Fixed variable data.
    for &i in &fixed {
        debug_assert_eq!(w.buf.len() as u64, begins[i]);
        w.values(&file.vars[i].data);
        // `values` pads to 4 already; pad4(slab) equals that.
    }

    // Record data: records interleaved across record variables.
    for rec in 0..file.numrecs {
        for &i in &record {
            let v = &file.vars[i];
            let slab_elems = slab_bytes(file, v) / v.nc_type.size();
            let start = rec * slab_elems;
            let end = start + slab_elems;
            let slice = slice_values(&v.data, start, end);
            if record.len() == 1 {
                // Packed: write without padding.
                let before = w.buf.len();
                w.values(&slice);
                w.buf.truncate(before + slab_bytes(file, v));
            } else {
                w.values(&slice);
            }
        }
    }

    Ok(w.buf)
}

fn slice_values(v: &NcValues, start: usize, end: usize) -> NcValues {
    match v {
        NcValues::Byte(xs) => NcValues::Byte(xs[start..end].to_vec()),
        NcValues::Char(xs) => NcValues::Char(xs[start..end].to_vec()),
        NcValues::Short(xs) => NcValues::Short(xs[start..end].to_vec()),
        NcValues::Int(xs) => NcValues::Int(xs[start..end].to_vec()),
        NcValues::Float(xs) => NcValues::Float(xs[start..end].to_vec()),
        NcValues::Double(xs) => NcValues::Double(xs[start..end].to_vec()),
    }
}

fn validate(file: &NcFile) -> Result<(), NcError> {
    if file.dims.iter().filter(|d| d.is_record()).count() > 1 {
        return Err(NcError::MultipleRecordDims);
    }
    for v in &file.vars {
        for (i, d) in v.dims.iter().enumerate() {
            let dim = file.dims.get(d.0).ok_or(NcError::UnknownDim)?;
            if dim.is_record() && i != 0 {
                return Err(NcError::RecordDimNotFirst);
            }
        }
        let expect = if is_record_var(file, v) {
            (slab_bytes(file, v) / v.nc_type.size()) * file.numrecs
        } else {
            slab_bytes(file, v) / v.nc_type.size()
        };
        if v.data.nc_type() != v.nc_type {
            return Err(NcError::TypeMismatch);
        }
        if v.data.len() != expect {
            return Err(NcError::LengthMismatch {
                expected: expect,
                actual: v.data.len(),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- decoding

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NcError> {
        if self.pos + n > self.buf.len() {
            return Err(NcError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, NcError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, NcError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, NcError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }
    fn name(&mut self) -> Result<String, NcError> {
        let len = self.u32()? as usize;
        let bytes = self.take(pad4(len))?;
        std::str::from_utf8(&bytes[..len])
            .map(str::to_owned)
            .map_err(|_| NcError::BadUtf8)
    }
    fn values(&mut self, t: NcType, n: usize) -> Result<NcValues, NcError> {
        self.values_inner(t, n, true)
    }

    /// Like [`values`](Self::values) but without consuming trailing padding
    /// — needed for packed single-record-variable data.
    fn values_exact(&mut self, t: NcType, n: usize) -> Result<NcValues, NcError> {
        self.values_inner(t, n, false)
    }

    fn values_inner(&mut self, t: NcType, n: usize, padded: bool) -> Result<NcValues, NcError> {
        let nbytes = n * t.size();
        let raw = self.take(if padded { pad4(nbytes) } else { nbytes })?;
        let raw = &raw[..nbytes];
        Ok(match t {
            NcType::Byte => NcValues::Byte(raw.iter().map(|&b| b as i8).collect()),
            NcType::Char => NcValues::Char(raw.to_vec()),
            NcType::Short => NcValues::Short(
                raw.chunks_exact(2)
                    .map(|c| i16::from_be_bytes([c[0], c[1]]))
                    .collect(),
            ),
            NcType::Int => NcValues::Int(
                raw.chunks_exact(4)
                    .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ),
            NcType::Float => NcValues::Float(
                raw.chunks_exact(4)
                    .map(|c| f32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ),
            NcType::Double => NcValues::Double(
                raw.chunks_exact(8)
                    .map(|c| f64::from_be_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ),
        })
    }
    fn attr_list(&mut self) -> Result<Vec<NcAttr>, NcError> {
        let tag = self.u32()?;
        let count = self.u32()? as usize;
        if tag == 0 {
            if count != 0 {
                return Err(NcError::Corrupt("ABSENT list with nonzero count"));
            }
            return Ok(Vec::new());
        }
        if tag != TAG_ATTRIBUTE {
            return Err(NcError::BadTag(tag));
        }
        let mut attrs = Vec::with_capacity(count);
        for _ in 0..count {
            let name = self.name()?;
            let t = NcType::from_tag(self.u32()?).ok_or(NcError::BadType(0))?;
            let n = self.u32()? as usize;
            let values = self.values(t, n)?;
            attrs.push(NcAttr { name, values });
        }
        Ok(attrs)
    }
}

/// Decode classic bytes into an [`NcFile`].
pub fn decode(bytes: &[u8]) -> Result<NcFile, NcError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(3)? != MAGIC {
        return Err(NcError::BadMagic);
    }
    let version = r.u8()?;
    if version != 1 && version != 2 {
        return Err(NcError::BadVersion(version));
    }
    let numrecs = r.u32()? as usize;

    // dims
    let tag = r.u32()?;
    let count = r.u32()? as usize;
    let mut dims = Vec::new();
    match tag {
        0 if count == 0 => {}
        TAG_DIMENSION => {
            for _ in 0..count {
                let name = r.name()?;
                let len = r.u32()? as usize;
                dims.push(NcDim { name, len });
            }
        }
        t => return Err(NcError::BadTag(t)),
    }

    let gatts = r.attr_list()?;

    // vars
    let tag = r.u32()?;
    let count = r.u32()? as usize;
    struct VarHdr {
        var: NcVar,
        begin: u64,
    }
    let mut hdrs: Vec<VarHdr> = Vec::new();
    match tag {
        0 if count == 0 => {}
        TAG_VARIABLE => {
            for _ in 0..count {
                let name = r.name()?;
                let rank = r.u32()? as usize;
                let mut vdims = Vec::with_capacity(rank);
                for _ in 0..rank {
                    let id = r.u32()? as usize;
                    if id >= dims.len() {
                        return Err(NcError::UnknownDim);
                    }
                    vdims.push(DimId(id));
                }
                let attrs = r.attr_list()?;
                let t = r.u32()?;
                let nc_type = NcType::from_tag(t).ok_or(NcError::BadType(t))?;
                let _vsize = r.u32()?;
                let begin = if version == 1 {
                    r.u32()? as u64
                } else {
                    r.u64()?
                };
                hdrs.push(VarHdr {
                    var: NcVar {
                        name,
                        dims: vdims,
                        attrs,
                        nc_type,
                        data: NcValues::empty(nc_type),
                    },
                    begin,
                });
            }
        }
        t => return Err(NcError::BadTag(t)),
    }

    // Assemble a file skeleton so slab arithmetic can reuse model helpers.
    let mut file = NcFile {
        dims,
        gatts,
        vars: hdrs.iter().map(|h| h.var.clone()).collect(),
        numrecs,
    };

    // Read fixed variables.
    for (i, h) in hdrs.iter().enumerate() {
        if is_record_var(&file, &file.vars[i]) {
            continue;
        }
        let nbytes = slab_bytes(&file, &file.vars[i]);
        let start = h.begin as usize;
        if start + nbytes > bytes.len() {
            return Err(NcError::Truncated);
        }
        let mut rr = Reader {
            buf: bytes,
            pos: start,
        };
        let elems = nbytes / file.vars[i].nc_type.size();
        file.vars[i].data = rr.values(file.vars[i].nc_type, elems)?;
    }

    // Read record variables.
    let record: Vec<usize> = (0..file.vars.len())
        .filter(|&i| is_record_var(&file, &file.vars[i]))
        .collect();
    if !record.is_empty() {
        let single = record.len() == 1;
        let stride: usize = record
            .iter()
            .map(|&i| {
                let s = slab_bytes(&file, &file.vars[i]);
                if single {
                    s
                } else {
                    pad4(s)
                }
            })
            .sum();
        let base = hdrs[record[0]].begin as usize;
        for rec in 0..numrecs {
            let mut off = base + rec * stride;
            for &i in &record {
                let nbytes = slab_bytes(&file, &file.vars[i]);
                if off + nbytes > bytes.len() {
                    return Err(NcError::Truncated);
                }
                let mut rr = Reader {
                    buf: bytes,
                    pos: off,
                };
                let elems = nbytes / file.vars[i].nc_type.size();
                let slab = if single {
                    rr.values_exact(file.vars[i].nc_type, elems)?
                } else {
                    rr.values(file.vars[i].nc_type, elems)?
                };
                file.vars[i].data.extend_from(&slab)?;
                off += if single { nbytes } else { pad4(nbytes) };
            }
        }
    }

    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NcFile, NcType, NcValues};

    fn sample() -> NcFile {
        let mut f = NcFile::new();
        let y = f.add_dim("y", 2);
        let x = f.add_dim("x", 3);
        f.add_global_attr("title", NcValues::text("test file"));
        f.add_global_attr("version", NcValues::Int(vec![3]));
        let v = f.add_var("temp", NcType::Float, vec![y, x]).unwrap();
        f.add_var_attr(v, "units", NcValues::text("K")).unwrap();
        f.put_values(v, NcValues::Float(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
            .unwrap();
        let m = f.add_var("mask", NcType::Byte, vec![y, x]).unwrap();
        f.put_values(m, NcValues::Byte(vec![0, 1, 0, 1, 1, 0]))
            .unwrap();
        let s = f.add_var("scalar", NcType::Double, vec![]).unwrap();
        f.put_values(s, NcValues::Double(vec![2.5])).unwrap();
        f
    }

    #[test]
    fn header_starts_with_cdf1_magic() {
        let bytes = sample().encode().unwrap();
        assert_eq!(&bytes[..3], b"CDF");
        assert_eq!(bytes[3], 1);
        // numrecs (no record dim) is 0.
        assert_eq!(&bytes[4..8], &[0, 0, 0, 0]);
        // dim list tag 0x0A, count 2.
        assert_eq!(&bytes[8..12], &[0, 0, 0, 0x0A]);
        assert_eq!(&bytes[12..16], &[0, 0, 0, 2]);
        // first dim name: len 1, "y" padded to 4, len 2.
        assert_eq!(&bytes[16..20], &[0, 0, 0, 1]);
        assert_eq!(&bytes[20..24], b"y\0\0\0");
        assert_eq!(&bytes[24..28], &[0, 0, 0, 2]);
    }

    #[test]
    fn fixed_round_trip() {
        let f = sample();
        let back = NcFile::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn record_round_trip_multiple_vars() {
        let mut f = NcFile::new();
        let t = f.add_record_dim("tile").unwrap();
        let b = f.add_dim("band", 3);
        let rad = f.add_var("rad", NcType::Float, vec![t, b]).unwrap();
        let lab = f.add_var("label", NcType::Int, vec![t]).unwrap();
        let flag = f.add_var("flag", NcType::Byte, vec![t]).unwrap();
        for i in 0..5 {
            f.append_record(vec![
                (
                    rad,
                    NcValues::Float(vec![i as f32, i as f32 + 0.5, -(i as f32)]),
                ),
                (lab, NcValues::Int(vec![i * 10])),
                (flag, NcValues::Byte(vec![(i % 2) as i8])),
            ])
            .unwrap();
        }
        let back = NcFile::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.numrecs, 5);
        assert_eq!(
            back.var_by_name("label")
                .unwrap()
                .data
                .as_i32()
                .unwrap()
                .len(),
            5
        );
    }

    #[test]
    fn record_round_trip_single_var_packed() {
        // Single record variable: records are packed with no padding even
        // when a record is not a multiple of 4 bytes (3 × i8 here).
        let mut f = NcFile::new();
        let t = f.add_record_dim("t").unwrap();
        let c = f.add_dim("c", 3);
        let v = f.add_var("v", NcType::Byte, vec![t, c]).unwrap();
        for i in 0..4i8 {
            f.append_record(vec![(v, NcValues::Byte(vec![i, i + 1, i + 2]))])
                .unwrap();
        }
        let bytes = f.encode().unwrap();
        let back = NcFile::decode(&bytes).unwrap();
        assert_eq!(back, f);
        // Data section is exactly 12 bytes (no padding) after the header.
        let header = bytes.len() - 12;
        assert_eq!(&bytes[header..], &[0, 1, 2, 1, 2, 3, 2, 3, 4, 3, 4, 5]);
    }

    #[test]
    fn empty_file_round_trip() {
        let f = NcFile::new();
        let back = NcFile::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn all_types_round_trip() {
        let mut f = NcFile::new();
        let n = f.add_dim("n", 2);
        let specs: Vec<(&str, NcValues)> = vec![
            ("b", NcValues::Byte(vec![-1, 2])),
            ("c", NcValues::Char(vec![b'h', b'i'])),
            ("s", NcValues::Short(vec![-300, 300])),
            ("i", NcValues::Int(vec![-70000, 70000])),
            ("f", NcValues::Float(vec![1.5, -2.5])),
            ("d", NcValues::Double(vec![1e-300, 1e300])),
        ];
        for (name, vals) in &specs {
            let v = f.add_var(*name, vals.nc_type(), vec![n]).unwrap();
            f.put_values(v, vals.clone()).unwrap();
        }
        let back = NcFile::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(NcFile::decode(b"NOTCDF"), Err(NcError::BadMagic));
        assert_eq!(NcFile::decode(b"CDF\x05"), Err(NcError::BadVersion(5)));
        assert_eq!(NcFile::decode(b"CD"), Err(NcError::Truncated));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let bytes = sample().encode().unwrap();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(NcFile::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn encode_validates_data_length() {
        let mut f = NcFile::new();
        let x = f.add_dim("x", 3);
        let v = f.add_var("v", NcType::Int, vec![x]).unwrap();
        // Bypass put_values to plant bad data.
        f.vars[v.0].data = NcValues::Int(vec![1]);
        assert_eq!(
            f.encode().unwrap_err(),
            NcError::LengthMismatch {
                expected: 3,
                actual: 1
            }
        );
    }

    #[test]
    fn char_attr_padding_round_trips() {
        // Names/values with every padding residue.
        for len in 1..9 {
            let mut f = NcFile::new();
            let text: String = "x".repeat(len);
            f.add_global_attr(text.clone(), NcValues::text(&text));
            let back = NcFile::decode(&f.encode().unwrap()).unwrap();
            assert_eq!(back.gatts[0].name, text);
            assert_eq!(back.gatts[0].values.as_text(), Some(text.as_str()));
        }
    }

    #[test]
    fn scalar_variable_round_trips() {
        let mut f = NcFile::new();
        let v = f.add_var("pi", NcType::Double, vec![]).unwrap();
        f.put_values(v, NcValues::Double(vec![std::f64::consts::PI]))
            .unwrap();
        let back = NcFile::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(
            back.var_by_name("pi").unwrap().data.as_f64().unwrap()[0],
            std::f64::consts::PI
        );
    }
}

//! Typed workflow configuration, mirroring the YAML files the paper's users
//! write: compute endpoint, products, time span, per-stage resources, paths.

use crate::yaml::{parse, YamlError, YamlValue};
use eoml_util::timebase::CivilDate;
use std::fmt;

/// Validation/conversion errors for workflow configs.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Underlying YAML syntax error.
    Yaml(YamlError),
    /// A required field is missing.
    Missing(&'static str),
    /// A field has the wrong type or an invalid value.
    Invalid {
        /// Field path, e.g. `preprocess.nodes`.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Yaml(e) => write!(f, "{e}"),
            ConfigError::Missing(field) => write!(f, "missing required field {field:?}"),
            ConfigError::Invalid { field, reason } => {
                write!(f, "invalid value for {field:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<YamlError> for ConfigError {
    fn from(e: YamlError) -> Self {
        ConfigError::Yaml(e)
    }
}

fn invalid(field: &'static str, reason: impl Into<String>) -> ConfigError {
    ConfigError::Invalid {
        field,
        reason: reason.into(),
    }
}

/// Time range to process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSpan {
    /// First day (UTC).
    pub start: CivilDate,
    /// Number of consecutive days (≥ 1).
    pub days: usize,
}

/// Stage 1: download resources.
#[derive(Debug, Clone, PartialEq)]
pub struct DownloadConfig {
    /// Parallel download workers (paper evaluates 3 and 6).
    pub workers: usize,
    /// Archive endpoint name.
    pub endpoint: String,
    /// Granule files per product to fetch per day; `None` means the whole
    /// day (288).
    pub files_per_day: Option<usize>,
}

impl Default for DownloadConfig {
    fn default() -> Self {
        Self {
            workers: 3,
            endpoint: "laads".into(),
            files_per_day: None,
        }
    }
}

/// Stage 2: preprocessing resources and tile-selection thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct PreprocessConfig {
    /// Compute nodes to allocate.
    pub nodes: usize,
    /// Parsl-style workers per node.
    pub workers_per_node: usize,
    /// Square tile edge in pixels (128 in the paper).
    pub tile_size: usize,
    /// Minimum fraction of ocean pixels for a tile to be kept.
    pub min_ocean_fraction: f64,
    /// Minimum fraction of cloud pixels for a tile to be kept.
    pub min_cloud_fraction: f64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            nodes: 1,
            workers_per_node: 8,
            tile_size: 128,
            min_ocean_fraction: 1.0,
            min_cloud_fraction: 0.3,
        }
    }
}

/// Stage 4: inference resources.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceConfig {
    /// Inference workers (the paper's timeline uses 1).
    pub workers: usize,
    /// Model identifier.
    pub model: String,
    /// Tiles per inference batch.
    pub batch_size: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            model: "aicca-42".into(),
            batch_size: 64,
        }
    }
}

/// Stage 5: shipment destination.
#[derive(Debug, Clone, PartialEq)]
pub struct ShipmentConfig {
    /// Destination endpoint name (e.g. `frontier-orion`).
    pub destination: String,
    /// Destination directory.
    pub path: String,
}

impl Default for ShipmentConfig {
    fn default() -> Self {
        Self {
            destination: "frontier-orion".into(),
            path: "/lustre/orion/cli/aicca".into(),
        }
    }
}

/// Platforms accepted by the config.
pub const KNOWN_PLATFORMS: [&str; 2] = ["Terra", "Aqua"];

/// Product short names accepted by the config (Terra and Aqua variants).
pub const KNOWN_PRODUCTS: [&str; 6] = [
    "MOD021KM", "MOD03", "MOD06_L2", "MYD021KM", "MYD03", "MYD06_L2",
];

/// The full user-facing workflow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowConfig {
    /// Campaign name (used in output paths and telemetry).
    pub name: String,
    /// Seed for the synthetic world (archive contents, network jitter…).
    pub seed: u64,
    /// `Terra` or `Aqua`.
    pub platform: String,
    /// Product short names to download.
    pub products: Vec<String>,
    /// Time range.
    pub time_span: TimeSpan,
    /// Stage 1 settings.
    pub download: DownloadConfig,
    /// Stage 2 settings.
    pub preprocess: PreprocessConfig,
    /// Stage 4 settings.
    pub inference: InferenceConfig,
    /// Stage 5 settings.
    pub shipment: ShipmentConfig,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        Self {
            name: "eo-ml".into(),
            seed: 2022,
            platform: "Terra".into(),
            products: vec!["MOD021KM".into(), "MOD03".into(), "MOD06_L2".into()],
            time_span: TimeSpan {
                start: CivilDate::new(2022, 1, 1).expect("valid date"),
                days: 1,
            },
            download: DownloadConfig::default(),
            preprocess: PreprocessConfig::default(),
            inference: InferenceConfig::default(),
            shipment: ShipmentConfig::default(),
        }
    }
}

fn get_usize(
    map: &YamlValue,
    key: &str,
    field: &'static str,
    default: usize,
) -> Result<usize, ConfigError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => {
            let i = v
                .as_i64()
                .ok_or_else(|| invalid(field, "expected an integer"))?;
            if i < 0 {
                return Err(invalid(field, "must be non-negative"));
            }
            Ok(i as usize)
        }
    }
}

fn get_f64(
    map: &YamlValue,
    key: &str,
    field: &'static str,
    default: f64,
) -> Result<f64, ConfigError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| invalid(field, "expected a number")),
    }
}

fn get_string(map: &YamlValue, key: &str, default: &str) -> String {
    map.get(key)
        .and_then(YamlValue::as_str)
        .unwrap_or(default)
        .to_string()
}

fn parse_date(s: &str, field: &'static str) -> Result<CivilDate, ConfigError> {
    let mut parts = s.split('-');
    let bad = || invalid(field, format!("expected YYYY-MM-DD, got {s:?}"));
    let y: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let m: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let d: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if parts.next().is_some() {
        return Err(bad());
    }
    CivilDate::new(y, m, d).ok_or_else(bad)
}

impl WorkflowConfig {
    /// Parse and validate a YAML config document.
    pub fn from_yaml_str(src: &str) -> Result<Self, ConfigError> {
        let doc = parse(src)?;
        Self::from_yaml(&doc)
    }

    /// Convert a parsed YAML value into a validated config. Absent sections
    /// fall back to defaults; present-but-invalid values are errors.
    pub fn from_yaml(doc: &YamlValue) -> Result<Self, ConfigError> {
        let defaults = WorkflowConfig::default();
        if matches!(doc, YamlValue::Null) {
            return Ok(defaults);
        }
        if doc.as_map().is_none() {
            return Err(invalid("<root>", "config must be a mapping"));
        }

        let name = get_string(doc, "name", &defaults.name);
        let seed = get_usize(doc, "seed", "seed", defaults.seed as usize)? as u64;

        let platform = get_string(doc, "platform", &defaults.platform);
        if !KNOWN_PLATFORMS.contains(&platform.as_str()) {
            return Err(invalid(
                "platform",
                format!("unknown platform {platform:?} (expected Terra or Aqua)"),
            ));
        }

        let products: Vec<String> = match doc.get("products") {
            None => defaults.products.clone(),
            Some(v) => {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| invalid("products", "expected a sequence"))?;
                seq.iter()
                    .map(|p| {
                        p.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| invalid("products", "expected strings"))
                    })
                    .collect::<Result<_, _>>()?
            }
        };
        if products.is_empty() {
            return Err(invalid("products", "at least one product required"));
        }
        for p in &products {
            if !KNOWN_PRODUCTS.contains(&p.as_str()) {
                return Err(invalid("products", format!("unknown product {p:?}")));
            }
        }

        let time_span = match doc.get("time_span") {
            None => defaults.time_span,
            Some(ts) => {
                let start_str = ts
                    .get("start")
                    .and_then(YamlValue::as_str)
                    .ok_or(ConfigError::Missing("time_span.start"))?;
                let start = parse_date(start_str, "time_span.start")?;
                let days = get_usize(ts, "days", "time_span.days", 1)?;
                if days == 0 {
                    return Err(invalid("time_span.days", "must be ≥ 1"));
                }
                TimeSpan { start, days }
            }
        };

        let download = match doc.get("download") {
            None => defaults.download.clone(),
            Some(d) => {
                let workers = get_usize(d, "workers", "download.workers", 3)?;
                if workers == 0 {
                    return Err(invalid("download.workers", "must be ≥ 1"));
                }
                let files_per_day = match d.get("files_per_day") {
                    None => None,
                    Some(v) => {
                        let n = v
                            .as_i64()
                            .ok_or_else(|| invalid("download.files_per_day", "expected integer"))?;
                        if !(1..=288).contains(&n) {
                            return Err(invalid("download.files_per_day", "must be 1–288"));
                        }
                        Some(n as usize)
                    }
                };
                DownloadConfig {
                    workers,
                    endpoint: get_string(d, "endpoint", "laads"),
                    files_per_day,
                }
            }
        };

        let preprocess = match doc.get("preprocess") {
            None => defaults.preprocess.clone(),
            Some(p) => {
                let nodes = get_usize(p, "nodes", "preprocess.nodes", 1)?;
                let wpn = get_usize(p, "workers_per_node", "preprocess.workers_per_node", 8)?;
                if nodes == 0 || wpn == 0 {
                    return Err(invalid(
                        "preprocess",
                        "nodes and workers_per_node must be ≥ 1",
                    ));
                }
                let tile_size = get_usize(p, "tile_size", "preprocess.tile_size", 128)?;
                if tile_size == 0 || tile_size > 1354 {
                    return Err(invalid("preprocess.tile_size", "must be 1–1354"));
                }
                let ocean = get_f64(
                    p,
                    "min_ocean_fraction",
                    "preprocess.min_ocean_fraction",
                    1.0,
                )?;
                let cloud = get_f64(
                    p,
                    "min_cloud_fraction",
                    "preprocess.min_cloud_fraction",
                    0.3,
                )?;
                for (v, field) in [
                    (ocean, "preprocess.min_ocean_fraction"),
                    (cloud, "preprocess.min_cloud_fraction"),
                ] {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(invalid(
                            match field {
                                "preprocess.min_ocean_fraction" => "preprocess.min_ocean_fraction",
                                _ => "preprocess.min_cloud_fraction",
                            },
                            "must be within [0, 1]",
                        ));
                    }
                }
                PreprocessConfig {
                    nodes,
                    workers_per_node: wpn,
                    tile_size,
                    min_ocean_fraction: ocean,
                    min_cloud_fraction: cloud,
                }
            }
        };

        let inference = match doc.get("inference") {
            None => defaults.inference.clone(),
            Some(i) => {
                let workers = get_usize(i, "workers", "inference.workers", 1)?;
                let batch_size = get_usize(i, "batch_size", "inference.batch_size", 64)?;
                if workers == 0 || batch_size == 0 {
                    return Err(invalid("inference", "workers and batch_size must be ≥ 1"));
                }
                InferenceConfig {
                    workers,
                    model: get_string(i, "model", "aicca-42"),
                    batch_size,
                }
            }
        };

        let shipment = match doc.get("shipment") {
            None => defaults.shipment.clone(),
            Some(s) => ShipmentConfig {
                destination: get_string(s, "destination", "frontier-orion"),
                path: get_string(s, "path", "/lustre/orion/cli/aicca"),
            },
        };

        Ok(WorkflowConfig {
            name,
            seed,
            platform,
            products,
            time_span,
            download,
            preprocess,
            inference,
            shipment,
        })
    }

    /// Render the canonical YAML for this config (parseable by
    /// [`from_yaml_str`](Self::from_yaml_str); useful as a starting
    /// template).
    pub fn to_yaml_string(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("name: {}\n", self.name));
        s.push_str(&format!("seed: {}\n", self.seed));
        s.push_str(&format!("platform: {}\n", self.platform));
        s.push_str(&format!("products: [{}]\n", self.products.join(", ")));
        s.push_str("time_span:\n");
        s.push_str(&format!("  start: {}\n", self.time_span.start));
        s.push_str(&format!("  days: {}\n", self.time_span.days));
        s.push_str("download:\n");
        s.push_str(&format!("  workers: {}\n", self.download.workers));
        s.push_str(&format!("  endpoint: {}\n", self.download.endpoint));
        if let Some(n) = self.download.files_per_day {
            s.push_str(&format!("  files_per_day: {n}\n"));
        }
        s.push_str("preprocess:\n");
        s.push_str(&format!("  nodes: {}\n", self.preprocess.nodes));
        s.push_str(&format!(
            "  workers_per_node: {}\n",
            self.preprocess.workers_per_node
        ));
        s.push_str(&format!("  tile_size: {}\n", self.preprocess.tile_size));
        s.push_str(&format!(
            "  min_ocean_fraction: {}\n",
            self.preprocess.min_ocean_fraction
        ));
        s.push_str(&format!(
            "  min_cloud_fraction: {}\n",
            self.preprocess.min_cloud_fraction
        ));
        s.push_str("inference:\n");
        s.push_str(&format!("  workers: {}\n", self.inference.workers));
        s.push_str(&format!("  model: {}\n", self.inference.model));
        s.push_str(&format!("  batch_size: {}\n", self.inference.batch_size));
        s.push_str("shipment:\n");
        s.push_str(&format!("  destination: {}\n", self.shipment.destination));
        s.push_str(&format!("  path: {}\n", self.shipment.path));
        s
    }

    /// Total download workers × preprocessing workers sanity: the number of
    /// Parsl workers the preprocess stage will request.
    pub fn preprocess_workers(&self) -> usize {
        self.preprocess.nodes * self.preprocess.workers_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# EO-ML campaign configuration
name: jan-2022-test
seed: 2022
platform: Terra
products: [MOD021KM, MOD03, MOD06_L2]
time_span:
  start: 2022-01-01
  days: 1
download:
  workers: 6
  endpoint: laads
  files_per_day: 128
preprocess:
  nodes: 10
  workers_per_node: 8
  tile_size: 128
  min_ocean_fraction: 1.0
  min_cloud_fraction: 0.3
inference:
  workers: 1
  model: aicca-42
  batch_size: 64
shipment:
  destination: frontier-orion
  path: /lustre/orion/cli/aicca
"#;

    #[test]
    fn sample_config_parses() {
        let c = WorkflowConfig::from_yaml_str(SAMPLE).unwrap();
        assert_eq!(c.name, "jan-2022-test");
        assert_eq!(c.seed, 2022);
        assert_eq!(c.platform, "Terra");
        assert_eq!(c.products.len(), 3);
        assert_eq!(c.time_span.start, CivilDate::new(2022, 1, 1).unwrap());
        assert_eq!(c.download.workers, 6);
        assert_eq!(c.download.files_per_day, Some(128));
        assert_eq!(c.preprocess.nodes, 10);
        assert_eq!(c.preprocess_workers(), 80);
        assert_eq!(c.inference.batch_size, 64);
        assert_eq!(c.shipment.path, "/lustre/orion/cli/aicca");
    }

    #[test]
    fn empty_config_is_all_defaults() {
        let c = WorkflowConfig::from_yaml_str("").unwrap();
        assert_eq!(c, WorkflowConfig::default());
    }

    #[test]
    fn partial_config_uses_defaults() {
        let c = WorkflowConfig::from_yaml_str("download:\n  workers: 12\n").unwrap();
        assert_eq!(c.download.workers, 12);
        assert_eq!(c.preprocess, PreprocessConfig::default());
        assert_eq!(c.platform, "Terra");
    }

    #[test]
    fn yaml_round_trip() {
        let c = WorkflowConfig::from_yaml_str(SAMPLE).unwrap();
        let rendered = c.to_yaml_string();
        let back = WorkflowConfig::from_yaml_str(&rendered).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn unknown_platform_rejected() {
        let e = WorkflowConfig::from_yaml_str("platform: Sentinel\n").unwrap_err();
        assert!(
            matches!(
                e,
                ConfigError::Invalid {
                    field: "platform",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn unknown_product_rejected() {
        let e = WorkflowConfig::from_yaml_str("products: [MOD35]\n").unwrap_err();
        assert!(
            matches!(
                e,
                ConfigError::Invalid {
                    field: "products",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn bad_date_rejected() {
        for bad in ["2022-13-01", "2022-02-30", "not-a-date", "2022-01"] {
            let src = format!("time_span:\n  start: {bad}\n  days: 1\n");
            let e = WorkflowConfig::from_yaml_str(&src).unwrap_err();
            assert!(
                matches!(
                    e,
                    ConfigError::Invalid {
                        field: "time_span.start",
                        ..
                    }
                ),
                "{bad}: {e}"
            );
        }
    }

    #[test]
    fn zero_resources_rejected() {
        assert!(WorkflowConfig::from_yaml_str("download:\n  workers: 0\n").is_err());
        assert!(WorkflowConfig::from_yaml_str("preprocess:\n  nodes: 0\n").is_err());
        assert!(
            WorkflowConfig::from_yaml_str("time_span:\n  start: 2022-01-01\n  days: 0\n").is_err()
        );
        assert!(WorkflowConfig::from_yaml_str("inference:\n  batch_size: 0\n").is_err());
    }

    #[test]
    fn fraction_bounds_enforced() {
        let e =
            WorkflowConfig::from_yaml_str("preprocess:\n  min_cloud_fraction: 1.5\n").unwrap_err();
        assert!(matches!(e, ConfigError::Invalid { .. }), "{e}");
    }

    #[test]
    fn files_per_day_bounds() {
        assert!(WorkflowConfig::from_yaml_str("download:\n  files_per_day: 0\n").is_err());
        assert!(WorkflowConfig::from_yaml_str("download:\n  files_per_day: 289\n").is_err());
        let c = WorkflowConfig::from_yaml_str("download:\n  files_per_day: 288\n").unwrap();
        assert_eq!(c.download.files_per_day, Some(288));
    }

    #[test]
    fn missing_time_span_start_is_error() {
        let e = WorkflowConfig::from_yaml_str("time_span:\n  days: 2\n").unwrap_err();
        assert_eq!(e, ConfigError::Missing("time_span.start"));
    }
}

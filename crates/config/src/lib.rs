//! `eoml-config` — user-facing workflow configuration.
//!
//! The paper emphasizes the workflow's UX: "users configure their workflow
//! through a locally available YAML file" naming the compute endpoint,
//! credentials, MODIS products, time span and paths. This crate provides
//! that experience:
//!
//! * [`yaml`] — a hand-rolled parser for the YAML subset such configs use
//!   (block mappings and sequences by indentation, flow sequences, quoted
//!   and plain scalars, comments). `serde_yaml` is not in the approved
//!   dependency set, so the subset is implemented here and fully tested.
//! * [`schema`] — the typed [`WorkflowConfig`] with
//!   defaults, validation, and conversion from parsed YAML.

pub mod schema;
pub mod yaml;

pub use schema::{
    ConfigError, DownloadConfig, InferenceConfig, PreprocessConfig, ShipmentConfig, TimeSpan,
    WorkflowConfig,
};
pub use yaml::{parse as parse_yaml, YamlError, YamlValue};

//! A YAML-subset parser.
//!
//! Supports the constructs that workflow configuration files actually use:
//!
//! * block mappings (`key: value`) nested by indentation;
//! * block sequences (`- item`), including `- key: value` compact map items;
//! * flow sequences (`[a, b, c]`);
//! * plain, single-quoted and double-quoted scalars;
//! * `true`/`false`, `null`/`~`, integers and floats;
//! * `#` comments and blank lines.
//!
//! Not supported (rejected with an error where detectable): anchors, tags,
//! flow mappings, multi-line block scalars, multiple documents.

use std::fmt;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum YamlValue {
    /// `null` / `~` / empty value.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// String scalar.
    Str(String),
    /// Sequence.
    Seq(Vec<YamlValue>),
    /// Mapping with preserved key order.
    Map(Vec<(String, YamlValue)>),
}

impl YamlValue {
    /// Look up a key in a mapping.
    pub fn get(&self, key: &str) -> Option<&YamlValue> {
        match self {
            YamlValue::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            YamlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an integer (accepting integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            YamlValue::Int(i) => Some(*i),
            YamlValue::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// As a float (accepting integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            YamlValue::Float(f) => Some(*f),
            YamlValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// As a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            YamlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a sequence.
    pub fn as_seq(&self) -> Option<&[YamlValue]> {
        match self {
            YamlValue::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// As a mapping's pairs.
    pub fn as_map(&self) -> Option<&[(String, YamlValue)]> {
        match self {
            YamlValue::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based line where the problem was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "YAML error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, YamlError> {
    Err(YamlError {
        line,
        message: message.into(),
    })
}

/// One significant (non-blank, non-comment) line.
#[derive(Debug)]
struct Line<'a> {
    /// 1-based source line number.
    no: usize,
    /// Leading-space count.
    indent: usize,
    /// Content with indentation stripped and trailing comment removed.
    content: &'a str,
}

/// Strip a trailing comment that is outside quotes.
fn strip_comment(s: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    let bytes = s.as_bytes();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'#' if !in_single && !in_double
                // YAML requires a space (or line start) before '#'.
                && (i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') =>
            {
                return s[..i].trim_end();
            }
            _ => {}
        }
    }
    s.trim_end()
}

fn significant_lines(src: &str) -> Result<Vec<Line<'_>>, YamlError> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let no = i + 1;
        if raw.trim_start().starts_with('\t') || raw.starts_with('\t') {
            return err(no, "tabs are not allowed for indentation");
        }
        let indent = raw.len() - raw.trim_start_matches(' ').len();
        let content = strip_comment(&raw[indent..]);
        if content.is_empty() {
            continue;
        }
        if content == "---" {
            if !out.is_empty() {
                return err(no, "multiple documents are not supported");
            }
            continue;
        }
        out.push(Line {
            no,
            indent,
            content,
        });
    }
    Ok(out)
}

/// Parse a YAML document into a [`YamlValue`].
pub fn parse(src: &str) -> Result<YamlValue, YamlError> {
    let lines = significant_lines(src)?;
    if lines.is_empty() {
        return Ok(YamlValue::Null);
    }
    let mut pos = 0;
    let root_indent = lines[0].indent;
    let v = parse_block(&lines, &mut pos, root_indent)?;
    if pos != lines.len() {
        return err(lines[pos].no, "trailing content at lower indentation");
    }
    Ok(v)
}

fn parse_block(lines: &[Line<'_>], pos: &mut usize, indent: usize) -> Result<YamlValue, YamlError> {
    let first = &lines[*pos];
    if first.indent != indent {
        return err(
            first.no,
            format!("expected indentation {indent}, found {}", first.indent),
        );
    }
    if first.content.starts_with("- ") || first.content == "-" {
        parse_sequence(lines, pos, indent)
    } else {
        parse_mapping(lines, pos, indent)
    }
}

fn parse_sequence(
    lines: &[Line<'_>],
    pos: &mut usize,
    indent: usize,
) -> Result<YamlValue, YamlError> {
    let mut items = Vec::new();
    while *pos < lines.len() && lines[*pos].indent == indent {
        let line = &lines[*pos];
        if !(line.content.starts_with("- ") || line.content == "-") {
            break;
        }
        let rest = line.content[1..].trim_start();
        let no = line.no;
        *pos += 1;
        if rest.is_empty() {
            // Nested block on following lines.
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                items.push(parse_block(lines, pos, child_indent)?);
            } else {
                items.push(YamlValue::Null);
            }
        } else if let Some((key, val)) = split_mapping_entry(rest) {
            // Compact map item: `- key: value` possibly continued by keys
            // indented past the dash.
            let entry_indent = indent + (line.content.len() - rest.len());
            let mut pairs = Vec::new();
            push_entry(lines, pos, entry_indent, key, val, no, &mut pairs)?;
            while *pos < lines.len() && lines[*pos].indent == entry_indent {
                let l = &lines[*pos];
                match split_mapping_entry(l.content) {
                    Some((k, v)) => {
                        let lno = l.no;
                        *pos += 1;
                        push_entry(lines, pos, entry_indent, k, v, lno, &mut pairs)?;
                    }
                    None => return err(l.no, "expected `key: value` in compact map item"),
                }
            }
            items.push(YamlValue::Map(pairs));
        } else {
            items.push(parse_scalar(rest, no)?);
        }
    }
    if *pos < lines.len() && lines[*pos].indent > indent {
        return err(lines[*pos].no, "unexpected indentation after sequence");
    }
    Ok(YamlValue::Seq(items))
}

fn parse_mapping(
    lines: &[Line<'_>],
    pos: &mut usize,
    indent: usize,
) -> Result<YamlValue, YamlError> {
    let mut pairs: Vec<(String, YamlValue)> = Vec::new();
    while *pos < lines.len() && lines[*pos].indent == indent {
        let line = &lines[*pos];
        if line.content.starts_with("- ") || line.content == "-" {
            return err(line.no, "unexpected sequence item inside mapping");
        }
        let (key, val) = match split_mapping_entry(line.content) {
            Some(kv) => kv,
            None => return err(line.no, "expected `key: value`"),
        };
        if pairs.iter().any(|(k, _)| k == &key) {
            return err(line.no, format!("duplicate key {key:?}"));
        }
        let no = line.no;
        *pos += 1;
        push_entry(lines, pos, indent, key, val, no, &mut pairs)?;
    }
    if *pos < lines.len() && lines[*pos].indent > indent {
        return err(lines[*pos].no, "unexpected indentation");
    }
    Ok(YamlValue::Map(pairs))
}

/// Handle the value part of `key: <val?>`, consuming a nested block if the
/// value is empty, and push the pair.
fn push_entry(
    lines: &[Line<'_>],
    pos: &mut usize,
    indent: usize,
    key: String,
    val: Option<&str>,
    line_no: usize,
    pairs: &mut Vec<(String, YamlValue)>,
) -> Result<(), YamlError> {
    let value = match val {
        Some(v) => parse_scalar(v, line_no)?,
        None => {
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                parse_block(lines, pos, child_indent)?
            } else {
                YamlValue::Null
            }
        }
    };
    pairs.push((key, value));
    Ok(())
}

/// Split `key: value` / `key:`; returns `(key, Some(value) | None)`.
/// Respects quotes in the key.
fn split_mapping_entry(s: &str) -> Option<(String, Option<&str>)> {
    let (key_raw, rest) = split_on_colon(s)?;
    let key = unquote(key_raw.trim())?;
    let rest = rest.trim();
    if rest.is_empty() {
        Some((key, None))
    } else {
        Some((key, Some(rest)))
    }
}

/// Find the first `:` that terminates the key (outside quotes, followed by
/// space or end of line).
fn split_on_colon(s: &str) -> Option<(&str, &str)> {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b':' if !in_single && !in_double && (i + 1 == bytes.len() || bytes[i + 1] == b' ') => {
                return Some((&s[..i], &s[i + 1..]));
            }
            _ => {}
        }
    }
    None
}

fn unquote(s: &str) -> Option<String> {
    if s.len() >= 2 && s.starts_with('\'') && s.ends_with('\'') {
        Some(s[1..s.len() - 1].replace("''", "'"))
    } else if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        // Minimal escape handling for double quotes.
        let inner = &s[1..s.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next()? {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    other => {
                        out.push('\\');
                        out.push(other);
                    }
                }
            } else {
                out.push(c);
            }
        }
        Some(out)
    } else if s.starts_with('\'') || s.starts_with('"') {
        None // unbalanced quote
    } else {
        Some(s.to_string())
    }
}

fn parse_scalar(s: &str, line: usize) -> Result<YamlValue, YamlError> {
    let s = s.trim();
    // Flow sequence.
    if s.starts_with('[') {
        if !s.ends_with(']') {
            return err(line, "unterminated flow sequence");
        }
        let inner = &s[1..s.len() - 1];
        if inner.trim().is_empty() {
            return Ok(YamlValue::Seq(Vec::new()));
        }
        let mut items = Vec::new();
        for piece in split_flow_items(inner, line)? {
            items.push(parse_scalar(piece, line)?);
        }
        return Ok(YamlValue::Seq(items));
    }
    if s.starts_with('{') {
        return err(line, "flow mappings are not supported");
    }
    if s.starts_with('&') || s.starts_with('*') || s.starts_with('!') {
        return err(line, "anchors/aliases/tags are not supported");
    }
    if s.starts_with('|') || s.starts_with('>') {
        return err(line, "block scalars are not supported");
    }
    // Quoted string.
    if s.starts_with('\'') || s.starts_with('"') {
        return match unquote(s) {
            Some(v) => Ok(YamlValue::Str(v)),
            None => err(line, "unbalanced quotes"),
        };
    }
    // Plain scalar resolution.
    Ok(match s {
        "null" | "Null" | "NULL" | "~" => YamlValue::Null,
        "true" | "True" | "TRUE" => YamlValue::Bool(true),
        "false" | "False" | "FALSE" => YamlValue::Bool(false),
        _ => {
            if let Ok(i) = s.parse::<i64>() {
                YamlValue::Int(i)
            } else if let Ok(f) = s.parse::<f64>() {
                // Reject things like "nan" being accidentally numeric? Plain
                // "nan"/"inf" parse as floats in Rust; YAML spells them
                // `.nan`/`.inf`, so treat the Rust spellings as strings.
                if s.eq_ignore_ascii_case("nan")
                    || s.eq_ignore_ascii_case("inf")
                    || s.eq_ignore_ascii_case("-inf")
                    || s.eq_ignore_ascii_case("infinity")
                {
                    YamlValue::Str(s.to_string())
                } else {
                    YamlValue::Float(f)
                }
            } else {
                YamlValue::Str(s.to_string())
            }
        }
    })
}

fn split_flow_items(inner: &str, line: usize) -> Result<Vec<&str>, YamlError> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_single = false;
    let mut in_double = false;
    let mut start = 0;
    let bytes = inner.as_bytes();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'[' if !in_single && !in_double => depth += 1,
            b']' if !in_single && !in_double => {
                depth = depth.checked_sub(1).ok_or_else(|| YamlError {
                    line,
                    message: "unbalanced brackets".into(),
                })?;
            }
            b',' if !in_single && !in_double && depth == 0 => {
                items.push(inner[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_single || in_double {
        return err(line, "unbalanced brackets or quotes in flow sequence");
    }
    items.push(inner[start..].trim());
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_resolve_types() {
        let doc = parse(
            "a: 1\nb: -2\nc: 3.5\nd: true\ne: false\nf: null\ng: ~\nh: hello world\ni: '42'\nj: \"quoted\"\n",
        )
        .unwrap();
        assert_eq!(doc.get("a"), Some(&YamlValue::Int(1)));
        assert_eq!(doc.get("b"), Some(&YamlValue::Int(-2)));
        assert_eq!(doc.get("c"), Some(&YamlValue::Float(3.5)));
        assert_eq!(doc.get("d"), Some(&YamlValue::Bool(true)));
        assert_eq!(doc.get("e"), Some(&YamlValue::Bool(false)));
        assert_eq!(doc.get("f"), Some(&YamlValue::Null));
        assert_eq!(doc.get("g"), Some(&YamlValue::Null));
        assert_eq!(doc.get("h").unwrap().as_str(), Some("hello world"));
        assert_eq!(doc.get("i").unwrap().as_str(), Some("42"));
        assert_eq!(doc.get("j").unwrap().as_str(), Some("quoted"));
    }

    #[test]
    fn nested_mappings() {
        let doc = parse(
            "download:\n  workers: 3\n  endpoint: laads\npreprocess:\n  nodes: 10\n  workers_per_node: 8\n",
        )
        .unwrap();
        let dl = doc.get("download").unwrap();
        assert_eq!(dl.get("workers").unwrap().as_i64(), Some(3));
        assert_eq!(dl.get("endpoint").unwrap().as_str(), Some("laads"));
        let pp = doc.get("preprocess").unwrap();
        assert_eq!(pp.get("nodes").unwrap().as_i64(), Some(10));
    }

    #[test]
    fn block_sequences() {
        let doc = parse("products:\n  - MOD021KM\n  - MOD03\n  - MOD06_L2\n").unwrap();
        let seq = doc.get("products").unwrap().as_seq().unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0].as_str(), Some("MOD021KM"));
        assert_eq!(seq[2].as_str(), Some("MOD06_L2"));
    }

    #[test]
    fn flow_sequences() {
        let doc =
            parse("bands: [6, 7, 20, 28, 29, 31]\nnames: [a, 'b c', \"d\"]\nempty: []\n").unwrap();
        let bands = doc.get("bands").unwrap().as_seq().unwrap();
        assert_eq!(bands.len(), 6);
        assert_eq!(bands[3].as_i64(), Some(28));
        let names = doc.get("names").unwrap().as_seq().unwrap();
        assert_eq!(names[1].as_str(), Some("b c"));
        assert_eq!(doc.get("empty").unwrap().as_seq().unwrap().len(), 0);
    }

    #[test]
    fn sequence_of_maps() {
        let doc = parse(
            "steps:\n  - name: download\n    workers: 3\n  - name: preprocess\n    workers: 32\n",
        )
        .unwrap();
        let steps = doc.get("steps").unwrap().as_seq().unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].get("name").unwrap().as_str(), Some("download"));
        assert_eq!(steps[1].get("workers").unwrap().as_i64(), Some(32));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let doc = parse(
            "# campaign config\n\na: 1  # trailing comment\n\n# another\nb: 'kept # inside quotes'\n",
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("kept # inside quotes"));
    }

    #[test]
    fn document_marker_allowed_once() {
        let doc = parse("---\na: 1\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_i64(), Some(1));
        let e = parse("a: 1\n---\nb: 2\n").unwrap_err();
        assert!(e.message.contains("multiple documents"), "{e}");
    }

    #[test]
    fn duplicate_keys_rejected() {
        let e = parse("a: 1\na: 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn tabs_rejected() {
        let e = parse("a:\n\tb: 1\n").unwrap_err();
        assert!(e.message.contains("tabs"), "{e}");
    }

    #[test]
    fn unsupported_constructs_rejected() {
        assert!(parse("a: {b: 1}\n")
            .unwrap_err()
            .message
            .contains("flow mappings"));
        assert!(parse("a: &anchor 1\n")
            .unwrap_err()
            .message
            .contains("anchors"));
        assert!(parse("a: |\n  text\n")
            .unwrap_err()
            .message
            .contains("block scalars"));
        assert!(parse("a: [1, 2\n")
            .unwrap_err()
            .message
            .contains("unterminated"));
    }

    #[test]
    fn values_with_colons_in_strings() {
        let doc = parse("path: /lustre/orion:data\nurl: 'https://laads.gov:443/x'\n").unwrap();
        assert_eq!(
            doc.get("path").unwrap().as_str(),
            Some("/lustre/orion:data")
        );
        assert_eq!(
            doc.get("url").unwrap().as_str(),
            Some("https://laads.gov:443/x")
        );
    }

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse("").unwrap(), YamlValue::Null);
        assert_eq!(parse("# only comments\n\n").unwrap(), YamlValue::Null);
    }

    #[test]
    fn top_level_sequence() {
        let doc = parse("- 1\n- two\n- 3.0\n").unwrap();
        let seq = doc.as_seq().unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[1].as_str(), Some("two"));
    }

    #[test]
    fn deep_nesting() {
        let doc = parse("a:\n  b:\n    c:\n      d: deep\n").unwrap();
        let d = doc
            .get("a")
            .and_then(|v| v.get("b"))
            .and_then(|v| v.get("c"))
            .and_then(|v| v.get("d"))
            .unwrap();
        assert_eq!(d.as_str(), Some("deep"));
    }

    #[test]
    fn null_value_for_key_without_block() {
        let doc = parse("a:\nb: 1\n").unwrap();
        assert_eq!(doc.get("a"), Some(&YamlValue::Null));
        assert_eq!(doc.get("b").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn nan_inf_stay_strings() {
        let doc = parse("a: nan\nb: inf\nc: NaN\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_str(), Some("nan"));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("inf"));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("NaN"));
    }

    #[test]
    fn error_line_numbers_are_accurate() {
        let e = parse("a: 1\nb: 2\n  c: 3\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn as_helpers() {
        assert_eq!(YamlValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(YamlValue::Float(3.0).as_i64(), Some(3));
        assert_eq!(YamlValue::Float(3.5).as_i64(), None);
        assert_eq!(YamlValue::Str("x".into()).as_i64(), None);
        assert_eq!(YamlValue::Bool(true).as_bool(), Some(true));
    }
}

//! `eoml-simtime` — a deterministic discrete-event simulation engine.
//!
//! Virtual time is the backbone of the reproduction: the paper's scaling
//! experiments ran on a 36-node Slurm cluster and against NASA's LAADS
//! archive, neither of which exists here, so the cluster scheduler
//! (`eoml-cluster`), the network/transfer model (`eoml-transfer`) and parts
//! of the compute fabric (`eoml-compute`) all advance a shared virtual clock
//! instead of wall time.
//!
//! The engine is deliberately simple and callback-based:
//!
//! ```
//! use eoml_simtime::{SimTime, Simulation};
//! use std::time::Duration;
//!
//! // State threaded through all events.
//! struct Counter { fired: u32 }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.schedule_in(Duration::from_secs(5), |sim| {
//!     sim.state_mut().fired += 1;
//!     // events may schedule more events
//!     sim.schedule_in(Duration::from_secs(5), |sim| sim.state_mut().fired += 1);
//! });
//! sim.run();
//! assert_eq!(sim.state().fired, 2);
//! assert_eq!(sim.now(), SimTime::from_secs_f64(10.0));
//! ```
//!
//! Two properties the rest of the workspace relies on:
//!
//! * **Determinism** — ties at the same timestamp fire in scheduling order
//!   (a monotone sequence number breaks ties), so a simulation is a pure
//!   function of its inputs and seed.
//! * **Cancelability** — [`Simulation::cancel`] revokes a scheduled event;
//!   the fair-share network model reschedules completion events whenever the
//!   set of active flows changes.

pub mod clock;

pub use clock::{Clock, RealClock, VirtualClock};

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, stored as integer nanoseconds since simulation
/// start. Integer storage keeps event ordering exact (no float-compare
/// surprises) while [`SimTime::as_secs_f64`] is available for models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// From fractional seconds (must be non-negative and finite).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimTime seconds: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Whole nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference as a `Duration`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

/// Handle identifying a scheduled event; pass to [`Simulation::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

type EventFn<S> = Box<dyn FnOnce(&mut Simulation<S>)>;

struct Scheduled<S> {
    time: SimTime,
    seq: u64,
    action: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event simulation over user state `S`.
///
/// Events are `FnOnce(&mut Simulation<S>)` closures; they may read and write
/// the state, schedule further events, and cancel pending ones.
pub struct Simulation<S> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<S>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    executed: u64,
    state: S,
}

impl<S> Simulation<S> {
    /// New simulation at `t = 0` with the given state.
    pub fn new(state: S) -> Self {
        Self {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            executed: 0,
            state,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared state (immutable).
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Shared state (mutable).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consume the simulation, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedule `action` at absolute time `t` (must not be in the past).
    pub fn schedule_at(
        &mut self,
        t: SimTime,
        action: impl FnOnce(&mut Simulation<S>) + 'static,
    ) -> EventHandle {
        assert!(
            t >= self.now,
            "cannot schedule into the past ({t} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: t,
            seq,
            action: Box::new(action),
        });
        EventHandle(seq)
    }

    /// Schedule `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: Duration,
        action: impl FnOnce(&mut Simulation<S>) + 'static,
    ) -> EventHandle {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancel a pending event. Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        // Only events still present in the queue may be marked cancelled.
        if self.cancelled.contains(&handle.0) {
            return false;
        }
        if self.queue.iter().any(|e| e.seq == handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Execute the next event, advancing the clock. Returns `false` when the
    /// queue is exhausted.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.executed += 1;
            (ev.action)(self);
            return true;
        }
        false
    }

    /// Run until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run while events exist and the *next* event is at or before `t`;
    /// then advance the clock to exactly `t` (if it isn't already later).
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            // Drop cancelled events sitting at the head so peeking sees the
            // real next event.
            let next = loop {
                match self.queue.peek() {
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        let seq = self.queue.pop().expect("peeked").seq;
                        self.cancelled.remove(&seq);
                    }
                    other => break other.map(|e| e.time),
                }
            };
            match next {
                Some(nt) if nt <= t => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Run at most `max_events` events; returns how many ran.
    pub fn run_steps(&mut self, max_events: u64) -> u64 {
        let mut ran = 0;
        while ran < max_events && self.step() {
            ran += 1;
        }
        ran
    }
}

impl<S: fmt::Debug> fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("executed", &self.executed)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_secs_f64(3.0), |s| s.state_mut().push(3));
        sim.schedule_at(SimTime::from_secs_f64(1.0), |s| s.state_mut().push(1));
        sim.schedule_at(SimTime::from_secs_f64(2.0), |s| s.state_mut().push(2));
        sim.run();
        assert_eq!(sim.state(), &vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs_f64(3.0));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..10 {
            sim.schedule_at(t, move |s| s.state_mut().push(i));
        }
        sim.run();
        assert_eq!(sim.state(), &(0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(0u32);
        fn tick(sim: &mut Simulation<u32>) {
            *sim.state_mut() += 1;
            if *sim.state() < 5 {
                sim.schedule_in(Duration::from_secs(1), tick);
            }
        }
        sim.schedule_in(Duration::from_secs(1), tick);
        sim.run();
        assert_eq!(*sim.state(), 5);
        assert_eq!(sim.now(), SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let _keep = sim.schedule_at(SimTime::from_secs_f64(1.0), |s| s.state_mut().push(1));
        let drop_h = sim.schedule_at(SimTime::from_secs_f64(2.0), |s| s.state_mut().push(2));
        assert!(sim.cancel(drop_h));
        assert!(!sim.cancel(drop_h), "double-cancel returns false");
        sim.run();
        assert_eq!(sim.state(), &vec![1]);
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut sim = Simulation::new(());
        let h = sim.schedule_at(SimTime::from_secs_f64(1.0), |_| {});
        sim.run();
        assert!(!sim.cancel(h));
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_secs_f64(1.0), |s| s.state_mut().push(1));
        sim.schedule_at(SimTime::from_secs_f64(5.0), |s| s.state_mut().push(5));
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert_eq!(sim.state(), &vec![1]);
        assert_eq!(sim.now(), SimTime::from_secs_f64(3.0));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(sim.state(), &vec![1, 5]);
    }

    #[test]
    fn run_until_boundary_inclusive() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_at(SimTime::from_secs_f64(2.0), |s| *s.state_mut() += 1);
        sim.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(*sim.state(), 1, "event exactly at the boundary fires");
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut sim = Simulation::new(0u32);
        let h = sim.schedule_at(SimTime::from_secs_f64(1.0), |s| *s.state_mut() += 100);
        sim.schedule_at(SimTime::from_secs_f64(2.0), |s| *s.state_mut() += 1);
        sim.cancel(h);
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert_eq!(*sim.state(), 1);
    }

    #[test]
    fn run_steps_limits_execution() {
        let mut sim = Simulation::new(0u32);
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs_f64(i as f64), |s| *s.state_mut() += 1);
        }
        assert_eq!(sim.run_steps(4), 4);
        assert_eq!(*sim.state(), 4);
        assert_eq!(sim.pending(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(());
        sim.schedule_at(SimTime::from_secs_f64(5.0), |s| {
            s.schedule_at(SimTime::from_secs_f64(1.0), |_| {});
        });
        sim.run();
    }

    #[test]
    fn pending_accounts_for_cancelled() {
        let mut sim = Simulation::new(());
        let h1 = sim.schedule_at(SimTime::from_secs_f64(1.0), |_| {});
        let _h2 = sim.schedule_at(SimTime::from_secs_f64(2.0), |_| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(h1);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs_f64(1.5);
        let t2 = t + Duration::from_millis(500);
        assert_eq!(t2, SimTime::from_secs_f64(2.0));
        assert_eq!(t2 - t, Duration::from_millis(500));
        assert_eq!(
            t2.saturating_since(SimTime::from_secs_f64(10.0)),
            Duration::ZERO
        );
        assert_eq!(SimTime::from_nanos(1_000).as_nanos(), 1_000);
        assert_eq!(format!("{}", SimTime::from_secs_f64(2.0)), "t+2.000000s");
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<(u64, u32)> {
            let mut sim = Simulation::new(Vec::new());
            for i in 0..100u32 {
                let t = SimTime::from_nanos(((i * 7919) % 50) as u64 * 1_000_000);
                sim.schedule_at(t, move |s| {
                    let now = s.now().as_nanos();
                    s.state_mut().push((now, i));
                });
            }
            sim.run();
            sim.into_state()
        }
        assert_eq!(run_once(), run_once());
    }
}

//! Clock abstraction over real and virtual time.
//!
//! Components that run in both modes — the Parsl-like executor executes real
//! kernels on real threads locally, but runs the same orchestration logic in
//! virtual time for at-scale experiments — are written against [`Clock`] and
//! receive either a [`RealClock`] or a [`VirtualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::SimTime;

/// A monotone clock reporting elapsed seconds since its epoch.
pub trait Clock: Send + Sync {
    /// Seconds since the clock's epoch.
    fn elapsed(&self) -> Duration;
}

/// Wall-clock time from a fixed `Instant` origin.
#[derive(Debug, Clone)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose epoch is "now".
    pub fn start_now() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::start_now()
    }
}

impl Clock for RealClock {
    fn elapsed(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A manually advanced clock, shareable across threads. The simulation loop
/// publishes its current [`SimTime`] here so observers (telemetry samplers,
/// progress displays) can read a consistent virtual "now".
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// New clock at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish the current virtual time (monotonicity is asserted).
    pub fn set(&self, t: SimTime) {
        let prev = self.nanos.swap(t.as_nanos(), Ordering::Release);
        debug_assert!(prev <= t.as_nanos(), "virtual clock moved backwards");
    }

    /// Read the current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::Acquire))
    }
}

impl Clock for VirtualClock {
    fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_advances() {
        let c = RealClock::start_now();
        let a = c.elapsed();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.elapsed();
        assert!(b > a);
    }

    #[test]
    fn virtual_clock_set_and_read() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.set(SimTime::from_secs_f64(12.5));
        assert_eq!(c.now(), SimTime::from_secs_f64(12.5));
        assert_eq!(c.elapsed(), Duration::from_secs_f64(12.5));
    }

    #[test]
    fn virtual_clock_shared_across_threads() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            c2.set(SimTime::from_secs_f64(3.0));
        });
        h.join().unwrap();
        assert_eq!(c.now(), SimTime::from_secs_f64(3.0));
    }
}

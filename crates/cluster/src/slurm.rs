//! A Slurm-like block provider.
//!
//! Parsl's `SlurmProvider` requests *blocks* of nodes from the batch
//! scheduler and starts workers on them. This module models the part the
//! paper measures — allocation latency (node spin-up is part of the 32.8 s
//! preprocessing latency in Fig. 7) and node accounting — while excluding
//! batch-queue wait time, exactly as the paper's measurements do ("excludes
//! the queue wait time").

use eoml_simtime::Simulation;
use eoml_util::rng::{Rng64, Xoshiro256};
use std::collections::HashMap;
use std::time::Duration;

eoml_util::typed_id!(
    /// Identifier of an allocated block of nodes.
    BlockId,
    "block"
);

/// Errors from block requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlurmError {
    /// Not enough free nodes.
    InsufficientNodes {
        /// Nodes requested.
        requested: usize,
        /// Nodes currently free.
        free: usize,
    },
    /// Unknown block id (double release).
    UnknownBlock,
}

impl std::fmt::Display for SlurmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlurmError::InsufficientNodes { requested, free } => {
                write!(f, "requested {requested} nodes but only {free} free")
            }
            SlurmError::UnknownBlock => write!(f, "unknown block id"),
        }
    }
}

impl std::error::Error for SlurmError {}

/// The provider: tracks free nodes and grants blocks after a startup delay.
#[derive(Debug)]
pub struct SlurmProvider {
    total_nodes: usize,
    free: Vec<usize>,
    blocks: HashMap<u64, Vec<usize>>,
    next_id: u64,
    /// Mean node spin-up latency.
    pub startup_mean: Duration,
    rng: Xoshiro256,
}

impl SlurmProvider {
    /// Provider over `total_nodes` nodes with ~2 s mean block startup.
    pub fn new(total_nodes: usize, seed: u64) -> Self {
        Self {
            total_nodes,
            free: (0..total_nodes).rev().collect(),
            blocks: HashMap::new(),
            next_id: 1,
            startup_mean: Duration::from_secs(2),
            rng: Xoshiro256::seed_from(seed ^ 0x0051_D277),
        }
    }

    /// Number of currently free nodes.
    pub fn free_nodes(&self) -> usize {
        self.free.len()
    }

    /// Number of nodes in allocated blocks.
    pub fn allocated_nodes(&self) -> usize {
        self.total_nodes - self.free.len()
    }

    /// Synchronously reserve `n` nodes; returns the block id and node list.
    /// Use [`request_block`] for the full async grant with startup latency.
    pub fn allocate(&mut self, n: usize) -> Result<(BlockId, Vec<usize>), SlurmError> {
        if self.free.len() < n {
            return Err(SlurmError::InsufficientNodes {
                requested: n,
                free: self.free.len(),
            });
        }
        let nodes: Vec<usize> = (0..n).map(|_| self.free.pop().expect("checked")).collect();
        let id = self.next_id;
        self.next_id += 1;
        self.blocks.insert(id, nodes.clone());
        Ok((BlockId::from_raw(id), nodes))
    }

    /// Release a block's nodes back to the free pool.
    pub fn release(&mut self, block: BlockId) -> Result<(), SlurmError> {
        let nodes = self
            .blocks
            .remove(&block.raw())
            .ok_or(SlurmError::UnknownBlock)?;
        self.free.extend(nodes);
        Ok(())
    }

    /// Sample a startup latency for a new block (lognormal, ±40 %).
    pub fn sample_startup(&mut self) -> Duration {
        Duration::from_secs_f64(
            self.rng
                .lognormal_mean_cv(self.startup_mean.as_secs_f64(), 0.4),
        )
    }
}

/// Asynchronously request a block of `n` nodes: reserved immediately,
/// granted (callback) after the sampled startup latency — mirroring the
/// paper's "Parsl Slurm provider automatically allocates blocks of compute
/// nodes".
pub fn request_block<S: 'static>(
    sim: &mut Simulation<S>,
    provider: impl Fn(&mut S) -> &mut SlurmProvider + Copy + 'static,
    n: usize,
    on_granted: impl FnOnce(&mut Simulation<S>, BlockId, Vec<usize>) + 'static,
) -> Result<(), SlurmError> {
    let (id, nodes) = provider(sim.state_mut()).allocate(n)?;
    let delay = provider(sim.state_mut()).sample_startup();
    sim.schedule_in(delay, move |sim| {
        on_granted(sim, id, nodes);
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut p = SlurmProvider::new(10, 1);
        assert_eq!(p.free_nodes(), 10);
        let (b1, n1) = p.allocate(4).unwrap();
        assert_eq!(n1.len(), 4);
        assert_eq!(p.free_nodes(), 6);
        let (b2, n2) = p.allocate(6).unwrap();
        assert_eq!(p.free_nodes(), 0);
        // Nodes are disjoint.
        for n in &n1 {
            assert!(!n2.contains(n));
        }
        assert_eq!(
            p.allocate(1).unwrap_err(),
            SlurmError::InsufficientNodes {
                requested: 1,
                free: 0
            }
        );
        p.release(b1).unwrap();
        assert_eq!(p.free_nodes(), 4);
        p.release(b2).unwrap();
        assert_eq!(p.free_nodes(), 10);
        assert_eq!(p.release(b2).unwrap_err(), SlurmError::UnknownBlock);
    }

    #[test]
    fn startup_latency_is_positive_and_deterministic() {
        let mut a = SlurmProvider::new(4, 7);
        let mut b = SlurmProvider::new(4, 7);
        for _ in 0..10 {
            let da = a.sample_startup();
            let db = b.sample_startup();
            assert_eq!(da, db);
            assert!(da > Duration::ZERO);
            assert!(da < Duration::from_secs(20));
        }
    }

    #[test]
    fn async_request_grants_after_delay() {
        struct St {
            slurm: SlurmProvider,
            granted: Option<(BlockId, Vec<usize>, f64)>,
        }
        let mut sim = Simulation::new(St {
            slurm: SlurmProvider::new(8, 3),
            granted: None,
        });
        request_block(
            &mut sim,
            |s: &mut St| &mut s.slurm,
            3,
            |sim, id, nodes| {
                let t = sim.now().as_secs_f64();
                sim.state_mut().granted = Some((id, nodes, t));
            },
        )
        .unwrap();
        // Reserved immediately.
        assert_eq!(sim.state().slurm.free_nodes(), 5);
        assert!(sim.state().granted.is_none());
        sim.run();
        let (_, nodes, t) = sim.state().granted.clone().expect("granted");
        assert_eq!(nodes.len(), 3);
        assert!(t > 0.5 && t < 10.0, "startup at {t}");
    }

    #[test]
    fn request_more_than_cluster_fails_fast() {
        struct St {
            slurm: SlurmProvider,
        }
        let mut sim = Simulation::new(St {
            slurm: SlurmProvider::new(2, 3),
        });
        let err = request_block(&mut sim, |s: &mut St| &mut s.slurm, 5, |_, _, _| {}).unwrap_err();
        assert_eq!(
            err,
            SlurmError::InsufficientNodes {
                requested: 5,
                free: 2
            }
        );
    }
}

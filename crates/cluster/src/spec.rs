//! Static cluster description.

use eoml_util::units::{ByteSize, Rate};

/// One compute node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// CPU cores (Defiant: 64-core AMD EPYC 7662).
    pub cores: usize,
    /// Main memory.
    pub memory: ByteSize,
    /// GPUs (Defiant: 4 × AMD MI100; unused by the CPU preprocessing
    /// pipeline but part of the inventory).
    pub gpus: usize,
}

/// A whole cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name.
    pub name: String,
    /// Number of identical nodes.
    pub nodes: usize,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Interconnect bandwidth per node.
    pub interconnect: Rate,
    /// Shared (Lustre) file system capacity.
    pub fs_capacity: ByteSize,
}

impl ClusterSpec {
    /// OLCF ACE Defiant, as described in the paper §IV: 36 nodes, 64-core
    /// EPYC 7662, 256 GB DDR4, 4 × MI100, 12.5 GB/s Slingshot-10, 1.6 PB
    /// Lustre.
    pub fn defiant() -> Self {
        Self {
            name: "ace-defiant".into(),
            nodes: 36,
            node: NodeSpec {
                cores: 64,
                memory: ByteSize::gb(256),
                gpus: 4,
            },
            interconnect: Rate::gbit_per_sec(100.0),
            fs_capacity: ByteSize::tb(1600),
        }
    }

    /// A small cluster for tests.
    pub fn tiny(nodes: usize) -> Self {
        Self {
            name: "tiny".into(),
            nodes,
            node: NodeSpec {
                cores: 8,
                memory: ByteSize::gb(32),
                gpus: 0,
            },
            interconnect: Rate::gbit_per_sec(10.0),
            fs_capacity: ByteSize::tb(10),
        }
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node.cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defiant_matches_paper() {
        let d = ClusterSpec::defiant();
        assert_eq!(d.nodes, 36);
        assert_eq!(d.node.cores, 64);
        assert_eq!(d.node.memory, ByteSize::gb(256));
        assert_eq!(d.node.gpus, 4);
        assert_eq!(d.total_cores(), 2304);
        assert!((d.interconnect.as_bytes_per_sec() - 12.5e9).abs() < 1.0);
        assert_eq!(d.fs_capacity, ByteSize::tb(1600));
    }

    #[test]
    fn tiny_cluster() {
        let t = ClusterSpec::tiny(3);
        assert_eq!(t.nodes, 3);
        assert_eq!(t.total_cores(), 24);
    }
}

//! Worker budgets carved from the cluster's node/core inventory.
//!
//! The multi-tenant campaign service bounds each tenant to a worker budget
//! so a whale campaign cannot monopolise the (virtual) cluster. Budgets
//! are denominated in *workers* — one worker occupies one core in the
//! [`crate::spec::ClusterSpec`] node/core model — and every admitted
//! campaign run leases its peak worker demand from a shared [`BudgetPool`]
//! whose capacity is the cluster's total core count. Leases are blocking:
//! admission waits until enough cores free up, so the sum of concurrently
//! leased workers can never exceed the cluster, and the pool records the
//! high-water mark so tests can assert the ceiling held.

use crate::spec::ClusterSpec;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// The smallest useful campaign allocation: one download worker, one
/// preprocess worker, one inference worker.
pub const MIN_WORKER_BUDGET: usize = 3;

impl ClusterSpec {
    /// Carve a per-tenant worker budget as a fraction of the cluster's
    /// total cores, clamped to at least [`MIN_WORKER_BUDGET`] (a campaign
    /// needs one worker in each concurrent stage) and at most the whole
    /// cluster.
    pub fn worker_budget(&self, fraction: f64) -> usize {
        let cores = self.total_cores();
        let carved = (cores as f64 * fraction.clamp(0.0, 1.0)).floor() as usize;
        carved.clamp(MIN_WORKER_BUDGET.min(cores), cores)
    }
}

/// Mutable pool book-keeping behind the lock.
#[derive(Debug)]
struct PoolState {
    in_use: usize,
    peak_in_use: usize,
    /// Live leases (grants minus drops) — the ops plane's outstanding
    /// gauge.
    outstanding: usize,
    /// Leases ever granted.
    leases_granted: u64,
    /// Wall-clock seconds callers spent blocked in `acquire`, summed.
    total_wait_s: f64,
}

/// A shared, blocking pool of worker cores.
#[derive(Debug)]
pub struct BudgetPool {
    capacity: usize,
    state: Mutex<PoolState>,
    freed: Condvar,
}

/// Error for a lease request no pool state could ever satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Workers requested.
    pub requested: usize,
    /// Pool capacity.
    pub capacity: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested {} workers exceeds pool capacity {}",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for BudgetExceeded {}

impl BudgetPool {
    /// A pool with `capacity` worker cores.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(PoolState {
                in_use: 0,
                peak_in_use: 0,
                outstanding: 0,
                leases_granted: 0,
                total_wait_s: 0.0,
            }),
            freed: Condvar::new(),
        }
    }

    /// A pool sized to the cluster's total cores.
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        Self::new(spec.total_cores())
    }

    /// Total worker cores in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Worker cores currently leased out.
    pub fn in_use(&self) -> usize {
        self.state.lock().expect("budget pool poisoned").in_use
    }

    /// Highest concurrent lease total ever observed — the number tests
    /// compare against the cluster ceiling.
    pub fn peak_in_use(&self) -> usize {
        self.state.lock().expect("budget pool poisoned").peak_in_use
    }

    /// Live leases outstanding (granted and not yet dropped).
    pub fn outstanding(&self) -> usize {
        self.state.lock().expect("budget pool poisoned").outstanding
    }

    /// Leases ever granted.
    pub fn leases_granted(&self) -> u64 {
        self.state
            .lock()
            .expect("budget pool poisoned")
            .leases_granted
    }

    /// Total wall-clock seconds callers have spent blocked waiting for
    /// capacity, across all grants.
    pub fn total_wait_seconds(&self) -> f64 {
        self.state
            .lock()
            .expect("budget pool poisoned")
            .total_wait_s
    }

    /// Lease `workers` cores, blocking until the pool can cover them.
    /// Requests larger than the whole pool fail immediately — they would
    /// deadlock every caller behind them.
    pub fn acquire(&self, workers: usize) -> Result<BudgetLease<'_>, BudgetExceeded> {
        if workers > self.capacity {
            return Err(BudgetExceeded {
                requested: workers,
                capacity: self.capacity,
            });
        }
        let entered = Instant::now();
        let mut state = self.state.lock().expect("budget pool poisoned");
        while state.in_use + workers > self.capacity {
            state = self.freed.wait(state).expect("budget pool poisoned");
        }
        let wait_s = entered.elapsed().as_secs_f64();
        state.in_use += workers;
        state.peak_in_use = state.peak_in_use.max(state.in_use);
        state.outstanding += 1;
        state.leases_granted += 1;
        state.total_wait_s += wait_s;
        Ok(BudgetLease {
            pool: self,
            workers,
            wait_s,
        })
    }
}

/// A live lease of worker cores; returns them to the pool on drop.
#[derive(Debug)]
pub struct BudgetLease<'a> {
    pool: &'a BudgetPool,
    workers: usize,
    wait_s: f64,
}

impl BudgetLease<'_> {
    /// Workers covered by this lease.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Wall-clock seconds the acquiring caller spent blocked before
    /// this lease was granted.
    pub fn wait_seconds(&self) -> f64 {
        self.wait_s
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        let mut state = self.pool.state.lock().expect("budget pool poisoned");
        state.in_use -= self.workers;
        state.outstanding = state.outstanding.saturating_sub(1);
        drop(state);
        self.pool.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn worker_budget_carves_fractions_with_floor_and_ceiling() {
        let spec = ClusterSpec::tiny(4); // 32 cores
        assert_eq!(spec.worker_budget(0.25), 8);
        assert_eq!(spec.worker_budget(0.0), MIN_WORKER_BUDGET);
        assert_eq!(spec.worker_budget(1.0), 32);
        assert_eq!(spec.worker_budget(7.0), 32); // clamped fraction
        assert_eq!(ClusterSpec::defiant().worker_budget(0.01), 23);
    }

    #[test]
    fn leases_block_at_capacity_and_release_on_drop() {
        let pool = BudgetPool::new(8);
        let a = pool.acquire(5).unwrap();
        assert_eq!(pool.in_use(), 5);
        let b = pool.acquire(3).unwrap();
        assert_eq!(pool.in_use(), 8);
        assert_eq!(pool.peak_in_use(), 8);
        drop(a);
        assert_eq!(pool.in_use(), 3);
        drop(b);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak_in_use(), 8);
        assert_eq!(
            pool.acquire(9).unwrap_err(),
            BudgetExceeded {
                requested: 9,
                capacity: 8
            }
        );
    }

    #[test]
    fn pool_accounts_outstanding_grants_and_wait_time() {
        let pool = BudgetPool::new(8);
        assert_eq!(pool.outstanding(), 0);
        let a = pool.acquire(8).unwrap();
        assert_eq!(pool.outstanding(), 1);
        assert_eq!(pool.leases_granted(), 1);
        // An uncontended grant waits (essentially) no time.
        assert!(a.wait_seconds() < 1.0);

        // A contended acquire measures real blocking time.
        let waited = std::thread::scope(|scope| {
            let handle = scope.spawn(|| pool.acquire(4).unwrap().wait_seconds());
            std::thread::sleep(std::time::Duration::from_millis(30));
            drop(a);
            handle.join().unwrap()
        });
        assert!(waited >= 0.02, "waited {waited}s");
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.leases_granted(), 2);
        assert!(pool.total_wait_seconds() >= waited);
    }

    #[test]
    fn concurrent_leases_never_exceed_capacity() {
        let pool = BudgetPool::new(16);
        let over = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for i in 0..8 {
                let pool = &pool;
                let over = &over;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let lease = pool.acquire(3 + i % 4).unwrap();
                        if pool.in_use() > pool.capacity() {
                            over.fetch_add(1, Ordering::Relaxed);
                        }
                        drop(lease);
                    }
                });
            }
        });
        assert_eq!(over.load(Ordering::Relaxed), 0);
        assert!(pool.peak_in_use() <= 16);
        assert!(pool.peak_in_use() >= 6, "threads should have overlapped");
        assert_eq!(pool.in_use(), 0);
    }
}

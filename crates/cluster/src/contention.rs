//! The calibrated performance model behind the paper's scaling curves.
//!
//! Two contention mechanisms shape Figs. 4–5 and Table I:
//!
//! 1. **On-node saturation.** Preprocessing is memory-bandwidth-bound, so a
//!    node's aggregate throughput saturates as workers are added. A
//!    saturating exponential
//!    `T(w) = T_max · (1 − e^(−w/w₀)) · decline(w)` reproduces the paper's
//!    single-node column remarkably well with `T_max ≈ 38.8` tiles/s and
//!    `w₀ ≈ 3.1`: predicted {1: 10.6, 2: 18.3, 4: 27.9, 8: 35.6, 16: 38.6}
//!    versus measured {10.52, 18.10, 25.01, 36.59, 38.74}. Beyond ~16
//!    workers a mild scheduling-overhead decline sets in (measured 37.95 at
//!    32, 37.34 at 64).
//! 2. **Shared-file-system contention.** Every node reads granules from and
//!    writes NetCDF to the same Lustre file system, so node scaling is
//!    near-linear with a small droop: `fs(n) = 1 / (1 + β·(n−1))` with
//!    `β ≈ 0.03` matches the measured 10-node efficiency of ≈74 %
//!    (267.44 tiles/s vs the 360 tiles/s a perfectly linear scale-up of
//!    36.05 would give).

/// Tunable throughput model; units are "tiles per second" to match the
/// paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionModel {
    /// Asymptotic single-node throughput, tiles/s.
    pub tmax: f64,
    /// Worker-count scale of the saturating exponential.
    pub w0: f64,
    /// Per-worker decline rate beyond `decline_start` workers.
    pub decline: f64,
    /// Worker count where the decline begins.
    pub decline_start: f64,
    /// Shared-file-system contention coefficient β.
    pub fs_beta: f64,
    /// Coefficient of variation of per-task work (ocean/land mix and
    /// day/night band availability make granules uneven — §III(2)).
    pub work_cv: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        Self::defiant()
    }
}

impl ContentionModel {
    /// Calibration against the paper's Table I.
    pub fn defiant() -> Self {
        Self {
            tmax: 38.8,
            w0: 3.1,
            decline: 0.0006,
            decline_start: 16.0,
            fs_beta: 0.030,
            work_cv: 0.12,
        }
    }

    /// An idealized contention-free machine (for ablation benches).
    pub fn ideal(per_worker_rate: f64) -> Self {
        Self {
            tmax: f64::INFINITY,
            w0: f64::INFINITY,
            decline: 0.0,
            decline_start: f64::INFINITY,
            fs_beta: 0.0,
            work_cv: 0.0,
        }
        .with_linear_rate(per_worker_rate)
    }

    fn with_linear_rate(mut self, r: f64) -> Self {
        // An infinite w0 makes 1−e^(−w/w0) → w/w0; pick tmax/w0 = r.
        self.w0 = 1e9;
        self.tmax = r * 1e9;
        self
    }

    /// Aggregate throughput of one node running `workers` concurrently
    /// active workers, tiles/s (before file-system contention).
    pub fn node_throughput(&self, workers: usize) -> f64 {
        if workers == 0 {
            return 0.0;
        }
        let w = workers as f64;
        let base = self.tmax * (1.0 - (-w / self.w0).exp());
        let decline = if w > self.decline_start {
            1.0 / (1.0 + self.decline * (w - self.decline_start))
        } else {
            1.0
        };
        base * decline
    }

    /// File-system slowdown factor with `active_nodes` nodes hitting the
    /// shared file system.
    pub fn fs_factor(&self, active_nodes: usize) -> f64 {
        if active_nodes <= 1 {
            return 1.0;
        }
        1.0 / (1.0 + self.fs_beta * (active_nodes as f64 - 1.0))
    }

    /// Effective per-worker rate (tiles/s) on a node with `workers` active
    /// workers while `active_nodes` nodes are busy cluster-wide.
    pub fn per_worker_rate(&self, workers: usize, active_nodes: usize) -> f64 {
        if workers == 0 {
            return 0.0;
        }
        self.node_throughput(workers) * self.fs_factor(active_nodes) / workers as f64
    }

    /// Predicted aggregate throughput for `nodes` nodes × `workers_per_node`
    /// workers, tiles/s — the quantity Table I reports.
    pub fn cluster_throughput(&self, nodes: usize, workers_per_node: usize) -> f64 {
        nodes as f64 * self.node_throughput(workers_per_node) * self.fs_factor(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table I, strong scaling, single-node worker column.
    const TABLE1_WORKERS: [(usize, f64); 7] = [
        (1, 10.52),
        (2, 18.10),
        (4, 25.01),
        (8, 36.59),
        (16, 38.74),
        (32, 37.95),
        (64, 37.34),
    ];

    /// Paper Table I, strong scaling, node column (8 workers per node).
    const TABLE1_NODES: [(usize, f64); 10] = [
        (1, 36.05),
        (2, 73.25),
        (3, 98.73),
        (4, 135.42),
        (5, 177.69),
        (6, 192.32),
        (7, 196.70),
        (8, 216.80),
        (9, 264.13),
        (10, 267.44),
    ];

    #[test]
    fn worker_curve_matches_table1_within_15_percent() {
        let m = ContentionModel::defiant();
        for (w, measured) in TABLE1_WORKERS {
            let predicted = m.node_throughput(w);
            let err = (predicted - measured).abs() / measured;
            assert!(
                err < 0.15,
                "w={w}: predicted {predicted:.2}, measured {measured}, err {:.1}%",
                err * 100.0
            );
        }
    }

    #[test]
    fn node_curve_matches_table1_within_20_percent() {
        let m = ContentionModel::defiant();
        for (n, measured) in TABLE1_NODES {
            let predicted = m.cluster_throughput(n, 8);
            let err = (predicted - measured).abs() / measured;
            assert!(
                err < 0.20,
                "n={n}: predicted {predicted:.2}, measured {measured}, err {:.1}%",
                err * 100.0
            );
        }
    }

    #[test]
    fn headline_throughput_is_reproduced() {
        // 12,000 tiles in 44 s on 10 nodes × 8 workers ⇒ ≈273 tiles/s.
        let m = ContentionModel::defiant();
        let t = m.cluster_throughput(10, 8);
        let headline = 12_000.0 / 44.0;
        assert!(
            (t - headline).abs() / headline < 0.10,
            "predicted {t:.1} vs headline {headline:.1}"
        );
    }

    #[test]
    fn throughput_saturates_with_workers() {
        let m = ContentionModel::defiant();
        let t8 = m.node_throughput(8);
        let t16 = m.node_throughput(16);
        let t64 = m.node_throughput(64);
        // Doubling 8→16 gains little; 16→64 declines slightly.
        assert!(t16 / t8 < 1.15);
        assert!(t64 <= t16);
        assert!(t64 > 0.9 * t16);
    }

    #[test]
    fn node_scaling_is_near_linear() {
        let m = ContentionModel::defiant();
        let t1 = m.cluster_throughput(1, 8);
        let t10 = m.cluster_throughput(10, 8);
        let efficiency = t10 / (10.0 * t1);
        assert!(
            (0.70..0.90).contains(&efficiency),
            "10-node efficiency {efficiency}"
        );
    }

    #[test]
    fn per_worker_rate_decreases_with_crowding() {
        let m = ContentionModel::defiant();
        assert!(m.per_worker_rate(1, 1) > m.per_worker_rate(8, 1));
        assert!(m.per_worker_rate(8, 1) > m.per_worker_rate(8, 10));
        assert_eq!(m.per_worker_rate(0, 1), 0.0);
    }

    #[test]
    fn second_node_unlocks_throughput_like_fig4a() {
        // The Fig. 4a jump at 128 workers (64/node on two nodes vs 128 on
        // one is not the comparison — it's 128 workers spread over two
        // nodes): two nodes at 64 workers each ≈ 2× one node.
        let m = ContentionModel::defiant();
        let one_node_64 = m.cluster_throughput(1, 64);
        let two_nodes_64 = m.cluster_throughput(2, 64);
        assert!(
            two_nodes_64 > 1.8 * one_node_64,
            "{two_nodes_64} vs {one_node_64}"
        );
        // Matches the measured 128-worker point (71.01 tiles/s) within 15 %.
        assert!(
            (two_nodes_64 - 71.01).abs() / 71.01 < 0.15,
            "{two_nodes_64}"
        );
    }

    #[test]
    fn ideal_model_is_linear() {
        let m = ContentionModel::ideal(10.0);
        assert!((m.node_throughput(1) - 10.0).abs() < 1e-6);
        assert!((m.node_throughput(8) - 80.0).abs() < 1e-3);
        assert_eq!(m.fs_factor(10), 1.0);
    }
}

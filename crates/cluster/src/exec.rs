//! Fluid task execution on the virtual cluster.
//!
//! Tasks are units of preprocessing/inference work measured in tiles. An
//! active task occupies one worker slot on a node and progresses at the
//! contention model's per-worker rate, which changes whenever any task
//! starts or finishes anywhere on the cluster — so, exactly like the
//! transfer flow network, progress is advanced and rates recomputed on
//! every change, and a single "next completion" event is kept scheduled.

use crate::contention::ContentionModel;
use crate::spec::ClusterSpec;
use eoml_simtime::{EventHandle, SimTime, Simulation};
use eoml_util::rng::{Rng64, Xoshiro256};
use std::collections::HashMap;

eoml_util::typed_id!(
    /// Identifier of a running cluster task.
    TaskId,
    "ctask"
);

/// Implemented by simulation states embedding a [`ClusterModel`].
pub trait HasCluster: Sized + 'static {
    /// Access the embedded cluster.
    fn cluster(&mut self) -> &mut ClusterModel<Self>;
}

type DoneFn<S> = Box<dyn FnOnce(&mut Simulation<S>)>;

struct Task<S> {
    node: usize,
    remaining: f64, // tiles
    rate: f64,      // tiles/s
    on_complete: Option<DoneFn<S>>,
}

/// The running cluster: occupancy, active tasks, statistics.
pub struct ClusterModel<S> {
    spec: ClusterSpec,
    model: ContentionModel,
    /// Active workers per node.
    occupancy: Vec<usize>,
    tasks: HashMap<u64, Task<S>>,
    next_id: u64,
    completion_event: Option<EventHandle>,
    last_progress: SimTime,
    rng: Xoshiro256,
    tiles_done: f64,
}

impl<S> std::fmt::Debug for ClusterModel<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterModel")
            .field("cluster", &self.spec.name)
            .field("active_tasks", &self.tasks.len())
            .field("tiles_done", &self.tiles_done)
            .finish()
    }
}

impl<S> ClusterModel<S> {
    /// A cluster with the given spec, contention model and seed.
    pub fn new(spec: ClusterSpec, model: ContentionModel, seed: u64) -> Self {
        let nodes = spec.nodes;
        Self {
            spec,
            model,
            occupancy: vec![0; nodes],
            tasks: HashMap::new(),
            next_id: 1,
            completion_event: None,
            last_progress: SimTime::ZERO,
            rng: Xoshiro256::seed_from(seed ^ 0x0C10_57E2),
            tiles_done: 0.0,
        }
    }

    /// The cluster's static description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The contention model in effect.
    pub fn model(&self) -> &ContentionModel {
        &self.model
    }

    /// Number of active workers on `node`.
    pub fn node_occupancy(&self, node: usize) -> usize {
        self.occupancy[node]
    }

    /// Number of nodes with at least one active worker.
    pub fn active_nodes(&self) -> usize {
        self.occupancy.iter().filter(|&&w| w > 0).count()
    }

    /// Total active workers.
    pub fn active_workers(&self) -> usize {
        self.occupancy.iter().sum()
    }

    /// Tiles completed so far (including fractional progress of finished
    /// tasks only).
    pub fn tiles_done(&self) -> f64 {
        self.tiles_done
    }

    fn progress_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_progress).as_secs_f64();
        if dt > 0.0 {
            for t in self.tasks.values_mut() {
                t.remaining = (t.remaining - t.rate * dt).max(0.0);
            }
        }
        self.last_progress = now;
    }

    fn recompute_rates(&mut self) {
        let active_nodes = self.active_nodes();
        for t in self.tasks.values_mut() {
            t.rate = self
                .model
                .per_worker_rate(self.occupancy[t.node], active_nodes);
        }
    }

    fn next_completion_in(&self) -> Option<std::time::Duration> {
        self.tasks
            .values()
            .filter(|t| t.rate > 0.0)
            .map(|t| t.remaining / t.rate)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
            .map(std::time::Duration::from_secs_f64)
    }
}

const COMPLETE_EPS: f64 = 1e-6;

/// Start a task of `work_tiles` tiles on `node`, occupying one worker slot.
/// Per-task work jitter (the contention model's `work_cv`) is applied here.
/// Panics if the node is out of range or already fully occupied (one worker
/// per core).
pub fn submit_task<S: HasCluster>(
    sim: &mut Simulation<S>,
    node: usize,
    work_tiles: f64,
    on_complete: impl FnOnce(&mut Simulation<S>) + 'static,
) -> TaskId {
    let now = sim.now();
    let cl = sim.state_mut().cluster();
    assert!(node < cl.spec.nodes, "node {node} out of range");
    assert!(
        cl.occupancy[node] < cl.spec.node.cores,
        "node {node} has no free cores"
    );
    let id = cl.next_id;
    cl.next_id += 1;
    let work = if cl.model.work_cv > 0.0 {
        cl.rng.lognormal_mean_cv(work_tiles, cl.model.work_cv)
    } else {
        work_tiles
    };
    cl.progress_to(now);
    cl.occupancy[node] += 1;
    cl.tasks.insert(
        id,
        Task {
            node,
            remaining: work.max(1e-9),
            rate: 0.0,
            on_complete: Some(Box::new(on_complete)),
        },
    );
    cl.recompute_rates();
    reschedule::<S>(sim);
    TaskId::from_raw(id)
}

fn reschedule<S: HasCluster>(sim: &mut Simulation<S>) {
    let now = sim.now();
    let cl = sim.state_mut().cluster();
    if let Some(h) = cl.completion_event.take() {
        sim.cancel(h);
    }
    let cl = sim.state_mut().cluster();
    if let Some(dt) = cl.next_completion_in() {
        let h = sim.schedule_at(now + dt, complete_due::<S>);
        sim.state_mut().cluster().completion_event = Some(h);
    }
}

fn complete_due<S: HasCluster>(sim: &mut Simulation<S>) {
    let now = sim.now();
    let cl = sim.state_mut().cluster();
    cl.completion_event = None;
    cl.progress_to(now);
    let done: Vec<u64> = cl
        .tasks
        .iter()
        .filter(|(_, t)| t.remaining <= COMPLETE_EPS)
        .map(|(&id, _)| id)
        .collect();
    let mut callbacks = Vec::with_capacity(done.len());
    for id in done {
        let mut task = cl.tasks.remove(&id).expect("due task");
        cl.occupancy[task.node] -= 1;
        callbacks.push(task.on_complete.take().expect("callback"));
    }
    cl.recompute_rates();
    for cb in callbacks {
        cb(sim);
    }
    reschedule::<S>(sim);
}

/// Record completed tiles (called by the executor layer, which knows the
/// logical tile counts).
impl<S> ClusterModel<S> {
    /// Add to the completed-tiles counter.
    pub fn note_tiles(&mut self, tiles: f64) {
        self.tiles_done += tiles;
    }

    /// Deterministic Bernoulli draw from the cluster's RNG stream — used by
    /// the executor layer for worker-crash fault injection.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct St {
        cl: ClusterModel<St>,
    }

    impl HasCluster for St {
        fn cluster(&mut self) -> &mut ClusterModel<St> {
            &mut self.cl
        }
    }

    fn sim(nodes: usize, model: ContentionModel) -> Simulation<St> {
        let mut spec = ClusterSpec::defiant();
        spec.nodes = nodes;
        Simulation::new(St {
            cl: ClusterModel::new(spec, model, 9),
        })
    }

    fn no_jitter() -> ContentionModel {
        ContentionModel {
            work_cv: 0.0,
            ..ContentionModel::defiant()
        }
    }

    #[test]
    fn single_task_duration_matches_model() {
        let mut s = sim(1, no_jitter());
        let done = Rc::new(RefCell::new(0.0));
        let d = Rc::clone(&done);
        submit_task(&mut s, 0, 150.0, move |sim| {
            *d.borrow_mut() = sim.now().as_secs_f64();
        });
        s.run();
        let expected = 150.0 / no_jitter().per_worker_rate(1, 1);
        assert!(
            (*done.borrow() - expected).abs() < 1e-6,
            "{} vs {expected}",
            *done.borrow()
        );
    }

    #[test]
    fn two_tasks_one_node_share_bandwidth() {
        let mut s = sim(2, no_jitter());
        let same = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let same = Rc::clone(&same);
            submit_task(&mut s, 0, 150.0, move |sim| {
                same.borrow_mut().push(sim.now().as_secs_f64());
            });
        }
        s.run();
        let same_node_time = same.borrow()[1];

        let mut s = sim(2, no_jitter());
        let split = Rc::new(RefCell::new(Vec::new()));
        for node in 0..2 {
            let split = Rc::clone(&split);
            submit_task(&mut s, node, 150.0, move |sim| {
                split.borrow_mut().push(sim.now().as_secs_f64());
            });
        }
        s.run();
        let split_time = split.borrow()[1];
        assert!(
            same_node_time > split_time * 1.05,
            "same node {same_node_time} vs split {split_time}"
        );
    }

    #[test]
    fn occupancy_tracks_tasks() {
        let mut s = sim(2, no_jitter());
        submit_task(&mut s, 0, 1000.0, |_| {});
        submit_task(&mut s, 0, 1000.0, |_| {});
        submit_task(&mut s, 1, 1000.0, |_| {});
        {
            let cl = s.state_mut().cluster();
            assert_eq!(cl.node_occupancy(0), 2);
            assert_eq!(cl.node_occupancy(1), 1);
            assert_eq!(cl.active_nodes(), 2);
            assert_eq!(cl.active_workers(), 3);
        }
        s.run();
        let cl = s.state_mut().cluster();
        assert_eq!(cl.active_workers(), 0);
        assert_eq!(cl.active_nodes(), 0);
    }

    #[test]
    fn rates_rebalance_when_task_joins() {
        // Task A alone then joined by B on the same node: A slows down.
        // With the saturating model, adding the 2nd worker raises node
        // throughput from 10.70 to 18.45, so per-worker drops 10.70→9.22.
        let mut s = sim(1, no_jitter());
        let done = Rc::new(RefCell::new(Vec::new()));
        let d1 = Rc::clone(&done);
        submit_task(&mut s, 0, 107.0, move |sim| {
            d1.borrow_mut().push(("A", sim.now().as_secs_f64()));
        });
        let d2 = Rc::clone(&done);
        s.schedule_at(SimTime::from_secs_f64(5.0), move |sim| {
            let d2 = Rc::clone(&d2);
            submit_task(sim, 0, 92.2, move |sim| {
                d2.borrow_mut().push(("B", sim.now().as_secs_f64()));
            });
        });
        s.run();
        let m = no_jitter();
        let r1 = m.per_worker_rate(1, 1);
        let r2 = m.per_worker_rate(2, 1);
        // A: 5 s at r1 then (107 − 5·r1)/r2 more.
        let expect_a = 5.0 + (107.0 - 5.0 * r1) / r2;
        let f = done.borrow();
        let a = f.iter().find(|(n, _)| *n == "A").unwrap().1;
        assert!((a - expect_a).abs() < 0.05, "A at {a}, expected {expect_a}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let mut s = sim(1, no_jitter());
        submit_task(&mut s, 5, 1.0, |_| {});
    }

    #[test]
    fn core_limit_enforced() {
        let mut spec = ClusterSpec::tiny(1); // 8 cores
        spec.node.cores = 2;
        let mut s = Simulation::new(St {
            cl: ClusterModel::new(spec, no_jitter(), 1),
        });
        submit_task(&mut s, 0, 10.0, |_| {});
        submit_task(&mut s, 0, 10.0, |_| {});
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            submit_task(&mut s, 0, 10.0, |_| {});
        }));
        assert!(result.is_err(), "third task on a 2-core node must panic");
    }

    #[test]
    fn work_jitter_changes_durations_but_is_deterministic() {
        fn run(seed: u64) -> Vec<u64> {
            let mut spec = ClusterSpec::defiant();
            spec.nodes = 1;
            let mut s = Simulation::new(St {
                cl: ClusterModel::new(spec, ContentionModel::defiant(), seed),
            });
            let times = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..5 {
                let times = Rc::clone(&times);
                submit_task(&mut s, 0, 150.0, move |sim| {
                    times.borrow_mut().push(sim.now().as_nanos());
                });
            }
            s.run();
            let v = times.borrow().clone();
            v
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn many_tasks_throughput_approaches_model() {
        // Saturate one node with 8 always-busy workers processing 64 tasks;
        // aggregate throughput should approach node_throughput(8).
        let model = no_jitter();
        let mut s = sim(1, model);
        let remaining = Rc::new(RefCell::new(64usize));
        fn launch(sim: &mut Simulation<St>, remaining: &Rc<RefCell<usize>>) {
            if *remaining.borrow() == 0 {
                return;
            }
            *remaining.borrow_mut() -= 1;
            let r = Rc::clone(remaining);
            submit_task(sim, 0, 150.0, move |sim| {
                launch(sim, &r);
            });
        }
        for _ in 0..8 {
            launch(&mut s, &remaining);
        }
        s.run();
        let total_tiles = 64.0 * 150.0;
        let elapsed = s.now().as_secs_f64();
        let throughput = total_tiles / elapsed;
        let expected = model.node_throughput(8);
        assert!(
            (throughput - expected).abs() / expected < 0.02,
            "throughput {throughput} vs model {expected}"
        );
    }
}

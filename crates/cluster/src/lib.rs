//! `eoml-cluster` — a virtual-time model of the OLCF ACE "Defiant" cluster.
//!
//! The paper's scaling experiments (Figs. 4–5, Table I) ran on a 36-node
//! Slurm cluster with 64-core EPYC nodes and a Lustre file system. That
//! hardware is substituted by:
//!
//! * [`spec`] — static cluster description (nodes, cores, memory,
//!   interconnect, file system);
//! * [`contention`] — the calibrated performance model that produces the
//!   paper's scaling *shapes*: on-node memory-bandwidth saturation (worker
//!   scaling flattens near 8–16 workers/node at ≈37–39 tiles/s) and mild
//!   shared-file-system contention across nodes (near-linear node scaling
//!   with a few percent droop by 10 nodes);
//! * [`slurm`] — a Slurm-like block provider: Parsl requests blocks of
//!   nodes, which are granted after a startup latency and released when the
//!   executor scales down;
//! * [`exec`] — fluid task execution: active tasks progress at rates set by
//!   the contention model, recomputed whenever occupancy changes (the same
//!   piecewise-constant-rate technique as the transfer flow network).

pub mod budget;
pub mod contention;
pub mod exec;
pub mod slurm;
pub mod spec;

pub use budget::{BudgetExceeded, BudgetLease, BudgetPool, MIN_WORKER_BUDGET};
pub use contention::ContentionModel;
pub use exec::{ClusterModel, HasCluster, TaskId};
pub use slurm::{BlockId, SlurmProvider};
pub use spec::{ClusterSpec, NodeSpec};

//! Provenance tracking — the paper's §V-A plan: "integrate advanced
//! provenance tracking and telemetry tools for real-time workflow
//! insights… support the creation of reliable, reusable workflows".
//!
//! The model is a light W3C-PROV-style graph: *activities* (download,
//! preprocess, inference, shipment) generate *artifacts* (files) from input
//! artifacts, attributed to an *agent* (the service that did the work).
//! The log answers the two questions that matter operationally — "where
//! did this labeled file come from?" (full upstream lineage) and "what was
//! derived from this granule?" (downstream closure) — and exports JSON for
//! external tooling.

use std::collections::{BTreeMap, HashSet, VecDeque};

/// One provenance record: `activity` produced `artifact` from `inputs`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvRecord {
    /// The produced artifact (file name / URI).
    pub artifact: String,
    /// The producing activity (e.g. `"preprocess"`).
    pub activity: String,
    /// Input artifacts consumed.
    pub inputs: Vec<String>,
    /// The agent that performed the activity.
    pub agent: String,
    /// Virtual/wall seconds when the artifact was produced.
    pub at_s: f64,
    /// Free-form attributes (tile counts, sizes, …).
    pub attrs: BTreeMap<String, String>,
}

/// An append-only provenance log.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceLog {
    records: Vec<ProvRecord>,
}

impl ProvenanceLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn record(
        &mut self,
        artifact: impl Into<String>,
        activity: impl Into<String>,
        inputs: Vec<String>,
        agent: impl Into<String>,
        at_s: f64,
    ) -> &mut ProvRecord {
        self.records.push(ProvRecord {
            artifact: artifact.into(),
            activity: activity.into(),
            inputs,
            agent: agent.into(),
            at_s,
            attrs: BTreeMap::new(),
        });
        self.records.last_mut().expect("just pushed")
    }

    /// All records.
    pub fn records(&self) -> &[ProvRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records that directly produced `artifact` (usually one).
    pub fn producers(&self, artifact: &str) -> Vec<&ProvRecord> {
        self.records
            .iter()
            .filter(|r| r.artifact == artifact)
            .collect()
    }

    /// Transitive upstream lineage of `artifact`: every artifact it
    /// (recursively) derives from, in breadth-first order, deduplicated.
    pub fn lineage(&self, artifact: &str) -> Vec<String> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        queue.push_back(artifact.to_string());
        let mut out = Vec::new();
        while let Some(current) = queue.pop_front() {
            for rec in self.producers(&current) {
                for input in &rec.inputs {
                    if seen.insert(input.clone()) {
                        out.push(input.clone());
                        queue.push_back(input.clone());
                    }
                }
            }
        }
        out
    }

    /// Transitive downstream closure of `artifact`: everything derived
    /// from it.
    pub fn downstream(&self, artifact: &str) -> Vec<String> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        queue.push_back(artifact.to_string());
        let mut out = Vec::new();
        while let Some(current) = queue.pop_front() {
            for rec in self.records.iter().filter(|r| r.inputs.contains(&current)) {
                if seen.insert(rec.artifact.clone()) {
                    out.push(rec.artifact.clone());
                    queue.push_back(rec.artifact.clone());
                }
            }
        }
        out
    }

    /// Verify the graph is acyclic (an artifact never being its own
    /// ancestor) — the integrity invariant a provenance log must hold.
    pub fn is_acyclic(&self) -> bool {
        self.records
            .iter()
            .all(|r| !self.lineage(&r.artifact).contains(&r.artifact))
    }

    /// Export as PROV-flavoured JSON: `entities`, and `activities` with
    /// `used`/`generated` edges.
    pub fn to_json(&self) -> serde_json::Value {
        let mut entities: HashSet<&str> = HashSet::new();
        for r in &self.records {
            entities.insert(&r.artifact);
            for i in &r.inputs {
                entities.insert(i);
            }
        }
        let mut entity_list: Vec<&str> = entities.into_iter().collect();
        entity_list.sort_unstable();
        serde_json::json!({
            "entities": entity_list,
            "activities": self.records.iter().map(|r| {
                serde_json::json!({
                    "type": r.activity,
                    "agent": r.agent,
                    "at_s": r.at_s,
                    "used": r.inputs,
                    "generated": r.artifact,
                    "attrs": r.attrs,
                })
            }).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline_log() -> ProvenanceLog {
        let mut log = ProvenanceLog::new();
        for name in [
            "MOD021KM.A2022001.0005",
            "MOD03.A2022001.0005",
            "MOD06_L2.A2022001.0005",
        ] {
            log.record(
                format!("defiant:{name}"),
                "download",
                vec![format!("laads:{name}")],
                "download-pool",
                10.0,
            );
        }
        log.record(
            "tiles-MOD.A2022001.0005.nc",
            "preprocess",
            vec![
                "defiant:MOD021KM.A2022001.0005".into(),
                "defiant:MOD03.A2022001.0005".into(),
                "defiant:MOD06_L2.A2022001.0005".into(),
            ],
            "parsl-worker",
            40.0,
        )
        .attrs
        .insert("tiles".into(), "117".into());
        log.record(
            "labeled:tiles-MOD.A2022001.0005.nc",
            "inference",
            vec!["tiles-MOD.A2022001.0005.nc".into()],
            "globus-flow",
            55.0,
        );
        log.record(
            "orion:tiles-MOD.A2022001.0005.nc",
            "shipment",
            vec!["labeled:tiles-MOD.A2022001.0005.nc".into()],
            "globus-transfer",
            60.0,
        );
        log
    }

    #[test]
    fn lineage_reaches_the_archive() {
        let log = pipeline_log();
        let lineage = log.lineage("orion:tiles-MOD.A2022001.0005.nc");
        // labeled → tiles → 3 defiant products → 3 laads originals.
        assert_eq!(lineage.len(), 8, "{lineage:?}");
        assert!(lineage.iter().any(|a| a == "laads:MOD021KM.A2022001.0005"));
        assert!(lineage.iter().any(|a| a == "laads:MOD06_L2.A2022001.0005"));
        // BFS order: the direct parent comes first.
        assert_eq!(lineage[0], "labeled:tiles-MOD.A2022001.0005.nc");
    }

    #[test]
    fn downstream_closure() {
        let log = pipeline_log();
        let down = log.downstream("laads:MOD021KM.A2022001.0005");
        assert_eq!(down.len(), 4, "{down:?}");
        assert!(down.iter().any(|a| a == "orion:tiles-MOD.A2022001.0005.nc"));
        assert!(log
            .downstream("orion:tiles-MOD.A2022001.0005.nc")
            .is_empty());
    }

    #[test]
    fn reshipped_granule_does_not_duplicate_closure_records() {
        // A failed ingest makes the source re-ship the granule: a second
        // shipment record lands for the same orion: artifact. The closures
        // must stay duplicate-free — multi-input joins (the three MODIS
        // products feeding one tile file) plus a re-ship is exactly the
        // shape that makes a naive BFS emit an artifact twice.
        let mut log = pipeline_log();
        log.record(
            "orion:tiles-MOD.A2022001.0005.nc",
            "shipment",
            vec!["labeled:tiles-MOD.A2022001.0005.nc".into()],
            "globus-transfer",
            75.0,
        );
        assert_eq!(log.producers("orion:tiles-MOD.A2022001.0005.nc").len(), 2);
        assert!(log.is_acyclic());

        // Downstream of any archive original, the re-shipped artifact
        // appears exactly once.
        let down = log.downstream("laads:MOD021KM.A2022001.0005");
        assert_eq!(
            down.iter()
                .filter(|a| *a == "orion:tiles-MOD.A2022001.0005.nc")
                .count(),
            1
        );
        let mut dedup = down.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), down.len(), "duplicate downstream records");

        // Upstream of the re-shipped artifact, each ancestor — including
        // the shared multi-input MODIS products — appears exactly once.
        let lineage = log.lineage("orion:tiles-MOD.A2022001.0005.nc");
        let mut dedup = lineage.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), lineage.len(), "duplicate lineage records");
        assert_eq!(lineage.len(), 8, "re-ship must not grow the lineage");
    }

    #[test]
    fn acyclicity_detection() {
        let mut log = pipeline_log();
        assert!(log.is_acyclic());
        // Introduce a cycle: the archive file "derives" from the shipped one.
        log.record(
            "laads:MOD021KM.A2022001.0005",
            "time-travel",
            vec!["orion:tiles-MOD.A2022001.0005.nc".into()],
            "paradox",
            99.0,
        );
        assert!(!log.is_acyclic());
    }

    #[test]
    fn producers_and_attrs() {
        let log = pipeline_log();
        let p = log.producers("tiles-MOD.A2022001.0005.nc");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].activity, "preprocess");
        assert_eq!(p[0].attrs["tiles"], "117");
        assert!(log.producers("unknown").is_empty());
    }

    #[test]
    fn json_export_shape() {
        let log = pipeline_log();
        let j = log.to_json();
        assert_eq!(j["activities"].as_array().unwrap().len(), 6);
        let entities = j["entities"].as_array().unwrap();
        assert!(entities.len() >= 9, "{entities:?}");
        // Every activity's generated artifact appears among entities.
        for act in j["activities"].as_array().unwrap() {
            let artifact = act["generated"].as_str().unwrap();
            assert!(entities.iter().any(|e| e.as_str() == Some(artifact)));
        }
    }

    #[test]
    fn empty_log() {
        let log = ProvenanceLog::new();
        assert!(log.is_empty());
        assert!(log.is_acyclic());
        assert!(log.lineage("x").is_empty());
        assert_eq!(log.to_json()["entities"].as_array().unwrap().len(), 0);
    }
}

//! The composed simulation state: every substrate in one world.

use crate::provenance::ProvenanceLog;
use crate::telemetry::Telemetry;
use eoml_cluster::contention::ContentionModel;
use eoml_cluster::exec::{ClusterModel, HasCluster};
use eoml_cluster::slurm::SlurmProvider;
use eoml_cluster::spec::ClusterSpec;
use eoml_compute::launch::LaunchModel;
use eoml_flows::trigger::VirtualCrawler;
use eoml_transfer::endpoint::Endpoint;
use eoml_transfer::faults::FaultPlan;
use eoml_transfer::flownet::{FlowNetwork, HasNetwork};
use eoml_util::rng::Xoshiro256;

/// All simulated facilities and services, threaded through one
/// discrete-event simulation. `eoml-transfer` and `eoml-cluster` reach
/// their embedded models via the [`HasNetwork`]/[`HasCluster`] traits.
pub struct World {
    /// The WAN/LAN flow network (LAADS ↔ Defiant ↔ Frontier).
    pub net: FlowNetwork<World>,
    /// The virtual Defiant cluster.
    pub cluster: ClusterModel<World>,
    /// The Slurm block provider over the cluster's nodes.
    pub slurm: SlurmProvider,
    /// Stage-3 monitor state.
    pub crawler: VirtualCrawler,
    /// Campaign instrumentation.
    pub telemetry: Telemetry,
    /// Artifact lineage (W3C-PROV-style).
    pub provenance: ProvenanceLog,
    /// World RNG (split off for per-component streams).
    pub rng: Xoshiro256,
    /// Globus-Compute-style launch latency model.
    pub launch: LaunchModel,
    /// Globus-Flows action-transition overhead model.
    pub flow_overhead: LaunchModel,
}

impl World {
    /// Build the standard three-facility world from a seed.
    ///
    /// Endpoints: `laads` (archive), `ace-defiant` (compute + its file
    /// system) and `frontier-orion` (analysis destination). The cluster is
    /// Defiant's spec with the Table-I-calibrated contention model.
    pub fn new(seed: u64, fault_plan: FaultPlan) -> Self {
        let mut net = FlowNetwork::new(seed, fault_plan);
        net.add_endpoint(Endpoint::laads());
        net.add_endpoint(Endpoint::ace_defiant());
        net.add_endpoint(Endpoint::frontier_orion());
        let spec = ClusterSpec::defiant();
        let nodes = spec.nodes;
        Self {
            net,
            cluster: ClusterModel::new(spec, ContentionModel::defiant(), seed),
            slurm: SlurmProvider::new(nodes, seed),
            crawler: VirtualCrawler::new(),
            telemetry: Telemetry::new(),
            provenance: ProvenanceLog::new(),
            rng: Xoshiro256::seed_from(seed ^ 0x000E_0A11),
            launch: LaunchModel::globus_compute(seed),
            flow_overhead: LaunchModel::flows_action(seed),
        }
    }
}

impl HasNetwork for World {
    fn network(&mut self) -> &mut FlowNetwork<World> {
        &mut self.net
    }
}

impl HasCluster for World {
    fn cluster(&mut self) -> &mut ClusterModel<World> {
        &mut self.cluster
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("net", &self.net)
            .field("cluster", &self.cluster)
            .field("slurm_free_nodes", &self.slurm.free_nodes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_simtime::Simulation;
    use eoml_transfer::flownet::start_flow;
    use eoml_util::units::ByteSize;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn world_composes_endpoints_and_cluster() {
        let w = World::new(1, FaultPlan::none());
        assert!(w.net.endpoint("laads").is_some());
        assert!(w.net.endpoint("ace-defiant").is_some());
        assert!(w.net.endpoint("frontier-orion").is_some());
        assert_eq!(w.slurm.free_nodes(), 36);
        assert_eq!(w.cluster.spec().nodes, 36);
    }

    #[test]
    fn network_and_cluster_share_one_simulation() {
        // A flow and a cluster task run concurrently in the same sim.
        let mut sim = Simulation::new(World::new(2, FaultPlan::none()));
        let done = Rc::new(RefCell::new(Vec::new()));
        let d1 = Rc::clone(&done);
        start_flow(
            &mut sim,
            "laads",
            "ace-defiant",
            ByteSize::mb(90),
            move |sim, _| {
                d1.borrow_mut().push(("flow", sim.now().as_secs_f64()));
            },
        );
        let d2 = Rc::clone(&done);
        eoml_cluster::exec::submit_task(&mut sim, 0, 150.0, move |sim| {
            d2.borrow_mut().push(("task", sim.now().as_secs_f64()));
        });
        sim.run();
        let done = done.borrow();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|&(_, t)| t > 0.0));
    }
}

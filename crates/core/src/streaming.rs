//! Streaming campaigns — the paper's §V goal of supporting "inferring with
//! batch as well as streaming data".
//!
//! In batch mode ([`crate::campaign`]) stage 2 waits for every download
//! (the paper's guard against partially read files). In *streaming* mode
//! granules become available at the archive as the satellite acquires
//! them; download workers poll the archive, each granule is preprocessed
//! the moment its three product files have all arrived, inference triggers
//! per finished tile file, and every labeled file ships individually. All
//! five stages run concurrently as a pipeline — downloads of granule *k*
//! overlap inference on granule *k − n*.
//!
//! [`run_streaming_campaign_resumable`] runs the same pipeline against a
//! write-ahead journal: per-product downloads, tile files, monitor triggers
//! and label/ship completions are journaled as they happen, and a restart
//! resumes from the durable prefix without re-executing completed work. In
//! particular, monitor triggers are deduplicated across restarts — a tile
//! file whose label round-trip is journaled never re-enters the inference
//! queue.

use crate::campaign::{
    build_shipment_manifest, granule_tiles, granule_trace_id, preprocess_key, CampaignParams,
    JournalSink, StageReport,
};
use crate::world::World;
use eoml_cluster::exec::submit_task;
use eoml_cluster::slurm::request_block;
use eoml_journal::{CampaignState, Journal, JournalError, JournalEvent, Storage};
use eoml_modis::catalog::Catalog;
use eoml_modis::granule::GranuleId;
use eoml_modis::product::ProductKind;
use eoml_obs::TraceContext;
use eoml_simtime::{SimTime, Simulation};
use eoml_transfer::flownet::start_flow;
use eoml_transfer::manifest::ShipmentManifest;
use eoml_util::units::ByteSize;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Why a streaming campaign could not run (or finish).
///
/// Separating pilot-error (`UnsupportedDays`) from journal failures lets
/// multi-day callers recover — pick a supported window and retry — instead
/// of panicking, which is the first step toward the ROADMAP multi-day
/// scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamingError {
    /// The streaming scheduler currently covers exactly one acquisition
    /// day; the caller asked for `days`.
    UnsupportedDays {
        /// The requested day count.
        days: usize,
    },
    /// The write-ahead journal failed (including injected crash points).
    Journal(JournalError),
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingError::UnsupportedDays { days } => write!(
                f,
                "streaming campaigns cover exactly one acquisition day (requested {days}); \
                 use scheduler::run_streaming_days_resumable to span a multi-day window"
            ),
            StreamingError::Journal(e) => write!(f, "streaming journal error: {e}"),
        }
    }
}

impl std::error::Error for StreamingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamingError::Journal(e) => Some(e),
            StreamingError::UnsupportedDays { .. } => None,
        }
    }
}

impl From<JournalError> for StreamingError {
    fn from(e: JournalError) -> StreamingError {
        StreamingError::Journal(e)
    }
}

/// Streaming-specific knobs on top of [`CampaignParams`].
#[derive(Debug, Clone)]
pub struct StreamingParams {
    /// The shared campaign parameters (resources, platform, dates…).
    pub base: CampaignParams,
    /// Virtual seconds between archive polls.
    pub poll_period_s: f64,
    /// Delay from acquisition to archive availability (LAADS production
    /// latency), virtual seconds.
    pub availability_lag_s: f64,
    /// Acquisition-timeline compression: a 5-minute granule slot becomes
    /// `300 / compression` virtual seconds. 1.0 = real time.
    pub compression: f64,
}

impl StreamingParams {
    /// Demo defaults: 20× compressed day, 60 s production lag, 10 s polls.
    pub fn demo() -> Self {
        Self {
            base: CampaignParams::paper_demo(),
            poll_period_s: 10.0,
            availability_lag_s: 60.0,
            compression: 20.0,
        }
    }

    fn available_at(&self, granule: GranuleId) -> SimTime {
        let acq = granule.slot as f64 * 300.0 / self.compression;
        SimTime::from_secs_f64(acq + self.availability_lag_s)
    }
}

/// Result of a streaming campaign.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// Granules fully downloaded (all three products).
    pub granules_downloaded: usize,
    /// Granules preprocessed.
    pub granules_preprocessed: usize,
    /// Tile files produced and labeled.
    pub labeled_files: usize,
    /// Files shipped.
    pub shipped_files: usize,
    /// Bytes downloaded.
    pub downloaded: ByteSize,
    /// Bytes shipped.
    pub shipped: ByteSize,
    /// End-to-end makespan, virtual seconds.
    pub makespan_s: f64,
    /// Stage summaries (download/preprocess/shipment windows).
    pub stages: Vec<StageReport>,
    /// Telemetry (activity shows the pipeline overlap).
    pub telemetry: crate::telemetry::Telemetry,
    /// The shipment manifest covering every shipped file — built once the
    /// pipeline drains, including files replayed from the journal.
    pub manifest: Option<ShipmentManifest>,
}

struct StState {
    params: StreamingParams,
    // archive schedule
    pending_granules: VecDeque<GranuleId>, // not yet visible
    download_queue: VecDeque<(GranuleId, ProductKind, String, ByteSize)>,
    download_active: usize,
    parts_arrived: HashMap<GranuleId, usize>,
    granules_downloaded: usize,
    downloaded: ByteSize,
    first_download: Option<SimTime>,
    last_download: SimTime,
    // preprocess
    block_nodes: Vec<usize>,
    preprocess_queue: VecDeque<(GranuleId, f64)>,
    preprocess_active: usize,
    granules_preprocessed: usize,
    first_preprocess: Option<SimTime>,
    last_preprocess: SimTime,
    // inference
    inference_queue: VecDeque<(String, f64)>,
    inference_active: usize,
    labeled: usize,
    // shipment
    shipping: usize,
    shipped_files: usize,
    shipped: ByteSize,
    /// Every shipped `(file, bytes)` pair — manifest input; seeded with
    /// journal-replayed shipments so a resumed run's manifest still covers
    /// the whole campaign.
    ship_log: Vec<(String, ByteSize)>,
    last_ship: SimTime,
    finished: bool,
    manifest: Option<ShipmentManifest>,
    // journaling
    journal: Option<Rc<RefCell<dyn JournalSink>>>,
    resume: CampaignState,
    halted: bool,
}

type S = Rc<RefCell<StState>>;

/// Append `event` to the campaign's journal, if any. Returns `false` when
/// the append failed (crash point reached): the pipeline must stop — the
/// event, and everything after it, is not durable.
fn st_record(st: &S, event: JournalEvent) -> bool {
    let sink = st.borrow().journal.clone();
    match sink {
        None => true,
        Some(journal) => {
            if journal.borrow_mut().append(event).is_ok() {
                true
            } else {
                st.borrow_mut().halted = true;
                false
            }
        }
    }
}

fn st_halted(st: &S) -> bool {
    st.borrow().halted
}

/// Run a streaming campaign. The archive releases granules on the
/// (compressed) acquisition timeline; every stage runs concurrently.
///
/// Panics on unsupported parameters (multi-day windows); callers that
/// want a recoverable error use [`try_run_streaming_campaign`].
pub fn run_streaming_campaign(params: StreamingParams) -> StreamingReport {
    try_run_streaming_campaign(params).expect("streaming campaign failed")
}

/// [`run_streaming_campaign`] with a typed error instead of a panic:
/// a multi-day window returns [`StreamingError::UnsupportedDays`].
pub fn try_run_streaming_campaign(
    params: StreamingParams,
) -> Result<StreamingReport, StreamingError> {
    run_streaming_inner(params, None, CampaignState::default())
}

/// Run a streaming campaign against a write-ahead `journal`, resuming any
/// work the journal already records as complete. A granule whose label/ship
/// round-trip is journaled is replayed into the totals without touching the
/// archive, the cluster, or the WAN; partially complete granules restart
/// from their last durable step (missing product files re-download, tile
/// files re-infer).
///
/// Returns [`StreamingError::Journal`] wrapping [`JournalError::Crashed`]
/// when the journal's injected kill point fires mid-campaign (see
/// [`Journal::crash_after`]), and [`StreamingError::UnsupportedDays`] for
/// multi-day windows — checked before anything is journaled.
pub fn run_streaming_campaign_resumable<St: Storage + 'static>(
    params: StreamingParams,
    journal: Journal<St>,
) -> Result<StreamingReport, StreamingError> {
    if params.base.days != 1 {
        return Err(StreamingError::UnsupportedDays {
            days: params.base.days,
        });
    }
    let resume = journal.state().clone();
    if let Some(seed) = resume.seed {
        if seed != params.base.seed {
            return Err(StreamingError::Journal(JournalError::Io(format!(
                "journal belongs to seed {seed}, campaign params use seed {}",
                params.base.seed
            ))));
        }
    }
    if let Some(label) = &resume.label {
        if label != "streaming-campaign" {
            return Err(StreamingError::Journal(JournalError::Io(format!(
                "journal belongs to a {label:?} run, not a streaming campaign"
            ))));
        }
    }
    let sink: Rc<RefCell<dyn JournalSink>> = Rc::new(RefCell::new(journal));
    if resume.seed.is_none() {
        sink.borrow_mut().append(JournalEvent::CampaignStarted {
            seed: params.base.seed,
            label: "streaming-campaign".into(),
        })?;
    }
    run_streaming_inner(params, Some(sink), resume)
}

fn run_streaming_inner(
    params: StreamingParams,
    journal: Option<Rc<RefCell<dyn JournalSink>>>,
    resume: CampaignState,
) -> Result<StreamingReport, StreamingError> {
    if params.base.days != 1 {
        return Err(StreamingError::UnsupportedDays {
            days: params.base.days,
        });
    }
    let mut world = World::new(params.base.seed, params.base.faults);
    if let Some(obs) = &params.base.obs {
        world.telemetry.attach_obs(Arc::clone(obs));
    }
    let mut sim = Simulation::new(world);

    let all: Vec<GranuleId> = GranuleId::day_granules(params.base.platform, params.base.start)
        .take(params.base.files_per_day)
        .collect();
    let expected = all.len();
    let seed = params.base.seed;

    // Partition the day by how far the journal says each granule got.
    let mut pending_granules = VecDeque::new();
    let mut preprocess_queue = VecDeque::new();
    let mut inference_seed: Vec<(String, f64)> = Vec::new();
    let mut parts_arrived = HashMap::new();
    let mut granules_downloaded = 0usize;
    let mut downloaded = ByteSize::ZERO;
    let mut granules_preprocessed = 0usize;
    let mut labeled = 0usize;
    let mut shipped_files = 0usize;
    let mut shipped = ByteSize::ZERO;
    let mut ship_log: Vec<(String, ByteSize)> = Vec::new();
    for &g in &all {
        let tiles = granule_tiles(seed, g);
        let key = preprocess_key(g, tiles);
        let dl_bytes: u64 = ProductKind::all()
            .into_iter()
            .filter_map(|p| resume.downloaded.get(&g.file_name(p)).copied())
            .sum();
        let dl_parts = ProductKind::all()
            .into_iter()
            .filter(|&p| resume.is_downloaded(&g.file_name(p)))
            .count();
        if let Some(&(_, bytes)) = resume.labeled.get(&key) {
            // Label + ship journaled: the granule is fully replayed.
            granules_downloaded += 1;
            downloaded += ByteSize::bytes(dl_bytes);
            granules_preprocessed += 1;
            labeled += 1;
            shipped_files += 1;
            shipped += ByteSize::bytes(bytes);
            ship_log.push((key, ByteSize::bytes(bytes)));
        } else if resume.has_tile_file(&key) {
            // Preprocessed but not labeled: re-enter at inference.
            granules_downloaded += 1;
            downloaded += ByteSize::bytes(dl_bytes);
            granules_preprocessed += 1;
            if tiles > 0.0 {
                inference_seed.push((format!("tiles-{g}.nc"), tiles));
            }
        } else if dl_parts == 3 {
            // All products durable: re-enter at preprocessing.
            granules_downloaded += 1;
            downloaded += ByteSize::bytes(dl_bytes);
            preprocess_queue.push_back((g, tiles));
        } else {
            // Waits for the archive; journaled products are pre-credited and
            // skipped when the granule is released.
            if dl_parts > 0 {
                downloaded += ByteSize::bytes(dl_bytes);
                parts_arrived.insert(g, dl_parts);
            }
            pending_granules.push_back(g);
        }
    }

    let st: S = Rc::new(RefCell::new(StState {
        params: params.clone(),
        pending_granules,
        download_queue: VecDeque::new(),
        download_active: 0,
        parts_arrived,
        granules_downloaded,
        downloaded,
        first_download: None,
        last_download: SimTime::ZERO,
        block_nodes: Vec::new(),
        preprocess_queue,
        preprocess_active: 0,
        granules_preprocessed,
        first_preprocess: None,
        last_preprocess: SimTime::ZERO,
        inference_queue: inference_seed.iter().cloned().collect(),
        inference_active: 0,
        labeled,
        shipping: 0,
        shipped_files,
        shipped,
        ship_log,
        last_ship: SimTime::ZERO,
        finished: false,
        manifest: None,
        journal,
        resume,
        halted: false,
    }));

    // Re-entering at inference counts as a monitor trigger unless one is
    // already journaled for the file (dedup across restarts).
    for (file, _) in &inference_seed {
        let seen = st.borrow().resume.monitor_saw(file);
        if !seen && !st_record(&st, JournalEvent::MonitorTriggered { file: file.clone() }) {
            break;
        }
    }

    // Allocate the preprocessing block up front; polling starts once the
    // nodes are up.
    let nodes = params.base.nodes;
    let st2 = Rc::clone(&st);
    request_block(
        &mut sim,
        |w: &mut World| &mut w.slurm,
        nodes,
        move |sim, _block, node_list| {
            st2.borrow_mut().block_nodes = node_list;
            poll_archive(sim, &st2);
            pump_preprocess(sim, &st2);
            pump_inference(sim, &st2);
        },
    )
    .expect("cluster has enough nodes");
    sim.run();

    let world = sim.into_state();
    let s = Rc::try_unwrap(st)
        .unwrap_or_else(|_| panic!("streaming closures leaked"))
        .into_inner();
    if s.halted {
        return Err(StreamingError::Journal(JournalError::Crashed));
    }
    assert_eq!(s.granules_downloaded, expected, "archive fully drained");
    let mut stages = Vec::new();
    if let Some(t0) = s.first_download {
        stages.push(StageReport {
            name: "download".into(),
            started: t0,
            finished: s.last_download,
            items: s.granules_downloaded,
            bytes: s.downloaded,
        });
    }
    if let Some(t0) = s.first_preprocess {
        stages.push(StageReport {
            name: "preprocess".into(),
            started: t0,
            finished: s.last_preprocess,
            items: s.granules_preprocessed,
            bytes: ByteSize::ZERO,
        });
    }
    stages.push(StageReport {
        name: "shipment".into(),
        started: s.first_download.unwrap_or(SimTime::ZERO),
        finished: s.last_ship,
        items: s.shipped_files,
        bytes: s.shipped,
    });
    let makespan_s = [s.last_download, s.last_preprocess, s.last_ship]
        .into_iter()
        .map(|t| t.as_secs_f64())
        .fold(0.0, f64::max);
    Ok(StreamingReport {
        granules_downloaded: s.granules_downloaded,
        granules_preprocessed: s.granules_preprocessed,
        labeled_files: s.labeled,
        shipped_files: s.shipped_files,
        downloaded: s.downloaded,
        shipped: s.shipped,
        makespan_s,
        stages,
        telemetry: world.telemetry,
        manifest: s.manifest,
    })
}

/// Poll the archive: release granules whose availability time has passed
/// into the download queue; reschedule until the archive is drained.
fn poll_archive(sim: &mut Simulation<World>, st: &S) {
    if st_halted(st) {
        return;
    }
    {
        let mut s = st.borrow_mut();
        let now = sim.now();
        let cat = Catalog::new(s.params.base.seed);
        while let Some(&g) = s.pending_granules.front() {
            if s.params.available_at(g) > now {
                break;
            }
            s.pending_granules.pop_front();
            for product in ProductKind::all() {
                let name = g.file_name(product);
                if s.resume.is_downloaded(&name) {
                    // Journaled before the crash; pre-credited at setup.
                    continue;
                }
                let size = cat.file_size(g, product);
                s.download_queue.push_back((g, product, name, size));
            }
        }
    }
    pump_downloads(sim, st);
    let keep_polling = !st.borrow().pending_granules.is_empty() && !st_halted(st);
    if keep_polling {
        let period = Duration::from_secs_f64(st.borrow().params.poll_period_s);
        let st2 = Rc::clone(st);
        sim.schedule_in(period, move |sim| poll_archive(sim, &st2));
    }
}

fn pump_downloads(sim: &mut Simulation<World>, st: &S) {
    if st_halted(st) {
        return;
    }
    loop {
        let job = {
            let mut s = st.borrow_mut();
            if s.download_active >= s.params.base.download_workers {
                None
            } else if let Some(job) = s.download_queue.pop_front() {
                s.download_active += 1;
                let active = s.download_active;
                if s.first_download.is_none() {
                    s.first_download = Some(sim.now());
                }
                drop(s);
                let now = sim.now();
                sim.state_mut()
                    .telemetry
                    .activity_change("download", now, active);
                Some(job)
            } else {
                None
            }
        };
        let Some((granule, product, name, size)) = job else {
            break;
        };
        let st2 = Rc::clone(st);
        let dl_start = sim.now();
        start_flow(sim, "laads", "ace-defiant", size, move |sim, outcome| {
            if st_halted(&st2) {
                return;
            }
            let now = sim.now();
            {
                let mut s = st2.borrow_mut();
                s.download_active -= 1;
                let active = s.download_active;
                drop(s);
                sim.state_mut()
                    .telemetry
                    .activity_change("download", now, active);
            }
            if outcome.is_success()
                && !st_record(
                    &st2,
                    JournalEvent::FileDownloaded {
                        file: name.clone(),
                        bytes: size.as_u64(),
                    },
                )
            {
                return;
            }
            if outcome.is_success() {
                let trace = TraceContext::new(granule.to_string());
                let tel = &mut sim.state_mut().telemetry;
                tel.span_traced("download", "file", dl_start, now, Some(&trace));
                tel.count("files", "download", 1);
                tel.count("bytes", "download", size.as_u64());
            }
            let granule_ready = {
                let mut s = st2.borrow_mut();
                if outcome.is_success() {
                    s.downloaded += size;
                    s.last_download = now;
                    let parts = s.parts_arrived.entry(granule).or_insert(0);
                    *parts += 1;
                    if *parts == 3 {
                        // All three products in: granule is preprocessable.
                        s.granules_downloaded += 1;
                        let tiles = granule_tiles(s.params.base.seed, granule);
                        s.preprocess_queue.push_back((granule, tiles));
                        true
                    } else {
                        false
                    }
                } else {
                    // Retry: re-enqueue the file.
                    s.download_queue
                        .push_back((granule, product, name.clone(), size));
                    false
                }
            };
            if granule_ready {
                pump_preprocess(sim, &st2);
            }
            pump_downloads(sim, &st2);
        });
    }
}

fn pump_preprocess(sim: &mut Simulation<World>, st: &S) {
    if st_halted(st) {
        return;
    }
    loop {
        let job = {
            let mut s = st.borrow_mut();
            let slots = s.block_nodes.len() * s.params.base.workers_per_node;
            if s.preprocess_active >= slots {
                None
            } else if let Some(job) = s.preprocess_queue.pop_front() {
                s.preprocess_active += 1;
                let active = s.preprocess_active;
                if s.first_preprocess.is_none() {
                    s.first_preprocess = Some(sim.now());
                }
                let node = s.block_nodes[active % s.block_nodes.len()];
                drop(s);
                let now = sim.now();
                sim.state_mut()
                    .telemetry
                    .activity_change("preprocess", now, active);
                Some((node, job))
            } else {
                None
            }
        };
        let Some((node, (granule, tiles))) = job else {
            break;
        };
        let st2 = Rc::clone(st);
        let pp_start = sim.now();
        submit_task(sim, node, tiles.max(12.0), move |sim| {
            if st_halted(&st2) {
                return;
            }
            // Attribute allocations in the completion path (journal
            // append, span bookkeeping, queue churn) to the stage.
            let _mem = sim
                .state_mut()
                .telemetry
                .resource_scope("preprocess", "granule");
            if !st_record(
                &st2,
                JournalEvent::TileFileWritten {
                    file: preprocess_key(granule, tiles),
                    tiles: tiles.round() as u64,
                },
            ) {
                return;
            }
            if tiles > 0.0
                && !st_record(
                    &st2,
                    JournalEvent::MonitorTriggered {
                        file: format!("tiles-{granule}.nc"),
                    },
                )
            {
                return;
            }
            let now = sim.now();
            {
                let trace = TraceContext::new(granule.to_string());
                let tel = &mut sim.state_mut().telemetry;
                tel.span_traced("preprocess", "granule", pp_start, now, Some(&trace));
                tel.count("granules", "preprocess", 1);
                if tiles > 0.0 {
                    tel.mark_traced("monitor", "trigger", now, Some(&trace));
                    tel.count("triggers", "monitor", 1);
                }
            }
            {
                let mut s = st2.borrow_mut();
                s.preprocess_active -= 1;
                s.granules_preprocessed += 1;
                s.last_preprocess = now;
                let active = s.preprocess_active;
                if tiles > 0.0 {
                    s.inference_queue
                        .push_back((format!("tiles-{granule}.nc"), tiles));
                }
                drop(s);
                sim.state_mut()
                    .telemetry
                    .activity_change("preprocess", now, active);
            }
            pump_inference(sim, &st2);
            pump_preprocess(sim, &st2);
            maybe_finish(sim, &st2);
        });
    }
}

fn pump_inference(sim: &mut Simulation<World>, st: &S) {
    if st_halted(st) {
        return;
    }
    loop {
        let job = {
            let mut s = st.borrow_mut();
            if s.inference_active >= s.params.base.inference_workers {
                None
            } else if let Some(job) = s.inference_queue.pop_front() {
                s.inference_active += 1;
                let active = s.inference_active;
                drop(s);
                let now = sim.now();
                sim.state_mut()
                    .telemetry
                    .activity_change("inference", now, active);
                Some(job)
            } else {
                None
            }
        };
        let Some((file, tiles)) = job else {
            break;
        };
        let (rate, tile_bytes) = {
            let s = st.borrow();
            (s.params.base.inference_rate, s.params.base.tile_nc_bytes)
        };
        let overhead = sim.state_mut().flow_overhead.sample().total() * 4;
        let compute = Duration::from_secs_f64(tiles / rate);
        let st2 = Rc::clone(st);
        let inf_start = sim.now();
        sim.schedule_in(overhead + compute, move |sim| {
            if st_halted(&st2) {
                return;
            }
            let now = sim.now();
            let trace = granule_trace_id(&file).map(TraceContext::new);
            sim.state_mut().telemetry.span_traced(
                "inference",
                "infer",
                inf_start,
                now,
                trace.as_ref(),
            );
            {
                let mut s = st2.borrow_mut();
                s.inference_active -= 1;
                let active = s.inference_active;
                drop(s);
                sim.state_mut()
                    .telemetry
                    .activity_change("inference", now, active);
            }
            // Ship this labeled file immediately (streaming shipment). The
            // label only becomes durable — and is only counted — once the
            // shipment lands, so a crash between inference and shipment
            // re-runs both on resume.
            let size = ByteSize::bytes((tiles * tile_bytes as f64) as u64);
            {
                st2.borrow_mut().shipping += 1;
            }
            let st3 = Rc::clone(&st2);
            let ship_start = sim.now();
            start_flow(
                sim,
                "ace-defiant",
                "frontier-orion",
                size,
                move |sim, out| {
                    if st_halted(&st3) {
                        return;
                    }
                    if out.is_success()
                        && !st_record(
                            &st3,
                            JournalEvent::LabelsAppended {
                                file: file.clone(),
                                labels: tiles.round() as u64,
                                bytes: size.as_u64(),
                            },
                        )
                    {
                        return;
                    }
                    {
                        let mut s = st3.borrow_mut();
                        s.shipping -= 1;
                        if out.is_success() {
                            s.labeled += 1;
                            s.shipped_files += 1;
                            s.shipped += size;
                            s.ship_log.push((file.clone(), size));
                            s.last_ship = sim.now();
                        }
                    }
                    if out.is_success() {
                        let now = sim.now();
                        let trace = granule_trace_id(&file).map(TraceContext::new);
                        let tel = &mut sim.state_mut().telemetry;
                        tel.span_traced("shipment", "ship", ship_start, now, trace.as_ref());
                        tel.count("files_labeled", "inference", 1);
                        tel.count("files_shipped", "shipment", 1);
                        tel.count("bytes_shipped", "shipment", size.as_u64());
                    }
                    maybe_finish(sim, &st3);
                },
            );
            pump_inference(sim, &st2);
            maybe_finish(sim, &st2);
        });
    }
}

fn maybe_finish(sim: &mut Simulation<World>, st: &S) {
    {
        let s = st.borrow();
        if s.finished || s.halted {
            return;
        }
        let done = s.pending_granules.is_empty()
            && s.download_queue.is_empty()
            && s.download_active == 0
            && s.preprocess_queue.is_empty()
            && s.preprocess_active == 0
            && s.inference_queue.is_empty()
            && s.inference_active == 0
            && s.shipping == 0;
        if !done {
            return;
        }
    }
    let (files, bytes) = {
        let s = st.borrow();
        (s.shipped_files as u64, s.shipped.as_u64())
    };
    if !st_record(st, JournalEvent::ShipmentFinished { files, bytes }) {
        return;
    }
    let journal = {
        let sink = st.borrow().journal.clone();
        sink.and_then(|j| j.borrow().state_digest())
    };
    let manifest = {
        let s = st.borrow();
        build_shipment_manifest(
            "ace-defiant",
            "frontier-orion",
            &s.ship_log,
            &sim.state().provenance,
            journal,
            sim.now().as_secs_f64(),
        )
    };
    let mut s = st.borrow_mut();
    s.manifest = Some(manifest);
    s.finished = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_journal::MemStorage;

    fn small() -> StreamingParams {
        StreamingParams {
            base: CampaignParams {
                files_per_day: 24,
                nodes: 2,
                ..CampaignParams::paper_demo()
            },
            ..StreamingParams::demo()
        }
    }

    #[test]
    fn streaming_campaign_completes_everything() {
        let r = run_streaming_campaign(small());
        assert_eq!(r.granules_downloaded, 24);
        assert_eq!(r.granules_preprocessed, 24);
        assert_eq!(r.shipped_files, r.labeled_files);
        assert!(r.labeled_files > 0);
        assert!(r.downloaded.as_u64() > 0);
        assert!(r.makespan_s > 0.0);
    }

    #[test]
    fn stages_overlap_in_streaming_mode() {
        // The defining property: downloads and preprocessing (and
        // inference) are concurrent — unlike batch mode, where stage 2
        // waits for stage 1.
        let r = run_streaming_campaign(small());
        assert!(
            r.telemetry.stages_overlap("download", "preprocess"),
            "downloads must overlap preprocessing in streaming mode"
        );
        assert!(r.telemetry.stages_overlap("preprocess", "inference"));
    }

    #[test]
    fn streaming_is_deterministic() {
        let a = run_streaming_campaign(small());
        let b = run_streaming_campaign(small());
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.downloaded, b.downloaded);
        assert_eq!(a.labeled_files, b.labeled_files);
    }

    #[test]
    fn granules_arrive_on_the_compressed_timeline() {
        let p = small();
        // Slot 0 is available after the lag; slot 12 (1 hour of acquisition)
        // after 3600/20 + lag = 240 s.
        let g0 = GranuleId::new(p.base.platform, p.base.start, 0);
        let g12 = GranuleId::new(p.base.platform, p.base.start, 12);
        assert_eq!(p.available_at(g0), SimTime::from_secs_f64(60.0));
        assert_eq!(p.available_at(g12), SimTime::from_secs_f64(240.0));
        // Downloads therefore cannot all start at t=0: the download stage
        // spans a large fraction of the compressed acquisition day.
        let r = run_streaming_campaign(p.clone());
        let dl = r.stages.iter().find(|s| s.name == "download").unwrap();
        let acquisition_span = 24.0 * 300.0 / p.compression;
        assert!(
            dl.seconds() > acquisition_span * 0.5,
            "download window {:.0}s should track the {acquisition_span:.0}s acquisition span",
            dl.seconds()
        );
    }

    #[test]
    fn pipelining_beats_audit_style_sequencing() {
        // Makespan should be far less than the sum of per-stage busy time —
        // the point of streaming.
        let r = run_streaming_campaign(small());
        let stage_sum: f64 = r.stages.iter().map(|s| s.seconds()).sum();
        assert!(
            r.makespan_s < stage_sum,
            "makespan {:.0}s vs stage sum {:.0}s — stages should overlap",
            r.makespan_s,
            stage_sum
        );
    }

    #[test]
    fn resumable_streaming_without_crash_matches_plain() {
        let plain = run_streaming_campaign(small());
        let (journal, _) = Journal::open(MemStorage::new()).unwrap();
        let r = run_streaming_campaign_resumable(small(), journal).unwrap();
        assert_eq!(r.granules_downloaded, plain.granules_downloaded);
        assert_eq!(r.granules_preprocessed, plain.granules_preprocessed);
        assert_eq!(r.labeled_files, plain.labeled_files);
        assert_eq!(r.shipped_files, plain.shipped_files);
        assert_eq!(r.downloaded, plain.downloaded);
        assert_eq!(r.shipped, plain.shipped);
    }

    #[test]
    fn crashed_streaming_campaign_resumes_to_identical_totals() {
        let baseline = run_streaming_campaign(small());
        for kill_at in [5, 23, 47] {
            let store = MemStorage::new();
            let (mut journal, _) = Journal::open(store.clone()).unwrap();
            journal.crash_after(kill_at);
            let crashed = run_streaming_campaign_resumable(small(), journal);
            assert!(
                matches!(crashed, Err(StreamingError::Journal(JournalError::Crashed))),
                "kill {kill_at}"
            );
            let (journal, _) = Journal::open(store).unwrap();
            let r = run_streaming_campaign_resumable(small(), journal).unwrap();
            assert_eq!(r.granules_downloaded, baseline.granules_downloaded);
            assert_eq!(r.granules_preprocessed, baseline.granules_preprocessed);
            assert_eq!(r.labeled_files, baseline.labeled_files, "kill {kill_at}");
            assert_eq!(r.shipped_files, baseline.shipped_files);
            assert_eq!(r.downloaded, baseline.downloaded, "kill {kill_at}");
            assert_eq!(r.shipped, baseline.shipped, "kill {kill_at}");
        }
    }

    #[test]
    fn streaming_manifest_covers_shipped_files_and_survives_resume() {
        let plain = run_streaming_campaign(small());
        let m = plain.manifest.as_ref().expect("manifest");
        assert_eq!(m.len(), plain.shipped_files);
        assert_eq!(m.total_bytes(), plain.shipped.as_u64());
        assert!(m.journal.is_none(), "journal-free run has no digest");

        // Journaled, uninterrupted: the reference manifest id.
        let (journal, _) = Journal::open(MemStorage::new()).unwrap();
        let j0 = run_streaming_campaign_resumable(small(), journal).unwrap();
        let m0 = j0.manifest.as_ref().expect("manifest");
        assert!(m0.journal.is_some(), "journaled run records a digest");

        // Crash mid-pipeline, resume: replayed shipments still appear in
        // the manifest and the id — the destination's idempotency key —
        // is unchanged.
        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.crash_after(40);
        let _ = run_streaming_campaign_resumable(small(), journal);
        let (journal, _) = Journal::open(store).unwrap();
        let r = run_streaming_campaign_resumable(small(), journal).unwrap();
        let m1 = r.manifest.as_ref().expect("manifest");
        assert_eq!(m1.len(), plain.shipped_files);
        assert_eq!(m1.id(), m0.id());
    }

    #[test]
    fn multi_day_windows_return_a_typed_recoverable_error() {
        let mut p = small();
        p.base.days = 3;
        // The plain entry point reports through the typed error...
        let err = try_run_streaming_campaign(p.clone()).unwrap_err();
        assert_eq!(err, StreamingError::UnsupportedDays { days: 3 });
        assert!(err.to_string().contains("one acquisition day"));
        // ...and the journaled one rejects before touching the journal,
        // so the store stays reusable for a corrected run.
        let store = MemStorage::new();
        let (journal, _) = Journal::open(store.clone()).unwrap();
        let err = run_streaming_campaign_resumable(p.clone(), journal).unwrap_err();
        assert!(matches!(err, StreamingError::UnsupportedDays { days: 3 }));
        let (journal, recovery) = Journal::open(store).unwrap();
        assert_eq!(recovery.events, 0, "rejected run must journal nothing");
        p.base.days = 1;
        run_streaming_campaign_resumable(p, journal).unwrap();
    }

    #[test]
    fn observed_streaming_campaign_covers_all_five_stages() {
        let obs = eoml_obs::Obs::shared();
        let mut p = small();
        p.base.obs = Some(Arc::clone(&obs));
        let r = run_streaming_campaign(p);
        let spans = obs.spans();
        for stage in ["download", "preprocess", "monitor", "inference", "shipment"] {
            assert!(
                spans.iter().any(|s| s.stage == stage),
                "no {stage} spans in obs"
            );
        }
        let m = obs.metrics();
        assert_eq!(m.counter_value("granules", "preprocess"), Some(24));
        assert_eq!(
            m.counter_value("files_shipped", "shipment"),
            Some(r.shipped_files as u64)
        );
        assert_eq!(
            m.counter_value("bytes", "download"),
            Some(r.downloaded.as_u64())
        );
    }

    #[test]
    fn monitor_triggers_are_deduplicated_across_restarts() {
        // Crash late (after some labels landed), resume, and check that the
        // final journal has no duplicate MonitorTriggered events.
        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.crash_after(40);
        let _ = run_streaming_campaign_resumable(small(), journal);
        let (journal, _) = Journal::open(store.clone()).unwrap();
        run_streaming_campaign_resumable(small(), journal).unwrap();
        let (journal, _) = Journal::open(store).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for event in journal.events() {
            if let JournalEvent::MonitorTriggered { file } = event {
                assert!(seen.insert(file.clone()), "duplicate trigger for {file}");
            }
        }
        assert!(!seen.is_empty(), "no monitor triggers journaled");
    }
}

//! The AICCA atlas builder — downstream analytics over labeled tiles.
//!
//! AICCA (the "AI-driven Cloud Classification Atlas") aggregates decades of
//! labeled ocean-cloud tiles into per-class climatology: how often each of
//! the 42 classes occurs, where (zonally), and with what cloud physics.
//! This module builds that atlas incrementally from the labeled NetCDF
//! files the workflow ships — the "daily to decadal climate analysis" the
//! paper's §II-B describes as the product's purpose.

use eoml_ncdf::NcFile;
use eoml_preprocess::tiles::Tile;
use eoml_preprocess::writer::{read_tiles_nc, TileNcError};

/// Number of 10° latitude bands.
pub const LAT_BANDS: usize = 18;

/// Aggregated statistics for one cloud class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Tiles assigned to this class.
    pub count: usize,
    /// Running sums for means.
    sum_cot: f64,
    sum_ctp: f64,
    sum_cer: f64,
    sum_cloud_fraction: f64,
    /// Tile counts per 10° latitude band (index 0 = 90S–80S).
    pub lat_hist: [usize; LAT_BANDS],
}

impl Default for ClassStats {
    fn default() -> Self {
        Self {
            count: 0,
            sum_cot: 0.0,
            sum_ctp: 0.0,
            sum_cer: 0.0,
            sum_cloud_fraction: 0.0,
            lat_hist: [0; LAT_BANDS],
        }
    }
}

impl ClassStats {
    /// Mean cloud optical thickness.
    pub fn mean_cot(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_cot / self.count as f64
        }
    }

    /// Mean cloud-top pressure, hPa.
    pub fn mean_ctp(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ctp / self.count as f64
        }
    }

    /// Mean effective radius, µm.
    pub fn mean_cer(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_cer / self.count as f64
        }
    }

    /// Mean tile cloud fraction.
    pub fn mean_cloud_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_cloud_fraction / self.count as f64
        }
    }

    /// The latitude band (center, degrees) where this class peaks.
    pub fn peak_latitude(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let (band, _) = self.lat_hist.iter().enumerate().max_by_key(|&(_, c)| *c)?;
        Some(-90.0 + 10.0 * band as f64 + 5.0)
    }
}

/// An incrementally built cloud-class atlas.
#[derive(Debug, Clone, PartialEq)]
pub struct Atlas {
    /// Per-class aggregates.
    pub classes: Vec<ClassStats>,
    /// Total tiles folded in.
    pub total: usize,
    /// Tile counts per latitude band across all classes.
    pub zonal: [usize; LAT_BANDS],
}

fn lat_band(lat: f64) -> usize {
    (((lat + 90.0) / 10.0) as usize).min(LAT_BANDS - 1)
}

impl Atlas {
    /// Empty atlas over `num_classes` classes (42 for AICCA).
    pub fn new(num_classes: usize) -> Self {
        Self {
            classes: vec![ClassStats::default(); num_classes],
            total: 0,
            zonal: [0; LAT_BANDS],
        }
    }

    /// Fold in labeled tiles. Labels outside `0..num_classes` are
    /// rejected.
    pub fn add_tiles(&mut self, tiles: &[Tile], labels: &[i32]) -> Result<(), String> {
        if tiles.len() != labels.len() {
            return Err(format!("{} tiles but {} labels", tiles.len(), labels.len()));
        }
        for (t, &l) in tiles.iter().zip(labels) {
            if l < 0 || l as usize >= self.classes.len() {
                return Err(format!("label {l} out of range"));
            }
            let band = lat_band(t.center_lat as f64);
            let c = &mut self.classes[l as usize];
            c.count += 1;
            c.sum_cot += t.mean_cot as f64;
            c.sum_ctp += t.mean_ctp as f64;
            c.sum_cer += t.mean_cer as f64;
            c.sum_cloud_fraction += t.cloud_fraction as f64;
            c.lat_hist[band] += 1;
            self.zonal[band] += 1;
            self.total += 1;
        }
        Ok(())
    }

    /// Fold in a labeled tile NetCDF file (as shipped by stage 5).
    pub fn add_file(&mut self, nc: &NcFile) -> Result<usize, String> {
        let (tiles, labels) = read_tiles_nc(nc).map_err(|e: TileNcError| e.to_string())?;
        let labels = labels.ok_or("file has no aicca_label variable")?;
        let n = tiles.len();
        self.add_tiles(&tiles, &labels)?;
        Ok(n)
    }

    /// Merge another atlas (same class count) into this one.
    pub fn merge(&mut self, other: &Atlas) {
        assert_eq!(self.classes.len(), other.classes.len());
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            a.count += b.count;
            a.sum_cot += b.sum_cot;
            a.sum_ctp += b.sum_ctp;
            a.sum_cer += b.sum_cer;
            a.sum_cloud_fraction += b.sum_cloud_fraction;
            for (x, y) in a.lat_hist.iter_mut().zip(&b.lat_hist) {
                *x += y;
            }
        }
        for (x, y) in self.zonal.iter_mut().zip(&other.zonal) {
            *x += y;
        }
        self.total += other.total;
    }

    /// Fraction of all tiles belonging to `class`.
    pub fn occurrence(&self, class: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.classes[class].count as f64 / self.total as f64
    }

    /// Number of classes with at least one tile.
    pub fn classes_observed(&self) -> usize {
        self.classes.iter().filter(|c| c.count > 0).count()
    }

    /// The `n` most frequent classes as `(class, count)`.
    pub fn dominant_classes(&self, n: usize) -> Vec<(usize, usize)> {
        let mut idx: Vec<(usize, usize)> = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.count))
            .filter(|&(_, c)| c > 0)
            .collect();
        idx.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        idx.truncate(n);
        idx
    }

    /// Render a compact text table of the observed classes.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>7} {:>7} {:>8} {:>9} {:>8} {:>9}",
            "class", "tiles", "occur%", "COT", "CTP hPa", "CER µm", "peak lat"
        );
        for (i, c) in self.classes.iter().enumerate() {
            if c.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>5} {:>7} {:>7.2} {:>8.1} {:>9.0} {:>8.1} {:>9}",
                i,
                c.count,
                100.0 * self.occurrence(i),
                c.mean_cot(),
                c.mean_ctp(),
                c.mean_cer(),
                c.peak_latitude()
                    .map(|l| format!("{l:+.0}"))
                    .unwrap_or_default(),
            );
        }
        let _ = writeln!(
            out,
            "total {} tiles across {} classes",
            self.total,
            self.classes_observed()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_modis::granule::GranuleId;
    use eoml_modis::product::Platform;
    use eoml_util::timebase::CivilDate;

    fn tile(lat: f32, cot: f32, ctp: f32, cer: f32) -> Tile {
        Tile {
            granule: GranuleId::new(Platform::Terra, CivilDate::new(2022, 1, 1).unwrap(), 0),
            row: 0,
            col: 0,
            data: vec![0.0; 6 * 4],
            bands: vec![6, 7, 20, 28, 29, 31],
            size: 2,
            center_lat: lat,
            center_lon: 0.0,
            ocean_fraction: 1.0,
            cloud_fraction: 0.5,
            mean_cot: cot,
            mean_ctp: ctp,
            mean_cer: cer,
        }
    }

    #[test]
    fn aggregation_and_means() {
        let mut atlas = Atlas::new(42);
        let tiles = vec![
            tile(-12.0, 10.0, 800.0, 15.0),
            tile(-14.0, 20.0, 600.0, 25.0),
            tile(55.0, 5.0, 900.0, 10.0),
        ];
        atlas.add_tiles(&tiles, &[3, 3, 7]).unwrap();
        assert_eq!(atlas.total, 3);
        assert_eq!(atlas.classes_observed(), 2);
        let c3 = &atlas.classes[3];
        assert_eq!(c3.count, 2);
        assert!((c3.mean_cot() - 15.0).abs() < 1e-9);
        assert!((c3.mean_ctp() - 700.0).abs() < 1e-9);
        assert!((c3.mean_cer() - 20.0).abs() < 1e-9);
        // Both class-3 tiles sit in the 20S–10S band, whose center is 15S.
        assert_eq!(c3.peak_latitude(), Some(-15.0));
        assert!((atlas.occurrence(3) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lat_bands_are_correct() {
        assert_eq!(lat_band(-90.0), 0);
        assert_eq!(lat_band(-81.0), 0);
        assert_eq!(lat_band(-79.9), 1);
        assert_eq!(lat_band(0.0), 9);
        assert_eq!(lat_band(89.9), 17);
        assert_eq!(lat_band(90.0), 17);
    }

    #[test]
    fn label_validation() {
        let mut atlas = Atlas::new(42);
        let t = vec![tile(0.0, 1.0, 500.0, 10.0)];
        assert!(atlas.add_tiles(&t, &[42]).is_err());
        assert!(atlas.add_tiles(&t, &[-1]).is_err());
        assert!(atlas.add_tiles(&t, &[0, 1]).is_err());
        assert!(atlas.add_tiles(&t, &[41]).is_ok());
    }

    #[test]
    fn merge_equals_sequential() {
        let tiles: Vec<Tile> = (0..20)
            .map(|i| tile(i as f32 * 8.0 - 80.0, i as f32, 500.0 + i as f32, 10.0))
            .collect();
        let labels: Vec<i32> = (0..20).map(|i| i % 5).collect();
        let mut whole = Atlas::new(42);
        whole.add_tiles(&tiles, &labels).unwrap();
        let mut a = Atlas::new(42);
        a.add_tiles(&tiles[..9], &labels[..9]).unwrap();
        let mut b = Atlas::new(42);
        b.add_tiles(&tiles[9..], &labels[9..]).unwrap();
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn dominant_classes_ordering() {
        let mut atlas = Atlas::new(10);
        let t = |n: usize| vec![tile(0.0, 1.0, 500.0, 10.0); n];
        atlas.add_tiles(&t(5), &[2; 5]).unwrap();
        atlas.add_tiles(&t(3), &[7; 3]).unwrap();
        atlas.add_tiles(&t(1), &[0; 1]).unwrap();
        assert_eq!(atlas.dominant_classes(2), vec![(2, 5), (7, 3)]);
        assert_eq!(atlas.dominant_classes(10).len(), 3);
    }

    #[test]
    fn summary_table_renders() {
        let mut atlas = Atlas::new(42);
        atlas
            .add_tiles(&[tile(-30.0, 12.0, 700.0, 18.0)], &[5])
            .unwrap();
        let table = atlas.summary_table();
        assert!(table.contains("class"));
        assert!(table.contains("    5 "), "{table}");
        assert!(table.contains("total 1 tiles across 1 classes"));
    }

    #[test]
    fn file_roundtrip_via_netcdf() {
        use eoml_preprocess::writer::{append_labels, write_tiles_nc};
        let tiles: Vec<Tile> = (0..4)
            .map(|i| {
                let mut t = tile(i as f32 * 10.0, 5.0, 600.0, 12.0);
                t.row = i;
                t
            })
            .collect();
        let mut nc = write_tiles_nc(&tiles).unwrap();
        append_labels(&mut nc, &[1, 1, 2, 3]).unwrap();
        let mut atlas = Atlas::new(42);
        let n = atlas.add_file(&nc).unwrap();
        assert_eq!(n, 4);
        assert_eq!(atlas.classes[1].count, 2);
        // A file without labels is rejected.
        let unlabeled = write_tiles_nc(&tiles).unwrap();
        assert!(atlas.add_file(&unlabeled).is_err());
    }
}

//! Real execution of the five-stage pipeline on this machine.
//!
//! Same orchestration as the virtual campaign, but everything is real: a
//! `download_granule` function registered on a real compute endpoint
//! (worker threads, exactly the paper's remotely-executable Globus Compute
//! function) materializes `.eogr` product files — there is no real LAADS,
//! so "download" synthesizes the archive's contents — the preprocessing
//! kernels run on a thread pool, the stage-3 monitor crawls a real
//! directory, stage 4 executes the Globus-Flows-style inference flow with
//! real RICC inference, and stage 5 "ships" by moving files to an outbox
//! directory (facilities being directories here).

use eoml_compute::endpoint::{ComputeEndpoint, TaskResult};
use eoml_compute::registry::FunctionRegistry;
use eoml_executor::local::LocalExecutor;
use eoml_flows::definition::FlowDefinition;
use eoml_flows::runner::FlowRunner;
use eoml_flows::trigger::DirectoryCrawler;
use eoml_modis::files::{to_mod02, to_mod03, to_mod06};
use eoml_modis::granule::GranuleId;
use eoml_modis::product::ProductKind;
use eoml_modis::synth::{SwathDims, SwathSynthesizer};
use eoml_ncdf::NcFile;
use eoml_obs::{Obs, TraceContext};
use eoml_preprocess::pipeline::preprocess_granule_files;
use eoml_preprocess::tiles::TileCriteria;
use eoml_preprocess::writer::{append_labels, read_tiles_nc};
use eoml_ricc::aicca::AiccaModel;
use eoml_ricc::autoencoder::AeConfig;
use eoml_ricc::tensor::Tensor;
use serde_json::json;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Report of one real pipeline run.
#[derive(Debug, Clone)]
pub struct RealRunReport {
    /// Granules processed.
    pub granules: usize,
    /// Tile files produced by preprocessing.
    pub tile_files: usize,
    /// Total tiles across files.
    pub total_tiles: usize,
    /// Tiles labeled by inference.
    pub labeled_tiles: usize,
    /// Label counts per AICCA class.
    pub label_histogram: Vec<usize>,
    /// Final labeled files in the outbox.
    pub outbox: Vec<PathBuf>,
    /// Wall-clock seconds per stage: synthesize ("download"), preprocess,
    /// monitor+inference, shipment.
    pub stage_secs: [f64; 4],
}

impl RealRunReport {
    /// Preprocessing throughput, tiles/s.
    pub fn preprocess_throughput(&self) -> f64 {
        if self.stage_secs[1] <= 0.0 {
            return 0.0;
        }
        self.total_tiles as f64 / self.stage_secs[1]
    }
}

/// The real pipeline: synthesizer + criteria + model + thread pool, rooted
/// at a work directory with `incoming/`, `tiles/` and `outbox/` subdirs.
pub struct RealPipeline {
    workdir: PathBuf,
    synth: SwathSynthesizer,
    criteria: TileCriteria,
    model: AiccaModel,
    executor: LocalExecutor,
    obs: Option<Arc<Obs>>,
}

impl RealPipeline {
    /// Build a pipeline. `tile_size` must divide the synthesizer dims and
    /// be a multiple of 4 (autoencoder constraint).
    pub fn new(
        workdir: impl Into<PathBuf>,
        seed: u64,
        dims: SwathDims,
        tile_size: usize,
        workers: usize,
    ) -> std::io::Result<Self> {
        let workdir = workdir.into();
        for sub in ["incoming", "tiles", "outbox"] {
            std::fs::create_dir_all(workdir.join(sub))?;
        }
        let cfg = AeConfig {
            in_ch: 6,
            c1: 8,
            c2: 16,
            latent: 24,
            input: tile_size,
            lr: 1e-3,
            lambda: 0.1,
        };
        Ok(Self {
            workdir,
            synth: SwathSynthesizer::new(seed, dims),
            criteria: TileCriteria {
                tile_size,
                ..TileCriteria::default()
            },
            model: AiccaModel::pretrained(cfg, seed),
            executor: LocalExecutor::new(workers),
            obs: None,
        })
    }

    /// Attach an observability hub: each stage gets a wall-clock span, the
    /// endpoint/executor/flow-runner instrumentation is enabled, and the
    /// headline counters (granules, tile files, labeled tiles) are mirrored
    /// as metrics.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        let workers = self.executor.workers();
        self.executor = LocalExecutor::new(workers).with_obs(Arc::clone(&obs));
        self.obs = Some(obs);
        self
    }

    /// Override the tile-selection criteria (thresholds only; the tile
    /// size stays bound to the model input).
    pub fn with_thresholds(mut self, min_ocean: f64, min_cloud: f64) -> Self {
        self.criteria.min_ocean_fraction = min_ocean;
        self.criteria.min_cloud_fraction = min_cloud;
        self
    }

    /// The pipeline's work directory.
    pub fn workdir(&self) -> &Path {
        &self.workdir
    }

    /// The AICCA model used for inference.
    pub fn model(&self) -> &AiccaModel {
        &self.model
    }

    /// Run the pipeline over `granules`.
    pub fn run(&self, granules: &[GranuleId]) -> Result<RealRunReport, String> {
        let incoming = self.workdir.join("incoming");
        let tiles_dir = self.workdir.join("tiles");
        let outbox = self.workdir.join("outbox");

        // Stage 1 (substituted download): the paper's remotely executable
        // download function, registered on a real compute endpoint. Each
        // invocation materializes one granule's three product files.
        let t0 = Instant::now();
        let stage_span = self.obs.as_ref().map(|o| o.span("download", "synthesize"));
        let registry = Arc::new(FunctionRegistry::new());
        {
            let synth = self.synth.clone();
            let incoming = incoming.clone();
            registry.register("download_granule", move |args| {
                let g = granule_from_json(&args).ok_or("bad granule args")?;
                let swath = synth.synthesize(g);
                let p02 = incoming.join(g.file_name(ProductKind::Mod02));
                let p03 = incoming.join(g.file_name(ProductKind::Mod03));
                let p06 = incoming.join(g.file_name(ProductKind::Mod06));
                std::fs::write(&p02, to_mod02(&swath).encode()).map_err(|e| e.to_string())?;
                std::fs::write(&p03, to_mod03(&swath).encode()).map_err(|e| e.to_string())?;
                std::fs::write(&p06, to_mod06(&swath).encode()).map_err(|e| e.to_string())?;
                Ok(json!({
                    "mod02": p02.to_string_lossy(),
                    "mod03": p03.to_string_lossy(),
                    "mod06": p06.to_string_lossy(),
                }))
            });
        }
        let endpoint = ComputeEndpoint::start_observed(
            "laads-downloader",
            registry,
            self.executor.workers(),
            self.obs.clone(),
        );
        let handles: Vec<_> = granules
            .iter()
            .map(|g| {
                let trace = TraceContext::new(g.to_string());
                endpoint
                    .submit_by_name_traced("download_granule", granule_to_json(g), Some(&trace))
                    .expect("registered function")
            })
            .collect();
        let mut paths: Vec<[PathBuf; 3]> = Vec::with_capacity(handles.len());
        for h in handles {
            match h.wait() {
                TaskResult::Success(v) => paths.push([
                    PathBuf::from(v["mod02"].as_str().ok_or("missing mod02 path")?),
                    PathBuf::from(v["mod03"].as_str().ok_or("missing mod03 path")?),
                    PathBuf::from(v["mod06"].as_str().ok_or("missing mod06 path")?),
                ]),
                TaskResult::Failed(e) => return Err(format!("download failed: {e}")),
            }
        }
        endpoint.shutdown();
        if let Some(mut span) = stage_span {
            span.attr("granules", granules.len());
        }
        let synth_secs = t0.elapsed().as_secs_f64();

        // Stage 2: parallel preprocessing.
        let t1 = Instant::now();
        let stage_span = self.obs.as_ref().map(|o| o.span("preprocess", "map"));
        // Attribute the stage's allocations (tile buffers, outcome
        // collection) when the counting allocator is installed.
        let mem_scope = self
            .obs
            .as_ref()
            .map(|o| eoml_obs::ResourceGuard::enter(Arc::clone(o), "preprocess", "map"));
        let outcomes = self.executor.map(paths, |[p02, p03, p06]| {
            preprocess_granule_files(&p02, &p03, &p06, &tiles_dir, &self.criteria)
                .map_err(|e| e.to_string())
        });
        let mut total_tiles = 0usize;
        for o in &outcomes {
            match o {
                Ok(out) => total_tiles += out.tiles.len(),
                Err(e) => return Err(format!("preprocess failed: {e}")),
            }
        }
        drop(mem_scope);
        if let Some(mut span) = stage_span {
            span.attr("tiles", total_tiles);
        }
        let preprocess_secs = t1.elapsed().as_secs_f64();

        // Stages 3+4: monitor the tiles directory and run the inference
        // flow per discovered file.
        let t2 = Instant::now();
        let stage_span = self.obs.as_ref().map(|o| o.span("monitor", "crawl"));
        let mut crawler = DirectoryCrawler::new(&tiles_dir, ".nc");
        let flow = FlowDefinition::inference_flow();
        let mut labeled_tiles = 0usize;
        let mut histogram = vec![0usize; self.model.num_classes()];
        let mut tile_files = 0usize;

        let model = &self.model;
        let tiles_dir2 = tiles_dir.clone();
        let mut infer = move |_: &str,
                              params: &serde_json::Value,
                              _: &serde_json::Value|
              -> Result<serde_json::Value, String> {
            let file = params["file"].as_str().ok_or("missing file param")?;
            let path = tiles_dir2.join(file);
            let nc = NcFile::decode(&std::fs::read(&path).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let (tiles, _) = read_tiles_nc(&nc).map_err(|e| e.to_string())?;
            let tensors: Vec<Tensor> = tiles
                .iter()
                .map(|t| Tensor::from_data(t.bands.len(), t.size, t.size, t.data.clone()))
                .collect();
            let labels = model.predict_batch(&tensors);
            Ok(json!({ "labels": labels }))
        };
        let tiles_dir3 = tiles_dir.clone();
        let mut append = move |_: &str,
                               params: &serde_json::Value,
                               _: &serde_json::Value|
              -> Result<serde_json::Value, String> {
            let file = params["file"].as_str().ok_or("missing file param")?;
            let labels: Vec<i32> = params["labels"]["labels"]
                .as_array()
                .ok_or("missing labels")?
                .iter()
                .map(|v| v.as_i64().unwrap_or(-1) as i32)
                .collect();
            let path = tiles_dir3.join(file);
            let mut nc = NcFile::decode(&std::fs::read(&path).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            append_labels(&mut nc, &labels).map_err(|e| e.to_string())?;
            std::fs::write(&path, nc.encode().map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            Ok(json!({ "appended": labels.len() }))
        };
        let tiles_dir4 = tiles_dir.clone();
        let outbox2 = outbox.clone();
        let mut move_out = move |_: &str,
                                 params: &serde_json::Value,
                                 _: &serde_json::Value|
              -> Result<serde_json::Value, String> {
            let file = params["file"].as_str().ok_or("missing file param")?;
            std::fs::rename(tiles_dir4.join(file), outbox2.join(file))
                .map_err(|e| e.to_string())?;
            Ok(json!({ "moved": file }))
        };

        let mut runner = FlowRunner::new();
        if let Some(obs) = &self.obs {
            runner.obs = Some(Arc::clone(obs));
        }
        runner.register("inference", &mut infer);
        runner.register("append_labels", &mut append);
        runner.register("move_to_outbox", &mut move_out);

        // Drain the crawler (preprocessing already finished, so one crawl
        // sees everything; loop anyway to mirror the monitor structure).
        loop {
            let fresh = crawler.crawl().map_err(|e| e.to_string())?;
            if fresh.is_empty() {
                break;
            }
            for path in fresh {
                tile_files += 1;
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .ok_or("bad file name")?
                    .to_string();
                let trace = crate::campaign::granule_trace_id(&name).map(TraceContext::new);
                let mut infer_span = self.obs.as_ref().map(|o| o.span("inference", "flow"));
                if let (Some(span), Some(trace)) = (infer_span.as_mut(), trace.as_ref()) {
                    span.set_trace(trace);
                }
                let run = match trace.as_ref() {
                    Some(trace) => runner.run_traced(&flow, json!({ "file": name }), trace),
                    None => runner.run(&flow, json!({ "file": name })),
                };
                if let Some(mut span) = infer_span {
                    span.attr("file", &name);
                }
                if let eoml_flows::runner::RunStatus::Failed(e) = &run.status {
                    return Err(format!("inference flow failed for {name}: {e}"));
                }
                // Tally labels from the flow context.
                if let Some(labels) = run.context["labels"]["labels"].as_array() {
                    for l in labels {
                        let l = l.as_i64().unwrap_or(-1);
                        if l >= 0 && (l as usize) < histogram.len() {
                            histogram[l as usize] += 1;
                            labeled_tiles += 1;
                        }
                    }
                }
            }
        }
        if let Some(mut span) = stage_span {
            span.attr("tile_files", tile_files);
        }
        let infer_secs = t2.elapsed().as_secs_f64();

        // Stage 5: the outbox *is* the destination facility here; collect
        // the shipped files.
        let t3 = Instant::now();
        let stage_span = self.obs.as_ref().map(|o| o.span("shipment", "collect"));
        let mut shipped: Vec<PathBuf> = std::fs::read_dir(&outbox)
            .map_err(|e| e.to_string())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().map(|x| x == "nc").unwrap_or(false))
            .collect();
        shipped.sort();
        if let Some(mut span) = stage_span {
            span.attr("files", shipped.len());
        }
        let ship_secs = t3.elapsed().as_secs_f64();

        if let Some(obs) = &self.obs {
            obs.counter_add("granules", "download", granules.len() as u64);
            obs.counter_add("tile_files", "preprocess", tile_files as u64);
            obs.counter_add("labeled_tiles", "inference", labeled_tiles as u64);
            obs.counter_add("files_shipped", "shipment", shipped.len() as u64);
        }

        Ok(RealRunReport {
            granules: granules.len(),
            tile_files,
            total_tiles,
            labeled_tiles,
            label_histogram: histogram,
            outbox: shipped,
            stage_secs: [synth_secs, preprocess_secs, infer_secs, ship_secs],
        })
    }
}

fn granule_to_json(g: &GranuleId) -> serde_json::Value {
    json!({
        "platform": g.platform.to_string(),
        "year": g.date.year(),
        "doy": g.date.ordinal(),
        "slot": g.slot,
    })
}

fn granule_from_json(v: &serde_json::Value) -> Option<GranuleId> {
    use eoml_modis::product::Platform;
    use eoml_util::timebase::CivilDate;
    let platform = match v["platform"].as_str()? {
        "Terra" => Platform::Terra,
        "Aqua" => Platform::Aqua,
        _ => return None,
    };
    let date = CivilDate::from_ordinal(v["year"].as_i64()? as i32, v["doy"].as_i64()? as u16)?;
    let slot = v["slot"].as_u64()? as u16;
    if slot >= eoml_modis::granule::SLOTS_PER_DAY {
        return None;
    }
    Some(GranuleId::new(platform, date, slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_modis::product::Platform;
    use eoml_util::timebase::CivilDate;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eoml-realrun-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn day_granules(n: usize) -> Vec<GranuleId> {
        let sy = SwathSynthesizer::new(2022, SwathDims::small());
        let date = CivilDate::new(2022, 1, 1).unwrap();
        (0..288)
            .map(|slot| GranuleId::new(Platform::Terra, date, slot))
            .filter(|&g| sy.synthesize(g).day)
            .take(n)
            .collect()
    }

    #[test]
    fn end_to_end_real_pipeline() {
        let dir = tempdir("e2e");
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
            .unwrap()
            .with_thresholds(0.0, 0.0);
        let granules = day_granules(2);
        assert_eq!(granules.len(), 2);
        let report = pipeline.run(&granules).unwrap();
        assert_eq!(report.granules, 2);
        assert_eq!(report.tile_files, 2, "both day granules produce files");
        // 256/32 = 8 → 64 candidate windows per granule, all accepted.
        assert_eq!(report.total_tiles, 2 * 64);
        assert_eq!(report.labeled_tiles, report.total_tiles);
        assert_eq!(report.outbox.len(), 2);
        assert_eq!(
            report.label_histogram.iter().sum::<usize>(),
            report.labeled_tiles
        );
        // Labeled files in the outbox contain the aicca_label variable.
        let nc = NcFile::decode(&std::fs::read(&report.outbox[0]).unwrap()).unwrap();
        assert!(nc.var_by_name("aicca_label").is_some());
        let (tiles, labels) = read_tiles_nc(&nc).unwrap();
        assert_eq!(labels.unwrap().len(), tiles.len());
        // The tiles directory is empty (everything shipped).
        let left = std::fs::read_dir(dir.join("tiles")).unwrap().count();
        assert_eq!(left, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_criteria_select_fewer_tiles() {
        let dir = tempdir("strict");
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2).unwrap();
        // Default criteria: ocean-only + ≥30 % cloud.
        let granules = day_granules(3);
        let report = pipeline.run(&granules).unwrap();
        assert!(
            report.total_tiles < 3 * 64,
            "criteria must reject some windows"
        );
        assert_eq!(report.labeled_tiles, report.total_tiles);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labels_spread_across_classes() {
        let dir = tempdir("spread");
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
            .unwrap()
            .with_thresholds(0.0, 0.0);
        let report = pipeline.run(&day_granules(3)).unwrap();
        let used = report.label_histogram.iter().filter(|&&c| c > 0).count();
        assert!(used >= 3, "expected ≥3 distinct classes, got {used}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observed_real_run_records_wall_clock_stage_spans() {
        let dir = tempdir("obs");
        let obs = Obs::shared();
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
            .unwrap()
            .with_thresholds(0.0, 0.0)
            .with_obs(Arc::clone(&obs));
        let report = pipeline.run(&day_granules(2)).unwrap();
        let spans = obs.spans();
        for (stage, name) in [
            ("download", "synthesize"),
            ("preprocess", "map"),
            ("monitor", "crawl"),
            ("inference", "flow"),
            ("shipment", "collect"),
        ] {
            let span = spans
                .iter()
                .find(|s| s.stage == stage && s.name == name)
                .unwrap_or_else(|| panic!("no {stage}/{name} span"));
            assert!(span.sim_start.is_none(), "real run spans are wall-clock");
            assert!(span.wall_end_ns >= span.wall_start_ns);
        }
        // Inference flow spans nest under the monitor crawl span.
        let crawl = spans
            .iter()
            .find(|s| s.stage == "monitor" && s.name == "crawl")
            .unwrap();
        let flow = spans
            .iter()
            .find(|s| s.stage == "inference" && s.name == "flow")
            .unwrap();
        assert_eq!(flow.parent, Some(crawl.id));
        // Per-granule traces: the downloads (compute tasks), the inference
        // flow wrapper, and every flow hop carry granule trace ids.
        let traced_compute = spans
            .iter()
            .filter(|s| s.stage == "compute" && s.trace_id.is_some())
            .count();
        assert_eq!(traced_compute, 2, "one traced compute span per granule");
        assert!(flow.trace_id.is_some(), "inference flow span untraced");
        assert!(
            spans
                .iter()
                .filter(|s| s.stage == "flow")
                .all(|s| s.trace_id.is_some()),
            "flow hop missing its granule trace"
        );
        let m = obs.metrics();
        assert_eq!(m.counter_value("granules", "download"), Some(2));
        assert_eq!(
            m.counter_value("labeled_tiles", "inference"),
            Some(report.labeled_tiles as u64)
        );
        // The endpoint, executor, and flow runner instrumentation all fired.
        assert_eq!(m.counter_value("tasks_submitted", "compute"), Some(2));
        assert!(m.counter_value("tasks", "executor").unwrap_or(0) >= 2);
        assert!(m.counter_value("actions", "flow").unwrap_or(0) >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn night_only_run_produces_nothing() {
        let dir = tempdir("night");
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 1)
            .unwrap()
            .with_thresholds(0.0, 0.0);
        let sy = SwathSynthesizer::new(2022, SwathDims::small());
        let date = CivilDate::new(2022, 1, 1).unwrap();
        let night: Vec<GranuleId> = (0..288)
            .map(|slot| GranuleId::new(Platform::Terra, date, slot))
            .filter(|&g| !sy.synthesize(g).day)
            .take(2)
            .collect();
        let report = pipeline.run(&night).unwrap();
        assert_eq!(report.tile_files, 0);
        assert_eq!(report.labeled_tiles, 0);
        assert!(report.outbox.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Real execution of the five-stage pipeline on this machine.
//!
//! Same orchestration as the virtual campaign, but everything is real: a
//! `download_granule` function registered on a real compute endpoint
//! (worker threads, exactly the paper's remotely-executable Globus Compute
//! function) materializes `.eogr` product files — there is no real LAADS,
//! so "download" synthesizes the archive's contents — the preprocessing
//! kernels run on a thread pool, the stage-3 monitor crawls a real
//! directory, stage 4 executes the Globus-Flows-style inference flow with
//! real RICC inference, and stage 5 "ships" by moving files to an outbox
//! directory (facilities being directories here).
//!
//! [`RealPipeline::run_resumable`] journals per-granule stage completions
//! (download → preprocess → monitor/inference → shipment) to a write-ahead
//! journal, so an on-disk run killed at any point reopens the journal and
//! resumes against the same workdir without redoing journaled-complete
//! work — the resumed run's labeled artifacts are byte-identical to an
//! uninterrupted run's.

use crate::campaign::JournalSink;
use eoml_compute::endpoint::{ComputeEndpoint, TaskResult};
use eoml_compute::registry::FunctionRegistry;
use eoml_executor::local::LocalExecutor;
use eoml_flows::definition::FlowDefinition;
use eoml_flows::runner::FlowRunner;
use eoml_flows::trigger::DirectoryCrawler;
use eoml_journal::{CampaignState, Journal, JournalError, JournalEvent, Storage};
use eoml_modis::files::{to_mod02, to_mod03, to_mod06};
use eoml_modis::granule::GranuleId;
use eoml_modis::product::ProductKind;
use eoml_modis::synth::{SwathDims, SwathSynthesizer};
use eoml_ncdf::NcFile;
use eoml_obs::{Obs, TraceContext};
use eoml_preprocess::pipeline::preprocess_granule_files;
use eoml_preprocess::tiles::TileCriteria;
use eoml_preprocess::writer::{append_labels, read_tiles_nc};
use eoml_ricc::aicca::AiccaModel;
use eoml_ricc::autoencoder::AeConfig;
use eoml_ricc::tensor::Tensor;
use eoml_transfer::manifest::{content_digest, ArtifactEntry, JournalDigest, ShipmentManifest};
use serde_json::json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Journal label guarding real-run journals against cross-driver reuse.
const REAL_RUN_LABEL: &str = "real-run";

/// Why a real pipeline run stopped.
#[derive(Debug)]
pub enum RealRunError {
    /// The write-ahead journal failed (including injected crash points);
    /// reopen the journal over the same storage and run again to resume.
    Journal(JournalError),
    /// A pipeline stage failed (I/O, decode, inference flow, ...).
    Pipeline(String),
}

impl std::fmt::Display for RealRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealRunError::Journal(e) => write!(f, "real-run journal error: {e}"),
            RealRunError::Pipeline(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RealRunError {}

impl From<String> for RealRunError {
    fn from(msg: String) -> Self {
        RealRunError::Pipeline(msg)
    }
}

impl From<&str> for RealRunError {
    fn from(msg: &str) -> Self {
        RealRunError::Pipeline(msg.to_string())
    }
}

impl RealRunError {
    /// Whether this is the injected journal kill point (resume by
    /// reopening the journal).
    pub fn is_crash(&self) -> bool {
        matches!(self, RealRunError::Journal(JournalError::Crashed))
    }
}

/// Report of one real pipeline run.
#[derive(Debug, Clone)]
pub struct RealRunReport {
    /// Granules processed.
    pub granules: usize,
    /// Tile files produced by preprocessing.
    pub tile_files: usize,
    /// Total tiles across files.
    pub total_tiles: usize,
    /// Tiles labeled by inference.
    pub labeled_tiles: usize,
    /// Label counts per AICCA class.
    pub label_histogram: Vec<usize>,
    /// Final labeled files in the outbox.
    pub outbox: Vec<PathBuf>,
    /// Wall-clock seconds per stage: synthesize ("download"), preprocess,
    /// monitor+inference, shipment.
    pub stage_secs: [f64; 4],
    /// Shipment manifest over the outbox: *real* content digests of the
    /// shipped bytes (not synthetic), plus the journal digest when run
    /// resumably.
    pub manifest: Option<ShipmentManifest>,
}

impl RealRunReport {
    /// Preprocessing throughput, tiles/s.
    pub fn preprocess_throughput(&self) -> f64 {
        if self.stage_secs[1] <= 0.0 {
            return 0.0;
        }
        self.total_tiles as f64 / self.stage_secs[1]
    }
}

/// The real pipeline: synthesizer + criteria + model + thread pool, rooted
/// at a work directory with `incoming/`, `tiles/` and `outbox/` subdirs.
pub struct RealPipeline {
    workdir: PathBuf,
    seed: u64,
    synth: SwathSynthesizer,
    criteria: TileCriteria,
    model: AiccaModel,
    executor: LocalExecutor,
    obs: Option<Arc<Obs>>,
}

impl RealPipeline {
    /// Build a pipeline. `tile_size` must divide the synthesizer dims and
    /// be a multiple of 4 (autoencoder constraint).
    pub fn new(
        workdir: impl Into<PathBuf>,
        seed: u64,
        dims: SwathDims,
        tile_size: usize,
        workers: usize,
    ) -> std::io::Result<Self> {
        let workdir = workdir.into();
        for sub in ["incoming", "tiles", "outbox"] {
            std::fs::create_dir_all(workdir.join(sub))?;
        }
        let cfg = AeConfig {
            in_ch: 6,
            c1: 8,
            c2: 16,
            latent: 24,
            input: tile_size,
            lr: 1e-3,
            lambda: 0.1,
        };
        Ok(Self {
            workdir,
            seed,
            synth: SwathSynthesizer::new(seed, dims),
            criteria: TileCriteria {
                tile_size,
                ..TileCriteria::default()
            },
            model: AiccaModel::pretrained(cfg, seed),
            executor: LocalExecutor::new(workers),
            obs: None,
        })
    }

    /// Attach an observability hub: each stage gets a wall-clock span, the
    /// endpoint/executor/flow-runner instrumentation is enabled, and the
    /// headline counters (granules, tile files, labeled tiles) are mirrored
    /// as metrics.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        let workers = self.executor.workers();
        self.executor = LocalExecutor::new(workers).with_obs(Arc::clone(&obs));
        self.obs = Some(obs);
        self
    }

    /// Override the tile-selection criteria (thresholds only; the tile
    /// size stays bound to the model input).
    pub fn with_thresholds(mut self, min_ocean: f64, min_cloud: f64) -> Self {
        self.criteria.min_ocean_fraction = min_ocean;
        self.criteria.min_cloud_fraction = min_cloud;
        self
    }

    /// The pipeline's work directory.
    pub fn workdir(&self) -> &Path {
        &self.workdir
    }

    /// The AICCA model used for inference.
    pub fn model(&self) -> &AiccaModel {
        &self.model
    }

    /// Run the pipeline over `granules`.
    pub fn run(&self, granules: &[GranuleId]) -> Result<RealRunReport, String> {
        self.run_inner(granules, &mut None, &CampaignState::new())
            .map_err(|e| e.to_string())
    }

    /// Run the pipeline against a write-ahead `journal`, resuming any work
    /// the journal already records as complete against this workdir.
    ///
    /// Each stage journals per-granule completion events *after* the
    /// corresponding artifact is durably on disk: `FileDownloaded` once a
    /// granule's three product files exist, `TileFileWritten` once its
    /// tile NetCDF (or night-granule scan record) is written,
    /// `MonitorTriggered`/`LabelsAppended` around the inference flow, and
    /// `ShipmentFinished` when the outbox is complete. On reopen,
    /// journaled-complete granule stages are skipped (their results are
    /// folded into the report from the journal and the on-disk artifacts),
    /// so a resumed run produces byte-identical labeled artifacts and an
    /// identical report without re-executing finished work.
    ///
    /// Returns [`RealRunError::Journal`]\([`JournalError::Crashed`]\) when
    /// the journal's injected kill point fires (see
    /// [`Journal::crash_after`]); reopening the journal over the same
    /// storage and calling this again resumes from the durable prefix.
    pub fn run_resumable<S: Storage>(
        &self,
        granules: &[GranuleId],
        journal: &mut Journal<S>,
    ) -> Result<RealRunReport, RealRunError> {
        let resume = journal.state().clone();
        if let Some(seed) = resume.seed {
            if seed != self.seed {
                return Err(RealRunError::Journal(JournalError::Io(format!(
                    "journal belongs to seed {seed}, pipeline uses seed {}",
                    self.seed
                ))));
            }
        }
        if let Some(label) = &resume.label {
            if label != REAL_RUN_LABEL {
                return Err(RealRunError::Journal(JournalError::Io(format!(
                    "journal belongs to a {label:?} run, not a real pipeline run"
                ))));
            }
        }
        if resume.seed.is_none() {
            journal
                .append(JournalEvent::CampaignStarted {
                    seed: self.seed,
                    label: REAL_RUN_LABEL.into(),
                })
                .map_err(RealRunError::Journal)?;
        }
        let mut sink: Option<&mut dyn JournalSink> = Some(journal);
        self.run_inner(granules, &mut sink, &resume)
    }

    fn run_inner(
        &self,
        granules: &[GranuleId],
        journal: &mut Option<&mut dyn JournalSink>,
        resume: &CampaignState,
    ) -> Result<RealRunReport, RealRunError> {
        let incoming = self.workdir.join("incoming");
        let tiles_dir = self.workdir.join("tiles");
        let outbox = self.workdir.join("outbox");

        let record = |journal: &mut Option<&mut dyn JournalSink>,
                      event: JournalEvent|
         -> Result<(), RealRunError> {
            if let Some(j) = journal {
                j.append(event).map_err(RealRunError::Journal)?;
            }
            Ok(())
        };
        let stage_started =
            |journal: &mut Option<&mut dyn JournalSink>, stage: &str| -> Result<(), RealRunError> {
                if !resume.stages_started.contains(stage) {
                    record(
                        journal,
                        JournalEvent::StageStarted {
                            stage: stage.into(),
                        },
                    )?;
                }
                Ok(())
            };
        let stage_finished =
            |journal: &mut Option<&mut dyn JournalSink>, stage: &str| -> Result<(), RealRunError> {
                if !resume.stage_done(stage) {
                    record(
                        journal,
                        JournalEvent::StageFinished {
                            stage: stage.into(),
                        },
                    )?;
                }
                Ok(())
            };

        // Stage 1 (substituted download): the paper's remotely executable
        // download function, registered on a real compute endpoint. Each
        // invocation materializes one granule's three product files.
        // Granules whose download is journaled AND whose product files are
        // still on disk are skipped.
        let t0 = Instant::now();
        let stage_span = self.obs.as_ref().map(|o| o.span("download", "synthesize"));
        stage_started(journal, "download")?;
        let granule_paths: Vec<(GranuleId, [PathBuf; 3])> = granules
            .iter()
            .map(|&g| {
                (
                    g,
                    [
                        incoming.join(g.file_name(ProductKind::Mod02)),
                        incoming.join(g.file_name(ProductKind::Mod03)),
                        incoming.join(g.file_name(ProductKind::Mod06)),
                    ],
                )
            })
            .collect();
        let to_download: Vec<&(GranuleId, [PathBuf; 3])> = granule_paths
            .iter()
            .filter(|(g, paths)| {
                !(resume.is_downloaded(&g.to_string()) && paths.iter().all(|p| p.exists()))
            })
            .collect();
        if !to_download.is_empty() {
            let registry = Arc::new(FunctionRegistry::new());
            {
                let synth = self.synth.clone();
                let incoming = incoming.clone();
                registry.register("download_granule", move |args| {
                    let g = granule_from_json(&args).ok_or("bad granule args")?;
                    let swath = synth.synthesize(g);
                    let p02 = incoming.join(g.file_name(ProductKind::Mod02));
                    let p03 = incoming.join(g.file_name(ProductKind::Mod03));
                    let p06 = incoming.join(g.file_name(ProductKind::Mod06));
                    let b02 = to_mod02(&swath).encode();
                    let b03 = to_mod03(&swath).encode();
                    let b06 = to_mod06(&swath).encode();
                    let bytes = (b02.len() + b03.len() + b06.len()) as u64;
                    std::fs::write(&p02, b02).map_err(|e| e.to_string())?;
                    std::fs::write(&p03, b03).map_err(|e| e.to_string())?;
                    std::fs::write(&p06, b06).map_err(|e| e.to_string())?;
                    Ok(json!({
                        "mod02": p02.to_string_lossy(),
                        "mod03": p03.to_string_lossy(),
                        "mod06": p06.to_string_lossy(),
                        "bytes": bytes,
                    }))
                });
            }
            let endpoint = ComputeEndpoint::start_observed(
                "laads-downloader",
                registry,
                self.executor.workers(),
                self.obs.clone(),
            );
            let handles: Vec<_> = to_download
                .iter()
                .map(|(g, _)| {
                    let trace = TraceContext::new(g.to_string());
                    endpoint
                        .submit_by_name_traced("download_granule", granule_to_json(g), Some(&trace))
                        .expect("registered function")
                })
                .collect();
            for ((g, _), h) in to_download.iter().zip(handles) {
                match h.wait() {
                    TaskResult::Success(v) => {
                        let key = g.to_string();
                        if !resume.is_downloaded(&key) {
                            record(
                                journal,
                                JournalEvent::FileDownloaded {
                                    file: key,
                                    bytes: v["bytes"].as_u64().unwrap_or(0),
                                },
                            )?;
                        }
                    }
                    TaskResult::Failed(e) => {
                        return Err(format!("download failed: {e}").into());
                    }
                }
            }
            endpoint.shutdown();
        }
        stage_finished(journal, "download")?;
        if let Some(mut span) = stage_span {
            span.attr("granules", granules.len());
        }
        let synth_secs = t0.elapsed().as_secs_f64();

        // Stage 2: parallel preprocessing. A granule whose tile file (or
        // night-granule scan record) is journaled and whose artifact is
        // accounted for — still in tiles/, already labeled, or shipped —
        // is folded in from the journal without re-running the kernels.
        let t1 = Instant::now();
        let stage_span = self.obs.as_ref().map(|o| o.span("preprocess", "map"));
        stage_started(journal, "preprocess")?;
        let mut total_tiles = 0usize;
        let mut tile_file_names: BTreeSet<String> = BTreeSet::new();
        let mut to_preprocess: Vec<[PathBuf; 3]> = Vec::new();
        for (g, paths) in &granule_paths {
            let tiles_key = format!("tiles-{g}.nc");
            let scan_key = format!("scan-{g}");
            if let Some(&tiles) = resume.tile_files.get(&tiles_key) {
                let artifact_accounted = tiles_dir.join(&tiles_key).exists()
                    || resume.is_labeled(&tiles_key)
                    || outbox.join(&tiles_key).exists();
                if artifact_accounted {
                    total_tiles += tiles as usize;
                    tile_file_names.insert(tiles_key);
                    continue;
                }
                // Artifact lost under a journaled completion (workdir
                // tampering): fall through and regenerate it.
            } else if resume.tile_files.contains_key(&scan_key) {
                continue;
            }
            to_preprocess.push(paths.clone());
        }
        // Attribute the stage's allocations (tile buffers, outcome
        // collection) when the counting allocator is installed.
        let mem_scope = self
            .obs
            .as_ref()
            .map(|o| eoml_obs::ResourceGuard::enter(Arc::clone(o), "preprocess", "map"));
        let outcomes = self.executor.map(to_preprocess, |[p02, p03, p06]| {
            let granule = granule_from_mod02_path(&p02);
            preprocess_granule_files(&p02, &p03, &p06, &tiles_dir, &self.criteria)
                .map(|out| (granule, out))
                .map_err(|e| e.to_string())
        });
        for o in &outcomes {
            match o {
                Ok((granule, out)) => {
                    total_tiles += out.tiles.len();
                    let key = match &out.output {
                        Some(path) => {
                            let name = path
                                .file_name()
                                .and_then(|n| n.to_str())
                                .ok_or("bad tile file name")?
                                .to_string();
                            tile_file_names.insert(name.clone());
                            name
                        }
                        None => format!("scan-{}", granule.as_deref().unwrap_or("unknown-granule")),
                    };
                    if !resume.has_tile_file(&key) {
                        record(
                            journal,
                            JournalEvent::TileFileWritten {
                                file: key,
                                tiles: out.tiles.len() as u64,
                            },
                        )?;
                    }
                }
                Err(e) => return Err(format!("preprocess failed: {e}").into()),
            }
        }
        drop(mem_scope);
        stage_finished(journal, "preprocess")?;
        if let Some(mut span) = stage_span {
            span.attr("tiles", total_tiles);
        }
        let preprocess_secs = t1.elapsed().as_secs_f64();

        // Stages 3+4: monitor the tiles directory and run the inference
        // flow per discovered file.
        let t2 = Instant::now();
        let stage_span = self.obs.as_ref().map(|o| o.span("monitor", "crawl"));
        stage_started(journal, "inference")?;
        let mut crawler = DirectoryCrawler::new(&tiles_dir, ".nc");
        let flow = FlowDefinition::inference_flow();
        let mut labeled_tiles = 0usize;
        let mut histogram = vec![0usize; self.model.num_classes()];

        // Fold journaled-complete inference back into the tallies by
        // reading the shipped artifacts (the labels themselves are not in
        // the journal; the files are the source of truth).
        for (file, (labels, _bytes)) in &resume.labeled {
            tile_file_names.insert(file.clone());
            let path = outbox.join(file);
            match std::fs::read(&path) {
                Ok(bytes) => {
                    let nc = NcFile::decode(&bytes).map_err(|e| e.to_string())?;
                    let (_, file_labels) = read_tiles_nc(&nc).map_err(|e| e.to_string())?;
                    for l in file_labels.unwrap_or_default() {
                        if l >= 0 && (l as usize) < histogram.len() {
                            histogram[l as usize] += 1;
                            labeled_tiles += 1;
                        }
                    }
                }
                // Artifact missing (workdir tampering): trust the journal
                // for the count; the class breakdown is unrecoverable.
                Err(_) => labeled_tiles += *labels as usize,
            }
        }

        // Heal the journal/filesystem gap: a file that reached the outbox
        // whose LabelsAppended append crashed is complete on disk but not
        // in the journal — journal it now instead of losing or redoing it.
        if journal.is_some() {
            let mut healed: Vec<PathBuf> = std::fs::read_dir(&outbox)
                .map_err(|e| e.to_string())?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().map(|x| x == "nc").unwrap_or(false))
                .collect();
            healed.sort();
            for path in healed {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .ok_or("bad file name")?
                    .to_string();
                if resume.is_labeled(&name) {
                    continue;
                }
                tile_file_names.insert(name.clone());
                let bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
                let nc = NcFile::decode(&bytes).map_err(|e| e.to_string())?;
                let (_, file_labels) = read_tiles_nc(&nc).map_err(|e| e.to_string())?;
                let file_labels = file_labels.unwrap_or_default();
                for &l in &file_labels {
                    if l >= 0 && (l as usize) < histogram.len() {
                        histogram[l as usize] += 1;
                        labeled_tiles += 1;
                    }
                }
                if !resume.monitor_saw(&name) {
                    record(
                        journal,
                        JournalEvent::MonitorTriggered { file: name.clone() },
                    )?;
                }
                record(
                    journal,
                    JournalEvent::LabelsAppended {
                        file: name,
                        labels: file_labels.len() as u64,
                        bytes: bytes.len() as u64,
                    },
                )?;
            }
        }

        let model = &self.model;
        let tiles_dir2 = tiles_dir.clone();
        let mut infer = move |_: &str,
                              params: &serde_json::Value,
                              _: &serde_json::Value|
              -> Result<serde_json::Value, String> {
            let file = params["file"].as_str().ok_or("missing file param")?;
            let path = tiles_dir2.join(file);
            let nc = NcFile::decode(&std::fs::read(&path).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let (tiles, existing) = read_tiles_nc(&nc).map_err(|e| e.to_string())?;
            // A crash between label-append and shipment can leave a file
            // already labeled in the tiles directory; reuse those labels
            // so the rerun is idempotent.
            if let Some(labels) = existing {
                return Ok(json!({ "labels": labels }));
            }
            let tensors: Vec<Tensor> = tiles
                .iter()
                .map(|t| Tensor::from_data(t.bands.len(), t.size, t.size, t.data.clone()))
                .collect();
            let labels = model.predict_batch(&tensors);
            Ok(json!({ "labels": labels }))
        };
        let tiles_dir3 = tiles_dir.clone();
        let mut append = move |_: &str,
                               params: &serde_json::Value,
                               _: &serde_json::Value|
              -> Result<serde_json::Value, String> {
            let file = params["file"].as_str().ok_or("missing file param")?;
            let labels: Vec<i32> = params["labels"]["labels"]
                .as_array()
                .ok_or("missing labels")?
                .iter()
                .map(|v| v.as_i64().unwrap_or(-1) as i32)
                .collect();
            let path = tiles_dir3.join(file);
            let mut nc = NcFile::decode(&std::fs::read(&path).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            // Idempotent on rerun: labels already appended by a run that
            // died before shipping this file.
            if nc.var_by_name("aicca_label").is_some() {
                return Ok(json!({ "appended": 0 }));
            }
            append_labels(&mut nc, &labels).map_err(|e| e.to_string())?;
            std::fs::write(&path, nc.encode().map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            Ok(json!({ "appended": labels.len() }))
        };
        let tiles_dir4 = tiles_dir.clone();
        let outbox2 = outbox.clone();
        let mut move_out = move |_: &str,
                                 params: &serde_json::Value,
                                 _: &serde_json::Value|
              -> Result<serde_json::Value, String> {
            let file = params["file"].as_str().ok_or("missing file param")?;
            std::fs::rename(tiles_dir4.join(file), outbox2.join(file))
                .map_err(|e| e.to_string())?;
            Ok(json!({ "moved": file }))
        };

        let mut runner = FlowRunner::new();
        if let Some(obs) = &self.obs {
            runner.obs = Some(Arc::clone(obs));
        }
        runner.register("inference", &mut infer);
        runner.register("append_labels", &mut append);
        runner.register("move_to_outbox", &mut move_out);

        // Drain the crawler (preprocessing already finished, so one crawl
        // sees everything; loop anyway to mirror the monitor structure).
        loop {
            let fresh = crawler.crawl().map_err(|e| e.to_string())?;
            if fresh.is_empty() {
                break;
            }
            for path in fresh {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .ok_or("bad file name")?
                    .to_string();
                tile_file_names.insert(name.clone());
                if !resume.monitor_saw(&name) {
                    record(
                        journal,
                        JournalEvent::MonitorTriggered { file: name.clone() },
                    )?;
                }
                let trace = crate::campaign::granule_trace_id(&name).map(TraceContext::new);
                let mut infer_span = self.obs.as_ref().map(|o| o.span("inference", "flow"));
                if let (Some(span), Some(trace)) = (infer_span.as_mut(), trace.as_ref()) {
                    span.set_trace(trace);
                }
                let run = match trace.as_ref() {
                    Some(trace) => runner.run_traced(&flow, json!({ "file": name }), trace),
                    None => runner.run(&flow, json!({ "file": name })),
                };
                if let Some(mut span) = infer_span {
                    span.attr("file", &name);
                }
                if let eoml_flows::runner::RunStatus::Failed(e) = &run.status {
                    return Err(format!("inference flow failed for {name}: {e}").into());
                }
                // Tally labels from the flow context.
                let mut file_labels = 0u64;
                if let Some(labels) = run.context["labels"]["labels"].as_array() {
                    for l in labels {
                        let l = l.as_i64().unwrap_or(-1);
                        if l >= 0 && (l as usize) < histogram.len() {
                            histogram[l as usize] += 1;
                            labeled_tiles += 1;
                            file_labels += 1;
                        }
                    }
                }
                if !resume.is_labeled(&name) {
                    let shipped_bytes = std::fs::metadata(outbox.join(&name))
                        .map(|m| m.len())
                        .unwrap_or(0);
                    record(
                        journal,
                        JournalEvent::LabelsAppended {
                            file: name,
                            labels: file_labels,
                            bytes: shipped_bytes,
                        },
                    )?;
                }
            }
        }
        stage_finished(journal, "inference")?;
        let tile_files = tile_file_names
            .iter()
            .filter(|n| n.ends_with(".nc"))
            .count();
        if let Some(mut span) = stage_span {
            span.attr("tile_files", tile_files);
        }
        let infer_secs = t2.elapsed().as_secs_f64();

        // Stage 5: the outbox *is* the destination facility here; collect
        // the shipped files.
        let t3 = Instant::now();
        let stage_span = self.obs.as_ref().map(|o| o.span("shipment", "collect"));
        stage_started(journal, "shipment")?;
        let mut shipped: Vec<PathBuf> = std::fs::read_dir(&outbox)
            .map_err(|e| e.to_string())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().map(|x| x == "nc").unwrap_or(false))
            .collect();
        shipped.sort();
        if resume.shipped.is_none() {
            let shipped_bytes: u64 = shipped
                .iter()
                .filter_map(|p| std::fs::metadata(p).ok())
                .map(|m| m.len())
                .sum();
            record(
                journal,
                JournalEvent::ShipmentFinished {
                    files: shipped.len() as u64,
                    bytes: shipped_bytes,
                },
            )?;
        }
        stage_finished(journal, "shipment")?;
        // The manifest hashes the real shipped bytes — what a destination
        // facility would verify against after the WAN hop.
        let mut manifest =
            ShipmentManifest::new("ace-defiant", "frontier-orion", t0.elapsed().as_secs_f64());
        for path in &shipped {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or("bad file name")?
                .to_string();
            let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
            manifest.artifacts.push(ArtifactEntry {
                name: name.clone(),
                bytes: bytes.len() as u64,
                digest: content_digest(&bytes),
                trace_id: crate::campaign::granule_trace_id(&name),
            });
        }
        manifest.journal = journal
            .as_ref()
            .and_then(|j| j.state_digest())
            .map(|(events, checksum)| JournalDigest { events, checksum });
        if let Some(mut span) = stage_span {
            span.attr("files", shipped.len());
        }
        let ship_secs = t3.elapsed().as_secs_f64();

        if let Some(obs) = &self.obs {
            obs.counter_add("granules", "download", granules.len() as u64);
            obs.counter_add("tile_files", "preprocess", tile_files as u64);
            obs.counter_add("labeled_tiles", "inference", labeled_tiles as u64);
            obs.counter_add("files_shipped", "shipment", shipped.len() as u64);
        }

        Ok(RealRunReport {
            granules: granules.len(),
            tile_files,
            total_tiles,
            labeled_tiles,
            label_histogram: histogram,
            outbox: shipped,
            stage_secs: [synth_secs, preprocess_secs, infer_secs, ship_secs],
            manifest: Some(manifest),
        })
    }
}

fn granule_to_json(g: &GranuleId) -> serde_json::Value {
    json!({
        "platform": g.platform.to_string(),
        "year": g.date.year(),
        "doy": g.date.ordinal(),
        "slot": g.slot,
    })
}

fn granule_from_json(v: &serde_json::Value) -> Option<GranuleId> {
    use eoml_modis::product::Platform;
    use eoml_util::timebase::CivilDate;
    let platform = match v["platform"].as_str()? {
        "Terra" => Platform::Terra,
        "Aqua" => Platform::Aqua,
        _ => return None,
    };
    let date = CivilDate::from_ordinal(v["year"].as_i64()? as i32, v["doy"].as_i64()? as u16)?;
    let slot = v["slot"].as_u64()? as u16;
    if slot >= eoml_modis::granule::SLOTS_PER_DAY {
        return None;
    }
    Some(GranuleId::new(platform, date, slot))
}

/// Granule display id recovered from a MOD02 product path
/// (`MOD021KM.A2022001.0005.eogr` → `MOD.A2022001.0005`), for naming the
/// no-tiles scan record of a night granule.
fn granule_from_mod02_path(p: &Path) -> Option<String> {
    let stem = p.file_stem()?.to_str()?;
    let mut parts = stem.split('.');
    let product = parts.next()?;
    let date = parts.next()?;
    let slot = parts.next()?;
    let prefix = if product.starts_with("MYD") {
        "MYD"
    } else {
        "MOD"
    };
    Some(format!("{prefix}.{date}.{slot}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_journal::MemStorage;
    use eoml_modis::product::Platform;
    use eoml_util::timebase::CivilDate;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eoml-realrun-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn day_granules(n: usize) -> Vec<GranuleId> {
        let sy = SwathSynthesizer::new(2022, SwathDims::small());
        let date = CivilDate::new(2022, 1, 1).unwrap();
        (0..288)
            .map(|slot| GranuleId::new(Platform::Terra, date, slot))
            .filter(|&g| sy.synthesize(g).day)
            .take(n)
            .collect()
    }

    #[test]
    fn end_to_end_real_pipeline() {
        let dir = tempdir("e2e");
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
            .unwrap()
            .with_thresholds(0.0, 0.0);
        let granules = day_granules(2);
        assert_eq!(granules.len(), 2);
        let report = pipeline.run(&granules).unwrap();
        assert_eq!(report.granules, 2);
        assert_eq!(report.tile_files, 2, "both day granules produce files");
        // 256/32 = 8 → 64 candidate windows per granule, all accepted.
        assert_eq!(report.total_tiles, 2 * 64);
        assert_eq!(report.labeled_tiles, report.total_tiles);
        assert_eq!(report.outbox.len(), 2);
        assert_eq!(
            report.label_histogram.iter().sum::<usize>(),
            report.labeled_tiles
        );
        // Labeled files in the outbox contain the aicca_label variable.
        let nc = NcFile::decode(&std::fs::read(&report.outbox[0]).unwrap()).unwrap();
        assert!(nc.var_by_name("aicca_label").is_some());
        let (tiles, labels) = read_tiles_nc(&nc).unwrap();
        assert_eq!(labels.unwrap().len(), tiles.len());
        // The tiles directory is empty (everything shipped).
        let left = std::fs::read_dir(dir.join("tiles")).unwrap().count();
        assert_eq!(left, 0);
        // The manifest hashes the real outbox bytes, and a faithful
        // destination-side ingest verifies cleanly against it.
        let manifest = report.manifest.as_ref().expect("manifest");
        assert_eq!(manifest.len(), 2);
        assert!(manifest.journal.is_none(), "plain run has no journal");
        for a in &manifest.artifacts {
            let bytes = std::fs::read(dir.join("outbox").join(&a.name)).unwrap();
            assert_eq!(a.bytes, bytes.len() as u64);
            assert_eq!(a.digest, content_digest(&bytes));
            assert!(a.trace_id.is_some(), "{} untraced", a.name);
        }
        let received: Vec<_> = manifest
            .artifacts
            .iter()
            .map(eoml_transfer::ReceivedArtifact::faithful)
            .collect();
        let ingest =
            eoml_transfer::Ingestor::new("frontier-orion").ingest(manifest, &received, 0.0);
        assert!(ingest.ok(), "clean ingest failed: {:?}", ingest.errors);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_criteria_select_fewer_tiles() {
        let dir = tempdir("strict");
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2).unwrap();
        // Default criteria: ocean-only + ≥30 % cloud.
        let granules = day_granules(3);
        let report = pipeline.run(&granules).unwrap();
        assert!(
            report.total_tiles < 3 * 64,
            "criteria must reject some windows"
        );
        assert_eq!(report.labeled_tiles, report.total_tiles);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labels_spread_across_classes() {
        let dir = tempdir("spread");
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
            .unwrap()
            .with_thresholds(0.0, 0.0);
        let report = pipeline.run(&day_granules(3)).unwrap();
        let used = report.label_histogram.iter().filter(|&&c| c > 0).count();
        assert!(used >= 3, "expected ≥3 distinct classes, got {used}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observed_real_run_records_wall_clock_stage_spans() {
        let dir = tempdir("obs");
        let obs = Obs::shared();
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
            .unwrap()
            .with_thresholds(0.0, 0.0)
            .with_obs(Arc::clone(&obs));
        let report = pipeline.run(&day_granules(2)).unwrap();
        let spans = obs.spans();
        for (stage, name) in [
            ("download", "synthesize"),
            ("preprocess", "map"),
            ("monitor", "crawl"),
            ("inference", "flow"),
            ("shipment", "collect"),
        ] {
            let span = spans
                .iter()
                .find(|s| s.stage == stage && s.name == name)
                .unwrap_or_else(|| panic!("no {stage}/{name} span"));
            assert!(span.sim_start.is_none(), "real run spans are wall-clock");
            assert!(span.wall_end_ns >= span.wall_start_ns);
        }
        // Inference flow spans nest under the monitor crawl span.
        let crawl = spans
            .iter()
            .find(|s| s.stage == "monitor" && s.name == "crawl")
            .unwrap();
        let flow = spans
            .iter()
            .find(|s| s.stage == "inference" && s.name == "flow")
            .unwrap();
        assert_eq!(flow.parent, Some(crawl.id));
        // Per-granule traces: the downloads (compute tasks), the inference
        // flow wrapper, and every flow hop carry granule trace ids.
        let traced_compute = spans
            .iter()
            .filter(|s| s.stage == "compute" && s.trace_id.is_some())
            .count();
        assert_eq!(traced_compute, 2, "one traced compute span per granule");
        assert!(flow.trace_id.is_some(), "inference flow span untraced");
        assert!(
            spans
                .iter()
                .filter(|s| s.stage == "flow")
                .all(|s| s.trace_id.is_some()),
            "flow hop missing its granule trace"
        );
        let m = obs.metrics();
        assert_eq!(m.counter_value("granules", "download"), Some(2));
        assert_eq!(
            m.counter_value("labeled_tiles", "inference"),
            Some(report.labeled_tiles as u64)
        );
        // The endpoint, executor, and flow runner instrumentation all fired.
        assert_eq!(m.counter_value("tasks_submitted", "compute"), Some(2));
        assert!(m.counter_value("tasks", "executor").unwrap_or(0) >= 2);
        assert!(m.counter_value("actions", "flow").unwrap_or(0) >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn night_only_run_produces_nothing() {
        let dir = tempdir("night");
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 1)
            .unwrap()
            .with_thresholds(0.0, 0.0);
        let sy = SwathSynthesizer::new(2022, SwathDims::small());
        let date = CivilDate::new(2022, 1, 1).unwrap();
        let night: Vec<GranuleId> = (0..288)
            .map(|slot| GranuleId::new(Platform::Terra, date, slot))
            .filter(|&g| !sy.synthesize(g).day)
            .take(2)
            .collect();
        let report = pipeline.run(&night).unwrap();
        assert_eq!(report.tile_files, 0);
        assert_eq!(report.labeled_tiles, 0);
        assert!(report.outbox.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resumable_run_without_crash_matches_plain_run_and_is_replay_safe() {
        let dir_a = tempdir("resumable-a");
        let dir_b = tempdir("resumable-b");
        let granules = day_granules(2);

        let plain = RealPipeline::new(&dir_a, 2022, SwathDims::small(), 32, 2)
            .unwrap()
            .with_thresholds(0.0, 0.0)
            .run(&granules)
            .unwrap();

        let pipeline = RealPipeline::new(&dir_b, 2022, SwathDims::small(), 32, 2)
            .unwrap()
            .with_thresholds(0.0, 0.0);
        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        let journaled = pipeline.run_resumable(&granules, &mut journal).unwrap();
        assert_eq!(journaled.granules, plain.granules);
        assert_eq!(journaled.total_tiles, plain.total_tiles);
        assert_eq!(journaled.labeled_tiles, plain.labeled_tiles);
        assert_eq!(journaled.label_histogram, plain.label_histogram);
        assert_eq!(journaled.outbox.len(), plain.outbox.len());
        let manifest = journaled.manifest.as_ref().expect("manifest");
        assert!(manifest.journal.is_some(), "journaled run records a digest");

        // Replaying the finished journal re-executes nothing and appends
        // no new completion events.
        let events_after = journal.len();
        drop(journal);
        let (mut journal, rep) = Journal::open(store).unwrap();
        assert_eq!(rep.events, events_after);
        let replay = pipeline.run_resumable(&granules, &mut journal).unwrap();
        assert_eq!(replay.total_tiles, plain.total_tiles);
        assert_eq!(replay.labeled_tiles, plain.labeled_tiles);
        assert_eq!(replay.label_histogram, plain.label_histogram);
        let completions = journal
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    JournalEvent::FileDownloaded { .. }
                        | JournalEvent::TileFileWritten { .. }
                        | JournalEvent::LabelsAppended { .. }
                )
            })
            .count();
        assert_eq!(completions, 2 + 2 + 2, "replay must not re-journal work");
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn mismatched_seed_or_label_is_rejected() {
        let dir = tempdir("guard");
        let granules = day_granules(1);
        let store = MemStorage::new();
        {
            let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 1)
                .unwrap()
                .with_thresholds(0.0, 0.0);
            let (mut journal, _) = Journal::open(store.clone()).unwrap();
            pipeline.run_resumable(&granules, &mut journal).unwrap();
        }
        // Same journal, different world seed.
        let other = RealPipeline::new(&dir, 2023, SwathDims::small(), 32, 1).unwrap();
        let (mut journal, _) = Journal::open(store).unwrap();
        assert!(other.run_resumable(&granules, &mut journal).is_err());

        // A batch-campaign journal is rejected by label.
        let store = MemStorage::new();
        let (mut j, _) = Journal::open(store.clone()).unwrap();
        j.append(JournalEvent::CampaignStarted {
            seed: 2022,
            label: "batch-campaign".into(),
        })
        .unwrap();
        drop(j);
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 1).unwrap();
        let (mut journal, _) = Journal::open(store).unwrap();
        assert!(pipeline.run_resumable(&granules, &mut journal).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Chaos harness: two-facility campaigns under deterministic failure.
//!
//! The paper's workflows span facilities that fail independently — the
//! source compute site, the WAN between sites, the destination ingestor,
//! and the campaign service itself. This module drives the full campaign
//! while killing or partitioning each of those components at *seeded*
//! injection points, then checks the recovery invariant end to end:
//!
//! > After any kill/partition schedule, the resumed run is
//! > **journal-equivalent** to an undisturbed run (same
//! > [`CampaignState::work_checksum`]), its shipped artifacts are
//! > **byte-identical** (same manifest id and per-artifact digests), and
//! > the destination records **no duplicate ingests**.
//!
//! The four injection points map onto four recovery mechanisms:
//!
//! * [`InjectionPoint::SourceFacility`] — the source site dies
//!   mid-campaign and *stays dead*. A second compute site fails the
//!   campaign over from the synced journal alone:
//!   [`Journal::open_seeded`] rebuilds a journal from the
//!   [`JournalSync`] state that travelled with the last shipment leg,
//!   and [`run_campaign_resumable`] finishes the work there.
//! * [`InjectionPoint::Wan`] — the WAN partitions during shipment; the
//!   re-ship loop backs off exponentially ([`BackoffPolicy`]) instead of
//!   hammering the link, gives up within its bounded budget while the
//!   partition holds, and converges once the link degrades back to lossy.
//! * [`InjectionPoint::Ingestor`] — the destination dies after verifying
//!   but *before* its `IngestAcked` lands durably; the restarted
//!   ingestor re-verifies idempotently and exactly one ack is journaled.
//! * [`InjectionPoint::Service`] — the whole service dies late in the
//!   campaign (during shipment bookkeeping); reopening the same journal
//!   resumes from the durable prefix.
//!
//! Every scenario is a pure function of `(CampaignParams, seed)` — the
//! same schedule replays the same kills, byte for byte — and the
//! resulting [`ChaosReport`] folds into the ops plane
//! ([`ChaosReport::fold_into_ops`]) so chaos outcomes degrade health like
//! any other operational signal.

use crate::campaign::{run_campaign_resumable, CampaignParams, CampaignReport};
use eoml_journal::{Journal, JournalError, JournalEvent, MemStorage};
use eoml_obs::{FacilityStatus, OpsPlane};
use eoml_transfer::faults::{FaultInjector, FaultPlan};
use eoml_transfer::ingest::{receive, Ingestor};
use eoml_transfer::manifest::ShipmentManifest;
use eoml_transfer::sync::{ingest_synced, reship_with_backoff, JournalSync};
use eoml_transfer::BackoffPolicy;
use eoml_util::rng::SplitMix64;
use serde_json::{json, Value};

/// The campaign's source facility (paper: the ACE "Defiant" testbed).
pub const SOURCE_FACILITY: &str = "ace-defiant";
/// The shipment destination (paper: Frontier's Orion file system).
pub const DEST_FACILITY: &str = "frontier-orion";
/// The failover compute site a lost source campaign resumes on.
pub const FAILOVER_FACILITY: &str = "perlmutter-south";

/// Where the chaos harness injects a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InjectionPoint {
    /// The source compute site dies mid-campaign and never returns;
    /// recovery is failover to a second site from the synced journal.
    SourceFacility,
    /// The WAN fully partitions during shipment, then heals into a
    /// lossy link; recovery is bounded-backoff re-shipping.
    Wan,
    /// The destination ingestor dies after verifying but before its ack
    /// is durable; recovery is idempotent re-ingestion on restart.
    Ingestor,
    /// The campaign service dies late (shipment bookkeeping); recovery
    /// is journal resume on the same site.
    Service,
}

impl InjectionPoint {
    /// All four points, in scenario order.
    pub const ALL: [InjectionPoint; 4] = [
        InjectionPoint::SourceFacility,
        InjectionPoint::Wan,
        InjectionPoint::Ingestor,
        InjectionPoint::Service,
    ];

    /// Stable label for reports and ops events.
    pub fn label(&self) -> &'static str {
        match self {
            InjectionPoint::SourceFacility => "source_facility",
            InjectionPoint::Wan => "wan",
            InjectionPoint::Ingestor => "ingestor",
            InjectionPoint::Service => "service",
        }
    }
}

/// A seeded kill/partition schedule: which injection points fire, and
/// the seed every scenario parameter (kill event index, partition
/// length, degraded-WAN loss rates) derives from deterministically.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Root seed; all injected parameters are mixed from it.
    pub seed: u64,
    /// Injection points to exercise, in order.
    pub points: Vec<InjectionPoint>,
}

impl ChaosSchedule {
    /// Every injection point under one seed.
    pub fn full(seed: u64) -> ChaosSchedule {
        ChaosSchedule {
            seed,
            points: InjectionPoint::ALL.to_vec(),
        }
    }

    /// A single injection point under one seed.
    pub fn single(seed: u64, point: InjectionPoint) -> ChaosSchedule {
        ChaosSchedule {
            seed,
            points: vec![point],
        }
    }

    /// Mix a scenario-local parameter out of the root seed.
    fn derive(&self, salt: u64) -> u64 {
        SplitMix64::mix(self.seed ^ SplitMix64::mix(salt))
    }
}

/// One scenario's verdict against the journal-equivalence invariant.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Which component was killed/partitioned.
    pub point: InjectionPoint,
    /// Human-readable scenario detail (kill index, loss rates, …).
    pub detail: String,
    /// Resumed run's state checksum equals the undisturbed baseline's.
    pub journal_equivalent: bool,
    /// Resumed shipment's manifest id and per-artifact digests equal the
    /// baseline's (byte-identical artifacts).
    pub artifacts_identical: bool,
    /// Ingest acks recorded beyond the first (must be zero).
    pub duplicate_ingests: u64,
    /// The resumed run's work checksum.
    pub resumed_checksum: u64,
    /// Shipment attempts made (Wan scenario; 1 elsewhere).
    pub attempts: usize,
    /// Total backoff seconds waited between re-ships.
    pub waited_s: f64,
}

impl ChaosOutcome {
    /// Whether the invariant held for this scenario.
    pub fn ok(&self) -> bool {
        self.journal_equivalent && self.artifacts_identical && self.duplicate_ingests == 0
    }

    /// JSON for ops events and CI artifacts.
    pub fn to_json(&self) -> Value {
        json!({
            "point": self.point.label(),
            "detail": self.detail,
            "ok": self.ok(),
            "journal_equivalent": self.journal_equivalent,
            "artifacts_identical": self.artifacts_identical,
            "duplicate_ingests": self.duplicate_ingests,
            "resumed_checksum": format!("{:016x}", self.resumed_checksum),
            "attempts": self.attempts,
            "waited_s": self.waited_s,
        })
    }
}

/// The harness's full verdict: the undisturbed baseline plus one
/// [`ChaosOutcome`] per scheduled injection point.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The schedule's root seed.
    pub seed: u64,
    /// Undisturbed run's work checksum — the equivalence reference.
    pub baseline_checksum: u64,
    /// Undisturbed run's manifest id — the byte-identity reference.
    pub baseline_manifest: String,
    /// Durable events behind the undisturbed run.
    pub baseline_events: u64,
    /// Per-scenario verdicts, in schedule order.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Whether every scenario upheld the invariant.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.ok())
    }

    /// JSON for CI artifacts (`chaos_report.json`).
    pub fn to_json(&self) -> Value {
        json!({
            "seed": self.seed,
            "baseline_checksum": format!("{:016x}", self.baseline_checksum),
            "baseline_manifest": self.baseline_manifest,
            "baseline_events": self.baseline_events,
            "all_ok": self.all_ok(),
            "outcomes": self.outcomes.iter().map(|o| o.to_json()).collect::<Vec<_>>(),
        })
    }

    /// Fold the chaos verdicts into the ops plane: one `chaos_injection`
    /// event per scenario, a `chaos_summary` event, and a destination
    /// [`FacilityStatus`] whose verify counters carry the scenario
    /// pass/fail tally — so a broken recovery path degrades health
    /// exactly like a failing production ingest would.
    pub fn fold_into_ops(&self, plane: &mut OpsPlane) {
        for outcome in &self.outcomes {
            plane.event("chaos_injection", outcome.to_json());
        }
        plane.event("chaos_summary", self.to_json());
        let failed = self.outcomes.iter().filter(|o| !o.ok()).count() as u64;
        let passed = self.outcomes.len() as u64 - failed;
        plane.record_facility(FacilityStatus {
            facility: DEST_FACILITY.to_string(),
            ingest_lag_s: 0.0,
            verified: passed,
            verify_failures: failed,
        });
    }
}

/// Run the undisturbed journaled baseline: the reference every chaos
/// scenario's resumed run must be journal-equivalent to.
fn run_baseline(params: &CampaignParams) -> Result<(CampaignReport, u64, u64), JournalError> {
    let store = MemStorage::new();
    let (journal, _) = Journal::open(store.clone())?;
    let report = run_campaign_resumable(params.clone(), journal)?;
    let (journal, _) = Journal::open(store)?;
    let checksum = journal.state().work_checksum();
    let events = journal.len() as u64;
    Ok((report, checksum, events))
}

/// Kill the campaign after `kill_after` durable appends, then resume it
/// over the same storage until it completes. Returns the finished report,
/// the final durable checksum, and whether the kill actually fired.
fn run_killed(
    params: &CampaignParams,
    kill_after: usize,
) -> Result<(CampaignReport, u64, bool), JournalError> {
    let store = MemStorage::new();
    let mut killed = false;
    loop {
        let (mut journal, _) = Journal::open(store.clone())?;
        if !killed {
            journal.crash_after(kill_after);
        }
        match run_campaign_resumable(params.clone(), journal) {
            Err(JournalError::Crashed) => {
                killed = true;
                continue;
            }
            Err(e) => return Err(e),
            Ok(report) => {
                let (journal, _) = Journal::open(store)?;
                let checksum = journal.state().work_checksum();
                return Ok((report, checksum, killed));
            }
        }
    }
}

/// Do the resumed run's shipped artifacts match the baseline's, byte for
/// byte? Manifest id folds route + sorted `(name, bytes, digest)` — but
/// compare the artifact list explicitly so a mismatch names itself.
fn artifacts_identical(baseline: &ShipmentManifest, resumed: Option<&ShipmentManifest>) -> bool {
    let Some(resumed) = resumed else { return false };
    if baseline.id() != resumed.id() || baseline.len() != resumed.len() {
        return false;
    }
    baseline
        .artifacts
        .iter()
        .zip(&resumed.artifacts)
        .all(|(a, b)| a.name == b.name && a.bytes == b.bytes && a.digest == b.digest)
}

/// Run every scheduled injection scenario against `params` and report the
/// journal-equivalence verdicts. Deterministic in `(params, schedule)`.
pub fn run_chaos_campaign(
    params: &CampaignParams,
    schedule: &ChaosSchedule,
) -> Result<ChaosReport, JournalError> {
    let (baseline, baseline_checksum, baseline_events) = run_baseline(params)?;
    let baseline_manifest = baseline
        .manifest
        .as_ref()
        .expect("journaled campaign produces a manifest");
    let baseline_sync = baseline
        .journal_sync
        .as_ref()
        .expect("journaled campaign produces a journal-sync payload");
    if baseline_manifest.is_empty() {
        // Nothing shipped → the WAN/ingestor scenarios would pass
        // vacuously; refuse instead of reporting a hollow success.
        return Err(JournalError::Io(
            "chaos harness needs a campaign that ships at least one artifact \
             (raise files_per_day)"
                .to_string(),
        ));
    }

    let mut outcomes = Vec::new();
    for (i, point) in schedule.points.iter().enumerate() {
        let salt = (i as u64 + 1) * 0x9e37;
        let outcome = match point {
            InjectionPoint::SourceFacility => failover_scenario(
                params,
                schedule,
                salt,
                baseline_checksum,
                baseline_events,
                baseline_manifest,
            )?,
            InjectionPoint::Service => service_scenario(
                params,
                schedule,
                salt,
                baseline_checksum,
                baseline_events,
                baseline_manifest,
            )?,
            InjectionPoint::Wan => wan_scenario(
                schedule,
                salt,
                baseline_checksum,
                baseline_manifest,
                baseline_sync,
            ),
            InjectionPoint::Ingestor => ingestor_scenario(
                schedule,
                salt,
                baseline_checksum,
                baseline_manifest,
                baseline_sync,
            )?,
        };
        outcomes.push(outcome);
    }

    Ok(ChaosReport {
        seed: schedule.seed,
        baseline_checksum,
        baseline_manifest: baseline_manifest.id(),
        baseline_events,
        outcomes,
    })
}

/// Source-facility outage: the site dies mid-campaign and stays dead.
/// The durable journal prefix — exactly what the journal-sync leg had
/// shipped — seeds a fresh journal on a second site via
/// [`Journal::open_seeded`], and the campaign finishes there.
fn failover_scenario(
    params: &CampaignParams,
    schedule: &ChaosSchedule,
    salt: u64,
    baseline_checksum: u64,
    baseline_events: u64,
    baseline_manifest: &ShipmentManifest,
) -> Result<ChaosOutcome, JournalError> {
    // Kill somewhere in the first half of the event stream — early enough
    // that real work remains for the failover site.
    let span = (baseline_events / 2).max(1);
    let kill_after = 1 + (schedule.derive(salt) % span) as usize;

    // The source facility runs until the kill fires, then is lost.
    let source_store = MemStorage::new();
    let (mut source_journal, _) = Journal::open(source_store.clone())?;
    source_journal.crash_after(kill_after);
    match run_campaign_resumable(params.clone(), source_journal) {
        Err(JournalError::Crashed) => {}
        Err(e) => return Err(e),
        Ok(_) => {
            // The kill point sat past the campaign's total event count —
            // nothing died, so the run already matches the baseline.
            let (journal, _) = Journal::open(source_store)?;
            return Ok(ChaosOutcome {
                point: InjectionPoint::SourceFacility,
                detail: format!("kill_after={kill_after} (past end; no outage fired)"),
                journal_equivalent: journal.state().work_checksum() == baseline_checksum,
                artifacts_identical: true,
                duplicate_ingests: 0,
                resumed_checksum: journal.state().work_checksum(),
                attempts: 1,
                waited_s: 0.0,
            });
        }
    }

    // All that survives the outage is the synced journal: package the
    // durable prefix exactly as the last sync leg shipped it.
    let (dead_site, _) = Journal::open(source_store)?;
    let synced = JournalSync::from_state(dead_site.len() as u64, dead_site.state());
    drop(dead_site);

    // Second site: rebuild a journal from the synced state alone and run
    // the same campaign params — resumable picks up mid-stream.
    let failover_store = MemStorage::new();
    let seeded_state = synced
        .state()
        .map_err(|e| JournalError::Io(format!("synced state corrupt: {e}")))?;
    let (failover_journal, _) = Journal::open_seeded(failover_store.clone(), seeded_state)?;
    let resumed = run_campaign_resumable(params.clone(), failover_journal)?;
    let (failover_journal, _) = Journal::open(failover_store)?;
    let resumed_checksum = failover_journal.state().work_checksum();

    Ok(ChaosOutcome {
        point: InjectionPoint::SourceFacility,
        detail: format!(
            "{SOURCE_FACILITY} lost after {kill_after} events; failed over to {FAILOVER_FACILITY} from synced journal"
        ),
        journal_equivalent: resumed_checksum == baseline_checksum,
        artifacts_identical: artifacts_identical(baseline_manifest, resumed.manifest.as_ref()),
        duplicate_ingests: 0,
        resumed_checksum,
        attempts: 1,
        waited_s: 0.0,
    })
}

/// Whole-service death late in the campaign (shipment bookkeeping),
/// recovered by reopening the same journal on the same site.
fn service_scenario(
    params: &CampaignParams,
    schedule: &ChaosSchedule,
    salt: u64,
    baseline_checksum: u64,
    baseline_events: u64,
    baseline_manifest: &ShipmentManifest,
) -> Result<ChaosOutcome, JournalError> {
    // Kill in the second half — the worst-case window where most work is
    // durable and only the tail must replay.
    let half = (baseline_events / 2).max(1);
    let kill_after = (half + schedule.derive(salt) % half).max(1) as usize;
    let (resumed, resumed_checksum, killed) = run_killed(params, kill_after)?;
    Ok(ChaosOutcome {
        point: InjectionPoint::Service,
        detail: format!(
            "service killed after {kill_after} events (fired={killed}); journal resume"
        ),
        journal_equivalent: resumed_checksum == baseline_checksum,
        artifacts_identical: artifacts_identical(baseline_manifest, resumed.manifest.as_ref()),
        duplicate_ingests: 0,
        resumed_checksum,
        attempts: 1,
        waited_s: 0.0,
    })
}

/// WAN partition during shipment: a hard partition exhausts its bounded
/// backoff budget without converging, then the link heals into a lossy
/// degraded state and the re-ship loop converges — exactly one ack, no
/// duplicates, waits matching the backoff policy.
fn wan_scenario(
    schedule: &ChaosSchedule,
    salt: u64,
    baseline_checksum: u64,
    baseline_manifest: &ShipmentManifest,
    baseline_sync: &JournalSync,
) -> ChaosOutcome {
    let policy = BackoffPolicy::wan_default();
    let mut ingestor = Ingestor::new(DEST_FACILITY);

    // Phase 1 — full partition: every flow drops. The bounded budget
    // must give up instead of retrying forever.
    let partition_budget = 3 + (schedule.derive(salt) % 3) as usize;
    let mut partition = FaultInjector::new(FaultPlan {
        drop_probability: 1.0,
        corrupt_probability: 0.0,
    })
    .with_seed(schedule.derive(salt ^ 0x11));
    let cut = reship_with_backoff(
        baseline_manifest,
        Some(baseline_sync),
        &mut ingestor,
        &mut partition,
        &policy,
        partition_budget,
        0.0,
    )
    .expect("sync payload verifies against its own manifest");
    let partition_held = !cut.acked && cut.attempts == partition_budget + 1;

    // Phase 2 — the partition heals into a degraded, lossy WAN; bounded
    // backoff re-ships until the destination verifies clean. Loss rates
    // are per-artifact, so keep them modest enough that a whole manifest
    // has a workable per-attempt success probability.
    let drop_p = 0.05 + (schedule.derive(salt ^ 0x22) % 15) as f64 / 100.0;
    let corrupt_p = 0.02 + (schedule.derive(salt ^ 0x33) % 8) as f64 / 100.0;
    let mut degraded = FaultInjector::new(FaultPlan {
        drop_probability: drop_p,
        corrupt_probability: corrupt_p,
    })
    .with_seed(schedule.derive(salt ^ 0x44));
    let healed = reship_with_backoff(
        baseline_manifest,
        Some(baseline_sync),
        &mut ingestor,
        &mut degraded,
        &policy,
        2000,
        cut.finished_s,
    )
    .expect("sync payload verifies against its own manifest");
    let duplicates = healed
        .reports
        .iter()
        .chain(&cut.reports)
        .filter(|r| r.duplicate)
        .count() as u64;
    let converged = healed.acked && ingestor.acked_count() == 1;

    ChaosOutcome {
        point: InjectionPoint::Wan,
        detail: format!(
            "partition ({} attempts, {:.1}s backoff) then degraded WAN drop={drop_p:.2} corrupt={corrupt_p:.2}",
            cut.attempts, cut.waited_s
        ),
        // The WAN never touches the source journal; equivalence here is
        // the synced digest still matching the baseline state.
        journal_equivalent: partition_held
            && converged
            && baseline_sync.digest.checksum == baseline_checksum,
        artifacts_identical: converged,
        duplicate_ingests: duplicates,
        resumed_checksum: baseline_sync.digest.checksum,
        attempts: cut.attempts + healed.attempts,
        waited_s: cut.waited_s + healed.waited_s,
    }
}

/// Destination-ingestor death between verification and the durable ack:
/// the restart must re-verify idempotently and journal exactly one ack.
fn ingestor_scenario(
    schedule: &ChaosSchedule,
    salt: u64,
    baseline_checksum: u64,
    baseline_manifest: &ShipmentManifest,
    baseline_sync: &JournalSync,
) -> Result<ChaosOutcome, JournalError> {
    let dest_store = MemStorage::new();
    let (mut dest_journal, _) = Journal::open(dest_store.clone())?;
    let mut ingestor = Ingestor::new(DEST_FACILITY);
    let mut clean = FaultInjector::new(FaultPlan::none()).with_seed(schedule.derive(salt));
    let received = receive(baseline_manifest, &mut clean);

    // First ingest verifies clean…
    let first = ingest_synced(
        &mut ingestor,
        baseline_manifest,
        baseline_sync,
        &received,
        5.0,
    )
    .expect("synced manifest verifies");
    let first_ok = first.ok() && !first.duplicate;

    // …but the ingestor dies before the ack lands durably.
    dest_journal.crash_after(0);
    let ack_lost = dest_journal
        .append(JournalEvent::IngestAcked {
            manifest: first.manifest_id.clone(),
            facility: DEST_FACILITY.into(),
            files: first.verified.len() as u64,
            bytes: first.bytes_verified,
        })
        .is_err();
    drop(dest_journal);

    // Restart: the durable journal has no ack, so the restored acked-set
    // is empty and the re-ship re-verifies instead of trusting the lost
    // ack — idempotent, not duplicate-producing.
    let (mut dest_journal, _) = Journal::open(dest_store.clone())?;
    let ack_was_lost = !dest_journal
        .state()
        .is_ingest_acked(&baseline_manifest.id());
    let mut restarted = Ingestor::new(DEST_FACILITY);
    restarted.restore_acked(dest_journal.state().ingests_acked.keys().cloned());
    let second = ingest_synced(
        &mut restarted,
        baseline_manifest,
        baseline_sync,
        &received,
        9.0,
    )
    .expect("synced manifest verifies on restart");
    let second_ok = second.ok() && !second.duplicate;
    dest_journal.append(JournalEvent::IngestAcked {
        manifest: second.manifest_id.clone(),
        facility: DEST_FACILITY.into(),
        files: second.verified.len() as u64,
        bytes: second.bytes_verified,
    })?;
    drop(dest_journal);

    // A further re-ship against the durable ack is a duplicate no-op.
    let (dest_journal, _) = Journal::open(dest_store)?;
    let acked_once = dest_journal.state().ingests_acked.len() == 1
        && dest_journal
            .state()
            .is_ingest_acked(&baseline_manifest.id());
    let third = restarted.ingest(baseline_manifest, &received, 12.0);
    let idempotent = third.duplicate;

    let recovered = first_ok && ack_lost && ack_was_lost && second_ok && acked_once && idempotent;
    Ok(ChaosOutcome {
        point: InjectionPoint::Ingestor,
        detail: "ingestor died pre-ack; restart re-verified and acked exactly once".to_string(),
        journal_equivalent: recovered && baseline_sync.digest.checksum == baseline_checksum,
        artifacts_identical: recovered,
        // Acks beyond the first durable one (the restart's) are duplicates.
        duplicate_ingests: dest_journal.state().ingests_acked.len() as u64 - 1,
        resumed_checksum: baseline_sync.digest.checksum,
        attempts: 1,
        waited_s: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignParams {
        // `small()`'s 4 files/day can label zero day granules, leaving an
        // empty manifest with nothing to partition; 24 guarantees cargo.
        CampaignParams {
            files_per_day: 24,
            ..CampaignParams::small()
        }
    }

    #[test]
    fn full_schedule_upholds_the_invariant_under_a_fixed_seed() {
        let schedule = ChaosSchedule::full(0xc4a05);
        let report = run_chaos_campaign(&small(), &schedule).expect("harness runs");
        assert_eq!(report.outcomes.len(), 4);
        for outcome in &report.outcomes {
            assert!(
                outcome.ok(),
                "{} scenario broke the invariant: {:?}",
                outcome.point.label(),
                outcome
            );
            assert_eq!(outcome.duplicate_ingests, 0);
        }
        assert!(report.all_ok());
    }

    #[test]
    fn schedules_replay_deterministically() {
        let schedule = ChaosSchedule::full(42);
        let a = run_chaos_campaign(&small(), &schedule).unwrap();
        let b = run_chaos_campaign(&small(), &schedule).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn report_json_carries_every_scenario() {
        let schedule = ChaosSchedule::single(7, InjectionPoint::Service);
        let report = run_chaos_campaign(&small(), &schedule).unwrap();
        let json = report.to_json();
        assert_eq!(json["outcomes"].as_array().unwrap().len(), 1);
        assert_eq!(json["outcomes"][0]["point"].as_str(), Some("service"));
        assert_eq!(json["all_ok"].as_bool(), Some(true));
        assert_eq!(
            json["baseline_checksum"].as_str().unwrap().len(),
            16,
            "checksum renders as 16 hex digits"
        );
    }
}

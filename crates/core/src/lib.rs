//! `eoml-core` — the automated multi-facility EO-ML workflow (the paper's
//! primary contribution).
//!
//! The workflow orchestrates five stages across facilities:
//!
//! 1. **Download** — MODIS granule files from the (synthetic) LAADS archive
//!    to the cluster file system, via a worker pool over the flow network.
//! 2. **Preprocess** — swath → ocean-cloud tiles on Slurm-provisioned nodes
//!    through the Parsl-like executor.
//! 3. **Monitor & Trigger** — a crawler detects finished tile files and
//!    starts one inference flow per file; inference overlaps preprocessing
//!    as in the paper's Fig. 6.
//! 4. **Inference** — RICC/AICCA label assignment, labels appended to the
//!    NetCDF files.
//! 5. **Shipment** — labeled files transferred to the destination facility.
//!
//! Two execution paths share this orchestration logic:
//!
//! * [`campaign`] — *virtual time*: the full multi-facility system runs
//!   inside one discrete-event simulation ([`world::World`] composes the
//!   flow network, the cluster model, Slurm, the crawler and telemetry).
//!   This is the path that reproduces the paper's figures at 10-node,
//!   80-worker scale on a laptop.
//! * [`realrun`] — *real execution*: synthesizes granules to disk, runs the
//!   actual preprocessing kernels on a thread pool, monitors the real file
//!   system, and runs real RICC inference — the "it actually works" path
//!   used by the examples and integration tests.
//!
//! [`telemetry`] provides the instrumentation both paths feed: per-stage
//! worker-activity timelines (Fig. 6) and span-based latency breakdowns
//! (Fig. 7).

pub mod atlas;
pub mod campaign;
pub mod chaos;
pub mod provenance;
pub mod realrun;
pub mod scheduler;
pub mod streaming;
pub mod telemetry;
pub mod world;

pub use atlas::{Atlas, ClassStats};
pub use campaign::{run_campaign, CampaignParams, CampaignReport, StageReport};
pub use chaos::{run_chaos_campaign, ChaosOutcome, ChaosReport, ChaosSchedule, InjectionPoint};
pub use provenance::{ProvRecord, ProvenanceLog};
pub use realrun::{RealPipeline, RealRunError, RealRunReport};
pub use scheduler::{
    day_namespace, run_day_in_namespace, run_day_in_namespace_ticked, run_multi_day_resumable,
    run_multi_day_resumable_ticked, run_streaming_days_resumable, DayRun, MultiDayReport,
    StreamingDayRun,
};
pub use streaming::{
    run_streaming_campaign, try_run_streaming_campaign, StreamingError, StreamingParams,
    StreamingReport,
};
pub use telemetry::{Span, Telemetry};
pub use world::World;

//! Multi-day campaign scheduler over a journal [`Ledger`].
//!
//! The resumable drivers are deliberately single-day: one journal, one
//! day, one namespace. This module is the multi-day entry point the
//! streaming error message promises — it walks the campaign window one
//! day at a time, opening each day's journal under its own ledger
//! namespace (`day-YYYY-MM-DD/wal.log`), running the single-day resumable
//! driver against it, and compacting the day's journal once the day
//! completes. Killing the process anywhere leaves a ledger that resumes:
//! finished days replay from their (compacted) journals without
//! re-executing anything, and the interrupted day picks up from its last
//! durable event.

use crate::campaign::{run_campaign_resumable, CampaignParams, CampaignReport};
use crate::streaming::{
    run_streaming_campaign_resumable, StreamingError, StreamingParams, StreamingReport,
};
use eoml_journal::{JournalError, Ledger};
use eoml_util::timebase::CivilDate;

/// Ledger namespace for one campaign day.
pub fn day_namespace(date: CivilDate) -> String {
    format!("day-{date}")
}

/// One day of a multi-day run.
#[derive(Debug, Clone)]
pub struct DayRun {
    /// The day.
    pub date: CivilDate,
    /// Ledger namespace holding this day's journal.
    pub namespace: String,
    /// Events recovered from the day's journal before the run (0 on a
    /// fresh day, >0 when resuming).
    pub recovered_events: usize,
    /// The single-day campaign report.
    pub report: CampaignReport,
}

/// Aggregate result of a multi-day scheduled run.
#[derive(Debug, Clone)]
pub struct MultiDayReport {
    /// Per-day runs, in date order.
    pub days: Vec<DayRun>,
    /// Total granules across days.
    pub granules: usize,
    /// Total tile files across days.
    pub tile_files: usize,
    /// Total tiles across days.
    pub total_tiles: f64,
    /// Total labeled files across days.
    pub labeled_files: usize,
    /// Sum of per-day makespans, seconds (days run back to back).
    pub makespan_s: f64,
}

impl MultiDayReport {
    fn push(&mut self, day: DayRun) {
        self.granules += day.report.granules;
        self.tile_files += day.report.tile_files;
        self.total_tiles += day.report.total_tiles;
        self.labeled_files += day.report.labeled_files;
        self.makespan_s += day.report.makespan_s;
        self.days.push(day);
    }
}

/// Run one day of `params` resumably under an explicit ledger `namespace`,
/// compacting the day's journal once it completes.
///
/// This is the single admission quantum both multi-day scheduling and the
/// multi-tenant campaign service are built from: open (or recover) the
/// namespace's journal, run the single-day resumable driver for `date`,
/// then bound the journal to snapshot + tail. Killing the process anywhere
/// inside leaves a journal that resumes; rerunning a completed quantum
/// replays it with zero re-execution.
pub fn run_day_in_namespace(
    params: &CampaignParams,
    ledger: &Ledger,
    namespace: &str,
    date: CivilDate,
) -> Result<DayRun, JournalError> {
    run_day_in_namespace_ticked(params, ledger, namespace, date, None)
}

/// [`run_day_in_namespace`] with a per-quantum tick hook.
///
/// `tick` runs once, after the quantum durably completes (journal
/// compacted) but before the result is returned — the seam the ops plane
/// hangs on: the hook observes the finished [`DayRun`] (makespan advances
/// the sim-time ops clock, counters roll into windows) exactly once per
/// *completed* quantum, so a quantum killed mid-run contributes nothing
/// and is observed on the post-restart replay instead.
pub fn run_day_in_namespace_ticked(
    params: &CampaignParams,
    ledger: &Ledger,
    namespace: &str,
    date: CivilDate,
    tick: Option<&dyn Fn(&DayRun)>,
) -> Result<DayRun, JournalError> {
    let (journal, recovery) = ledger.open(namespace)?;
    let day_params = CampaignParams {
        start: date,
        days: 1,
        ..params.clone()
    };
    let report = run_campaign_resumable(day_params, journal)?;
    // The day is durably complete: bound its journal to snapshot+tail.
    let (mut journal, _) = ledger.open(namespace)?;
    journal.compact()?;
    let day = DayRun {
        date,
        namespace: namespace.to_string(),
        recovered_events: recovery.events,
        report,
    };
    if let Some(tick) = tick {
        tick(&day);
    }
    Ok(day)
}

/// Run a multi-day batch campaign resumably against `ledger`.
///
/// `params.days` consecutive days starting at `params.start` each run as
/// an independent single-day [`run_campaign_resumable`] whose journal
/// lives under the ledger namespace [`day_namespace`]`(date)`. After a day
/// completes, its journal is compacted down to snapshot + tail, so a
/// long-running multi-day campaign's ledger stays bounded. On a rerun
/// (same ledger, same params) completed days replay from their journals
/// with zero re-execution and an interrupted day resumes mid-flight.
///
/// The ledger root is held exclusively for the duration of the run: a
/// second concurrent caller over the same root gets a typed
/// [`JournalError::Busy`] instead of the two schedulers interleaving day
/// namespaces. Returns [`JournalError::Crashed`] when a day's journal hits
/// its injected kill point; rerunning with the same ledger resumes.
pub fn run_multi_day_resumable(
    params: CampaignParams,
    ledger: &Ledger,
) -> Result<MultiDayReport, JournalError> {
    run_multi_day_resumable_ticked(params, ledger, None)
}

/// [`run_multi_day_resumable`] with a per-quantum tick hook (see
/// [`run_day_in_namespace_ticked`] for the hook contract).
pub fn run_multi_day_resumable_ticked(
    params: CampaignParams,
    ledger: &Ledger,
    tick: Option<&dyn Fn(&DayRun)>,
) -> Result<MultiDayReport, JournalError> {
    let _lock = ledger.lock_exclusive()?;
    let mut out = MultiDayReport {
        days: Vec::new(),
        granules: 0,
        tile_files: 0,
        total_tiles: 0.0,
        labeled_files: 0,
        makespan_s: 0.0,
    };
    for date in params.start.iter_days(params.days) {
        let namespace = day_namespace(date);
        out.push(run_day_in_namespace_ticked(
            &params, ledger, &namespace, date, tick,
        )?);
    }
    Ok(out)
}

/// One day of a multi-day streaming run.
#[derive(Debug, Clone)]
pub struct StreamingDayRun {
    /// The day.
    pub date: CivilDate,
    /// Ledger namespace holding this day's journal.
    pub namespace: String,
    /// Events recovered from the day's journal before the run.
    pub recovered_events: usize,
    /// The single-day streaming report.
    pub report: StreamingReport,
}

/// Run a multi-day *streaming* campaign resumably against `ledger` — the
/// multi-day scheduler the single-day [`StreamingError::UnsupportedDays`]
/// error points at. Each day streams its own (compressed) acquisition
/// timeline under its own namespace; days run back to back.
pub fn run_streaming_days_resumable(
    params: StreamingParams,
    ledger: &Ledger,
) -> Result<Vec<StreamingDayRun>, StreamingError> {
    let _lock = ledger.lock_exclusive()?;
    let mut days = Vec::new();
    for date in params.base.start.iter_days(params.base.days) {
        let namespace = format!("stream-{date}");
        let (journal, recovery) = ledger.open(&namespace)?;
        let day_params = StreamingParams {
            base: CampaignParams {
                start: date,
                days: 1,
                ..params.base.clone()
            },
            ..params.clone()
        };
        let report = run_streaming_campaign_resumable(day_params, journal)?;
        let (mut journal, _) = ledger.open(&namespace)?;
        journal.compact()?;
        days.push(StreamingDayRun {
            date,
            namespace,
            recovered_events: recovery.events,
            report,
        });
    }
    Ok(days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use eoml_journal::{JournalError, JournalEvent};
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eoml-scheduler-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn params(days: usize) -> CampaignParams {
        CampaignParams {
            days,
            files_per_day: 4,
            ..CampaignParams::small()
        }
    }

    #[test]
    fn multi_day_runs_each_day_in_its_own_namespace() {
        let root = tempdir("namespaces");
        let ledger = Ledger::new(&root).unwrap().with_snapshot_every(8);
        let report = run_multi_day_resumable(params(3), &ledger).unwrap();
        assert_eq!(report.days.len(), 3);
        assert_eq!(
            ledger.campaigns().unwrap(),
            vec!["day-2022-01-01", "day-2022-01-02", "day-2022-01-03"]
        );
        // Days differ (different granule sets) but every day did work.
        for day in &report.days {
            assert_eq!(day.recovered_events, 0, "fresh ledger: nothing recovered");
            assert_eq!(day.report.granules, 4);
        }
        assert_eq!(report.granules, 12);
        assert!(report.total_tiles > 0.0);
        // Each day matches a standalone single-day run of that date.
        for day in &report.days {
            let single = run_campaign(CampaignParams {
                start: day.date,
                days: 1,
                ..params(3)
            });
            assert_eq!(day.report.granules, single.granules);
            assert_eq!(day.report.total_tiles, single.total_tiles);
            assert_eq!(day.report.labeled_files, single.labeled_files);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tick_hook_fires_once_per_completed_quantum_with_its_makespan() {
        let root = tempdir("ticked");
        let ledger = Ledger::new(&root).unwrap();
        let ticks = std::cell::RefCell::new(Vec::<(String, f64)>::new());
        let tick = |day: &DayRun| {
            ticks
                .borrow_mut()
                .push((day.namespace.clone(), day.report.makespan_s));
        };
        let report = run_multi_day_resumable_ticked(params(3), &ledger, Some(&tick)).unwrap();
        let seen = ticks.borrow();
        assert_eq!(seen.len(), 3);
        // One tick per day namespace, carrying that day's makespan; the
        // sum is the ops clock advance for the whole run.
        for (day, (ns, makespan)) in report.days.iter().zip(seen.iter()) {
            assert_eq!(&day.namespace, ns);
            assert_eq!(day.report.makespan_s, *makespan);
            assert!(*makespan > 0.0);
        }
        let total: f64 = seen.iter().map(|(_, m)| m).sum();
        assert!((total - report.makespan_s).abs() < 1e-9);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rerun_replays_completed_days_without_new_completions() {
        let root = tempdir("replay");
        let ledger = Ledger::new(&root).unwrap();
        let first = run_multi_day_resumable(params(2), &ledger).unwrap();
        let sizes_after_first = ledger.total_size().unwrap();
        let second = run_multi_day_resumable(params(2), &ledger).unwrap();
        for day in &second.days {
            assert!(
                day.recovered_events > 0,
                "second pass must resume from the journal"
            );
        }
        assert_eq!(first.granules, second.granules);
        assert_eq!(first.total_tiles, second.total_tiles);
        assert_eq!(first.labeled_files, second.labeled_files);
        // Replay journaled nothing new and each day was re-compacted, so
        // the ledger did not grow.
        assert!(ledger.total_size().unwrap() <= sizes_after_first);
        // No completion event appears twice in any day's journal.
        for ns in ledger.campaigns().unwrap() {
            let (journal, _) = ledger.open(&ns).unwrap();
            let mut seen = std::collections::BTreeSet::new();
            for ev in journal.events() {
                if let JournalEvent::LabelsAppended { file, .. } = ev {
                    assert!(seen.insert(file.clone()), "{ns}: duplicate label {file}");
                }
            }
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn crash_on_day_two_resumes_there_and_matches_uninterrupted() {
        let root_a = tempdir("crash-a");
        let root_b = tempdir("crash-b");
        let uninterrupted =
            run_multi_day_resumable(params(2), &Ledger::new(&root_a).unwrap()).unwrap();

        // Crash during day 2: open day 2's journal with a kill point set,
        // then run the scheduler — day 1 completes, day 2 dies.
        let ledger = Ledger::new(&root_b).unwrap();
        {
            let (mut j, _) = ledger.open(&day_namespace(params(2).start.succ())).unwrap();
            j.crash_after(5);
            // The kill point lives in the Journal value, not in storage,
            // so drive day 2 directly with the armed journal.
            let day2 = CampaignParams {
                start: params(2).start.succ(),
                days: 1,
                ..params(2)
            };
            let err = run_campaign_resumable(day2, j).unwrap_err();
            assert_eq!(err, JournalError::Crashed);
        }
        // The scheduler now finds a half-written day 2 journal and a fresh
        // day 1; it completes both.
        let resumed = run_multi_day_resumable(params(2), &ledger).unwrap();
        assert!(
            resumed.days[1].recovered_events > 0,
            "day 2 must resume from its crashed journal"
        );
        assert_eq!(resumed.granules, uninterrupted.granules);
        assert_eq!(resumed.total_tiles, uninterrupted.total_tiles);
        assert_eq!(resumed.labeled_files, uninterrupted.labeled_files);
        std::fs::remove_dir_all(&root_a).unwrap();
        std::fs::remove_dir_all(&root_b).unwrap();
    }

    #[test]
    fn concurrent_callers_on_one_root_conflict_with_typed_error() {
        let root = tempdir("conflict");
        // Two Ledger values over the same root, driven from two threads:
        // exactly one scheduler may own the root at a time; the loser gets
        // a typed Busy error, never an interleaved/corrupted ledger.
        let a = Ledger::new(&root).unwrap();
        let b = Ledger::new(&root).unwrap();
        let lock = a.lock_exclusive().unwrap();
        let handle = std::thread::spawn(move || run_multi_day_resumable(params(2), &b));
        match handle.join().unwrap() {
            Err(JournalError::Busy(_)) => {}
            other => panic!("expected Busy conflict, got {other:?}"),
        }
        // The losing caller wrote nothing.
        assert_eq!(a.list().unwrap(), Vec::<String>::new());
        drop(lock);
        // Once the first caller releases the root, the run goes through
        // and produces the normal day layout.
        let report = run_multi_day_resumable(params(2), &a).unwrap();
        assert_eq!(report.days.len(), 2);
        assert_eq!(a.list().unwrap(), vec!["day-2022-01-01", "day-2022-01-02"]);
        // Streaming takes the same root lock.
        let lock = a.lock_exclusive().unwrap();
        let c = Ledger::new(&root).unwrap();
        let mut sp = StreamingParams::demo();
        sp.base = params(1);
        match run_streaming_days_resumable(sp, &c) {
            Err(StreamingError::Journal(JournalError::Busy(_))) => {}
            other => panic!("expected Busy conflict, got {other:?}"),
        }
        drop(lock);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn streaming_days_run_and_resume_per_namespace() {
        let root = tempdir("stream");
        let ledger = Ledger::new(&root).unwrap();
        let mut sp = StreamingParams::demo();
        sp.base = CampaignParams {
            days: 2,
            files_per_day: 3,
            ..CampaignParams::small()
        };
        let days = run_streaming_days_resumable(sp.clone(), &ledger).unwrap();
        assert_eq!(days.len(), 2);
        assert_eq!(
            ledger.campaigns().unwrap(),
            vec!["stream-2022-01-01", "stream-2022-01-02"]
        );
        for day in &days {
            assert_eq!(day.report.granules_downloaded, 3);
            assert_eq!(day.report.shipped_files, day.report.labeled_files);
        }
        // Rerun: pure replay.
        let again = run_streaming_days_resumable(sp, &ledger).unwrap();
        for (a, b) in days.iter().zip(&again) {
            assert!(b.recovered_events > 0);
            assert_eq!(a.report.labeled_files, b.report.labeled_files);
            assert_eq!(a.report.shipped.as_u64(), b.report.shipped.as_u64());
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}

//! The virtual-time campaign: all five stages in one simulation.
//!
//! This is the orchestration the paper contributes — previously manual,
//! disconnected steps joined into one automated workflow with dynamic
//! per-stage resource allocation: download workers ramp up and terminate,
//! preprocessing workers take over, inference starts *while preprocessing
//! is still running* (the crawler triggers per finished file), and shipment
//! closes the campaign.

use crate::telemetry::Telemetry;
use crate::world::World;
use eoml_cluster::exec::submit_task;
use eoml_cluster::slurm::request_block;
use eoml_config::WorkflowConfig;
use eoml_journal::{CampaignState, Journal, JournalError, JournalEvent, Storage};
use eoml_modis::catalog::Catalog;
use eoml_modis::granule::GranuleId;
use eoml_modis::product::{Platform, ProductKind};
use eoml_obs::{GranuleTrace, Obs, TraceAnalysis, TraceContext};
use eoml_simtime::{SimTime, Simulation};
use eoml_transfer::faults::FaultPlan;
use eoml_transfer::manifest::{
    synthetic_digest, ArtifactEntry, JournalDigest, LineageRecord, ShipmentManifest,
};
use eoml_transfer::pool::{DownloadPool, DownloadReport, FileTiming};
use eoml_transfer::service::{submit_transfer, TransferOptions, TransferReport, TransferTaskId};
use eoml_transfer::sync::JournalSync;
use eoml_util::rng::{Rng64, SplitMix64, Xoshiro256};
use eoml_util::timebase::CivilDate;
use eoml_util::units::ByteSize;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Object-safe journal handle the campaign driver appends through; lets the
/// driver stay non-generic over the journal's [`Storage`] backend.
pub trait JournalSink {
    /// Append one event durably.
    fn append(&mut self, event: JournalEvent) -> Result<(), JournalError>;

    /// The journal's `(events, checksum)` state digest for shipment
    /// manifests; `None` for sinks that cannot summarise their state.
    fn state_digest(&self) -> Option<(u64, u64)> {
        None
    }

    /// Canonical JSON of the journal's materialised state, shipped to the
    /// destination as the journal-sync payload; `None` for sinks that
    /// cannot export one.
    fn export_state(&self) -> Option<serde_json::Value> {
        None
    }
}

impl<S: Storage> JournalSink for Journal<S> {
    fn append(&mut self, event: JournalEvent) -> Result<(), JournalError> {
        Journal::append(self, event)
    }

    fn state_digest(&self) -> Option<(u64, u64)> {
        Some(Journal::state_digest(self))
    }

    fn export_state(&self) -> Option<serde_json::Value> {
        Some(self.state().to_json())
    }
}

/// Everything a campaign needs to run (derived from the user's YAML
/// [`WorkflowConfig`] or built directly for experiments).
#[derive(Debug, Clone)]
pub struct CampaignParams {
    /// World seed.
    pub seed: u64,
    /// Platform to pull data for.
    pub platform: Platform,
    /// First day.
    pub start: CivilDate,
    /// Number of days.
    pub days: usize,
    /// Granule files per product per day (≤ 288).
    pub files_per_day: usize,
    /// Stage-1 download workers.
    pub download_workers: usize,
    /// Stage-2 nodes.
    pub nodes: usize,
    /// Stage-2 workers per node.
    pub workers_per_node: usize,
    /// Stage-4 inference workers.
    pub inference_workers: usize,
    /// Stage-4 throughput per worker, tiles/s.
    pub inference_rate: f64,
    /// Stage-3 monitor poll period, seconds.
    pub monitor_period_s: f64,
    /// Bytes per tile in the output NetCDF (6 × 128² × 4 B + metadata).
    pub tile_nc_bytes: u64,
    /// Network fault plan.
    pub faults: FaultPlan,
    /// Observability hub; when set, the campaign's telemetry is mirrored
    /// into it (spans, per-stage counters, `active_workers` gauges) so a
    /// run can export Chrome traces and Prometheus dumps.
    pub obs: Option<Arc<Obs>>,
}

impl CampaignParams {
    /// The paper's demonstration setup (§IV): January 1 2022, Terra, with
    /// the Fig. 6 allocation — 3 download workers, 32 preprocess workers
    /// (4 nodes × 8), 1 inference worker.
    pub fn paper_demo() -> Self {
        Self {
            seed: 2022,
            platform: Platform::Terra,
            start: CivilDate::new(2022, 1, 1).expect("valid date"),
            days: 1,
            files_per_day: 16,
            download_workers: 3,
            nodes: 4,
            workers_per_node: 8,
            inference_workers: 1,
            inference_rate: 500.0,
            monitor_period_s: 1.0,
            tile_nc_bytes: 6 * 128 * 128 * 4 + 1024,
            faults: FaultPlan::none(),
            obs: None,
        }
    }

    /// A small fast configuration for tests.
    pub fn small() -> Self {
        Self {
            files_per_day: 4,
            nodes: 2,
            ..Self::paper_demo()
        }
    }

    /// Derive from a validated user config.
    pub fn from_config(cfg: &WorkflowConfig) -> Self {
        let platform = match cfg.platform.as_str() {
            "Aqua" => Platform::Aqua,
            _ => Platform::Terra,
        };
        Self {
            seed: cfg.seed,
            platform,
            start: cfg.time_span.start,
            days: cfg.time_span.days,
            files_per_day: cfg.download.files_per_day.unwrap_or(288),
            download_workers: cfg.download.workers,
            nodes: cfg.preprocess.nodes,
            workers_per_node: cfg.preprocess.workers_per_node,
            inference_workers: cfg.inference.workers,
            inference_rate: 500.0,
            monitor_period_s: 1.0,
            tile_nc_bytes: (6 * cfg.preprocess.tile_size * cfg.preprocess.tile_size * 4 + 1024)
                as u64,
            faults: FaultPlan::none(),
            obs: None,
        }
    }

    /// Attach an observability hub (builder style).
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }
}

/// Per-stage summary.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Stage start.
    pub started: SimTime,
    /// Stage end.
    pub finished: SimTime,
    /// Items processed (files, granules, …).
    pub items: usize,
    /// Bytes moved/produced.
    pub bytes: ByteSize,
}

impl StageReport {
    /// Stage duration, seconds.
    pub fn seconds(&self) -> f64 {
        (self.finished - self.started).as_secs_f64()
    }

    /// Export the stage summary as JSON (same conventions as
    /// [`Telemetry::to_json`]).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "name": self.name,
            "started_s": self.started.as_secs_f64(),
            "finished_s": self.finished.as_secs_f64(),
            "seconds": self.seconds(),
            "items": self.items,
            "bytes": self.bytes.as_u64(),
        })
    }
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-stage summaries in execution order.
    pub stages: Vec<StageReport>,
    /// All spans and activity timelines.
    pub telemetry: Telemetry,
    /// The stage-1 download report.
    pub download: DownloadReport,
    /// The stage-5 transfer report.
    pub shipment: TransferReport,
    /// Granules preprocessed (day + night).
    pub granules: usize,
    /// Tile NetCDF files produced.
    pub tile_files: usize,
    /// Total tiles across all files.
    pub total_tiles: f64,
    /// Files labeled by inference.
    pub labeled_files: usize,
    /// End-to-end makespan, seconds.
    pub makespan_s: f64,
    /// Artifact lineage across all five stages.
    pub provenance: crate::provenance::ProvenanceLog,
    /// The stage-5 shipment manifest the destination facility verifies
    /// against: per-artifact digests, lineage slice, journal digest.
    pub manifest: Option<ShipmentManifest>,
    /// The journal-sync payload shipped alongside the data (journaled
    /// campaigns only): the source's compacted control-journal state plus
    /// its digest, against which the destination runs the typed
    /// completeness check and from which a second site can resume the
    /// whole campaign after the source is lost.
    pub journal_sync: Option<JournalSync>,
}

impl CampaignReport {
    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Render the per-stage summary plus the headline counters as text.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for stage in &self.stages {
            let _ = writeln!(
                out,
                "{:<12} {:>9.2}s  {:>5} items  {}",
                stage.name,
                stage.seconds(),
                stage.items,
                stage.bytes
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "granules preprocessed : {}", self.granules);
        let _ = writeln!(out, "tile files produced   : {}", self.tile_files);
        let _ = writeln!(out, "tiles total           : {:.0}", self.total_tiles);
        let _ = writeln!(out, "files labeled         : {}", self.labeled_files);
        let _ = writeln!(
            out,
            "downloaded            : {} in {} files",
            self.download.bytes,
            self.download.files.len()
        );
        let _ = writeln!(out, "shipped               : {}", self.shipment.bytes);
        let _ = writeln!(out, "makespan              : {:.1}s", self.makespan_s);
        out
    }

    /// Export the campaign result as JSON for external plotting/telemetry
    /// tooling (same conventions as [`Telemetry::to_json`]).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "stages": self.stages.iter().map(StageReport::to_json).collect::<Vec<_>>(),
            "granules": self.granules,
            "tile_files": self.tile_files,
            "total_tiles": self.total_tiles,
            "labeled_files": self.labeled_files,
            "download": {
                "files": self.download.files.len(),
                "failed": self.download.failed.len(),
                "bytes": self.download.bytes.as_u64(),
                "retries": self.download.retries,
            },
            "shipment": {
                "files_ok": self.shipment.files_ok,
                "files_failed": self.shipment.files_failed,
                "bytes": self.shipment.bytes.as_u64(),
                "retries": self.shipment.retries,
            },
            "makespan_s": self.makespan_s,
            "telemetry": self.telemetry.to_json(),
            "manifest": match &self.manifest {
                Some(m) => m.to_json(),
                None => serde_json::Value::Null,
            },
        })
    }
}

/// Expected selected tiles for a granule (0 for night granules, which have
/// no reflective bands for AICCA; a lognormal around ~105 of the 150
/// windows for day granules).
pub fn granule_tiles(seed: u64, granule: GranuleId) -> f64 {
    let phase = (granule.orbit_time_s() / 5_933.0) * std::f64::consts::TAU;
    if phase.sin() <= 0.0 {
        return 0.0;
    }
    let key = SplitMix64::mix(seed ^ SplitMix64::mix(granule.orbit_time_s() as u64) ^ 0x7115);
    let mut rng = Xoshiro256::seed_from(key);
    rng.lognormal_mean_cv(105.0, 0.30).clamp(10.0, 150.0)
}

struct Progress {
    params: CampaignParams,
    stages: Vec<StageReport>,
    download: Option<DownloadReport>,
    shipment: Option<TransferReport>,
    // preprocess
    work_queue: VecDeque<(GranuleId, f64)>,
    preprocess_active: usize,
    preprocess_started: SimTime,
    granules_done: usize,
    granules_total: usize,
    /// Selected tiles per completed day granule. Totals are summed in key
    /// order, so an interrupted-and-resumed campaign reproduces the exact
    /// f64 totals of an uninterrupted one regardless of completion order.
    day_tiles: BTreeMap<GranuleId, f64>,
    preprocess_done: bool,
    block_nodes: Vec<usize>,
    // inference
    inference_queue: VecDeque<(String, f64)>,
    inference_active: usize,
    labeled: Vec<(String, ByteSize)>,
    manifest: Option<ShipmentManifest>,
    journal_sync: Option<JournalSync>,
    // control
    shipped: bool,
    // journaling (None → plain in-memory campaign, identical to the
    // original behaviour)
    journal: Option<Rc<RefCell<dyn JournalSink>>>,
    resume: CampaignState,
    halted: bool,
}

impl Progress {
    fn tile_files(&self) -> usize {
        self.day_tiles.len()
    }

    fn total_tiles(&self) -> f64 {
        self.day_tiles.values().sum()
    }
}

type P = Rc<RefCell<Progress>>;

/// Append `event` to the campaign's journal, if any. Returns `false` when
/// the journal refused the append (crash point reached): the campaign must
/// stop scheduling work — the event, and everything after it, is not durable.
fn journal_record(progress: &P, event: JournalEvent) -> bool {
    let sink = progress.borrow().journal.clone();
    match sink {
        None => true,
        Some(journal) => {
            if journal.borrow_mut().append(event).is_ok() {
                true
            } else {
                progress.borrow_mut().halted = true;
                false
            }
        }
    }
}

fn is_halted(progress: &P) -> bool {
    progress.borrow().halted
}

/// Journal a `StageStarted` event unless the resume state already has it.
/// Returns `false` when the append hit the crash point.
fn journal_started(progress: &P, stage: &str) -> bool {
    if progress.borrow().resume.stages_started.contains(stage) {
        return true;
    }
    journal_record(
        progress,
        JournalEvent::StageStarted {
            stage: stage.into(),
        },
    )
}

/// The durable completion key for a granule's preprocessing: day granules
/// produce a tile file, night granules only a scan record.
pub(crate) fn preprocess_key(granule: GranuleId, tiles: f64) -> String {
    if tiles > 0.0 {
        format!("tiles-{granule}.nc")
    } else {
        format!("scan-{granule}")
    }
}

/// Run a full five-stage campaign in virtual time.
pub fn run_campaign(params: CampaignParams) -> CampaignReport {
    run_inner(params, None, CampaignState::default()).expect("journal-free campaign cannot crash")
}

/// Run a campaign against a write-ahead `journal`, resuming any work the
/// journal already records as complete. Journaled-complete downloads, tile
/// files, labels, and shipments are replayed into the report without being
/// re-executed; per-stage item/byte/tile totals come out identical to an
/// uninterrupted run.
///
/// Returns [`JournalError::Crashed`] when the journal's injected kill point
/// fires mid-campaign (see [`Journal::crash_after`]); reopening the journal
/// over the same storage and calling this again resumes from the durable
/// prefix.
pub fn run_campaign_resumable<S: Storage + 'static>(
    params: CampaignParams,
    journal: Journal<S>,
) -> Result<CampaignReport, JournalError> {
    let resume = journal.state().clone();
    if let Some(seed) = resume.seed {
        if seed != params.seed {
            return Err(JournalError::Io(format!(
                "journal belongs to seed {seed}, campaign params use seed {}",
                params.seed
            )));
        }
    }
    let sink: Rc<RefCell<dyn JournalSink>> = Rc::new(RefCell::new(journal));
    if resume.seed.is_none() {
        sink.borrow_mut().append(JournalEvent::CampaignStarted {
            seed: params.seed,
            label: "batch-campaign".into(),
        })?;
    }
    run_inner(params, Some(sink), resume)
}

fn run_inner(
    params: CampaignParams,
    journal: Option<Rc<RefCell<dyn JournalSink>>>,
    resume: CampaignState,
) -> Result<CampaignReport, JournalError> {
    assert!(params.files_per_day >= 1 && params.files_per_day <= 288);
    assert!(params.nodes >= 1 && params.workers_per_node >= 1);
    let mut world = World::new(params.seed, params.faults);
    if let Some(obs) = &params.obs {
        world.telemetry.attach_obs(Arc::clone(obs));
    }
    assert!(params.nodes <= world.cluster.spec().nodes);
    let mut sim = Simulation::new(world);

    let progress: P = Rc::new(RefCell::new(Progress {
        params: params.clone(),
        stages: Vec::new(),
        download: None,
        shipment: None,
        work_queue: VecDeque::new(),
        preprocess_active: 0,
        preprocess_started: SimTime::ZERO,
        granules_done: 0,
        granules_total: 0,
        day_tiles: BTreeMap::new(),
        preprocess_done: false,
        block_nodes: Vec::new(),
        inference_queue: VecDeque::new(),
        inference_active: 0,
        labeled: Vec::new(),
        manifest: None,
        journal_sync: None,
        shipped: false,
        journal,
        resume,
        halted: false,
    }));

    stage_download(&mut sim, &progress);
    sim.run();

    let world = sim.into_state();
    let p = Rc::try_unwrap(progress)
        .unwrap_or_else(|_| panic!("campaign closures leaked"))
        .into_inner();
    if p.halted {
        return Err(JournalError::Crashed);
    }
    let makespan_s = p
        .stages
        .iter()
        .map(|s| s.finished.as_secs_f64())
        .fold(0.0, f64::max);
    let tile_files = p.tile_files();
    let total_tiles = p.total_tiles();
    Ok(CampaignReport {
        provenance: world.provenance,
        manifest: p.manifest,
        journal_sync: p.journal_sync,
        labeled_files: p.labeled.len(),
        download: p.download.expect("download stage ran"),
        shipment: p.shipment.expect("shipment stage ran"),
        granules: p.granules_done,
        tile_files,
        total_tiles,
        stages: p.stages,
        telemetry: world.telemetry,
        makespan_s,
    })
}

// --------------------------------------------------------- stage 1: download

fn stage_download(sim: &mut Simulation<World>, progress: &P) {
    let launch = sim.state_mut().launch.sample().total();
    let t0 = sim.now();
    sim.state_mut()
        .telemetry
        .span("download", "launch", t0, t0 + launch);
    let progress = Rc::clone(progress);
    sim.schedule_in(launch, move |sim| {
        if is_halted(&progress) {
            return;
        }
        let (files, workers) = {
            let p = progress.borrow();
            let cat = Catalog::new(p.params.seed);
            let mut files = Vec::new();
            for day in p.params.start.iter_days(p.params.days) {
                for product in ProductKind::all() {
                    files.extend(
                        cat.day_listing(p.params.platform, product, day)
                            .into_iter()
                            .take(p.params.files_per_day)
                            .map(|e| (e.file_name, e.size)),
                    );
                }
            }
            (files, p.params.download_workers)
        };
        let stage_was_started = progress.borrow().resume.stages_started.contains("download");
        if !stage_was_started
            && !journal_record(
                &progress,
                JournalEvent::StageStarted {
                    stage: "download".into(),
                },
            )
        {
            return;
        }
        let started = sim.now();
        // Files the journal already records as delivered: replayed into the
        // report (zero virtual transfer time), never re-downloaded.
        let replayed: Vec<FileTiming> = {
            let p = progress.borrow();
            files
                .iter()
                .filter_map(|(name, _)| {
                    p.resume.downloaded.get(name).map(|&bytes| FileTiming {
                        name: name.clone(),
                        size: ByteSize::bytes(bytes),
                        started,
                        finished: started,
                        attempts: 1,
                    })
                })
                .collect()
        };
        if progress.borrow().resume.stage_done("download") {
            let bytes = replayed.iter().map(|f| f.size).sum();
            let report = DownloadReport {
                files: replayed,
                failed: Vec::new(),
                bytes,
                started,
                finished: started,
                activity: vec![(started, 0)],
                retries: 0,
            };
            finish_download(sim, &progress, started, report);
            return;
        }
        let pending: Vec<(String, ByteSize)> = {
            let p = progress.borrow();
            files
                .into_iter()
                .filter(|(name, _)| !p.resume.is_downloaded(name))
                .collect()
        };
        let hook_progress = Rc::clone(&progress);
        let progress2 = Rc::clone(&progress);
        let obs = sim.state_mut().telemetry.obs().cloned();
        DownloadPool::run_traced(
            sim,
            "laads",
            "ace-defiant",
            pending,
            workers,
            3,
            obs,
            |file| granule_trace_id(file).map(TraceContext::new),
            move |_sim, timing: &FileTiming| {
                if is_halted(&hook_progress) {
                    return;
                }
                journal_record(
                    &hook_progress,
                    JournalEvent::FileDownloaded {
                        file: timing.name.clone(),
                        bytes: timing.size.as_u64(),
                    },
                );
            },
            move |sim, mut report| {
                if is_halted(&progress2) {
                    return;
                }
                if !journal_record(
                    &progress2,
                    JournalEvent::StageFinished {
                        stage: "download".into(),
                    },
                ) {
                    return;
                }
                // Stage totals cover journal-replayed and fresh files alike.
                let mut all = replayed;
                all.extend(report.files);
                report.files = all;
                report.bytes = report.files.iter().map(|f| f.size).sum();
                finish_download(sim, &progress2, started, report);
            },
        );
    });
}

fn finish_download(
    sim: &mut Simulation<World>,
    progress: &P,
    started: SimTime,
    report: DownloadReport,
) {
    let now = sim.now();
    // Scope the download wrap-up (telemetry merge + provenance records)
    // so its allocations attribute to the download stage.
    let _mem = sim
        .state_mut()
        .telemetry
        .resource_scope("download", "finish");
    {
        let tel = &mut sim.state_mut().telemetry;
        tel.span("download", "transfer", started, now);
        tel.merge_activity("download", &report.activity);
    }
    {
        let now_s = now.as_secs_f64();
        let prov = &mut sim.state_mut().provenance;
        for f in &report.files {
            let rec = prov.record(
                format!("defiant:{}", f.name),
                "download",
                vec![format!("laads:{}", f.name)],
                "download-pool",
                now_s,
            );
            rec.attrs
                .insert("bytes".into(), f.size.as_u64().to_string());
            rec.attrs.insert("attempts".into(), f.attempts.to_string());
        }
    }
    {
        let mut p = progress.borrow_mut();
        p.stages.push(StageReport {
            name: "download".into(),
            started: SimTime::ZERO,
            finished: now,
            items: report.files.len(),
            bytes: report.bytes,
        });
        p.download = Some(report);
    }
    stage_preprocess(sim, progress);
}

// ------------------------------------------------------- stage 2: preprocess

fn stage_preprocess(sim: &mut Simulation<World>, progress: &P) {
    if is_halted(progress) {
        return;
    }
    let stage_was_started = progress
        .borrow()
        .resume
        .stages_started
        .contains("preprocess");
    if !stage_was_started
        && !journal_record(
            progress,
            JournalEvent::StageStarted {
                stage: "preprocess".into(),
            },
        )
    {
        return;
    }
    // Build the granule work list from the downloaded MOD02 files, skipping
    // granules the journal records as already preprocessed. Completed day
    // granules either re-enter the monitor (labels still pending) or replay
    // straight into the labeled set.
    let announce = {
        let mut p = progress.borrow_mut();
        let seed = p.params.seed;
        let report = p.download.as_ref().expect("download done");
        let mut work = Vec::new();
        for f in &report.files {
            if let Some((granule, ProductKind::Mod02)) = GranuleId::parse_file_name(&f.name) {
                let tiles = granule_tiles(seed, granule);
                // Night granules still cost a scan (~12 tile-equivalents)
                // but produce no output file.
                work.push((granule, tiles));
            }
        }
        work.sort_by_key(|&(g, _)| g);
        p.granules_total = work.len();
        let mut pending = Vec::new();
        let mut announce = Vec::new();
        for (granule, tiles) in work {
            let key = preprocess_key(granule, tiles);
            if !p.resume.has_tile_file(&key) {
                pending.push((granule, tiles));
                continue;
            }
            p.granules_done += 1;
            if tiles > 0.0 {
                p.day_tiles.insert(granule, tiles);
                if let Some(&(_, bytes)) = p.resume.labeled.get(&key) {
                    p.labeled.push((key, ByteSize::bytes(bytes)));
                } else {
                    // Tile file durable but labels are not: hand the file
                    // back to the monitor so inference re-runs.
                    announce.push(key);
                }
            }
        }
        p.work_queue = pending.into();
        p.preprocess_started = sim.now();
        announce
    };
    for file in announce {
        sim.state_mut().crawler.announce(file);
    }
    let alloc_start = sim.now();
    let nodes = progress.borrow().params.nodes;
    let progress2 = Rc::clone(progress);
    request_block(
        sim,
        |w: &mut World| &mut w.slurm,
        nodes,
        move |sim, _block, node_list| {
            let now = sim.now();
            sim.state_mut()
                .telemetry
                .span("preprocess", "slurm_alloc", alloc_start, now);
            // Parsl interchange/worker start overhead.
            let parsl = Duration::from_secs_f64(sim.state_mut().rng.lognormal_mean_cv(1.6, 0.3));
            sim.state_mut()
                .telemetry
                .span("preprocess", "parsl_start", now, now + parsl);
            let progress3 = Rc::clone(&progress2);
            sim.schedule_in(parsl, move |sim| {
                {
                    progress3.borrow_mut().block_nodes = node_list.clone();
                }
                let wpn = progress3.borrow().params.workers_per_node;
                let tile_start = sim.now();
                sim.state_mut().telemetry.span(
                    "preprocess",
                    "tile_creation_start",
                    tile_start,
                    tile_start,
                );
                // Fill every worker slot; start the monitor alongside.
                for _ in 0..wpn {
                    for node_idx in 0..node_list.len() {
                        preprocess_pull(sim, &progress3, node_idx);
                    }
                }
                monitor_poll(sim, &progress3);
                maybe_finish_preprocess(sim, &progress3, tile_start);
            });
        },
    )
    .expect("cluster has enough nodes");
}

fn preprocess_pull(sim: &mut Simulation<World>, progress: &P, node_idx: usize) {
    if is_halted(progress) {
        return;
    }
    let job = {
        let mut p = progress.borrow_mut();
        match p.work_queue.pop_front() {
            Some(job) => {
                p.preprocess_active += 1;
                let active = p.preprocess_active;
                let node = p.block_nodes[node_idx];
                let now = sim.now();
                drop(p);
                sim.state_mut()
                    .telemetry
                    .activity_change("preprocess", now, active);
                Some((node, job))
            }
            None => None,
        }
    };
    let Some((node, (granule, tiles))) = job else {
        return;
    };
    let work = tiles.max(12.0); // night-granule scan floor
    let progress2 = Rc::clone(progress);
    let tile_start = progress.borrow().preprocess_started;
    let submitted = sim.now();
    submit_task(sim, node, work, move |sim| {
        if is_halted(&progress2) {
            return;
        }
        // Attribute the completion path's allocations (journal append,
        // provenance, trace bookkeeping) to the preprocess stage.
        let _mem = sim
            .state_mut()
            .telemetry
            .resource_scope("preprocess", "granule");
        // The completion record must be durable before the counters move:
        // a crash between the two re-runs this granule, never loses it.
        if !journal_record(
            &progress2,
            JournalEvent::TileFileWritten {
                file: preprocess_key(granule, tiles),
                tiles: tiles.round() as u64,
            },
        ) {
            return;
        }
        let now = sim.now();
        {
            // The granule's own trace interval: submission → completion,
            // so queueing on the node block is visible to trace analysis.
            let trace = TraceContext::new(granule.to_string());
            let tel = &mut sim.state_mut().telemetry;
            tel.span_traced("preprocess", "granule", submitted, now, Some(&trace));
            tel.count("granules", "preprocess", 1);
        }
        let produced = {
            let mut p = progress2.borrow_mut();
            p.preprocess_active -= 1;
            p.granules_done += 1;
            let active = p.preprocess_active;
            drop(p);
            sim.state_mut()
                .telemetry
                .activity_change("preprocess", now, active);
            let mut p = progress2.borrow_mut();
            if tiles > 0.0 {
                p.day_tiles.insert(granule, tiles);
                Some(format!("tiles-{granule}.nc"))
            } else {
                None
            }
        };
        if let Some(file) = produced {
            sim.state_mut().cluster.note_tiles(tiles);
            let now_s = sim.now().as_secs_f64();
            let inputs = ProductKind::all()
                .into_iter()
                .map(|p| format!("defiant:{}", granule.file_name(p)))
                .collect();
            sim.state_mut()
                .provenance
                .record(file.clone(), "preprocess", inputs, "parsl-worker", now_s)
                .attrs
                .insert("tiles".into(), format!("{tiles:.0}"));
            sim.state_mut().crawler.announce(file);
        }
        preprocess_pull(sim, &progress2, node_idx);
        maybe_finish_preprocess(sim, &progress2, tile_start);
    });
}

fn maybe_finish_preprocess(sim: &mut Simulation<World>, progress: &P, _tile_start: SimTime) {
    if is_halted(progress) {
        return;
    }
    let finished = {
        let mut p = progress.borrow_mut();
        if p.preprocess_done
            || p.preprocess_active > 0
            || !p.work_queue.is_empty()
            || p.block_nodes.is_empty()
        {
            false
        } else {
            p.preprocess_done = true;
            true
        }
    };
    if finished {
        let stage_was_done = progress.borrow().resume.stage_done("preprocess");
        if !stage_was_done
            && !journal_record(
                progress,
                JournalEvent::StageFinished {
                    stage: "preprocess".into(),
                },
            )
        {
            return;
        }
        let now = sim.now();
        let (started, items, tiles) = {
            let p = progress.borrow();
            (p.preprocess_started, p.granules_done, p.total_tiles())
        };
        sim.state_mut()
            .telemetry
            .span("preprocess", "total", started, now);
        let mut p = progress.borrow_mut();
        let bytes = ByteSize::bytes((tiles * p.params.tile_nc_bytes as f64) as u64);
        p.stages.push(StageReport {
            name: "preprocess".into(),
            started,
            finished: now,
            items,
            bytes,
        });
        drop(p);
        maybe_ship(sim, progress);
    }
}

// ------------------------------------------------ stage 3+4: monitor & infer

fn monitor_poll(sim: &mut Simulation<World>, progress: &P) {
    if is_halted(progress) {
        return;
    }
    // Crawl for new tile files and enqueue inference jobs.
    let fresh = sim.state_mut().crawler.crawl();
    for file in fresh {
        let (seed, labeled_already, seen_before) = {
            let p = progress.borrow();
            (
                p.params.seed,
                p.resume.is_labeled(&file),
                p.resume.monitor_saw(&file),
            )
        };
        if labeled_already {
            // Dedup across restarts: the journal shows inference already
            // completed for this file; its labels were replayed at resume.
            continue;
        }
        if !seen_before
            && !journal_record(
                progress,
                JournalEvent::MonitorTriggered { file: file.clone() },
            )
        {
            return;
        }
        // Stage-3 visibility: each crawl hit is an instantaneous span plus
        // a counter, so the monitor shows up in traces alongside the four
        // throughput stages.
        let now = sim.now();
        let trace = granule_trace_id(&file).map(TraceContext::new);
        let tel = &mut sim.state_mut().telemetry;
        tel.mark_traced("monitor", "trigger", now, trace.as_ref());
        tel.count("triggers", "monitor", 1);
        // Recover the tile count from the file name's granule.
        let tiles = file
            .strip_prefix("tiles-")
            .and_then(|rest| rest.strip_suffix(".nc"))
            .and_then(parse_granule_display)
            .map(|g| granule_tiles(seed, g))
            .unwrap_or(100.0);
        progress
            .borrow_mut()
            .inference_queue
            .push_back((file, tiles));
    }
    pump_inference(sim, progress);

    let stop = {
        let p = progress.borrow();
        p.preprocess_done
            && p.inference_queue.is_empty()
            && p.inference_active == 0
            && p.labeled.len() == p.tile_files()
    };
    if !stop {
        let period = Duration::from_secs_f64(progress.borrow().params.monitor_period_s);
        let progress2 = Rc::clone(progress);
        sim.schedule_in(period, move |sim| monitor_poll(sim, &progress2));
    } else {
        maybe_ship(sim, progress);
    }
}

/// The granule trace id behind any campaign artifact name, with or
/// without a site prefix: `laads:`/`defiant:` MODIS file names,
/// `tiles-<granule>.nc` files, and their `labeled:`/`orion:` descendants
/// all map to the display form of the granule they carry (e.g.
/// `MOD.A2022001.0610`) — the id every traced span of that granule is
/// stamped with. Returns `None` for artifacts with no granule identity.
pub fn granule_trace_id(artifact: &str) -> Option<String> {
    let name = artifact
        .split_once(':')
        .map(|(_, rest)| rest)
        .unwrap_or(artifact);
    if let Some(inner) = name
        .strip_prefix("tiles-")
        .and_then(|rest| rest.strip_suffix(".nc"))
    {
        return parse_granule_display(inner).map(|g| g.to_string());
    }
    GranuleId::parse_file_name(name).map(|(g, _)| g.to_string())
}

/// Join provenance lineage with trace analysis: the end-to-end granule
/// trace behind `artifact` (any name [`granule_trace_id`] understands,
/// e.g. an `orion:` record from [`CampaignReport::provenance`]). From the
/// returned trace, `bottleneck()` / `stage_attribution()` answer which
/// upstream stage made a labeled tile slow.
pub fn trace_for_artifact<'a>(
    analysis: &'a TraceAnalysis,
    artifact: &str,
) -> Option<&'a GranuleTrace> {
    analysis.trace(&granule_trace_id(artifact)?)
}

fn parse_granule_display(s: &str) -> Option<GranuleId> {
    // "{MOD|MYD}.A{yyyy}{ddd}.{hhmm}"
    let mut parts = s.split('.');
    let platform = match parts.next()? {
        "MOD" => Platform::Terra,
        "MYD" => Platform::Aqua,
        _ => return None,
    };
    let adate = parts.next()?;
    let year: i32 = adate.get(1..5)?.parse().ok()?;
    let doy: u16 = adate.get(5..8)?.parse().ok()?;
    let date = CivilDate::from_ordinal(year, doy)?;
    let hhmm = parts.next()?;
    let hh: u16 = hhmm.get(..2)?.parse().ok()?;
    let mm: u16 = hhmm.get(2..4)?.parse().ok()?;
    Some(GranuleId::new(platform, date, hh * 12 + mm / 5))
}

fn pump_inference(sim: &mut Simulation<World>, progress: &P) {
    loop {
        let job = {
            let mut p = progress.borrow_mut();
            if p.inference_active >= p.params.inference_workers {
                None
            } else if let Some(job) = p.inference_queue.pop_front() {
                p.inference_active += 1;
                let active = p.inference_active;
                drop(p);
                let now = sim.now();
                sim.state_mut()
                    .telemetry
                    .activity_change("inference", now, active);
                Some(job)
            } else {
                None
            }
        };
        let Some((file, tiles)) = job else {
            break;
        };
        // The flow: crawl-handoff → infer → append → move, each hop paying
        // the Globus-Flows action overhead (~50 ms). Every hop carries the
        // file's granule trace so the flow joins its end-to-end timeline.
        let trace = granule_trace_id(&file).map(TraceContext::new);
        let mut overhead = Duration::ZERO;
        for _ in 0..4 {
            let hop = sim.state_mut().flow_overhead.sample().total();
            let now = sim.now();
            sim.state_mut().telemetry.span_traced(
                "inference",
                "flow_action",
                now + overhead,
                now + overhead + hop,
                trace.as_ref(),
            );
            overhead += hop;
        }
        let rate = progress.borrow().params.inference_rate;
        let compute = Duration::from_secs_f64(tiles / rate);
        let now = sim.now();
        sim.state_mut().telemetry.span_traced(
            "inference",
            "compute",
            now + overhead,
            now + overhead + compute,
            trace.as_ref(),
        );
        let total = overhead + compute;
        let progress2 = Rc::clone(progress);
        sim.schedule_in(total, move |sim| {
            if is_halted(&progress2) {
                return;
            }
            let bytes_u64 = {
                let p = progress2.borrow();
                (tiles * p.params.tile_nc_bytes as f64) as u64
            };
            if !journal_record(
                &progress2,
                JournalEvent::LabelsAppended {
                    file: file.clone(),
                    labels: tiles.round() as u64,
                    bytes: bytes_u64,
                },
            ) {
                return;
            }
            let now = sim.now();
            sim.state_mut()
                .telemetry
                .count("files_labeled", "inference", 1);
            {
                let mut p = progress2.borrow_mut();
                p.inference_active -= 1;
                p.labeled.push((file.clone(), ByteSize::bytes(bytes_u64)));
                let active = p.inference_active;
                drop(p);
                sim.state_mut()
                    .telemetry
                    .activity_change("inference", now, active);
                let now_s = now.as_secs_f64();
                sim.state_mut().provenance.record(
                    format!("labeled:{file}"),
                    "inference",
                    vec![file],
                    "globus-flow",
                    now_s,
                );
            }
            pump_inference(sim, &progress2);
            // The monitor loop handles the stop/ship decision; but if it
            // already stopped polling, check here too.
            let stop = {
                let p = progress2.borrow();
                p.preprocess_done
                    && p.inference_queue.is_empty()
                    && p.inference_active == 0
                    && p.labeled.len() == p.tile_files()
            };
            if stop {
                maybe_ship(sim, &progress2);
            }
        });
    }
}

// --------------------------------------------------------- stage 5: shipment

/// Assemble the shipment's manifest: one [`ArtifactEntry`] per shipped file
/// (synthetic content digest + granule trace id), the upstream lineage
/// slice behind each artifact from the provenance log, and the journal's
/// compaction-invariant state digest when the campaign is journaled.
pub(crate) fn build_shipment_manifest(
    source: &str,
    destination: &str,
    files: &[(String, ByteSize)],
    prov: &crate::provenance::ProvenanceLog,
    journal: Option<(u64, u64)>,
    now_s: f64,
) -> ShipmentManifest {
    let mut manifest = ShipmentManifest::new(source, destination, now_s);
    manifest.journal = journal.map(|(events, checksum)| JournalDigest { events, checksum });
    // Artifact order feeds the manifest id; sort by name so an interrupted
    // and resumed campaign (whose completion order differs) still produces
    // the same id — the destination's idempotency key.
    let mut files: Vec<&(String, ByteSize)> = files.iter().collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let mut seen: std::collections::BTreeSet<(String, String)> = std::collections::BTreeSet::new();
    for (name, bytes) in files {
        manifest.artifacts.push(ArtifactEntry {
            name: name.clone(),
            bytes: bytes.as_u64(),
            digest: synthetic_digest(name, bytes.as_u64()),
            trace_id: granule_trace_id(name),
        });
        // The lineage slice: the destination-side record plus everything
        // upstream of it, deduplicated — shared ancestors (a granule's
        // three MODIS products, say) appear once.
        let shipped = format!("orion:{name}");
        let mut chain = vec![shipped.clone()];
        chain.extend(prov.lineage(&shipped));
        for artifact in &chain {
            for rec in prov.producers(artifact) {
                if seen.insert((rec.artifact.clone(), rec.activity.clone())) {
                    manifest.lineage.push(LineageRecord {
                        artifact: rec.artifact.clone(),
                        activity: rec.activity.clone(),
                        inputs: rec.inputs.clone(),
                        agent: rec.agent.clone(),
                        at_s: rec.at_s,
                    });
                }
            }
        }
    }
    manifest
}

/// The campaign journal's `(events, checksum)` digest, if journaled.
fn journal_digest(progress: &P) -> Option<(u64, u64)> {
    let sink = progress.borrow().journal.clone();
    sink.and_then(|j| j.borrow().state_digest())
}

/// Package the journal-sync payload that travels with the shipment: the
/// ship-time digest plus the full compacted state. `None` for unjournaled
/// campaigns or sinks that cannot export their state.
fn build_journal_sync(progress: &P) -> Option<JournalSync> {
    let sink = progress.borrow().journal.clone()?;
    let sink = sink.borrow();
    let (events, checksum) = sink.state_digest()?;
    let state = sink.export_state()?;
    Some(JournalSync::from_parts(events, checksum, state))
}

fn maybe_ship(sim: &mut Simulation<World>, progress: &P) {
    if is_halted(progress) {
        return;
    }
    let (files, replay_shipment) = {
        let mut p = progress.borrow_mut();
        let ready = p.preprocess_done
            && p.inference_queue.is_empty()
            && p.inference_active == 0
            && p.labeled.len() == p.tile_files()
            && !p.shipped;
        if !ready {
            return;
        }
        p.shipped = true;
        let replay = if p.resume.stage_done("shipment") {
            p.resume.shipped
        } else {
            None
        };
        (p.labeled.clone(), replay)
    };
    let started = sim.now();
    if !journal_started(progress, "shipment") {
        return;
    }
    // Journal says the shipment already completed before the crash: rebuild
    // the report from the recorded totals instead of re-transferring.
    if let Some((files_ok, bytes)) = replay_shipment {
        let report = TransferReport {
            task: TransferTaskId::from_raw(0),
            files_ok: files_ok as usize,
            files_failed: 0,
            bytes: ByteSize::bytes(bytes),
            retries: 0,
            submitted: started,
            finished: started,
            file_times: files.iter().map(|(n, _)| (n.clone(), 0.0)).collect(),
            file_windows: files
                .iter()
                .map(|(n, _)| (n.clone(), started, started))
                .collect(),
        };
        let manifest = build_shipment_manifest(
            "ace-defiant",
            "frontier-orion",
            &files,
            &sim.state().provenance,
            journal_digest(progress),
            started.as_secs_f64(),
        );
        let sync = build_journal_sync(progress);
        let mut p = progress.borrow_mut();
        p.stages.push(StageReport {
            name: "shipment".into(),
            started,
            finished: started,
            items: report.files_ok,
            bytes: report.bytes,
        });
        p.shipment = Some(report);
        p.manifest = Some(manifest);
        p.journal_sync = sync;
        return;
    }
    let progress2 = Rc::clone(progress);
    submit_transfer(
        sim,
        "ace-defiant",
        "frontier-orion",
        files,
        TransferOptions::default(),
        move |sim, report| {
            if is_halted(&progress2) {
                return;
            }
            if !journal_record(
                &progress2,
                JournalEvent::ShipmentFinished {
                    files: report.files_ok as u64,
                    bytes: report.bytes.as_u64(),
                },
            ) {
                return;
            }
            if !journal_record(
                &progress2,
                JournalEvent::StageFinished {
                    stage: "shipment".into(),
                },
            ) {
                return;
            }
            let now = sim.now();
            {
                let tel = &mut sim.state_mut().telemetry;
                tel.span("shipment", "transfer", started, now);
                // Per-file traced shipment windows close each granule's
                // end-to-end trace (download → … → shipment).
                for (name, from, to) in &report.file_windows {
                    let trace = granule_trace_id(name).map(TraceContext::new);
                    tel.span_traced("shipment", "file", *from, *to, trace.as_ref());
                }
                tel.count("files_shipped", "shipment", report.files_ok as u64);
                tel.count("bytes_shipped", "shipment", report.bytes.as_u64());
            }
            {
                let now_s = now.as_secs_f64();
                let shipped: Vec<String> =
                    report.file_times.iter().map(|(n, _)| n.clone()).collect();
                let prov = &mut sim.state_mut().provenance;
                for name in shipped {
                    prov.record(
                        format!("orion:{name}"),
                        "shipment",
                        vec![format!("labeled:{name}")],
                        "globus-transfer",
                        now_s,
                    );
                }
            }
            let journal = journal_digest(&progress2);
            let manifest = {
                let p = progress2.borrow();
                build_shipment_manifest(
                    "ace-defiant",
                    "frontier-orion",
                    &p.labeled,
                    &sim.state().provenance,
                    journal,
                    now.as_secs_f64(),
                )
            };
            // Snapshot the journal-sync payload at the same point the
            // manifest's digest is taken — the two must agree for the
            // destination's completeness check to pass.
            let sync = build_journal_sync(&progress2);
            let mut p = progress2.borrow_mut();
            p.stages.push(StageReport {
                name: "shipment".into(),
                started,
                finished: now,
                items: report.files_ok,
                bytes: report.bytes,
            });
            p.shipment = Some(report);
            p.manifest = Some(manifest);
            p.journal_sync = sync;
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> CampaignReport {
        run_campaign(CampaignParams::small())
    }

    #[test]
    fn campaign_runs_all_stages() {
        let r = small_report();
        assert!(r.stage("download").is_some());
        assert!(r.stage("preprocess").is_some());
        assert!(r.stage("shipment").is_some());
        // 4 files per day × 3 products.
        assert_eq!(r.download.files.len(), 12);
        assert_eq!(r.granules, 4, "one preprocess task per MOD02 file");
        assert!(r.makespan_s > 0.0);
    }

    #[test]
    fn labeled_files_match_tile_files() {
        let r = small_report();
        assert_eq!(r.labeled_files, r.tile_files);
        assert_eq!(r.shipment.files_ok, r.tile_files);
        if r.tile_files > 0 {
            assert!(r.total_tiles > 0.0);
            assert!(r.shipment.bytes.as_u64() > 0);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(CampaignParams::small());
        let b = run_campaign(CampaignParams::small());
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.total_tiles, b.total_tiles);
        assert_eq!(a.download.bytes, b.download.bytes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_campaign(CampaignParams::small());
        let b = run_campaign(CampaignParams {
            seed: 9999,
            ..CampaignParams::small()
        });
        assert_ne!(a.makespan_s, b.makespan_s);
    }

    #[test]
    fn download_launch_is_about_5_6_seconds() {
        let r = small_report();
        let launch = r.telemetry.total_seconds("download", "launch");
        assert!((3.5..9.0).contains(&launch), "launch {launch}");
    }

    #[test]
    fn flow_action_overhead_is_tens_of_milliseconds() {
        let r = run_campaign(CampaignParams {
            files_per_day: 12,
            ..CampaignParams::small()
        });
        let mean = r.telemetry.mean_seconds("inference", "flow_action");
        assert!((0.02..0.12).contains(&mean), "flow action mean {mean}");
    }

    #[test]
    fn inference_overlaps_preprocessing() {
        // With enough files, the crawler triggers inference while
        // preprocessing is still busy — the paper's Fig. 6 behaviour.
        let r = run_campaign(CampaignParams {
            files_per_day: 24,
            nodes: 1,
            workers_per_node: 4,
            ..CampaignParams::paper_demo()
        });
        assert!(
            r.telemetry.stages_overlap("preprocess", "inference"),
            "inference should start before preprocessing completes"
        );
    }

    #[test]
    fn stage_resources_match_fig6_allocation() {
        let r = run_campaign(CampaignParams {
            files_per_day: 16,
            nodes: 4,
            workers_per_node: 8,
            ..CampaignParams::paper_demo()
        });
        assert_eq!(r.telemetry.peak("download"), 3);
        assert!(r.telemetry.peak("preprocess") <= 32);
        assert!(r.telemetry.peak("preprocess") >= 8);
        assert_eq!(r.telemetry.peak("inference"), 1);
    }

    #[test]
    fn night_granules_produce_no_files() {
        let r = small_report();
        assert!(
            r.tile_files <= r.granules,
            "{} files from {} granules",
            r.tile_files,
            r.granules
        );
        // Over a day, roughly half the granules are night.
        let r24 = run_campaign(CampaignParams {
            files_per_day: 48,
            ..CampaignParams::small()
        });
        assert!(r24.tile_files < r24.granules);
        assert!(r24.tile_files > 0);
    }

    #[test]
    fn granule_tiles_model_is_sane() {
        let date = CivilDate::new(2022, 1, 1).unwrap();
        let mut day = 0;
        let mut night = 0;
        for slot in 0..288 {
            let g = GranuleId::new(Platform::Terra, date, slot);
            let t = granule_tiles(2022, g);
            if t == 0.0 {
                night += 1;
            } else {
                day += 1;
                assert!((10.0..=150.0).contains(&t));
            }
        }
        assert!(day > 100 && night > 100, "day {day} night {night}");
        // Deterministic.
        let g = GranuleId::new(Platform::Terra, date, 100);
        assert_eq!(granule_tiles(1, g), granule_tiles(1, g));
    }

    #[test]
    fn provenance_traces_shipped_files_to_the_archive() {
        // The first few slots of the day are night granules; use enough
        // files that day granules (and thus tile files) appear.
        let r = run_campaign(CampaignParams {
            files_per_day: 24,
            ..CampaignParams::small()
        });
        assert!(r.provenance.is_acyclic());
        assert!(r.tile_files > 0, "need at least one produced file");
        // Pick any shipped artifact and walk its lineage back to LAADS.
        let shipped = r
            .provenance
            .records()
            .iter()
            .find(|rec| rec.activity == "shipment")
            .expect("shipment recorded");
        let lineage = r.provenance.lineage(&shipped.artifact);
        assert!(
            lineage.iter().any(|a| a.starts_with("laads:MOD021KM")),
            "lineage should reach the MOD02 archive file: {lineage:?}"
        );
        assert!(
            lineage.iter().any(|a| a.starts_with("laads:MOD06_L2")),
            "lineage should reach the MOD06 archive file: {lineage:?}"
        );
        // download + preprocess + inference + shipment records all exist.
        for activity in ["download", "preprocess", "inference", "shipment"] {
            assert!(
                r.provenance
                    .records()
                    .iter()
                    .any(|x| x.activity == activity),
                "missing {activity} records"
            );
        }
    }

    #[test]
    fn summary_table_renders() {
        let r = small_report();
        let table = r.summary_table();
        assert!(table.contains("download"));
        assert!(table.contains("shipment"));
        assert!(table.contains("makespan"));
    }

    #[test]
    fn from_config_maps_fields() {
        let cfg = WorkflowConfig::default();
        let p = CampaignParams::from_config(&cfg);
        assert_eq!(p.seed, 2022);
        assert_eq!(p.platform, Platform::Terra);
        assert_eq!(p.download_workers, 3);
        assert_eq!(p.nodes, 1);
        assert_eq!(p.workers_per_node, 8);
        assert_eq!(p.files_per_day, 288);
    }

    #[test]
    fn faults_slow_but_do_not_break_the_campaign() {
        let clean = run_campaign(CampaignParams::small());
        let flaky = run_campaign(CampaignParams {
            faults: FaultPlan::flaky_wan(),
            ..CampaignParams::small()
        });
        assert_eq!(flaky.labeled_files, flaky.tile_files);
        assert_eq!(flaky.download.files.len(), clean.download.files.len());
    }

    #[test]
    fn report_to_json_round_trips_headline_counters() {
        let r = small_report();
        let j = r.to_json();
        assert_eq!(j["granules"], serde_json::json!(r.granules));
        assert_eq!(j["labeled_files"], serde_json::json!(r.labeled_files));
        assert_eq!(j["makespan_s"], serde_json::json!(r.makespan_s));
        assert_eq!(
            j["download"]["bytes"],
            serde_json::json!(r.download.bytes.as_u64())
        );
        assert_eq!(j["stages"].as_array().unwrap().len(), r.stages.len());
        let s0 = &j["stages"][0];
        assert_eq!(s0["name"], serde_json::json!(r.stages[0].name));
        assert_eq!(s0["items"], serde_json::json!(r.stages[0].items));
        assert!(j["telemetry"]["spans"].as_array().is_some());
    }

    #[test]
    fn shipment_manifest_covers_every_labeled_file() {
        let r = run_campaign(CampaignParams {
            files_per_day: 24,
            ..CampaignParams::small()
        });
        assert!(r.labeled_files > 0, "need labeled files to ship");
        let m = r.manifest.as_ref().expect("campaign produced a manifest");
        assert_eq!(m.source, "ace-defiant");
        assert_eq!(m.destination, "frontier-orion");
        assert_eq!(m.len(), r.labeled_files);
        assert!(m.journal.is_none(), "journal-free run has no digest");
        for a in &m.artifacts {
            assert_eq!(a.digest, synthetic_digest(&a.name, a.bytes));
            assert!(
                a.name.starts_with("tiles-") || a.trace_id.is_some(),
                "{} has no trace id",
                a.name
            );
            // The lineage slice reaches the LAADS archive for this artifact.
            assert!(
                m.lineage
                    .iter()
                    .any(|l| l.artifact == format!("orion:{}", a.name)),
                "no shipment lineage record for {}",
                a.name
            );
        }
        assert!(m
            .lineage
            .iter()
            .any(|l| l.activity == "download" && l.inputs.iter().any(|i| i.starts_with("laads:"))));
        // Shared ancestors appear once.
        let mut keys: Vec<_> = m
            .lineage
            .iter()
            .map(|l| (l.artifact.clone(), l.activity.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), m.lineage.len(), "duplicate lineage records");
    }

    #[test]
    fn manifest_id_is_stable_across_crash_resume() {
        use eoml_journal::MemStorage;
        let (journal, _) = Journal::open(MemStorage::new()).unwrap();
        let uninterrupted = run_campaign_resumable(CampaignParams::small(), journal).unwrap();
        let m0 = uninterrupted.manifest.as_ref().expect("manifest");
        assert!(m0.journal.is_some(), "journaled run records a digest");

        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.crash_after(9);
        assert!(run_campaign_resumable(CampaignParams::small(), journal).is_err());
        let (journal, _) = Journal::open(store).unwrap();
        let resumed = run_campaign_resumable(CampaignParams::small(), journal).unwrap();
        let m1 = resumed.manifest.as_ref().expect("manifest");
        // The id — the destination's idempotency key — must not change just
        // because the source crashed and resumed mid-campaign.
        assert_eq!(m0.id(), m1.id());
    }

    #[test]
    fn resumable_without_crash_matches_plain_run() {
        use eoml_journal::MemStorage;
        let plain = run_campaign(CampaignParams::small());
        let (journal, _) = Journal::open(MemStorage::new()).unwrap();
        let resumed = run_campaign_resumable(CampaignParams::small(), journal).unwrap();
        assert_eq!(resumed.granules, plain.granules);
        assert_eq!(resumed.tile_files, plain.tile_files);
        assert_eq!(resumed.total_tiles, plain.total_tiles);
        assert_eq!(resumed.labeled_files, plain.labeled_files);
        assert_eq!(resumed.download.bytes, plain.download.bytes);
        assert_eq!(resumed.shipment.files_ok, plain.shipment.files_ok);
        assert_eq!(resumed.shipment.bytes, plain.shipment.bytes);
    }

    #[test]
    fn crash_mid_campaign_then_resume_matches_uninterrupted() {
        use eoml_journal::MemStorage;
        let baseline = run_campaign(CampaignParams::small());
        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.crash_after(7);
        let crashed = run_campaign_resumable(CampaignParams::small(), journal);
        assert!(matches!(crashed, Err(JournalError::Crashed)));
        let (journal, recovery) = Journal::open(store).unwrap();
        assert!(recovery.events > 0, "crash left no durable events");
        let resumed = run_campaign_resumable(CampaignParams::small(), journal).unwrap();
        assert_eq!(resumed.granules, baseline.granules);
        assert_eq!(resumed.tile_files, baseline.tile_files);
        assert_eq!(resumed.total_tiles, baseline.total_tiles);
        assert_eq!(resumed.labeled_files, baseline.labeled_files);
        assert_eq!(resumed.download.bytes, baseline.download.bytes);
        assert_eq!(resumed.shipment.bytes, baseline.shipment.bytes);
    }

    #[test]
    fn observed_campaign_covers_all_five_stages() {
        let obs = Obs::shared();
        let params = CampaignParams {
            files_per_day: 24,
            ..CampaignParams::small()
        }
        .with_obs(Arc::clone(&obs));
        let r = run_campaign(params);
        assert!(r.tile_files > 0, "need day granules for monitor/inference");
        let spans = obs.spans();
        for stage in ["download", "preprocess", "monitor", "inference", "shipment"] {
            assert!(
                spans.iter().any(|s| s.stage == stage),
                "no {stage} spans in obs"
            );
        }
        let m = obs.metrics();
        assert_eq!(
            m.counter_value("files", "download"),
            Some(r.download.files.len() as u64)
        );
        assert_eq!(
            m.counter_value("granules", "preprocess"),
            Some(r.granules as u64)
        );
        assert_eq!(
            m.counter_value("triggers", "monitor"),
            Some(r.tile_files as u64)
        );
        assert_eq!(
            m.counter_value("files_labeled", "inference"),
            Some(r.labeled_files as u64)
        );
        assert_eq!(
            m.counter_value("files_shipped", "shipment"),
            Some(r.shipment.files_ok as u64)
        );
        // The exported Chrome trace parses and holds every span.
        let parsed = serde_json::from_str(&obs.chrome_trace_json()).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), spans.len());
    }

    #[test]
    fn every_labeled_granule_has_a_five_stage_trace() {
        let obs = Obs::shared();
        let params = CampaignParams {
            files_per_day: 24,
            ..CampaignParams::small()
        }
        .with_obs(Arc::clone(&obs));
        let r = run_campaign(params);
        assert!(r.labeled_files > 0);
        let analysis = TraceAnalysis::from_obs(&obs);
        // Every labeled (day) granule's trace runs download → shipment.
        for rec in r.provenance.records() {
            if !rec.artifact.starts_with("orion:") {
                continue;
            }
            let trace = trace_for_artifact(&analysis, &rec.artifact)
                .unwrap_or_else(|| panic!("no trace behind {}", rec.artifact));
            let stages = trace.stages();
            for stage in ["download", "preprocess", "monitor", "inference", "shipment"] {
                assert!(
                    stages.contains(&stage),
                    "{}: trace missing {stage} (has {stages:?})",
                    rec.artifact
                );
            }
            // The slow upstream stage is queryable from the joined trace.
            assert!(trace.bottleneck().is_some());
        }
        // And traces cover 100% of processed day granules.
        let shipped = r
            .provenance
            .records()
            .iter()
            .filter(|rec| rec.artifact.starts_with("orion:"))
            .count();
        assert_eq!(shipped, r.labeled_files);
        assert!(analysis.len() >= shipped);
    }

    #[test]
    fn granule_trace_ids_unify_artifact_naming() {
        let id = "MOD.A2022001.0610";
        for artifact in [
            "laads:MOD021KM.A2022001.0610.061.2022003141500.eogr",
            "defiant:MOD03.A2022001.0610.061.2022003141500.eogr",
            "tiles-MOD.A2022001.0610.nc",
            "labeled:tiles-MOD.A2022001.0610.nc",
            "orion:tiles-MOD.A2022001.0610.nc",
        ] {
            assert_eq!(
                granule_trace_id(artifact).as_deref(),
                Some(id),
                "{artifact}"
            );
        }
        assert_eq!(granule_trace_id("random.txt"), None);
    }

    #[test]
    fn resume_rejects_a_different_seed() {
        use eoml_journal::MemStorage;
        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.crash_after(3);
        let _ = run_campaign_resumable(CampaignParams::small(), journal);
        let (journal, _) = Journal::open(store).unwrap();
        let other = CampaignParams {
            seed: 77,
            ..CampaignParams::small()
        };
        assert!(run_campaign_resumable(other, journal).is_err());
    }
}

//! The virtual-time campaign: all five stages in one simulation.
//!
//! This is the orchestration the paper contributes — previously manual,
//! disconnected steps joined into one automated workflow with dynamic
//! per-stage resource allocation: download workers ramp up and terminate,
//! preprocessing workers take over, inference starts *while preprocessing
//! is still running* (the crawler triggers per finished file), and shipment
//! closes the campaign.

use crate::telemetry::Telemetry;
use crate::world::World;
use eoml_cluster::exec::submit_task;
use eoml_cluster::slurm::request_block;
use eoml_config::WorkflowConfig;
use eoml_modis::catalog::Catalog;
use eoml_modis::granule::GranuleId;
use eoml_modis::product::{Platform, ProductKind};
use eoml_simtime::{SimTime, Simulation};
use eoml_transfer::faults::FaultPlan;
use eoml_transfer::pool::{DownloadPool, DownloadReport};
use eoml_transfer::service::{submit_transfer, TransferOptions, TransferReport};
use eoml_util::rng::{Rng64, SplitMix64, Xoshiro256};
use eoml_util::timebase::CivilDate;
use eoml_util::units::ByteSize;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

/// Everything a campaign needs to run (derived from the user's YAML
/// [`WorkflowConfig`] or built directly for experiments).
#[derive(Debug, Clone)]
pub struct CampaignParams {
    /// World seed.
    pub seed: u64,
    /// Platform to pull data for.
    pub platform: Platform,
    /// First day.
    pub start: CivilDate,
    /// Number of days.
    pub days: usize,
    /// Granule files per product per day (≤ 288).
    pub files_per_day: usize,
    /// Stage-1 download workers.
    pub download_workers: usize,
    /// Stage-2 nodes.
    pub nodes: usize,
    /// Stage-2 workers per node.
    pub workers_per_node: usize,
    /// Stage-4 inference workers.
    pub inference_workers: usize,
    /// Stage-4 throughput per worker, tiles/s.
    pub inference_rate: f64,
    /// Stage-3 monitor poll period, seconds.
    pub monitor_period_s: f64,
    /// Bytes per tile in the output NetCDF (6 × 128² × 4 B + metadata).
    pub tile_nc_bytes: u64,
    /// Network fault plan.
    pub faults: FaultPlan,
}

impl CampaignParams {
    /// The paper's demonstration setup (§IV): January 1 2022, Terra, with
    /// the Fig. 6 allocation — 3 download workers, 32 preprocess workers
    /// (4 nodes × 8), 1 inference worker.
    pub fn paper_demo() -> Self {
        Self {
            seed: 2022,
            platform: Platform::Terra,
            start: CivilDate::new(2022, 1, 1).expect("valid date"),
            days: 1,
            files_per_day: 16,
            download_workers: 3,
            nodes: 4,
            workers_per_node: 8,
            inference_workers: 1,
            inference_rate: 500.0,
            monitor_period_s: 1.0,
            tile_nc_bytes: 6 * 128 * 128 * 4 + 1024,
            faults: FaultPlan::none(),
        }
    }

    /// A small fast configuration for tests.
    pub fn small() -> Self {
        Self {
            files_per_day: 4,
            nodes: 2,
            ..Self::paper_demo()
        }
    }

    /// Derive from a validated user config.
    pub fn from_config(cfg: &WorkflowConfig) -> Self {
        let platform = match cfg.platform.as_str() {
            "Aqua" => Platform::Aqua,
            _ => Platform::Terra,
        };
        Self {
            seed: cfg.seed,
            platform,
            start: cfg.time_span.start,
            days: cfg.time_span.days,
            files_per_day: cfg.download.files_per_day.unwrap_or(288),
            download_workers: cfg.download.workers,
            nodes: cfg.preprocess.nodes,
            workers_per_node: cfg.preprocess.workers_per_node,
            inference_workers: cfg.inference.workers,
            inference_rate: 500.0,
            monitor_period_s: 1.0,
            tile_nc_bytes: (6 * cfg.preprocess.tile_size * cfg.preprocess.tile_size * 4 + 1024)
                as u64,
            faults: FaultPlan::none(),
        }
    }
}

/// Per-stage summary.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Stage start.
    pub started: SimTime,
    /// Stage end.
    pub finished: SimTime,
    /// Items processed (files, granules, …).
    pub items: usize,
    /// Bytes moved/produced.
    pub bytes: ByteSize,
}

impl StageReport {
    /// Stage duration, seconds.
    pub fn seconds(&self) -> f64 {
        (self.finished - self.started).as_secs_f64()
    }
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-stage summaries in execution order.
    pub stages: Vec<StageReport>,
    /// All spans and activity timelines.
    pub telemetry: Telemetry,
    /// The stage-1 download report.
    pub download: DownloadReport,
    /// The stage-5 transfer report.
    pub shipment: TransferReport,
    /// Granules preprocessed (day + night).
    pub granules: usize,
    /// Tile NetCDF files produced.
    pub tile_files: usize,
    /// Total tiles across all files.
    pub total_tiles: f64,
    /// Files labeled by inference.
    pub labeled_files: usize,
    /// End-to-end makespan, seconds.
    pub makespan_s: f64,
    /// Artifact lineage across all five stages.
    pub provenance: crate::provenance::ProvenanceLog,
}

impl CampaignReport {
    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Render the per-stage summary plus the headline counters as text.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for stage in &self.stages {
            let _ = writeln!(
                out,
                "{:<12} {:>9.2}s  {:>5} items  {}",
                stage.name,
                stage.seconds(),
                stage.items,
                stage.bytes
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "granules preprocessed : {}", self.granules);
        let _ = writeln!(out, "tile files produced   : {}", self.tile_files);
        let _ = writeln!(out, "tiles total           : {:.0}", self.total_tiles);
        let _ = writeln!(out, "files labeled         : {}", self.labeled_files);
        let _ = writeln!(
            out,
            "downloaded            : {} in {} files",
            self.download.bytes,
            self.download.files.len()
        );
        let _ = writeln!(out, "shipped               : {}", self.shipment.bytes);
        let _ = writeln!(out, "makespan              : {:.1}s", self.makespan_s);
        out
    }
}

/// Expected selected tiles for a granule (0 for night granules, which have
/// no reflective bands for AICCA; a lognormal around ~105 of the 150
/// windows for day granules).
pub fn granule_tiles(seed: u64, granule: GranuleId) -> f64 {
    let phase = (granule.orbit_time_s() / 5_933.0) * std::f64::consts::TAU;
    if phase.sin() <= 0.0 {
        return 0.0;
    }
    let key = SplitMix64::mix(seed ^ SplitMix64::mix(granule.orbit_time_s() as u64) ^ 0x7115);
    let mut rng = Xoshiro256::seed_from(key);
    rng.lognormal_mean_cv(105.0, 0.30).clamp(10.0, 150.0)
}

struct Progress {
    params: CampaignParams,
    stages: Vec<StageReport>,
    download: Option<DownloadReport>,
    shipment: Option<TransferReport>,
    // preprocess
    work_queue: VecDeque<(GranuleId, f64)>,
    preprocess_active: usize,
    preprocess_started: SimTime,
    granules_done: usize,
    granules_total: usize,
    tile_files: usize,
    total_tiles: f64,
    preprocess_done: bool,
    block_nodes: Vec<usize>,
    // inference
    inference_queue: VecDeque<(String, f64)>,
    inference_active: usize,
    labeled: Vec<(String, ByteSize)>,
    // control
    shipped: bool,
}

type P = Rc<RefCell<Progress>>;

/// Run a full five-stage campaign in virtual time.
pub fn run_campaign(params: CampaignParams) -> CampaignReport {
    assert!(params.files_per_day >= 1 && params.files_per_day <= 288);
    assert!(params.nodes >= 1 && params.workers_per_node >= 1);
    let world = World::new(params.seed, params.faults);
    assert!(params.nodes <= world.cluster.spec().nodes);
    let mut sim = Simulation::new(world);

    let progress: P = Rc::new(RefCell::new(Progress {
        params: params.clone(),
        stages: Vec::new(),
        download: None,
        shipment: None,
        work_queue: VecDeque::new(),
        preprocess_active: 0,
        preprocess_started: SimTime::ZERO,
        granules_done: 0,
        granules_total: 0,
        tile_files: 0,
        total_tiles: 0.0,
        preprocess_done: false,
        block_nodes: Vec::new(),
        inference_queue: VecDeque::new(),
        inference_active: 0,
        labeled: Vec::new(),
        shipped: false,
    }));

    stage_download(&mut sim, &progress);
    sim.run();

    let world = sim.into_state();
    let p = Rc::try_unwrap(progress)
        .unwrap_or_else(|_| panic!("campaign closures leaked"))
        .into_inner();
    let makespan_s = p
        .stages
        .iter()
        .map(|s| s.finished.as_secs_f64())
        .fold(0.0, f64::max);
    CampaignReport {
        provenance: world.provenance,
        labeled_files: p.labeled.len(),
        download: p.download.expect("download stage ran"),
        shipment: p.shipment.expect("shipment stage ran"),
        granules: p.granules_done,
        tile_files: p.tile_files,
        total_tiles: p.total_tiles,
        stages: p.stages,
        telemetry: world.telemetry,
        makespan_s,
    }
}

// --------------------------------------------------------- stage 1: download

fn stage_download(sim: &mut Simulation<World>, progress: &P) {
    let launch = sim.state_mut().launch.sample().total();
    let t0 = sim.now();
    sim.state_mut()
        .telemetry
        .span("download", "launch", t0, t0 + launch);
    let progress = Rc::clone(progress);
    sim.schedule_in(launch, move |sim| {
        let (files, workers) = {
            let p = progress.borrow();
            let cat = Catalog::new(p.params.seed);
            let mut files = Vec::new();
            for day in p.params.start.iter_days(p.params.days) {
                for product in ProductKind::all() {
                    files.extend(
                        cat.day_listing(p.params.platform, product, day)
                            .into_iter()
                            .take(p.params.files_per_day)
                            .map(|e| (e.file_name, e.size)),
                    );
                }
            }
            (files, p.params.download_workers)
        };
        let started = sim.now();
        let progress2 = Rc::clone(&progress);
        DownloadPool::run(
            sim,
            "laads",
            "ace-defiant",
            files,
            workers,
            3,
            move |sim, report| {
                let now = sim.now();
                {
                    let tel = &mut sim.state_mut().telemetry;
                    tel.span("download", "transfer", started, now);
                    tel.merge_activity("download", &report.activity);
                }
                {
                    let now_s = now.as_secs_f64();
                    let prov = &mut sim.state_mut().provenance;
                    for f in &report.files {
                        let rec = prov.record(
                            format!("defiant:{}", f.name),
                            "download",
                            vec![format!("laads:{}", f.name)],
                            "download-pool",
                            now_s,
                        );
                        rec.attrs.insert("bytes".into(), f.size.as_u64().to_string());
                        rec.attrs.insert("attempts".into(), f.attempts.to_string());
                    }
                }
                {
                    let mut p = progress2.borrow_mut();
                    p.stages.push(StageReport {
                        name: "download".into(),
                        started: SimTime::ZERO,
                        finished: now,
                        items: report.files.len(),
                        bytes: report.bytes,
                    });
                    p.download = Some(report);
                }
                stage_preprocess(sim, &progress2);
            },
        );
    });
}

// ------------------------------------------------------- stage 2: preprocess

fn stage_preprocess(sim: &mut Simulation<World>, progress: &P) {
    // Build the granule work list from the downloaded MOD02 files.
    {
        let mut p = progress.borrow_mut();
        let seed = p.params.seed;
        let report = p.download.as_ref().expect("download done");
        let mut work = Vec::new();
        for f in &report.files {
            if let Some((granule, ProductKind::Mod02)) = GranuleId::parse_file_name(&f.name) {
                let tiles = granule_tiles(seed, granule);
                // Night granules still cost a scan (~12 tile-equivalents)
                // but produce no output file.
                work.push((granule, tiles));
            }
        }
        work.sort_by_key(|&(g, _)| g);
        p.granules_total = work.len();
        p.work_queue = work.into();
        p.preprocess_started = sim.now();
    }
    let alloc_start = sim.now();
    let nodes = progress.borrow().params.nodes;
    let progress2 = Rc::clone(progress);
    request_block(
        sim,
        |w: &mut World| &mut w.slurm,
        nodes,
        move |sim, _block, node_list| {
            let now = sim.now();
            sim.state_mut()
                .telemetry
                .span("preprocess", "slurm_alloc", alloc_start, now);
            // Parsl interchange/worker start overhead.
            let parsl = Duration::from_secs_f64(
                sim.state_mut().rng.lognormal_mean_cv(1.6, 0.3),
            );
            sim.state_mut()
                .telemetry
                .span("preprocess", "parsl_start", now, now + parsl);
            let progress3 = Rc::clone(&progress2);
            sim.schedule_in(parsl, move |sim| {
                {
                    progress3.borrow_mut().block_nodes = node_list.clone();
                }
                let wpn = progress3.borrow().params.workers_per_node;
                let tile_start = sim.now();
                sim.state_mut()
                    .telemetry
                    .span("preprocess", "tile_creation_start", tile_start, tile_start);
                // Fill every worker slot; start the monitor alongside.
                for _ in 0..wpn {
                    for node_idx in 0..node_list.len() {
                        preprocess_pull(sim, &progress3, node_idx);
                    }
                }
                monitor_poll(sim, &progress3);
                maybe_finish_preprocess(sim, &progress3, tile_start);
            });
        },
    )
    .expect("cluster has enough nodes");
}

fn preprocess_pull(sim: &mut Simulation<World>, progress: &P, node_idx: usize) {
    let job = {
        let mut p = progress.borrow_mut();
        match p.work_queue.pop_front() {
            Some(job) => {
                p.preprocess_active += 1;
                let active = p.preprocess_active;
                let node = p.block_nodes[node_idx];
                let now = sim.now();
                drop(p);
                sim.state_mut()
                    .telemetry
                    .activity_change("preprocess", now, active);
                Some((node, job))
            }
            None => None,
        }
    };
    let Some((node, (granule, tiles))) = job else {
        return;
    };
    let work = tiles.max(12.0); // night-granule scan floor
    let progress2 = Rc::clone(progress);
    let tile_start = progress.borrow().preprocess_started;
    submit_task(sim, node, work, move |sim| {
        let now = sim.now();
        let produced = {
            let mut p = progress2.borrow_mut();
            p.preprocess_active -= 1;
            p.granules_done += 1;
            let active = p.preprocess_active;
            drop(p);
            sim.state_mut()
                .telemetry
                .activity_change("preprocess", now, active);
            let mut p = progress2.borrow_mut();
            if tiles > 0.0 {
                p.tile_files += 1;
                p.total_tiles += tiles;
                Some(format!("tiles-{granule}.nc"))
            } else {
                None
            }
        };
        if let Some(file) = produced {
            sim.state_mut().cluster.note_tiles(tiles);
            let now_s = sim.now().as_secs_f64();
            let inputs = ProductKind::all()
                .into_iter()
                .map(|p| format!("defiant:{}", granule.file_name(p)))
                .collect();
            sim.state_mut()
                .provenance
                .record(file.clone(), "preprocess", inputs, "parsl-worker", now_s)
                .attrs
                .insert("tiles".into(), format!("{tiles:.0}"));
            sim.state_mut().crawler.announce(file);
        }
        preprocess_pull(sim, &progress2, node_idx);
        maybe_finish_preprocess(sim, &progress2, tile_start);
    });
}

fn maybe_finish_preprocess(sim: &mut Simulation<World>, progress: &P, _tile_start: SimTime) {
    let finished = {
        let mut p = progress.borrow_mut();
        if p.preprocess_done
            || p.preprocess_active > 0
            || !p.work_queue.is_empty()
            || p.block_nodes.is_empty()
        {
            false
        } else {
            p.preprocess_done = true;
            true
        }
    };
    if finished {
        let now = sim.now();
        let (started, items, tiles) = {
            let p = progress.borrow();
            (p.preprocess_started, p.granules_done, p.total_tiles)
        };
        sim.state_mut()
            .telemetry
            .span("preprocess", "total", started, now);
        let mut p = progress.borrow_mut();
        let bytes = ByteSize::bytes((tiles * p.params.tile_nc_bytes as f64) as u64);
        p.stages.push(StageReport {
            name: "preprocess".into(),
            started,
            finished: now,
            items,
            bytes,
        });
        drop(p);
        maybe_ship(sim, progress);
    }
}

// ------------------------------------------------ stage 3+4: monitor & infer

fn monitor_poll(sim: &mut Simulation<World>, progress: &P) {
    // Crawl for new tile files and enqueue inference jobs.
    let fresh = sim.state_mut().crawler.crawl();
    if !fresh.is_empty() {
        let mut p = progress.borrow_mut();
        let seed = p.params.seed;
        for file in fresh {
            // Recover the tile count from the file name's granule.
            let tiles = file
                .strip_prefix("tiles-")
                .and_then(|rest| rest.strip_suffix(".nc"))
                .and_then(parse_granule_display)
                .map(|g| granule_tiles(seed, g))
                .unwrap_or(100.0);
            p.inference_queue.push_back((file, tiles));
        }
    }
    pump_inference(sim, progress);

    let stop = {
        let p = progress.borrow();
        p.preprocess_done
            && p.inference_queue.is_empty()
            && p.inference_active == 0
            && p.labeled.len() == p.tile_files
    };
    if !stop {
        let period = Duration::from_secs_f64(progress.borrow().params.monitor_period_s);
        let progress2 = Rc::clone(progress);
        sim.schedule_in(period, move |sim| monitor_poll(sim, &progress2));
    } else {
        maybe_ship(sim, progress);
    }
}

fn parse_granule_display(s: &str) -> Option<GranuleId> {
    // "{MOD|MYD}.A{yyyy}{ddd}.{hhmm}"
    let mut parts = s.split('.');
    let platform = match parts.next()? {
        "MOD" => Platform::Terra,
        "MYD" => Platform::Aqua,
        _ => return None,
    };
    let adate = parts.next()?;
    let year: i32 = adate.get(1..5)?.parse().ok()?;
    let doy: u16 = adate.get(5..8)?.parse().ok()?;
    let date = CivilDate::from_ordinal(year, doy)?;
    let hhmm = parts.next()?;
    let hh: u16 = hhmm.get(..2)?.parse().ok()?;
    let mm: u16 = hhmm.get(2..4)?.parse().ok()?;
    Some(GranuleId::new(platform, date, hh * 12 + mm / 5))
}

fn pump_inference(sim: &mut Simulation<World>, progress: &P) {
    loop {
        let job = {
            let mut p = progress.borrow_mut();
            if p.inference_active >= p.params.inference_workers {
                None
            } else if let Some(job) = p.inference_queue.pop_front() {
                p.inference_active += 1;
                let active = p.inference_active;
                drop(p);
                let now = sim.now();
                sim.state_mut()
                    .telemetry
                    .activity_change("inference", now, active);
                Some(job)
            } else {
                None
            }
        };
        let Some((file, tiles)) = job else {
            break;
        };
        // The flow: crawl-handoff → infer → append → move, each hop paying
        // the Globus-Flows action overhead (~50 ms).
        let mut overhead = Duration::ZERO;
        for _ in 0..4 {
            let hop = sim.state_mut().flow_overhead.sample().total();
            let now = sim.now();
            sim.state_mut()
                .telemetry
                .span("inference", "flow_action", now + overhead, now + overhead + hop);
            overhead += hop;
        }
        let rate = progress.borrow().params.inference_rate;
        let compute = Duration::from_secs_f64(tiles / rate);
        let now = sim.now();
        sim.state_mut()
            .telemetry
            .span("inference", "compute", now + overhead, now + overhead + compute);
        let total = overhead + compute;
        let progress2 = Rc::clone(progress);
        sim.schedule_in(total, move |sim| {
            let now = sim.now();
            {
                let mut p = progress2.borrow_mut();
                p.inference_active -= 1;
                let bytes = ByteSize::bytes((tiles * p.params.tile_nc_bytes as f64) as u64);
                p.labeled.push((file.clone(), bytes));
                let active = p.inference_active;
                drop(p);
                sim.state_mut()
                    .telemetry
                    .activity_change("inference", now, active);
                let now_s = now.as_secs_f64();
                sim.state_mut().provenance.record(
                    format!("labeled:{file}"),
                    "inference",
                    vec![file],
                    "globus-flow",
                    now_s,
                );
            }
            pump_inference(sim, &progress2);
            // The monitor loop handles the stop/ship decision; but if it
            // already stopped polling, check here too.
            let stop = {
                let p = progress2.borrow();
                p.preprocess_done
                    && p.inference_queue.is_empty()
                    && p.inference_active == 0
                    && p.labeled.len() == p.tile_files
            };
            if stop {
                maybe_ship(sim, &progress2);
            }
        });
    }
}

// --------------------------------------------------------- stage 5: shipment

fn maybe_ship(sim: &mut Simulation<World>, progress: &P) {
    let files = {
        let mut p = progress.borrow_mut();
        let ready = p.preprocess_done
            && p.inference_queue.is_empty()
            && p.inference_active == 0
            && p.labeled.len() == p.tile_files
            && !p.shipped;
        if !ready {
            return;
        }
        p.shipped = true;
        p.labeled.clone()
    };
    let started = sim.now();
    let progress2 = Rc::clone(progress);
    submit_transfer(
        sim,
        "ace-defiant",
        "frontier-orion",
        files,
        TransferOptions::default(),
        move |sim, report| {
            let now = sim.now();
            sim.state_mut()
                .telemetry
                .span("shipment", "transfer", started, now);
            {
                let now_s = now.as_secs_f64();
                let shipped: Vec<String> =
                    report.file_times.iter().map(|(n, _)| n.clone()).collect();
                let prov = &mut sim.state_mut().provenance;
                for name in shipped {
                    prov.record(
                        format!("orion:{name}"),
                        "shipment",
                        vec![format!("labeled:{name}")],
                        "globus-transfer",
                        now_s,
                    );
                }
            }
            let mut p = progress2.borrow_mut();
            p.stages.push(StageReport {
                name: "shipment".into(),
                started,
                finished: now,
                items: report.files_ok,
                bytes: report.bytes,
            });
            p.shipment = Some(report);
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> CampaignReport {
        run_campaign(CampaignParams::small())
    }

    #[test]
    fn campaign_runs_all_stages() {
        let r = small_report();
        assert!(r.stage("download").is_some());
        assert!(r.stage("preprocess").is_some());
        assert!(r.stage("shipment").is_some());
        // 4 files per day × 3 products.
        assert_eq!(r.download.files.len(), 12);
        assert_eq!(r.granules, 4, "one preprocess task per MOD02 file");
        assert!(r.makespan_s > 0.0);
    }

    #[test]
    fn labeled_files_match_tile_files() {
        let r = small_report();
        assert_eq!(r.labeled_files, r.tile_files);
        assert_eq!(r.shipment.files_ok, r.tile_files);
        if r.tile_files > 0 {
            assert!(r.total_tiles > 0.0);
            assert!(r.shipment.bytes.as_u64() > 0);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(CampaignParams::small());
        let b = run_campaign(CampaignParams::small());
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.total_tiles, b.total_tiles);
        assert_eq!(a.download.bytes, b.download.bytes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_campaign(CampaignParams::small());
        let b = run_campaign(CampaignParams {
            seed: 9999,
            ..CampaignParams::small()
        });
        assert_ne!(a.makespan_s, b.makespan_s);
    }

    #[test]
    fn download_launch_is_about_5_6_seconds() {
        let r = small_report();
        let launch = r.telemetry.total_seconds("download", "launch");
        assert!((3.5..9.0).contains(&launch), "launch {launch}");
    }

    #[test]
    fn flow_action_overhead_is_tens_of_milliseconds() {
        let r = run_campaign(CampaignParams {
            files_per_day: 12,
            ..CampaignParams::small()
        });
        let mean = r.telemetry.mean_seconds("inference", "flow_action");
        assert!((0.02..0.12).contains(&mean), "flow action mean {mean}");
    }

    #[test]
    fn inference_overlaps_preprocessing() {
        // With enough files, the crawler triggers inference while
        // preprocessing is still busy — the paper's Fig. 6 behaviour.
        let r = run_campaign(CampaignParams {
            files_per_day: 24,
            nodes: 1,
            workers_per_node: 4,
            ..CampaignParams::paper_demo()
        });
        assert!(
            r.telemetry.stages_overlap("preprocess", "inference"),
            "inference should start before preprocessing completes"
        );
    }

    #[test]
    fn stage_resources_match_fig6_allocation() {
        let r = run_campaign(CampaignParams {
            files_per_day: 16,
            nodes: 4,
            workers_per_node: 8,
            ..CampaignParams::paper_demo()
        });
        assert_eq!(r.telemetry.peak("download"), 3);
        assert!(r.telemetry.peak("preprocess") <= 32);
        assert!(r.telemetry.peak("preprocess") >= 8);
        assert_eq!(r.telemetry.peak("inference"), 1);
    }

    #[test]
    fn night_granules_produce_no_files() {
        let r = small_report();
        assert!(
            r.tile_files <= r.granules,
            "{} files from {} granules",
            r.tile_files,
            r.granules
        );
        // Over a day, roughly half the granules are night.
        let r24 = run_campaign(CampaignParams {
            files_per_day: 48,
            ..CampaignParams::small()
        });
        assert!(r24.tile_files < r24.granules);
        assert!(r24.tile_files > 0);
    }

    #[test]
    fn granule_tiles_model_is_sane() {
        let date = CivilDate::new(2022, 1, 1).unwrap();
        let mut day = 0;
        let mut night = 0;
        for slot in 0..288 {
            let g = GranuleId::new(Platform::Terra, date, slot);
            let t = granule_tiles(2022, g);
            if t == 0.0 {
                night += 1;
            } else {
                day += 1;
                assert!((10.0..=150.0).contains(&t));
            }
        }
        assert!(day > 100 && night > 100, "day {day} night {night}");
        // Deterministic.
        let g = GranuleId::new(Platform::Terra, date, 100);
        assert_eq!(granule_tiles(1, g), granule_tiles(1, g));
    }

    #[test]
    fn provenance_traces_shipped_files_to_the_archive() {
        // The first few slots of the day are night granules; use enough
        // files that day granules (and thus tile files) appear.
        let r = run_campaign(CampaignParams {
            files_per_day: 24,
            ..CampaignParams::small()
        });
        assert!(r.provenance.is_acyclic());
        assert!(r.tile_files > 0, "need at least one produced file");
        // Pick any shipped artifact and walk its lineage back to LAADS.
        let shipped = r
            .provenance
            .records()
            .iter()
            .find(|rec| rec.activity == "shipment")
            .expect("shipment recorded");
        let lineage = r.provenance.lineage(&shipped.artifact);
        assert!(
            lineage.iter().any(|a| a.starts_with("laads:MOD021KM")),
            "lineage should reach the MOD02 archive file: {lineage:?}"
        );
        assert!(
            lineage.iter().any(|a| a.starts_with("laads:MOD06_L2")),
            "lineage should reach the MOD06 archive file: {lineage:?}"
        );
        // download + preprocess + inference + shipment records all exist.
        for activity in ["download", "preprocess", "inference", "shipment"] {
            assert!(
                r.provenance.records().iter().any(|x| x.activity == activity),
                "missing {activity} records"
            );
        }
    }

    #[test]
    fn summary_table_renders() {
        let r = small_report();
        let table = r.summary_table();
        assert!(table.contains("download"));
        assert!(table.contains("shipment"));
        assert!(table.contains("makespan"));
    }

    #[test]
    fn from_config_maps_fields() {
        let cfg = WorkflowConfig::default();
        let p = CampaignParams::from_config(&cfg);
        assert_eq!(p.seed, 2022);
        assert_eq!(p.platform, Platform::Terra);
        assert_eq!(p.download_workers, 3);
        assert_eq!(p.nodes, 1);
        assert_eq!(p.workers_per_node, 8);
        assert_eq!(p.files_per_day, 288);
    }

    #[test]
    fn faults_slow_but_do_not_break_the_campaign() {
        let clean = run_campaign(CampaignParams::small());
        let flaky = run_campaign(CampaignParams {
            faults: FaultPlan::flaky_wan(),
            ..CampaignParams::small()
        });
        assert_eq!(flaky.labeled_files, flaky.tile_files);
        assert_eq!(flaky.download.files.len(), clean.download.files.len());
    }
}

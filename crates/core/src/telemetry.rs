//! Workflow instrumentation: spans and worker-activity timelines.
//!
//! Everything the paper's Figs. 6 and 7 plot comes through here: Fig. 6 is
//! the per-stage active-worker count over time; Fig. 7 is the latency of
//! each workflow component and the communication hops between them.

use eoml_obs::{Obs, TraceContext};
use eoml_simtime::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named interval attributed to a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Stage, e.g. `"download"`.
    pub stage: String,
    /// Component within the stage, e.g. `"launch"`, `"transfer"`.
    pub name: String,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl Span {
    /// Span duration in seconds.
    pub fn seconds(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }
}

/// Collected telemetry for one campaign.
///
/// Since the `eoml-obs` crate landed this is a thin adapter: the local
/// `spans`/`activity` collections still feed the Fig. 6/7 reproduction
/// code unchanged, and when an [`Obs`] hub is attached every span and
/// activity change is mirrored into it (sim-stamped spans, an
/// `active_workers` gauge, and the per-`(name, stage)` duration
/// histograms), so one campaign run also yields Chrome traces,
/// Prometheus dumps, and live sink events.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// All recorded spans, in recording order.
    pub spans: Vec<Span>,
    /// Per-stage `(time, active workers)` change points.
    pub activity: BTreeMap<String, Vec<(SimTime, usize)>>,
    obs: Option<Arc<Obs>>,
}

impl Telemetry {
    /// Empty telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror everything recorded from now on into `obs`.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(obs);
    }

    /// The attached observability hub, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Record a completed span.
    pub fn span(&mut self, stage: &str, name: &str, start: SimTime, end: SimTime) {
        self.span_traced(stage, name, start, end, None);
    }

    /// [`Telemetry::span`] carrying a per-granule trace identity: the
    /// mirrored obs span is stamped with `trace` so the interval joins
    /// that granule's end-to-end trace. The local `spans` collection is
    /// unchanged (Fig. 6/7 aggregation is trace-agnostic).
    pub fn span_traced(
        &mut self,
        stage: &str,
        name: &str,
        start: SimTime,
        end: SimTime,
        trace: Option<&TraceContext>,
    ) {
        assert!(end >= start, "span ends before it starts");
        if let Some(obs) = &self.obs {
            obs.record_sim_span_traced(stage, name, start, end, trace, &[]);
        }
        self.spans.push(Span {
            stage: stage.to_string(),
            name: name.to_string(),
            start,
            end,
        });
    }

    /// Record an instantaneous event (a zero-length span) — monitor
    /// triggers, journal recovery points.
    pub fn mark(&mut self, stage: &str, name: &str, t: SimTime) {
        self.span(stage, name, t, t);
    }

    /// [`Telemetry::mark`] carrying a per-granule trace identity (see
    /// [`Telemetry::span_traced`]).
    pub fn mark_traced(
        &mut self,
        stage: &str,
        name: &str,
        t: SimTime,
        trace: Option<&TraceContext>,
    ) {
        self.span_traced(stage, name, t, t, trace);
    }

    /// Bump an obs counter; no-op when no hub is attached.
    pub fn count(&self, name: &str, stage: &str, delta: u64) {
        if let Some(obs) = &self.obs {
            obs.counter_add(name, stage, delta);
        }
    }

    /// Record an obs histogram observation; no-op when no hub is attached.
    pub fn observe(&self, name: &str, stage: &str, value: f64) {
        if let Some(obs) = &self.obs {
            obs.observe(name, stage, value);
        }
    }

    /// Open a [`ResourceGuard`] attributing allocator activity to
    /// `(stage, name)` until the guard drops; `None` when no hub is
    /// attached. With no counting allocator installed the guard measures
    /// zeros and writes nothing, so callers can scope unconditionally.
    ///
    /// [`ResourceGuard`]: eoml_obs::ResourceGuard
    pub fn resource_scope(&self, stage: &str, name: &str) -> Option<eoml_obs::ResourceGuard> {
        self.obs
            .as_ref()
            .map(|obs| eoml_obs::ResourceGuard::enter(Arc::clone(obs), stage, name))
    }

    /// Record a worker-count change for a stage.
    pub fn activity_change(&mut self, stage: &str, t: SimTime, active: usize) {
        if let Some(obs) = &self.obs {
            obs.gauge_set("active_workers", stage, active as f64);
        }
        self.activity
            .entry(stage.to_string())
            .or_default()
            .push((t, active));
    }

    /// Merge a whole activity series (e.g. a batch report's) into a stage.
    pub fn merge_activity(&mut self, stage: &str, series: &[(SimTime, usize)]) {
        let entry = self.activity.entry(stage.to_string()).or_default();
        entry.extend_from_slice(series);
        entry.sort_by_key(|&(t, _)| t);
    }

    /// Active workers of `stage` at time `t` (step function lookup).
    ///
    /// O(log n) binary search — the series is kept time-sorted by
    /// [`Telemetry::activity_change`] (monotone sim time) and
    /// [`Telemetry::merge_activity`] (explicit sort).
    pub fn activity_at(&self, stage: &str, t: SimTime) -> usize {
        match self.activity.get(stage) {
            None => 0,
            Some(series) => {
                let idx = series.partition_point(|&(st, _)| st <= t);
                if idx == 0 {
                    0
                } else {
                    series[idx - 1].1
                }
            }
        }
    }

    /// Peak concurrency of a stage.
    pub fn peak(&self, stage: &str) -> usize {
        self.activity
            .get(stage)
            .map(|s| s.iter().map(|&(_, a)| a).max().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Sum of span durations matching `(stage, name)`.
    pub fn total_seconds(&self, stage: &str, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage && s.name == name)
            .map(Span::seconds)
            .sum()
    }

    /// Mean duration of spans matching `(stage, name)`, or 0 if none.
    pub fn mean_seconds(&self, stage: &str, name: &str) -> f64 {
        let matching: Vec<f64> = self
            .spans
            .iter()
            .filter(|s| s.stage == stage && s.name == name)
            .map(Span::seconds)
            .collect();
        if matching.is_empty() {
            0.0
        } else {
            matching.iter().sum::<f64>() / matching.len() as f64
        }
    }

    /// Whether two stages' activity overlapped in time (both nonzero at
    /// some change point) — how Fig. 6's preprocess/inference overlap is
    /// checked.
    /// O(n log n): one [`Telemetry::activity_at`] binary search per
    /// change point, instead of the linear rescan per point this used
    /// to do (O(n²) on long campaigns).
    pub fn stages_overlap(&self, a: &str, b: &str) -> bool {
        let probe = |x: &str, y: &str| {
            self.activity.get(x).is_some_and(|series| {
                series
                    .iter()
                    .any(|&(t, active)| active > 0 && self.activity_at(y, t) > 0)
            })
        };
        probe(a, b) || probe(b, a)
    }

    /// Export everything as JSON for external plotting/telemetry tooling
    /// (the paper's §V-A "telemetry tools for real-time workflow insights").
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "spans": self.spans.iter().map(|s| serde_json::json!({
                "stage": s.stage,
                "name": s.name,
                "start_s": s.start.as_secs_f64(),
                "end_s": s.end.as_secs_f64(),
            })).collect::<Vec<_>>(),
            "activity": self.activity.iter().map(|(stage, series)| {
                (stage.clone(), series.iter().map(|&(t, a)| {
                    serde_json::json!([t.as_secs_f64(), a])
                }).collect::<Vec<_>>())
            }).collect::<std::collections::BTreeMap<_, _>>(),
        })
    }

    /// Resample a stage's activity onto a uniform grid of `n` samples over
    /// `[t0, t1]` — convenient for plotting Fig. 6-style timelines.
    pub fn sample_activity(
        &self,
        stage: &str,
        t0: SimTime,
        t1: SimTime,
        n: usize,
    ) -> Vec<(f64, usize)> {
        assert!(n >= 2 && t1 >= t0);
        let span = (t1 - t0).as_secs_f64();
        (0..n)
            .map(|i| {
                let dt = span * i as f64 / (n - 1) as f64;
                let t = t0 + std::time::Duration::from_secs_f64(dt);
                (t.as_secs_f64(), self.activity_at(stage, t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn spans_record_and_aggregate() {
        let mut tel = Telemetry::new();
        tel.span("download", "launch", t(0.0), t(5.63));
        tel.span("download", "transfer", t(5.63), t(30.0));
        tel.span("inference", "flow_action", t(40.0), t(40.05));
        tel.span("inference", "flow_action", t(41.0), t(41.07));
        assert_eq!(tel.spans.len(), 4);
        assert!((tel.total_seconds("download", "launch") - 5.63).abs() < 1e-9);
        assert!((tel.mean_seconds("inference", "flow_action") - 0.06).abs() < 1e-9);
        assert_eq!(tel.mean_seconds("nope", "x"), 0.0);
    }

    #[test]
    fn activity_step_function() {
        let mut tel = Telemetry::new();
        tel.activity_change("preprocess", t(10.0), 8);
        tel.activity_change("preprocess", t(20.0), 32);
        tel.activity_change("preprocess", t(30.0), 0);
        assert_eq!(tel.activity_at("preprocess", t(5.0)), 0);
        assert_eq!(tel.activity_at("preprocess", t(10.0)), 8);
        assert_eq!(tel.activity_at("preprocess", t(25.0)), 32);
        assert_eq!(tel.activity_at("preprocess", t(35.0)), 0);
        assert_eq!(tel.peak("preprocess"), 32);
        assert_eq!(tel.peak("unknown"), 0);
    }

    #[test]
    fn merge_activity_sorts() {
        let mut tel = Telemetry::new();
        tel.activity_change("s", t(5.0), 1);
        tel.merge_activity("s", &[(t(1.0), 2), (t(9.0), 0)]);
        let series = &tel.activity["s"];
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(tel.activity_at("s", t(2.0)), 2);
    }

    #[test]
    fn overlap_detection() {
        let mut tel = Telemetry::new();
        tel.activity_change("preprocess", t(0.0), 32);
        tel.activity_change("preprocess", t(100.0), 0);
        tel.activity_change("inference", t(50.0), 1);
        tel.activity_change("inference", t(60.0), 0);
        assert!(tel.stages_overlap("preprocess", "inference"));
        let mut tel2 = Telemetry::new();
        tel2.activity_change("a", t(0.0), 1);
        tel2.activity_change("a", t(10.0), 0);
        tel2.activity_change("b", t(20.0), 1);
        tel2.activity_change("b", t(30.0), 0);
        assert!(!tel2.stages_overlap("a", "b"));
    }

    #[test]
    fn sample_activity_grid() {
        let mut tel = Telemetry::new();
        tel.activity_change("s", t(0.0), 3);
        tel.activity_change("s", t(50.0), 0);
        let samples = tel.sample_activity("s", t(0.0), t(100.0), 5);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0], (0.0, 3));
        assert_eq!(samples[1], (25.0, 3));
        assert_eq!(samples[2].1, 0);
        assert_eq!(samples[4], (100.0, 0));
    }

    #[test]
    fn json_export_contains_spans_and_activity() {
        let mut tel = Telemetry::new();
        tel.span("download", "launch", t(0.0), t(5.0));
        tel.activity_change("preprocess", t(10.0), 8);
        let j = tel.to_json();
        assert_eq!(j["spans"][0]["stage"], "download");
        assert_eq!(j["spans"][0]["end_s"], 5.0);
        assert_eq!(j["activity"]["preprocess"][0][0], 10.0);
        assert_eq!(j["activity"]["preprocess"][0][1], 8);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_span_panics() {
        let mut tel = Telemetry::new();
        tel.span("x", "y", t(2.0), t(1.0));
    }
}

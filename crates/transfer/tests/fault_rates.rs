//! Property tests of the fault model's statistics: for any plan and any
//! seed, the sampled drop/corrupt rates of a long stream must sit within
//! tight statistical bounds of the configured probabilities — the WAN
//! degradation the chaos scenarios dial in is only realistic if the
//! injector actually delivers the rates on the label.

use eoml_transfer::{FaultInjector, FaultPlan, FlowOutcome};
use proptest::prelude::*;

const DRAWS: usize = 20_000;

/// Five-sigma binomial half-width around rate `p` over [`DRAWS`] samples.
/// A correct sampler exceeds this with probability ≈ 6e-7 per bound, so a
/// failure is a real rate bug, not noise.
fn bound(p: f64) -> f64 {
    5.0 * (p * (1.0 - p) / DRAWS as f64).sqrt() + 1e-12
}

proptest! {
    #[test]
    fn sampled_rates_stay_within_statistical_bounds(
        seed in 0u64..1_000_000_000,
        drop_pct in 0u8..90,
        corrupt_pct in 0u8..90,
    ) {
        let p_drop = drop_pct as f64 / 100.0;
        let p_corrupt = corrupt_pct as f64 / 100.0;
        let plan = FaultPlan {
            drop_probability: p_drop,
            corrupt_probability: p_corrupt,
        };
        let mut inj = FaultInjector::new(plan).with_seed(seed);
        let (mut drops, mut corrupts, mut successes) = (0usize, 0usize, 0usize);
        for _ in 0..DRAWS {
            match inj.sample() {
                FlowOutcome::ConnectionDropped => drops += 1,
                FlowOutcome::ChecksumMismatch => corrupts += 1,
                FlowOutcome::Success => successes += 1,
            }
        }
        prop_assert_eq!(drops + corrupts + successes, DRAWS);

        let drop_rate = drops as f64 / DRAWS as f64;
        prop_assert!(
            (drop_rate - p_drop).abs() <= bound(p_drop),
            "drop rate {} vs configured {} (seed {})",
            drop_rate, p_drop, seed
        );

        // Corruption is sampled only when the flow did not drop, so the
        // marginal corrupt rate is (1 - p_drop) × p_corrupt.
        let p_corrupt_marginal = (1.0 - p_drop) * p_corrupt;
        let corrupt_rate = corrupts as f64 / DRAWS as f64;
        prop_assert!(
            (corrupt_rate - p_corrupt_marginal).abs() <= bound(p_corrupt_marginal),
            "corrupt rate {} vs expected marginal {} (seed {})",
            corrupt_rate, p_corrupt_marginal, seed
        );

        let p_success = (1.0 - p_drop) * (1.0 - p_corrupt);
        let success_rate = successes as f64 / DRAWS as f64;
        prop_assert!(
            (success_rate - p_success).abs() <= bound(p_success),
            "success rate {} vs expected {} (seed {})",
            success_rate, p_success, seed
        );
    }

    #[test]
    fn seeded_streams_replay_identically_for_any_plan(
        seed in 0u64..1_000_000_000,
        drop_pct in 0u8..100,
        corrupt_pct in 0u8..100,
    ) {
        let plan = FaultPlan {
            drop_probability: drop_pct as f64 / 100.0,
            corrupt_probability: corrupt_pct as f64 / 100.0,
        };
        let mut a = FaultInjector::new(plan).with_seed(seed);
        let mut b = FaultInjector::new(plan).with_seed(seed);
        for _ in 0..256 {
            prop_assert_eq!(a.sample(), b.sample());
        }
    }
}

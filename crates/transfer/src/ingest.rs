//! Destination-side ingest: verify a shipment against its manifest.
//!
//! The receiving facility holds the bytes that actually arrived and the
//! [`ShipmentManifest`] that travelled with them. [`Ingestor::ingest`]
//! joins the two: every manifest artifact must be present, the right
//! size, and digest-identical; anything extra on the floor is flagged.
//! The outcome is an [`IngestReport`] with **typed** errors
//! ([`IngestError`]) — a corrupt artifact is a loud, machine-readable
//! failure, never a silently dropped file.
//!
//! Verification work is recorded as facility-tagged `ingest` spans on
//! the destination's own [`Obs`] hub, carrying the granule trace ids
//! from the manifest — the raw material `obs::xfac` stitches into one
//! cross-facility timeline.
//!
//! **Idempotency contract:** a fully verified manifest id is remembered
//! (seeded via [`Ingestor::restore_acked`] from journaled
//! `IngestAcked` events). Re-shipping an acked manifest is a no-op
//! `duplicate` report — the caller journals acks, this type only keeps
//! the set.

use std::collections::BTreeSet;
use std::sync::Arc;

use eoml_obs::{Obs, TraceContext};
use serde_json::{json, Value};

use crate::faults::{FaultInjector, FlowOutcome};
use crate::manifest::{ArtifactEntry, ShipmentManifest};

/// One artifact as it arrived at the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedArtifact {
    /// File name.
    pub name: String,
    /// Bytes received.
    pub bytes: u64,
    /// Digest of the received payload.
    pub digest: u64,
}

impl ReceivedArtifact {
    /// A faithful copy of a manifest entry (what a clean WAN delivers).
    pub fn faithful(entry: &ArtifactEntry) -> ReceivedArtifact {
        ReceivedArtifact {
            name: entry.name.clone(),
            bytes: entry.bytes,
            digest: entry.digest,
        }
    }
}

/// Simulate the WAN hop: sample the fault injector once per artifact.
/// A dropped connection loses the artifact entirely; a checksum fault
/// delivers it with a corrupted digest.
pub fn receive(manifest: &ShipmentManifest, faults: &mut FaultInjector) -> Vec<ReceivedArtifact> {
    let mut out = Vec::with_capacity(manifest.artifacts.len());
    for entry in &manifest.artifacts {
        match faults.sample() {
            FlowOutcome::ConnectionDropped => {}
            FlowOutcome::ChecksumMismatch => out.push(ReceivedArtifact {
                name: entry.name.clone(),
                bytes: entry.bytes,
                digest: faults.corrupt_digest(entry.digest),
            }),
            FlowOutcome::Success => out.push(ReceivedArtifact::faithful(entry)),
        }
    }
    out
}

/// A typed ingest-verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The artifact arrived but its content digest differs.
    DigestMismatch {
        /// Artifact name.
        artifact: String,
        /// Digest the manifest promises.
        expected: u64,
        /// Digest of the received bytes.
        actual: u64,
    },
    /// The artifact arrived truncated or padded.
    SizeMismatch {
        /// Artifact name.
        artifact: String,
        /// Bytes the manifest promises.
        expected: u64,
        /// Bytes received.
        actual: u64,
    },
    /// A manifest artifact never arrived.
    Missing {
        /// Artifact name.
        artifact: String,
    },
    /// An artifact arrived that the manifest does not list.
    Unexpected {
        /// Artifact name.
        artifact: String,
    },
}

impl IngestError {
    /// Short machine label (`digest_mismatch` / `size_mismatch` /
    /// `missing` / `unexpected`).
    pub fn kind(&self) -> &'static str {
        match self {
            IngestError::DigestMismatch { .. } => "digest_mismatch",
            IngestError::SizeMismatch { .. } => "size_mismatch",
            IngestError::Missing { .. } => "missing",
            IngestError::Unexpected { .. } => "unexpected",
        }
    }

    /// The artifact involved.
    pub fn artifact(&self) -> &str {
        match self {
            IngestError::DigestMismatch { artifact, .. }
            | IngestError::SizeMismatch { artifact, .. }
            | IngestError::Missing { artifact }
            | IngestError::Unexpected { artifact } => artifact,
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> Value {
        match self {
            IngestError::DigestMismatch {
                artifact,
                expected,
                actual,
            } => json!({
                "kind": "digest_mismatch",
                "artifact": artifact,
                "expected": format!("{expected:016x}"),
                "actual": format!("{actual:016x}"),
            }),
            IngestError::SizeMismatch {
                artifact,
                expected,
                actual,
            } => json!({
                "kind": "size_mismatch",
                "artifact": artifact,
                "expected": expected,
                "actual": actual,
            }),
            IngestError::Missing { artifact } => {
                json!({ "kind": "missing", "artifact": artifact })
            }
            IngestError::Unexpected { artifact } => {
                json!({ "kind": "unexpected", "artifact": artifact })
            }
        }
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Value) -> Result<IngestError, String> {
        let artifact = v["artifact"]
            .as_str()
            .ok_or("ingest error: missing 'artifact'")?
            .to_string();
        let hex64 = |k: &str| -> Result<u64, String> {
            let s = v[k]
                .as_str()
                .ok_or_else(|| format!("ingest error: missing '{k}'"))?;
            u64::from_str_radix(s, 16).map_err(|_| format!("ingest error: '{k}' is not hex"))
        };
        Ok(match v["kind"].as_str() {
            Some("digest_mismatch") => IngestError::DigestMismatch {
                artifact,
                expected: hex64("expected")?,
                actual: hex64("actual")?,
            },
            Some("size_mismatch") => IngestError::SizeMismatch {
                artifact,
                expected: v["expected"]
                    .as_u64()
                    .ok_or("ingest error: missing 'expected'")?,
                actual: v["actual"]
                    .as_u64()
                    .ok_or("ingest error: missing 'actual'")?,
            },
            Some("missing") => IngestError::Missing { artifact },
            Some("unexpected") => IngestError::Unexpected { artifact },
            other => return Err(format!("unknown ingest error kind {other:?}")),
        })
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::DigestMismatch {
                artifact,
                expected,
                actual,
            } => write!(
                f,
                "digest mismatch on {artifact}: manifest {expected:016x}, received {actual:016x}"
            ),
            IngestError::SizeMismatch {
                artifact,
                expected,
                actual,
            } => write!(
                f,
                "size mismatch on {artifact}: manifest {expected} B, received {actual} B"
            ),
            IngestError::Missing { artifact } => write!(f, "missing artifact {artifact}"),
            IngestError::Unexpected { artifact } => {
                write!(f, "unexpected artifact {artifact} not in manifest")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Outcome of verifying one shipment at the destination.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Manifest id this report answers.
    pub manifest_id: String,
    /// Source facility (from the manifest).
    pub source: String,
    /// The verifying (destination) facility.
    pub facility: String,
    /// Verification start, trace seconds.
    pub at_s: f64,
    /// Artifacts that verified clean, in manifest order.
    pub verified: Vec<String>,
    /// Every verification failure, typed.
    pub errors: Vec<IngestError>,
    /// The manifest was already acknowledged — re-ship skipped as a
    /// no-op (idempotency).
    pub duplicate: bool,
    /// Bytes whose digests verified.
    pub bytes_verified: u64,
    /// Virtual seconds spent verifying.
    pub verify_seconds: f64,
}

impl IngestReport {
    /// Whether the shipment is complete and intact.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// The first failure, when any — the loud error a caller surfaces.
    pub fn first_error(&self) -> Option<&IngestError> {
        self.errors.first()
    }

    /// JSON form (the `EOML_XFAC_REPORT` export CI validates).
    pub fn to_json(&self) -> Value {
        json!({
            "manifest_id": self.manifest_id,
            "source": self.source,
            "facility": self.facility,
            "at_s": self.at_s,
            "ok": self.ok(),
            "duplicate": self.duplicate,
            "verified": self.verified,
            "errors": self.errors.iter().map(IngestError::to_json).collect::<Vec<_>>(),
            "bytes_verified": self.bytes_verified,
            "verify_seconds": self.verify_seconds,
        })
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Value) -> Result<IngestReport, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v[k].as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("ingest report: missing '{k}'"))
        };
        let errors = match v["errors"].as_array() {
            Some(a) => a
                .iter()
                .map(IngestError::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(IngestReport {
            manifest_id: str_field("manifest_id")?,
            source: str_field("source")?,
            facility: str_field("facility")?,
            at_s: v["at_s"].as_f64().unwrap_or(0.0),
            verified: v["verified"]
                .as_array()
                .map(|a| {
                    a.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            errors,
            duplicate: v["duplicate"].as_bool().unwrap_or(false),
            bytes_verified: v["bytes_verified"].as_u64().unwrap_or(0),
            verify_seconds: v["verify_seconds"].as_f64().unwrap_or(0.0),
        })
    }
}

/// The destination facility's verifier: owns the acked-manifest set and
/// (optionally) an [`Obs`] hub that receives facility-tagged spans.
#[derive(Debug)]
pub struct Ingestor {
    facility: String,
    obs: Option<Arc<Obs>>,
    verify_rate_bps: f64,
    acked: BTreeSet<String>,
}

impl Ingestor {
    /// Verifier for `facility` with the default verify throughput
    /// (500 MB/s — a parallel checksum pass on a parallel file system).
    pub fn new(facility: &str) -> Ingestor {
        Ingestor {
            facility: facility.to_string(),
            obs: None,
            verify_rate_bps: 500e6,
            acked: BTreeSet::new(),
        }
    }

    /// Builder: record verification spans/counters into `obs`.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Ingestor {
        self.obs = Some(obs);
        self
    }

    /// Builder: override verify throughput (bytes/second, > 0).
    pub fn with_verify_rate(mut self, bps: f64) -> Ingestor {
        assert!(bps > 0.0, "verify rate must be positive");
        self.verify_rate_bps = bps;
        self
    }

    /// The facility this verifier answers for.
    pub fn facility(&self) -> &str {
        &self.facility
    }

    /// The attached hub, for sibling modules that record extra
    /// facility-tagged counters (the journal-sync completeness check).
    pub(crate) fn obs_hub(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Seed the acked set from durable state (journaled `IngestAcked`
    /// manifest ids) — how a restarted destination stays idempotent.
    pub fn restore_acked<I: IntoIterator<Item = String>>(&mut self, ids: I) {
        self.acked.extend(ids);
    }

    /// Whether a manifest id is already acknowledged.
    pub fn is_acked(&self, manifest_id: &str) -> bool {
        self.acked.contains(manifest_id)
    }

    /// Manifests acknowledged so far.
    pub fn acked_count(&self) -> usize {
        self.acked.len()
    }

    /// Verify `received` against `manifest`, starting at `now_s` on the
    /// trace clock. Spans land on the destination hub tagged with this
    /// facility; a fully clean shipment is acknowledged (idempotent on
    /// re-ship). The caller journals an `IngestAcked` event when
    /// `report.ok() && !report.duplicate`.
    pub fn ingest(
        &mut self,
        manifest: &ShipmentManifest,
        received: &[ReceivedArtifact],
        now_s: f64,
    ) -> IngestReport {
        let manifest_id = manifest.id();
        let stage_key = format!("facility:{}", self.facility);
        if self.acked.contains(&manifest_id) {
            if let Some(obs) = &self.obs {
                obs.record_sim_span_with(
                    "ingest",
                    "duplicate_ack",
                    eoml_simtime::SimTime::from_secs_f64(now_s.max(0.0)),
                    eoml_simtime::SimTime::from_secs_f64(now_s.max(0.0)),
                    &[
                        ("facility", self.facility.as_str()),
                        ("manifest", manifest_id.as_str()),
                    ],
                );
                obs.counter_add("duplicate_shipments", &stage_key, 1);
            }
            return IngestReport {
                manifest_id,
                source: manifest.source.clone(),
                facility: self.facility.clone(),
                at_s: now_s,
                verified: Vec::new(),
                errors: Vec::new(),
                duplicate: true,
                bytes_verified: 0,
                verify_seconds: 0.0,
            };
        }

        let mut verified = Vec::new();
        let mut errors = Vec::new();
        let mut bytes_verified = 0u64;
        let mut clock = now_s;
        for entry in &manifest.artifacts {
            match received.iter().find(|r| r.name == entry.name) {
                None => errors.push(IngestError::Missing {
                    artifact: entry.name.clone(),
                }),
                Some(r) if r.bytes != entry.bytes => errors.push(IngestError::SizeMismatch {
                    artifact: entry.name.clone(),
                    expected: entry.bytes,
                    actual: r.bytes,
                }),
                Some(r) if r.digest != entry.digest => errors.push(IngestError::DigestMismatch {
                    artifact: entry.name.clone(),
                    expected: entry.digest,
                    actual: r.digest,
                }),
                Some(r) => {
                    let took = r.bytes as f64 / self.verify_rate_bps;
                    if let Some(obs) = &self.obs {
                        let trace = entry.trace_id.as_deref().map(TraceContext::new);
                        obs.record_sim_span_traced(
                            "ingest",
                            "verify",
                            eoml_simtime::SimTime::from_secs_f64(clock.max(0.0)),
                            eoml_simtime::SimTime::from_secs_f64((clock + took).max(0.0)),
                            trace.as_ref(),
                            &[
                                ("facility", self.facility.as_str()),
                                ("artifact", entry.name.as_str()),
                            ],
                        );
                    }
                    clock += took;
                    bytes_verified += r.bytes;
                    verified.push(entry.name.clone());
                }
            }
        }
        for r in received {
            if manifest.artifact(&r.name).is_none() {
                errors.push(IngestError::Unexpected {
                    artifact: r.name.clone(),
                });
            }
        }

        if let Some(obs) = &self.obs {
            obs.counter_add("artifacts_verified", &stage_key, verified.len() as u64);
            if !errors.is_empty() {
                obs.counter_add("verify_failures", &stage_key, errors.len() as u64);
                for e in &errors {
                    obs.record_sim_span_with(
                        "ingest",
                        "verify_failed",
                        eoml_simtime::SimTime::from_secs_f64(clock.max(0.0)),
                        eoml_simtime::SimTime::from_secs_f64(clock.max(0.0)),
                        &[
                            ("facility", self.facility.as_str()),
                            ("artifact", e.artifact()),
                            ("error", e.kind()),
                        ],
                    );
                }
            }
        }
        if errors.is_empty() {
            self.acked.insert(manifest_id.clone());
        }
        IngestReport {
            manifest_id,
            source: manifest.source.clone(),
            facility: self.facility.clone(),
            at_s: now_s,
            verified,
            errors,
            duplicate: false,
            bytes_verified,
            verify_seconds: clock - now_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::manifest::synthetic_digest;

    fn manifest(n: usize) -> ShipmentManifest {
        let mut m = ShipmentManifest::new("ace-defiant", "frontier-orion", 100.0);
        for i in 0..n {
            let name = format!("tiles-MOD.A2022001.{i:04}.nc");
            let bytes = 1_000_000 + i as u64;
            m.artifacts.push(ArtifactEntry {
                digest: synthetic_digest(&name, bytes),
                trace_id: Some(format!("MOD.A2022001.{i:04}")),
                name,
                bytes,
            });
        }
        m
    }

    fn faithful(m: &ShipmentManifest) -> Vec<ReceivedArtifact> {
        m.artifacts.iter().map(ReceivedArtifact::faithful).collect()
    }

    #[test]
    fn clean_shipment_verifies_and_acks() {
        let m = manifest(3);
        let obs = Obs::shared();
        let mut ing = Ingestor::new("frontier-orion").with_obs(Arc::clone(&obs));
        let report = ing.ingest(&m, &faithful(&m), 100.0);
        assert!(report.ok());
        assert!(!report.duplicate);
        assert_eq!(report.verified.len(), 3);
        assert_eq!(report.bytes_verified, m.total_bytes());
        assert!(report.verify_seconds > 0.0);
        assert!(ing.is_acked(&m.id()));
        // Facility-tagged verify spans carry the granule trace ids.
        let spans = obs.spans();
        let verifies: Vec<_> = spans.iter().filter(|s| s.name == "verify").collect();
        assert_eq!(verifies.len(), 3);
        for s in &verifies {
            assert_eq!(s.attr("facility"), Some("frontier-orion"));
            assert!(s.trace_id.is_some());
        }
        assert_eq!(
            obs.metrics()
                .counter_value("artifacts_verified", "facility:frontier-orion"),
            Some(3)
        );
    }

    #[test]
    fn corrupt_missing_and_extra_artifacts_are_typed_errors() {
        let m = manifest(3);
        let mut received = faithful(&m);
        received[0].digest ^= 0xff; // corrupt
        received.remove(1); // missing
        received.push(ReceivedArtifact {
            name: "stowaway.nc".into(),
            bytes: 10,
            digest: 1,
        }); // extra
        received[1].bytes += 7; // size mismatch (was index 2)

        let obs = Obs::shared();
        let mut ing = Ingestor::new("frontier-orion").with_obs(Arc::clone(&obs));
        let report = ing.ingest(&m, &received, 0.0);
        assert!(!report.ok());
        assert!(!ing.is_acked(&m.id()), "failed shipments are never acked");
        let kinds: Vec<&str> = report.errors.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec!["digest_mismatch", "missing", "size_mismatch", "unexpected"]
        );
        assert!(report
            .first_error()
            .unwrap()
            .to_string()
            .contains("digest mismatch"));
        assert_eq!(
            obs.metrics()
                .counter_value("verify_failures", "facility:frontier-orion"),
            Some(4)
        );
        // Round-trips for the CI-validated JSON form.
        let back = IngestReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn reship_after_ack_is_idempotent() {
        let m = manifest(2);
        let mut ing = Ingestor::new("frontier-orion");
        assert!(ing.ingest(&m, &faithful(&m), 10.0).ok());
        let again = ing.ingest(&m, &faithful(&m), 20.0);
        assert!(again.duplicate);
        assert!(again.ok());
        assert!(again.verified.is_empty(), "no re-verification work");
        assert_eq!(ing.acked_count(), 1);
    }

    #[test]
    fn restored_acks_survive_a_restart() {
        let m = manifest(2);
        let id = m.id();
        let mut fresh = Ingestor::new("frontier-orion");
        fresh.restore_acked([id.clone()]);
        let report = fresh.ingest(&m, &faithful(&m), 0.0);
        assert!(
            report.duplicate,
            "journal-restored ack suppresses re-ingest"
        );
    }

    #[test]
    fn seeded_fault_injection_reproduces_the_same_failures() {
        let m = manifest(40);
        let plan = FaultPlan {
            drop_probability: 0.2,
            corrupt_probability: 0.2,
        };
        let r1 = receive(&m, &mut FaultInjector::new(plan).with_seed(42));
        let r2 = receive(&m, &mut FaultInjector::new(plan).with_seed(42));
        assert_eq!(r1, r2, "same seed, same corruption/loss pattern");
        let mut a = Ingestor::new("frontier-orion");
        let mut b = Ingestor::new("frontier-orion");
        let ra = a.ingest(&m, &r1, 0.0);
        let rb = b.ingest(&m, &r2, 0.0);
        assert_eq!(ra.errors, rb.errors);
        assert!(!ra.ok(), "40 artifacts at 40% fault rate must fail some");
        // Faults only ever produce missing or corrupt — never size drift.
        for e in &ra.errors {
            assert!(matches!(
                e,
                IngestError::Missing { .. } | IngestError::DigestMismatch { .. }
            ));
        }
    }

    #[test]
    fn duplicate_and_error_reports_round_trip_json() {
        let m = manifest(1);
        let mut ing = Ingestor::new("orion");
        let ok = ing.ingest(&m, &faithful(&m), 5.0);
        let dup = ing.ingest(&m, &faithful(&m), 6.0);
        for r in [ok, dup] {
            assert_eq!(IngestReport::from_json(&r.to_json()).unwrap(), r);
        }
    }
}

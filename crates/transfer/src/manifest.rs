//! Shipment manifests — the verifiable paperwork that travels with a
//! cross-facility data shipment.
//!
//! A shipment leaves the source facility as data plus a
//! [`ShipmentManifest`]: per-artifact content digests, the provenance
//! slice that produced each artifact, the originating trace ids, and a
//! digest of the source's compacted journal. The destination checks the
//! shipment against the manifest alone ([`crate::ingest`]) — no callback
//! to the source is needed to detect a missing, extra, or corrupt file.
//!
//! This crate sits *below* `eoml-core`, so the manifest defines its own
//! lineage record shape ([`LineageRecord`], mirroring core's
//! `ProvRecord`) and takes the journal digest as plain numbers; the
//! drivers convert when they build the manifest at shipment time.

use serde_json::{json, Value};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a 64-bit digest of a byte payload — the content digest used for
/// real artifacts (the on-disk pipeline hashes actual file bytes).
pub fn content_digest(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Deterministic digest for virtual artifacts that have a name and a
/// size but no materialised bytes (the simulated campaigns). Source and
/// destination computing from the same `(name, bytes)` pair agree; a
/// corrupted payload is modelled by perturbing the received digest.
pub fn synthetic_digest(name: &str, bytes: u64) -> u64 {
    let mut h = content_digest(name.as_bytes());
    for &b in bytes.to_le_bytes().iter() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One shipped artifact: name, payload size, content digest, and the
/// granule trace id its spans are stamped with (if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactEntry {
    /// Artifact file name.
    pub name: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Content digest ([`content_digest`] or [`synthetic_digest`]).
    pub digest: u64,
    /// Originating trace id (granule display form), if the artifact
    /// belongs to a traced pipeline item.
    pub trace_id: Option<String>,
}

/// One provenance record carried in the manifest: `activity` produced
/// `artifact` from `inputs`. Mirrors core's `ProvRecord` without the
/// dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageRecord {
    /// The produced artifact.
    pub artifact: String,
    /// The producing activity (`"download"`, `"preprocess"`, …).
    pub activity: String,
    /// Input artifacts consumed.
    pub inputs: Vec<String>,
    /// The agent that performed the activity.
    pub agent: String,
    /// Virtual/wall seconds when the artifact was produced.
    pub at_s: f64,
}

/// Digest of the source facility's compacted journal at manifest time:
/// `(events, checksum)`. The checksum is over the materialised state, so
/// it is invariant under compaction; the destination uses it to tell a
/// re-ship of the same completed campaign from a different one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalDigest {
    /// Durable events behind the digest.
    pub events: u64,
    /// FNV-1a checksum of the materialised journal state.
    pub checksum: u64,
}

/// The manifest that accompanies one shipment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShipmentManifest {
    /// Source facility (e.g. `"ace-defiant"`).
    pub source: String,
    /// Destination facility (e.g. `"frontier-orion"`).
    pub destination: String,
    /// Shipment completion time at the source, trace seconds.
    pub created_s: f64,
    /// Shipped artifacts with digests.
    pub artifacts: Vec<ArtifactEntry>,
    /// Provenance slice behind the shipped artifacts.
    pub lineage: Vec<LineageRecord>,
    /// Source journal digest, when the shipment ran journaled.
    pub journal: Option<JournalDigest>,
}

impl ShipmentManifest {
    /// Empty manifest between two facilities.
    pub fn new(source: &str, destination: &str, created_s: f64) -> ShipmentManifest {
        ShipmentManifest {
            source: source.to_string(),
            destination: destination.to_string(),
            created_s,
            artifacts: Vec::new(),
            lineage: Vec::new(),
            journal: None,
        }
    }

    /// Stable identity of this manifest: a digest over route, artifact
    /// names/digests, and the journal digest. Two shipments of the same
    /// completed campaign produce the same id — the key ingest
    /// acknowledgements are journaled under, making re-ships idempotent.
    pub fn id(&self) -> String {
        let mut h = content_digest(self.source.as_bytes());
        h ^= content_digest(self.destination.as_bytes());
        for a in &self.artifacts {
            h = h
                .wrapping_mul(FNV_PRIME)
                .wrapping_add(content_digest(a.name.as_bytes()) ^ a.digest);
        }
        // Only the state checksum feeds the id: the event count shifts
        // under compaction and crash-resume while the completed work
        // (and therefore the shipment identity) does not.
        if let Some(j) = self.journal {
            h ^= j.checksum.rotate_left(17);
        }
        format!("{}-{h:016x}", self.source)
    }

    /// Number of shipped artifacts.
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Whether the manifest lists no artifacts.
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// Total payload bytes across artifacts.
    pub fn total_bytes(&self) -> u64 {
        self.artifacts.iter().map(|a| a.bytes).sum()
    }

    /// The entry for `name`, if shipped.
    pub fn artifact(&self, name: &str) -> Option<&ArtifactEntry> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// Deduplicated trace ids across artifacts, sorted.
    pub fn trace_ids(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .artifacts
            .iter()
            .filter_map(|a| a.trace_id.as_deref())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// JSON form (written next to the data, validated by CI).
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id(),
            "source": self.source,
            "destination": self.destination,
            "created_s": self.created_s,
            "artifacts": self.artifacts.iter().map(|a| json!({
                "name": a.name,
                "bytes": a.bytes,
                "digest": format!("{:016x}", a.digest),
                "trace_id": a.trace_id.clone().map(Value::String).unwrap_or(Value::Null),
            })).collect::<Vec<_>>(),
            "lineage": self.lineage.iter().map(|r| json!({
                "artifact": r.artifact,
                "activity": r.activity,
                "inputs": r.inputs,
                "agent": r.agent,
                "at_s": r.at_s,
            })).collect::<Vec<_>>(),
            "journal": self.journal.map(|j| json!({
                "events": j.events,
                "checksum": format!("{:016x}", j.checksum),
            })).unwrap_or(Value::Null),
        })
    }

    /// Parse the JSON form; `Err` names the offending field.
    pub fn from_json(v: &Value) -> Result<ShipmentManifest, String> {
        let str_field = |v: &Value, k: &str| -> Result<String, String> {
            v[k].as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("manifest: missing '{k}'"))
        };
        let hex64 = |v: &Value, k: &str| -> Result<u64, String> {
            let s = v[k]
                .as_str()
                .ok_or_else(|| format!("manifest: missing '{k}'"))?;
            u64::from_str_radix(s, 16).map_err(|_| format!("manifest: '{k}' is not hex"))
        };
        let mut artifacts = Vec::new();
        for a in v["artifacts"].as_array().ok_or("manifest: no artifacts")? {
            artifacts.push(ArtifactEntry {
                name: str_field(a, "name")?,
                bytes: a["bytes"]
                    .as_u64()
                    .ok_or("manifest: artifact missing 'bytes'")?,
                digest: hex64(a, "digest")?,
                trace_id: a["trace_id"].as_str().map(str::to_string),
            });
        }
        let mut lineage = Vec::new();
        for r in v["lineage"].as_array().map(|a| a.as_slice()).unwrap_or(&[]) {
            lineage.push(LineageRecord {
                artifact: str_field(r, "artifact")?,
                activity: str_field(r, "activity")?,
                inputs: r["inputs"]
                    .as_array()
                    .map(|a| {
                        a.iter()
                            .filter_map(Value::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default(),
                agent: str_field(r, "agent")?,
                at_s: r["at_s"].as_f64().unwrap_or(0.0),
            });
        }
        let journal = if v["journal"].is_null() {
            None
        } else {
            Some(JournalDigest {
                events: v["journal"]["events"]
                    .as_u64()
                    .ok_or("manifest: journal missing 'events'")?,
                checksum: hex64(&v["journal"], "checksum")?,
            })
        };
        Ok(ShipmentManifest {
            source: str_field(v, "source")?,
            destination: str_field(v, "destination")?,
            created_s: v["created_s"].as_f64().unwrap_or(0.0),
            artifacts,
            lineage,
            journal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShipmentManifest {
        let mut m = ShipmentManifest::new("ace-defiant", "frontier-orion", 120.5);
        for (name, bytes) in [
            ("tiles-MOD.A2022001.0610.nc", 5_000_000u64),
            ("tiles-MOD.A2022001.0615.nc", 4_200_000),
        ] {
            m.artifacts.push(ArtifactEntry {
                name: name.to_string(),
                bytes,
                digest: synthetic_digest(name, bytes),
                trace_id: Some(name["tiles-".len()..name.len() - 3].to_string()),
            });
        }
        m.lineage.push(LineageRecord {
            artifact: "tiles-MOD.A2022001.0610.nc".into(),
            activity: "preprocess".into(),
            inputs: vec!["defiant:MOD021KM.A2022001.0610.hdf".into()],
            agent: "parsl-worker".into(),
            at_s: 40.0,
        });
        m.journal = Some(JournalDigest {
            events: 17,
            checksum: 0xdead_beef_0bad_f00d,
        });
        m
    }

    #[test]
    fn digests_are_deterministic_and_content_sensitive() {
        assert_eq!(content_digest(b"abc"), content_digest(b"abc"));
        assert_ne!(content_digest(b"abc"), content_digest(b"abd"));
        assert_eq!(synthetic_digest("a.nc", 10), synthetic_digest("a.nc", 10));
        assert_ne!(synthetic_digest("a.nc", 10), synthetic_digest("a.nc", 11));
        assert_ne!(synthetic_digest("a.nc", 10), synthetic_digest("b.nc", 10));
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let back = ShipmentManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.id(), m.id());
        assert_eq!(m.total_bytes(), 9_200_000);
        assert_eq!(
            m.trace_ids(),
            vec!["MOD.A2022001.0610", "MOD.A2022001.0615"]
        );
    }

    #[test]
    fn id_is_stable_across_reships_but_not_across_content() {
        let a = sample();
        let b = sample();
        assert_eq!(a.id(), b.id(), "same shipment, same id");
        let mut c = sample();
        c.artifacts[0].digest ^= 1;
        assert_ne!(a.id(), c.id(), "corrupt content changes the id");
        let mut d = sample();
        d.journal = Some(JournalDigest {
            events: 18,
            checksum: 1,
        });
        assert_ne!(a.id(), d.id(), "different journal state, different id");
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        assert!(ShipmentManifest::from_json(&json!({})).is_err());
        let v = json!({
            "source": "a",
            "destination": "b",
            "created_s": 0.0,
            "artifacts": [{ "name": "x.nc", "bytes": 1, "digest": "zz" }],
        });
        assert!(ShipmentManifest::from_json(&v)
            .unwrap_err()
            .contains("not hex"));
    }
}

//! `eoml-transfer` — data movement fabric (Globus Transfer + LAADS HTTPS
//! substitute).
//!
//! The paper moves data twice: stage 1 *downloads* MODIS granules from the
//! NASA LAADS DAAC over HTTPS with a pool of Globus Compute workers, and
//! stage 5 *ships* labeled NetCDF files to Frontier's Orion file system with
//! Globus Transfer. Neither external service exists here, so this crate
//! provides:
//!
//! * [`endpoint`] — named endpoints with ingress/egress capacity, per-stream
//!   caps and per-request overhead (the knobs that shape paper Fig. 3);
//! * [`flownet`] — a max-min fair-share flow network living inside the
//!   discrete-event simulation: concurrent flows share link capacity, and
//!   every change to the active-flow set reschedules the next completion;
//! * [`faults`] — fault injection (connection drops, checksum corruption)
//!   with bounded retries;
//! * [`service`] — a Globus-Transfer-like batch service (a task = many
//!   files, `parallel_streams` concurrent flows, checksum verification,
//!   automatic retry) built on the flow network;
//! * [`pool`] — the LAADS download pool: N workers pulling catalog files
//!   off a shared queue, one flow each, exactly the structure of the
//!   paper's remotely executed download function;
//! * [`manifest`] — the [`manifest::ShipmentManifest`] that travels with
//!   every shipment: per-artifact content digests, the provenance slice,
//!   originating trace ids, and a source-journal digest;
//! * [`ingest`] — destination-side verification against the manifest:
//!   typed [`ingest::IngestError`]s, facility-tagged spans, and an
//!   idempotent acked-manifest set;
//! * [`backoff`] — deterministic bounded exponential backoff applied to
//!   every retried flow and re-shipped manifest;
//! * [`sync`] — the journal-sync leg of a shipment: the source's compacted
//!   control-journal state travels with the data, and the destination runs
//!   a typed completeness check before ingesting (and can fail the whole
//!   campaign over to a second site from the synced state alone).

pub mod backoff;
pub mod endpoint;
pub mod faults;
pub mod flownet;
pub mod ingest;
pub mod manifest;
pub mod pool;
pub mod service;
pub mod sync;

pub use backoff::BackoffPolicy;
pub use endpoint::{Endpoint, EndpointId};
pub use faults::{FaultInjector, FaultPlan, FlowOutcome, DEFAULT_FAULT_SEED};
pub use flownet::{FlowId, FlowNetwork, HasNetwork};
pub use ingest::{receive, IngestError, IngestReport, Ingestor, ReceivedArtifact};
pub use manifest::{
    content_digest, synthetic_digest, ArtifactEntry, JournalDigest, LineageRecord, ShipmentManifest,
};
pub use pool::{DownloadPool, DownloadReport, FileTiming};
pub use service::{submit_transfer, TransferOptions, TransferReport, TransferTaskId};
pub use sync::{
    ingest_synced, reship_with_backoff, JournalSync, ReshipOutcome, SyncCheck, SyncError,
};

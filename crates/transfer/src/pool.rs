//! The LAADS download pool — stage 1 of the workflow.
//!
//! The paper implements downloads as a remotely executable Globus Compute
//! function: a pool of workers pulls file requests off a shared queue, each
//! worker fetching one file at a time over HTTPS; when a worker finishes and
//! more work is queued it takes the next item, otherwise it terminates.
//! This module reproduces that structure on the flow network, and records
//! the per-worker activity timeline the paper's Fig. 6 plots.

use crate::backoff::BackoffPolicy;
use crate::faults::FlowOutcome;
use crate::flownet::{start_flow, HasNetwork};
use eoml_obs::{Obs, TraceContext};
use eoml_simtime::{SimTime, Simulation};
use eoml_util::units::{ByteSize, Rate};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Timing of one delivered file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileTiming {
    /// Archive file name.
    pub name: String,
    /// File size.
    pub size: ByteSize,
    /// When the first attempt started.
    pub started: SimTime,
    /// When the file was fully delivered.
    pub finished: SimTime,
    /// Attempts used (1 = no retries).
    pub attempts: usize,
}

impl FileTiming {
    /// Effective speed for this file including overhead and retries.
    pub fn speed(&self) -> Rate {
        let d = (self.finished - self.started).as_secs_f64();
        if d <= 0.0 {
            return Rate::bytes_per_sec(0.0);
        }
        Rate::bytes_per_sec(self.size.as_u64() as f64 / d)
    }
}

/// Final report of a download pool run.
#[derive(Debug, Clone)]
pub struct DownloadReport {
    /// Per-file timings for delivered files.
    pub files: Vec<FileTiming>,
    /// Files abandoned after the retry budget.
    pub failed: Vec<String>,
    /// Total delivered bytes.
    pub bytes: ByteSize,
    /// Pool start time.
    pub started: SimTime,
    /// Time the last worker terminated.
    pub finished: SimTime,
    /// `(time, active workers)` change points — the Fig. 6 timeline.
    pub activity: Vec<(SimTime, usize)>,
    /// Total retry attempts.
    pub retries: usize,
}

impl DownloadReport {
    /// Aggregate download speed: delivered bytes over pool wall time.
    pub fn aggregate_speed(&self) -> Rate {
        let d = (self.finished - self.started).as_secs_f64();
        if d <= 0.0 {
            return Rate::bytes_per_sec(0.0);
        }
        Rate::bytes_per_sec(self.bytes.as_u64() as f64 / d)
    }

    /// Mean per-file speed (the statistic plotted in the paper's Fig. 3).
    pub fn mean_file_speed(&self) -> Rate {
        if self.files.is_empty() {
            return Rate::bytes_per_sec(0.0);
        }
        Rate::bytes_per_sec(
            self.files
                .iter()
                .map(|f| f.speed().as_bytes_per_sec())
                .sum::<f64>()
                / self.files.len() as f64,
        )
    }

    /// Standard deviation of per-file speeds, MB/s.
    pub fn file_speed_std_mb(&self) -> f64 {
        let n = self.files.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_file_speed().as_mb_per_sec();
        (self
            .files
            .iter()
            .map(|f| (f.speed().as_mb_per_sec() - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64)
            .sqrt()
    }
}

/// The download pool entry point (see [`DownloadPool::run`]).
pub struct DownloadPool<S>(std::marker::PhantomData<S>);

type PoolDoneFn<S> = Box<dyn FnOnce(&mut Simulation<S>, DownloadReport)>;
type PoolFileFn<S> = Box<dyn FnMut(&mut Simulation<S>, &FileTiming)>;
type PoolTraceFn = Box<dyn Fn(&str) -> Option<TraceContext>>;

struct PoolState<S> {
    src: String,
    dst: String,
    retry_limit: usize,
    backoff: BackoffPolicy,
    workers: usize,
    queue: VecDeque<(String, ByteSize, usize)>,
    /// Failed files waiting out a backoff delay before requeueing. The
    /// pool is not finished while any of these are outstanding, even if
    /// the queue is empty and every worker is idle.
    pending_retries: usize,
    active: usize,
    files: Vec<FileTiming>,
    failed: Vec<String>,
    started: SimTime,
    first_start: std::collections::HashMap<String, SimTime>,
    activity: Vec<(SimTime, usize)>,
    retries: usize,
    obs: Option<Arc<Obs>>,
    trace_for: Option<PoolTraceFn>,
    on_file: Option<PoolFileFn<S>>,
    on_done: Option<PoolDoneFn<S>>,
}

impl<S: HasNetwork> DownloadPool<S> {
    /// Start `workers` download workers pulling `files` from `src` into
    /// `dst`. `on_done` fires when the last worker terminates.
    ///
    /// **Retry semantics** (identical across all four constructors):
    /// `retry_limit` is the number of *re*-attempts granted per file after
    /// its first try, so a file is attempted at most `retry_limit + 1`
    /// times in total and [`FileTiming::attempts`] counts total tries
    /// (`1` = delivered on the first attempt, no retries). Retries wait
    /// out a bounded exponential backoff ([`BackoffPolicy::wan_default`];
    /// use [`DownloadPool::run_traced_with_backoff`] to override). Files
    /// that exhaust the budget are *abandoned*: listed in
    /// [`DownloadReport::failed`] and counted on the
    /// `files_abandoned{stage="download"}` counter that feeds the ops
    /// plane's `health::evaluate`.
    pub fn run(
        sim: &mut Simulation<S>,
        src: &str,
        dst: &str,
        files: Vec<(String, ByteSize)>,
        workers: usize,
        retry_limit: usize,
        on_done: impl FnOnce(&mut Simulation<S>, DownloadReport) + 'static,
    ) {
        Self::run_with_hook(
            sim,
            src,
            dst,
            files,
            workers,
            retry_limit,
            |_, _| {},
            on_done,
        );
    }

    /// [`DownloadPool::run`] with a per-file hook: `on_file` fires once per
    /// successfully delivered file, as soon as it lands. Journaling drivers
    /// use this to make each completed download durable before the pool
    /// finishes. Retry semantics as documented on [`DownloadPool::run`]:
    /// `retry_limit` re-attempts per file beyond the first, backoff
    /// between them, abandoned files reported and counted.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_hook(
        sim: &mut Simulation<S>,
        src: &str,
        dst: &str,
        files: Vec<(String, ByteSize)>,
        workers: usize,
        retry_limit: usize,
        on_file: impl FnMut(&mut Simulation<S>, &FileTiming) + 'static,
        on_done: impl FnOnce(&mut Simulation<S>, DownloadReport) + 'static,
    ) {
        Self::run_observed(
            sim,
            src,
            dst,
            files,
            workers,
            retry_limit,
            None,
            on_file,
            on_done,
        );
    }

    /// [`DownloadPool::run_with_hook`] with an observability hub: each
    /// delivered file becomes a `download/file` span (whose duration
    /// feeds the `file{stage="download"}` histogram) plus per-file
    /// counters (`files`, `bytes`, `retries`, `files_failed`,
    /// `files_abandoned`) and a `file_attempts` histogram, and the live
    /// worker count drives the `active_workers{stage="download"}` gauge.
    /// Retry semantics as documented on [`DownloadPool::run`]:
    /// `retry_limit` re-attempts per file beyond the first, backoff
    /// between them, abandoned files reported and counted.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed(
        sim: &mut Simulation<S>,
        src: &str,
        dst: &str,
        files: Vec<(String, ByteSize)>,
        workers: usize,
        retry_limit: usize,
        obs: Option<Arc<Obs>>,
        on_file: impl FnMut(&mut Simulation<S>, &FileTiming) + 'static,
        on_done: impl FnOnce(&mut Simulation<S>, DownloadReport) + 'static,
    ) {
        Self::run_traced(
            sim,
            src,
            dst,
            files,
            workers,
            retry_limit,
            obs,
            |_| None,
            on_file,
            on_done,
        );
    }

    /// [`DownloadPool::run_observed`] with per-granule trace propagation:
    /// `trace_for` maps a file name to the [`TraceContext`] of the
    /// pipeline item it belongs to, and each `download/file` span is
    /// tagged with it so the trace-analysis layer can stitch downloads
    /// into end-to-end granule traces. Retry semantics as documented on
    /// [`DownloadPool::run`]: `retry_limit` re-attempts per file beyond
    /// the first, backoff between them, abandoned files reported and
    /// counted.
    #[allow(clippy::too_many_arguments)]
    pub fn run_traced(
        sim: &mut Simulation<S>,
        src: &str,
        dst: &str,
        files: Vec<(String, ByteSize)>,
        workers: usize,
        retry_limit: usize,
        obs: Option<Arc<Obs>>,
        trace_for: impl Fn(&str) -> Option<TraceContext> + 'static,
        on_file: impl FnMut(&mut Simulation<S>, &FileTiming) + 'static,
        on_done: impl FnOnce(&mut Simulation<S>, DownloadReport) + 'static,
    ) {
        Self::run_traced_with_backoff(
            sim,
            src,
            dst,
            files,
            workers,
            retry_limit,
            BackoffPolicy::wan_default(),
            obs,
            trace_for,
            on_file,
            on_done,
        );
    }

    /// [`DownloadPool::run_traced`] with an explicit [`BackoffPolicy`]
    /// governing the wait before each retry ([`BackoffPolicy::immediate`]
    /// restores the legacy no-wait loop). Retry semantics as documented
    /// on [`DownloadPool::run`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_traced_with_backoff(
        sim: &mut Simulation<S>,
        src: &str,
        dst: &str,
        files: Vec<(String, ByteSize)>,
        workers: usize,
        retry_limit: usize,
        backoff: BackoffPolicy,
        obs: Option<Arc<Obs>>,
        trace_for: impl Fn(&str) -> Option<TraceContext> + 'static,
        on_file: impl FnMut(&mut Simulation<S>, &FileTiming) + 'static,
        on_done: impl FnOnce(&mut Simulation<S>, DownloadReport) + 'static,
    ) {
        assert!(workers > 0, "need at least one worker");
        let inner = Rc::new(RefCell::new(PoolState {
            src: src.to_string(),
            dst: dst.to_string(),
            retry_limit,
            backoff,
            workers,
            queue: files.into_iter().map(|(n, s)| (n, s, 1)).collect(),
            pending_retries: 0,
            active: 0,
            files: Vec::new(),
            failed: Vec::new(),
            started: sim.now(),
            first_start: std::collections::HashMap::new(),
            activity: vec![(sim.now(), 0)],
            retries: 0,
            obs,
            trace_for: Some(Box::new(trace_for)),
            on_file: Some(Box::new(on_file)),
            on_done: Some(Box::new(on_done)),
        }));
        // Each worker tries to take a file; workers that find the queue
        // empty terminate immediately (matching the paper's "gracefully
        // terminates" semantics).
        for _ in 0..workers {
            Self::worker_take_next(sim, &inner);
        }
        Self::maybe_finish(sim, &inner);
    }

    fn record_activity(sim_now: SimTime, st: &mut PoolState<S>) {
        if let Some(obs) = &st.obs {
            obs.gauge_set("active_workers", "download", st.active as f64);
        }
        st.activity.push((sim_now, st.active));
    }

    fn worker_take_next(sim: &mut Simulation<S>, inner: &Rc<RefCell<PoolState<S>>>) {
        let job = {
            let mut st = inner.borrow_mut();
            match st.queue.pop_front() {
                Some(job) => {
                    st.active += 1;
                    st.first_start.entry(job.0.clone()).or_insert(sim.now());
                    let now = sim.now();
                    Self::record_activity(now, &mut st);
                    Some((st.src.clone(), st.dst.clone(), job))
                }
                None => None, // worker terminates
            }
        };
        let Some((src, dst, (name, size, attempt))) = job else {
            return;
        };
        let inner2 = Rc::clone(inner);
        start_flow(sim, &src, &dst, size, move |sim, outcome| {
            Self::on_file_done(sim, &inner2, name, size, attempt, outcome);
        });
    }

    fn on_file_done(
        sim: &mut Simulation<S>,
        inner: &Rc<RefCell<PoolState<S>>>,
        name: String,
        size: ByteSize,
        attempt: usize,
        outcome: FlowOutcome,
    ) {
        let delivered = {
            let mut st = inner.borrow_mut();
            st.active -= 1;
            let now = sim.now();
            Self::record_activity(now, &mut st);
            match outcome {
                FlowOutcome::Success => {
                    let started = st.first_start[&name];
                    let timing = FileTiming {
                        name,
                        size,
                        started,
                        finished: sim.now(),
                        attempts: attempt,
                    };
                    if let Some(obs) = &st.obs {
                        let trace = st.trace_for.as_ref().and_then(|f| f(&timing.name));
                        obs.record_sim_span_traced(
                            "download",
                            "file",
                            timing.started,
                            timing.finished,
                            trace.as_ref(),
                            &[
                                ("file", &timing.name),
                                ("attempts", &timing.attempts.to_string()),
                            ],
                        );
                        obs.counter_add("files", "download", 1);
                        obs.counter_add("bytes", "download", size.as_u64());
                        obs.observe("file_attempts", "download", timing.attempts as f64);
                    }
                    st.files.push(timing.clone());
                    Some(timing)
                }
                _ => {
                    if attempt <= st.retry_limit {
                        st.retries += 1;
                        if let Some(obs) = &st.obs {
                            obs.counter_add("retries", "download", 1);
                        }
                        // Retry number == attempt (attempt 1 failing earns
                        // retry 1). Zero-delay policies requeue in place;
                        // otherwise the file waits out the backoff and a
                        // worker is revived for it if the pool went idle.
                        let delay = st.backoff.delay_s(attempt);
                        if delay <= 0.0 {
                            st.queue.push_back((name, size, attempt + 1));
                        } else {
                            st.pending_retries += 1;
                            let inner3 = Rc::clone(inner);
                            sim.schedule_in(Duration::from_secs_f64(delay), move |sim| {
                                let revive = {
                                    let mut st = inner3.borrow_mut();
                                    st.pending_retries -= 1;
                                    st.queue.push_back((name, size, attempt + 1));
                                    st.active < st.workers
                                };
                                if revive {
                                    Self::worker_take_next(sim, &inner3);
                                }
                            });
                        }
                    } else {
                        if let Some(obs) = &st.obs {
                            obs.counter_add("files_failed", "download", 1);
                            // Abandonment is a health signal: this counter
                            // feeds the ops plane's `health::evaluate`.
                            obs.counter_add("files_abandoned", "download", 1);
                        }
                        st.failed.push(name);
                    }
                    None
                }
            }
        };
        if let Some(timing) = delivered {
            sim.state_mut().network().note_delivered(size);
            // Call the hook outside the state borrow (it may re-enter sim).
            let hook = inner.borrow_mut().on_file.take();
            if let Some(mut hook) = hook {
                hook(sim, &timing);
                inner.borrow_mut().on_file = Some(hook);
            }
        }
        // The worker that just finished takes the next queued file.
        Self::worker_take_next(sim, inner);
        Self::maybe_finish(sim, inner);
    }

    fn maybe_finish(sim: &mut Simulation<S>, inner: &Rc<RefCell<PoolState<S>>>) {
        let done = {
            let mut st = inner.borrow_mut();
            if st.active > 0
                || !st.queue.is_empty()
                || st.pending_retries > 0
                || st.on_done.is_none()
            {
                None
            } else {
                let on_done = st.on_done.take().expect("checked");
                let bytes = st.files.iter().map(|f| f.size).sum();
                let report = DownloadReport {
                    files: std::mem::take(&mut st.files),
                    failed: std::mem::take(&mut st.failed),
                    bytes,
                    started: st.started,
                    finished: sim.now(),
                    activity: std::mem::take(&mut st.activity),
                    retries: st.retries,
                };
                Some((on_done, report))
            }
        };
        if let Some((on_done, report)) = done {
            on_done(sim, report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Endpoint;
    use crate::faults::FaultPlan;
    use crate::flownet::FlowNetwork;
    use std::time::Duration;

    struct St {
        net: FlowNetwork<St>,
        report: Option<DownloadReport>,
    }

    impl HasNetwork for St {
        fn network(&mut self) -> &mut FlowNetwork<St> {
            &mut self.net
        }
    }

    fn sim(fault: FaultPlan, overhead_ms: u64) -> Simulation<St> {
        let mut net = FlowNetwork::new(5, fault);
        net.add_endpoint(Endpoint::new(
            "laads",
            Rate::mb_per_sec(60.0),
            Rate::mb_per_sec(60.0),
            Rate::mb_per_sec(9.0),
            Duration::from_millis(overhead_ms),
        ));
        net.add_endpoint(Endpoint::ace_defiant());
        Simulation::new(St { net, report: None })
    }

    fn files(n: usize, mb: u64) -> Vec<(String, ByteSize)> {
        (0..n)
            .map(|i| (format!("g{i}.eogr"), ByteSize::mb(mb)))
            .collect()
    }

    #[test]
    fn pool_drains_queue() {
        let mut s = sim(FaultPlan::none(), 0);
        DownloadPool::run(
            &mut s,
            "laads",
            "ace-defiant",
            files(10, 90),
            3,
            2,
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.files.len(), 10);
        assert!(r.failed.is_empty());
        assert_eq!(r.bytes, ByteSize::mb(900));
        // 3 workers × 9 MB/s = 27 MB/s; 900 MB ≈ 33.3 s; ceil to the
        // 4-round structure: rounds of 3 files, each 10 s → ~40 s with the
        // last round of 1 file... actually files dispatch greedily, so
        // total ≈ 900/27 = 33.3 s plus tail effects.
        let d = (r.finished - r.started).as_secs_f64();
        assert!((33.0..45.0).contains(&d), "duration {d}");
    }

    #[test]
    fn more_workers_download_faster() {
        let mut speeds = Vec::new();
        for workers in [3, 6] {
            let mut s = sim(FaultPlan::none(), 200);
            DownloadPool::run(
                &mut s,
                "laads",
                "ace-defiant",
                files(12, 100),
                workers,
                2,
                |sim, r| sim.state_mut().report = Some(r),
            );
            s.run();
            let r = s.state().report.as_ref().expect("report");
            speeds.push(r.aggregate_speed().as_mb_per_sec());
        }
        assert!(
            speeds[1] > speeds[0] + 3.0,
            "6 workers ({} MB/s) should beat 3 workers ({} MB/s)",
            speeds[1],
            speeds[0]
        );
    }

    #[test]
    fn single_file_gains_nothing_from_more_workers() {
        let mut speeds = Vec::new();
        for workers in [3, 6] {
            let mut s = sim(FaultPlan::none(), 0);
            DownloadPool::run(
                &mut s,
                "laads",
                "ace-defiant",
                files(1, 100),
                workers,
                2,
                |sim, r| sim.state_mut().report = Some(r),
            );
            s.run();
            let r = s.state().report.as_ref().expect("report");
            speeds.push(r.aggregate_speed().as_mb_per_sec());
        }
        assert!(
            (speeds[0] - speeds[1]).abs() < 0.5,
            "one file cannot use extra workers: {speeds:?}"
        );
    }

    #[test]
    fn activity_timeline_tracks_workers() {
        let mut s = sim(FaultPlan::none(), 0);
        DownloadPool::run(
            &mut s,
            "laads",
            "ace-defiant",
            files(6, 45),
            3,
            2,
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        let max_active = r.activity.iter().map(|&(_, a)| a).max().unwrap();
        assert_eq!(max_active, 3, "all 3 workers busy at peak");
        assert_eq!(r.activity.last().unwrap().1, 0, "ends idle");
        // Timeline is time-ordered.
        for w in r.activity.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn excess_workers_terminate_gracefully() {
        let mut s = sim(FaultPlan::none(), 0);
        DownloadPool::run(
            &mut s,
            "laads",
            "ace-defiant",
            files(2, 9),
            8,
            2,
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.files.len(), 2);
        let max_active = r.activity.iter().map(|&(_, a)| a).max().unwrap();
        assert_eq!(max_active, 2, "only 2 workers ever had work");
    }

    #[test]
    fn faults_retried_and_failures_reported() {
        let mut s = sim(
            FaultPlan {
                drop_probability: 1.0,
                corrupt_probability: 0.0,
            },
            0,
        );
        DownloadPool::run(
            &mut s,
            "laads",
            "ace-defiant",
            files(2, 9),
            2,
            3,
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.files.len(), 0);
        assert_eq!(r.failed.len(), 2);
        assert_eq!(r.retries, 6, "2 files × 3 retries");
    }

    #[test]
    fn per_file_hook_fires_once_per_delivery_in_finish_order() {
        let mut s = sim(FaultPlan::none(), 0);
        let seen = Rc::new(RefCell::new(Vec::<(String, SimTime)>::new()));
        let seen2 = Rc::clone(&seen);
        DownloadPool::run_with_hook(
            &mut s,
            "laads",
            "ace-defiant",
            files(5, 45),
            2,
            2,
            move |_sim, t: &FileTiming| seen2.borrow_mut().push((t.name.clone(), t.finished)),
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        let seen = seen.borrow();
        assert_eq!(seen.len(), 5, "one hook call per delivered file");
        let from_report: Vec<(String, SimTime)> = r
            .files
            .iter()
            .map(|f| (f.name.clone(), f.finished))
            .collect();
        assert_eq!(*seen, from_report, "hook order matches delivery order");
        for w in seen.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn observed_run_records_per_file_metrics_and_spans() {
        let mut s = sim(
            FaultPlan {
                drop_probability: 0.4,
                corrupt_probability: 0.0,
            },
            0,
        );
        let obs = Obs::shared();
        DownloadPool::run_observed(
            &mut s,
            "laads",
            "ace-defiant",
            files(6, 45),
            3,
            8,
            Some(Arc::clone(&obs)),
            |_, _| {},
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.files.len(), 6, "retry budget covers the flaky WAN");
        let counter = |name: &str| obs.metrics().counter_value(name, "download").unwrap_or(0);
        assert_eq!(counter("files"), 6);
        assert_eq!(counter("bytes"), r.bytes.as_u64());
        assert_eq!(counter("retries"), r.retries as u64);
        // One download/file span per delivery, sim-stamped.
        let spans: Vec<_> = obs
            .spans()
            .into_iter()
            .filter(|sp| sp.stage == "download" && sp.name == "file")
            .collect();
        assert_eq!(spans.len(), 6);
        assert!(spans.iter().all(|sp| sp.sim_seconds().is_some()));
        let h = obs
            .metrics()
            .histogram("file_attempts", "download")
            .unwrap();
        assert_eq!(h.count(), 6);
        assert!(h.max() >= 1.0);
        // Worker-count gauge saw activity and ended at zero.
        assert_eq!(
            obs.metrics().gauge_value("active_workers", "download"),
            Some(0.0)
        );
    }

    #[test]
    fn traced_run_tags_spans_with_granule_ids() {
        let mut s = sim(FaultPlan::none(), 0);
        let obs = Obs::shared();
        DownloadPool::run_traced(
            &mut s,
            "laads",
            "ace-defiant",
            files(4, 45),
            2,
            2,
            Some(Arc::clone(&obs)),
            |name| name.strip_suffix(".eogr").map(TraceContext::new),
            |_, _| {},
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let spans: Vec<_> = obs
            .spans()
            .into_iter()
            .filter(|sp| sp.stage == "download" && sp.name == "file")
            .collect();
        assert_eq!(spans.len(), 4);
        for sp in &spans {
            let trace = sp.trace_id.as_deref().expect("every file span traced");
            assert_eq!(sp.attr("file"), Some(format!("{trace}.eogr").as_str()));
        }
    }

    #[test]
    fn empty_file_list_finishes_immediately() {
        let mut s = sim(FaultPlan::none(), 0);
        DownloadPool::run(
            &mut s,
            "laads",
            "ace-defiant",
            Vec::new(),
            4,
            2,
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert!(r.files.is_empty());
        assert_eq!(r.started, r.finished);
    }

    #[test]
    fn per_file_speed_reflects_overhead() {
        // With large per-request overhead, small files report much lower
        // effective speeds than large ones — the Fig. 3 left-edge effect.
        let mut s = sim(FaultPlan::none(), 2000);
        let mut all = files(1, 9);
        all.extend(
            files(1, 900)
                .into_iter()
                .map(|(n, s)| (format!("big-{n}"), s)),
        );
        DownloadPool::run(&mut s, "laads", "ace-defiant", all, 2, 2, |sim, r| {
            sim.state_mut().report = Some(r)
        });
        s.run();
        let r = s.state().report.as_ref().expect("report");
        let small = r.files.iter().find(|f| f.size == ByteSize::mb(9)).unwrap();
        let big = r
            .files
            .iter()
            .find(|f| f.size == ByteSize::mb(900))
            .unwrap();
        assert!(
            small.speed().as_mb_per_sec() < big.speed().as_mb_per_sec() * 0.6,
            "small {} vs big {}",
            small.speed(),
            big.speed()
        );
    }
}

//! Bounded exponential backoff for retried transfers.
//!
//! The immediate-retry loop the pool and transfer service used to run is
//! exactly wrong on a degraded WAN: a partitioned link fails every instant
//! retry and the retry budget burns out while the outage is still in
//! progress. A bounded exponential backoff spreads the same budget across
//! the outage window, so a link that heals within the horizon converges.
//!
//! Delays are deterministic — no jitter. Every campaign in this workspace
//! replays byte-identically from a seed, and the fault streams driving the
//! retries are already seeded; deterministic delays keep kill/partition
//! schedules reproducible. (On a real shared WAN you would add jitter to
//! avoid thundering herds; here each simulated flow has its own stream.)

/// Deterministic bounded exponential backoff: retry `n` waits
/// `base_s × factor^(n-1)`, capped at `max_delay_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in seconds.
    pub base_s: f64,
    /// Multiplier applied per additional retry.
    pub factor: f64,
    /// Ceiling on any single delay, in seconds.
    pub max_delay_s: f64,
}

impl BackoffPolicy {
    /// No waiting between retries — the legacy immediate-retry behaviour.
    pub fn immediate() -> Self {
        Self {
            base_s: 0.0,
            factor: 1.0,
            max_delay_s: 0.0,
        }
    }

    /// Defaults tuned for a cross-facility WAN: 0.5 s first retry,
    /// doubling, capped at 30 s.
    pub fn wan_default() -> Self {
        Self {
            base_s: 0.5,
            factor: 2.0,
            max_delay_s: 30.0,
        }
    }

    /// Delay in seconds before retry number `retry` (1-based: `delay_s(1)`
    /// is the wait between the first failure and the second attempt).
    /// `retry == 0` and non-positive bases yield zero.
    pub fn delay_s(&self, retry: usize) -> f64 {
        if retry == 0 || self.base_s <= 0.0 {
            return 0.0;
        }
        let exp = (retry - 1).min(i32::MAX as usize) as i32;
        (self.base_s * self.factor.powi(exp)).min(self.max_delay_s)
    }

    /// Total wait across retries `1..=retries` — the worst-case time a
    /// file spends backing off before it is abandoned.
    pub fn total_delay_s(&self, retries: usize) -> f64 {
        (1..=retries).map(|r| self.delay_s(r)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_never_waits() {
        let p = BackoffPolicy::immediate();
        for r in 0..10 {
            assert_eq!(p.delay_s(r), 0.0);
        }
        assert_eq!(p.total_delay_s(10), 0.0);
    }

    #[test]
    fn delays_grow_exponentially_then_saturate() {
        let p = BackoffPolicy::wan_default();
        assert_eq!(p.delay_s(0), 0.0);
        assert_eq!(p.delay_s(1), 0.5);
        assert_eq!(p.delay_s(2), 1.0);
        assert_eq!(p.delay_s(3), 2.0);
        assert_eq!(p.delay_s(7), 30.0); // 0.5 × 2^6 = 32 → capped
        assert_eq!(p.delay_s(50), 30.0);
        // Monotone non-decreasing throughout.
        for r in 1..60 {
            assert!(p.delay_s(r + 1) >= p.delay_s(r));
        }
    }

    #[test]
    fn total_delay_is_the_sum_of_the_schedule() {
        let p = BackoffPolicy::wan_default();
        assert_eq!(p.total_delay_s(3), 0.5 + 1.0 + 2.0);
        assert_eq!(p.total_delay_s(0), 0.0);
    }

    #[test]
    fn huge_retry_counts_do_not_overflow() {
        let p = BackoffPolicy::wan_default();
        assert_eq!(p.delay_s(usize::MAX), 30.0);
    }
}

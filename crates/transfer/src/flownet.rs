//! A max-min fair-share flow network inside the discrete-event simulation.
//!
//! Every byte that moves between facilities — LAADS downloads, NetCDF
//! shipment — is a *flow* here. Active flows share link capacity by max-min
//! fairness (progressive filling) over three constraint kinds: the source's
//! egress link, the destination's ingress link, and the per-flow stream cap.
//! Whenever the active set changes, all flows' progress is advanced, rates
//! are recomputed, and the single "next completion" event is rescheduled —
//! the standard fluid-flow network technique, exact for piecewise-constant
//! rates.
//!
//! The network is generic over the simulation state `S`; the host state
//! implements [`HasNetwork`] to expose its embedded [`FlowNetwork`], which
//! lets one simulation compose the network with the cluster and workflow
//! models (as `eoml-core` does).

use crate::endpoint::Endpoint;
use crate::faults::{FaultPlan, FlowOutcome};
use eoml_simtime::{EventHandle, SimTime, Simulation};
use eoml_util::rng::{Rng64, Xoshiro256};
use eoml_util::units::ByteSize;
use std::collections::HashMap;
use std::time::Duration;

eoml_util::typed_id!(
    /// Identifier of a flow (unique per network).
    FlowId,
    "flow"
);

/// Implemented by simulation states that embed a [`FlowNetwork`].
pub trait HasNetwork: Sized + 'static {
    /// Access the embedded network.
    fn network(&mut self) -> &mut FlowNetwork<Self>;
}

type CompletionFn<S> = Box<dyn FnOnce(&mut Simulation<S>, FlowOutcome)>;

struct Flow<S> {
    src: usize,
    dst: usize,
    /// Bytes still to move before this attempt ends.
    remaining: f64,
    /// Current fair-share rate, bytes/s.
    rate: f64,
    /// Outcome to report when the attempt ends (pre-sampled).
    outcome: FlowOutcome,
    on_complete: Option<CompletionFn<S>>,
}

/// The flow network: endpoints plus currently active flows.
pub struct FlowNetwork<S> {
    endpoints: Vec<Endpoint>,
    by_name: HashMap<String, usize>,
    flows: HashMap<u64, Flow<S>>,
    next_id: u64,
    completion_event: Option<EventHandle>,
    last_progress: SimTime,
    fault_plan: FaultPlan,
    rng: Xoshiro256,
    bytes_delivered: f64,
}

impl<S> std::fmt::Debug for FlowNetwork<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowNetwork")
            .field("endpoints", &self.endpoints.len())
            .field("active_flows", &self.flows.len())
            .field("bytes_delivered", &self.bytes_delivered)
            .finish()
    }
}

impl<S> FlowNetwork<S> {
    /// Empty network with the given world seed and fault plan.
    pub fn new(seed: u64, fault_plan: FaultPlan) -> Self {
        Self {
            endpoints: Vec::new(),
            by_name: HashMap::new(),
            flows: HashMap::new(),
            next_id: 1,
            completion_event: None,
            last_progress: SimTime::ZERO,
            fault_plan,
            rng: Xoshiro256::seed_from(seed ^ 0x7AAF_F10A),
            bytes_delivered: 0.0,
        }
    }

    /// Register an endpoint; names must be unique.
    pub fn add_endpoint(&mut self, ep: Endpoint) {
        assert!(
            !self.by_name.contains_key(&ep.name),
            "duplicate endpoint {:?}",
            ep.name
        );
        self.by_name.insert(ep.name.clone(), self.endpoints.len());
        self.endpoints.push(ep);
    }

    /// Look up an endpoint by name.
    pub fn endpoint(&self, name: &str) -> Option<&Endpoint> {
        self.by_name.get(name).map(|&i| &self.endpoints[i])
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes successfully delivered so far.
    pub fn bytes_delivered(&self) -> ByteSize {
        ByteSize::bytes(self.bytes_delivered as u64)
    }

    /// Advance all flows' progress to `now`.
    fn progress_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_progress).as_secs_f64();
        if dt > 0.0 {
            for flow in self.flows.values_mut() {
                flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
            }
        }
        self.last_progress = now;
    }

    /// Max-min fair share (progressive filling) over egress, ingress and
    /// per-flow caps.
    fn recompute_rates(&mut self) {
        let ids: Vec<u64> = self.flows.keys().copied().collect();
        if ids.is_empty() {
            return;
        }
        // Remaining capacity per endpoint link.
        let mut egress: Vec<f64> = self
            .endpoints
            .iter()
            .map(|e| e.egress.as_bytes_per_sec())
            .collect();
        let mut ingress: Vec<f64> = self
            .endpoints
            .iter()
            .map(|e| e.ingress.as_bytes_per_sec())
            .collect();
        let mut unassigned: Vec<u64> = ids.clone();
        // Per-flow cap: min of the two endpoints' stream caps.
        let cap_of = |net: &Self, id: u64| -> (usize, usize, f64) {
            let f = &net.flows[&id];
            let cap = net.endpoints[f.src]
                .stream_cap
                .as_bytes_per_sec()
                .min(net.endpoints[f.dst].stream_cap.as_bytes_per_sec());
            (f.src, f.dst, cap)
        };

        while !unassigned.is_empty() {
            // Fair share offered by each saturating constraint.
            let mut egress_users = vec![0usize; self.endpoints.len()];
            let mut ingress_users = vec![0usize; self.endpoints.len()];
            for &id in &unassigned {
                let (s, d, _) = cap_of(self, id);
                egress_users[s] += 1;
                ingress_users[d] += 1;
            }
            // The binding increment: the smallest of (a) any flow's own cap,
            // (b) any link's equal share among its unassigned flows.
            let mut limit = f64::INFINITY;
            for &id in &unassigned {
                let (s, d, cap) = cap_of(self, id);
                limit = limit
                    .min(cap)
                    .min(egress[s] / egress_users[s] as f64)
                    .min(ingress[d] / ingress_users[d] as f64);
            }
            debug_assert!(limit.is_finite() && limit >= 0.0);
            // Assign `limit` to every flow whose constraint binds at it;
            // others keep waiting for the next round with reduced links.
            let mut still = Vec::with_capacity(unassigned.len());
            for &id in &unassigned {
                let (s, d, cap) = cap_of(self, id);
                let binds = cap <= limit + 1e-9
                    || egress[s] / egress_users[s] as f64 <= limit + 1e-9
                    || ingress[d] / ingress_users[d] as f64 <= limit + 1e-9;
                if binds {
                    let rate = limit.min(cap);
                    self.flows.get_mut(&id).expect("flow exists").rate = rate;
                    egress[s] = (egress[s] - rate).max(0.0);
                    ingress[d] = (ingress[d] - rate).max(0.0);
                } else {
                    still.push(id);
                }
            }
            if still.len() == unassigned.len() {
                // Numerical fallback: assign the limit to everything left.
                for &id in &still {
                    let (s, d, cap) = cap_of(self, id);
                    let rate = limit.min(cap);
                    self.flows.get_mut(&id).expect("flow exists").rate = rate;
                    egress[s] = (egress[s] - rate).max(0.0);
                    ingress[d] = (ingress[d] - rate).max(0.0);
                }
                break;
            }
            unassigned = still;
        }
    }

    /// Earliest completion among active flows.
    fn next_completion_in(&self) -> Option<Duration> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0)
            .map(|f| f.remaining / f.rate)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
            .map(Duration::from_secs_f64)
    }
}

const COMPLETE_EPS: f64 = 0.5; // half a byte

/// Start a flow of `size` bytes from endpoint `src` to endpoint `dst`.
/// The source's `request_overhead` (with ±15 % jitter) elapses before bytes
/// move. `on_complete` fires when the attempt ends (success or injected
/// fault).
pub fn start_flow<S: HasNetwork>(
    sim: &mut Simulation<S>,
    src: &str,
    dst: &str,
    size: ByteSize,
    on_complete: impl FnOnce(&mut Simulation<S>, FlowOutcome) + 'static,
) -> FlowId {
    let net = sim.state_mut().network();
    let src_i = *net
        .by_name
        .get(src)
        .unwrap_or_else(|| panic!("unknown endpoint {src:?}"));
    let dst_i = *net
        .by_name
        .get(dst)
        .unwrap_or_else(|| panic!("unknown endpoint {dst:?}"));
    let id = net.next_id;
    net.next_id += 1;

    let outcome = net.fault_plan.sample(&mut net.rng);
    // Connection drops abort partway through the payload.
    let effective = match outcome {
        FlowOutcome::ConnectionDropped => {
            let frac = net.rng.uniform(0.05, 0.95);
            (size.as_u64() as f64 * frac).max(1.0)
        }
        _ => size.as_u64() as f64,
    };
    let overhead_s =
        net.endpoints[src_i].request_overhead.as_secs_f64() * net.rng.lognormal_mean_cv(1.0, 0.15);
    let overhead = Duration::from_secs_f64(overhead_s);

    sim.schedule_in(overhead, move |sim| {
        let now = sim.now();
        let net = sim.state_mut().network();
        net.progress_to(now);
        net.flows.insert(
            id,
            Flow {
                src: src_i,
                dst: dst_i,
                remaining: effective,
                rate: 0.0,
                outcome,
                on_complete: Some(Box::new(on_complete)),
            },
        );
        net.recompute_rates();
        reschedule::<S>(sim);
    });
    FlowId::from_raw(id)
}

fn reschedule<S: HasNetwork>(sim: &mut Simulation<S>) {
    let now = sim.now();
    let net = sim.state_mut().network();
    if let Some(h) = net.completion_event.take() {
        sim.cancel(h);
    }
    let net = sim.state_mut().network();
    if let Some(dt) = net.next_completion_in() {
        let at = now + dt;
        let h = sim.schedule_at(at, complete_due::<S>);
        sim.state_mut().network().completion_event = Some(h);
    }
}

fn complete_due<S: HasNetwork>(sim: &mut Simulation<S>) {
    let now = sim.now();
    let net = sim.state_mut().network();
    net.completion_event = None;
    net.progress_to(now);
    let done: Vec<u64> = net
        .flows
        .iter()
        .filter(|(_, f)| f.remaining <= COMPLETE_EPS)
        .map(|(&id, _)| id)
        .collect();
    let mut callbacks = Vec::with_capacity(done.len());
    for id in done {
        let mut flow = net.flows.remove(&id).expect("due flow");
        callbacks.push((flow.on_complete.take().expect("callback"), flow.outcome));
    }
    net.recompute_rates();
    // Delivered-byte accounting happens in the service layer via
    // `note_delivered`, which knows the logical file sizes.
    for (cb, outcome) in callbacks {
        cb(sim, outcome);
    }
    reschedule::<S>(sim);
}

impl<S> FlowNetwork<S> {
    /// Record successfully delivered payload bytes (called by the services
    /// layered on top, which know the logical file sizes).
    pub fn note_delivered(&mut self, size: ByteSize) {
        self.bytes_delivered += size.as_u64() as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_util::units::Rate;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct NetState {
        net: FlowNetwork<NetState>,
    }

    impl HasNetwork for NetState {
        fn network(&mut self) -> &mut FlowNetwork<NetState> {
            &mut self.net
        }
    }

    fn ep(name: &str, egress_mb: f64, ingress_mb: f64, stream_mb: f64) -> Endpoint {
        Endpoint::new(
            name,
            Rate::mb_per_sec(egress_mb),
            Rate::mb_per_sec(ingress_mb),
            Rate::mb_per_sec(stream_mb),
            Duration::ZERO,
        )
    }

    fn sim_with(eps: Vec<Endpoint>) -> Simulation<NetState> {
        let mut net = FlowNetwork::new(42, FaultPlan::none());
        for e in eps {
            net.add_endpoint(e);
        }
        Simulation::new(NetState { net })
    }

    #[test]
    fn single_flow_rate_is_stream_cap() {
        let mut sim = sim_with(vec![
            ep("a", 100.0, 100.0, 10.0),
            ep("b", 100.0, 100.0, 50.0),
        ]);
        let done = Rc::new(RefCell::new(None));
        let done2 = Rc::clone(&done);
        start_flow(&mut sim, "a", "b", ByteSize::mb(100), move |sim, out| {
            *done2.borrow_mut() = Some((sim.now(), out));
        });
        sim.run();
        let (t, out) = done.borrow().expect("flow completed");
        assert!(out.is_success());
        // 100 MB at min(10, 50) MB/s = 10 s.
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn flows_share_egress_equally() {
        let mut sim = sim_with(vec![
            ep("a", 60.0, 60.0, 1000.0),
            ep("b", 1000.0, 1000.0, 1000.0),
        ]);
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let times = Rc::clone(&times);
            start_flow(&mut sim, "a", "b", ByteSize::mb(150), move |sim, out| {
                assert!(out.is_success());
                times.borrow_mut().push(sim.now().as_secs_f64());
            });
        }
        sim.run();
        let times = times.borrow();
        assert_eq!(times.len(), 4);
        // 4 equal flows over a 60 MB/s egress: 15 MB/s each → 10 s.
        for &t in times.iter() {
            assert!((t - 10.0).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn per_flow_cap_binds_before_link() {
        let mut sim = sim_with(vec![
            ep("a", 60.0, 60.0, 9.0),
            ep("b", 1000.0, 1000.0, 1000.0),
        ]);
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let times = Rc::clone(&times);
            start_flow(&mut sim, "a", "b", ByteSize::mb(90), move |sim, _| {
                times.borrow_mut().push(sim.now().as_secs_f64());
            });
        }
        sim.run();
        // 3 flows × 9 MB/s = 27 < 60: stream cap binds → 10 s each.
        for &t in times.borrow().iter() {
            assert!((t - 10.0).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn heterogeneous_max_min_shares() {
        // One capped flow (5 MB/s) + two open flows over a 25 MB/s link:
        // max-min gives the capped flow 5 and the others 10 each.
        let mut sim = sim_with(vec![
            ep("src", 25.0, 1000.0, 1000.0),
            ep("dst_fast", 1000.0, 1000.0, 1000.0),
            ep("dst_slow", 1000.0, 1000.0, 5.0),
        ]);
        let finish = Rc::new(RefCell::new(std::collections::HashMap::new()));
        for (name, dst, mb) in [
            ("slow", "dst_slow", 50u64),
            ("f1", "dst_fast", 100),
            ("f2", "dst_fast", 100),
        ] {
            let finish = Rc::clone(&finish);
            start_flow(&mut sim, "src", dst, ByteSize::mb(mb), move |sim, _| {
                finish.borrow_mut().insert(name, sim.now().as_secs_f64());
            });
        }
        sim.run();
        let f = finish.borrow();
        // slow: 50 MB at 5 MB/s = 10 s. fast flows: 10 MB/s until t=10
        // (100 MB egress share), then remaining 0... they finish exactly at
        // t=10 too: 100 MB at 10 MB/s = 10 s. Make it distinguishable:
        assert!((f["slow"] - 10.0).abs() < 1e-6, "{:?}", *f);
        assert!((f["f1"] - 10.0).abs() < 1e-6, "{:?}", *f);
    }

    #[test]
    fn rates_rebalance_when_flow_joins_midway() {
        // a→b: 10 MB/s egress, uncapped streams. Flow A (100 MB) at t=0;
        // flow B (50 MB) at t=5. A: 50 MB by t=5, then 5 MB/s → done t=15.
        // B: 5 MB/s from t=5 → done t=15.
        let mut sim = sim_with(vec![
            ep("a", 10.0, 1000.0, 1000.0),
            ep("b", 1000.0, 1000.0, 1000.0),
        ]);
        let finish = Rc::new(RefCell::new(Vec::new()));
        let f1 = Rc::clone(&finish);
        start_flow(&mut sim, "a", "b", ByteSize::mb(100), move |sim, _| {
            f1.borrow_mut().push(("A", sim.now().as_secs_f64()));
        });
        let f2 = Rc::clone(&finish);
        sim.schedule_at(SimTime::from_secs_f64(5.0), move |sim| {
            let f2 = Rc::clone(&f2);
            start_flow(sim, "a", "b", ByteSize::mb(50), move |sim, _| {
                f2.borrow_mut().push(("B", sim.now().as_secs_f64()));
            });
        });
        sim.run();
        let f = finish.borrow();
        for (name, t) in f.iter() {
            assert!((t - 15.0).abs() < 1e-6, "{name}: {t}");
        }
    }

    #[test]
    fn request_overhead_delays_start() {
        let mut sim = sim_with(vec![
            Endpoint::new(
                "a",
                Rate::mb_per_sec(10.0),
                Rate::mb_per_sec(10.0),
                Rate::mb_per_sec(10.0),
                Duration::from_secs(2),
            ),
            ep("b", 1000.0, 1000.0, 1000.0),
        ]);
        let done = Rc::new(RefCell::new(0.0));
        let d = Rc::clone(&done);
        start_flow(&mut sim, "a", "b", ByteSize::mb(10), move |sim, _| {
            *d.borrow_mut() = sim.now().as_secs_f64();
        });
        sim.run();
        let t = *done.borrow();
        // ≥ overhead (jittered ±15 %) + 1 s of payload.
        assert!(t > 2.4 && t < 4.5, "completion at {t}");
    }

    #[test]
    fn injected_drop_reports_failure() {
        let mut net = FlowNetwork::new(
            7,
            FaultPlan {
                drop_probability: 1.0,
                corrupt_probability: 0.0,
            },
        );
        net.add_endpoint(ep("a", 10.0, 10.0, 10.0));
        net.add_endpoint(ep("b", 10.0, 10.0, 10.0));
        let mut sim = Simulation::new(NetState { net });
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        start_flow(
            &mut sim,
            "a",
            "b",
            ByteSize::mb(100),
            move |sim, outcome| {
                *o.borrow_mut() = Some((sim.now().as_secs_f64(), outcome));
            },
        );
        sim.run();
        let (t, outcome) = out.borrow().expect("callback fired");
        assert_eq!(outcome, FlowOutcome::ConnectionDropped);
        // Dropped partway: strictly less than the 10 s full-transfer time.
        assert!(t < 10.0, "dropped at {t}");
        assert!(t > 0.0);
    }

    #[test]
    fn determinism() {
        fn run() -> Vec<u64> {
            let mut sim = sim_with(vec![ep("a", 37.0, 37.0, 11.0), ep("b", 90.0, 90.0, 90.0)]);
            let times = Rc::new(RefCell::new(Vec::new()));
            for i in 0..10 {
                let times = Rc::clone(&times);
                start_flow(
                    &mut sim,
                    "a",
                    "b",
                    ByteSize::mb(10 + i * 7),
                    move |sim, _| {
                        times.borrow_mut().push(sim.now().as_nanos());
                    },
                );
            }
            sim.run();
            let v = times.borrow().clone();
            v
        }
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn unknown_endpoint_panics() {
        let mut sim = sim_with(vec![ep("a", 1.0, 1.0, 1.0)]);
        start_flow(&mut sim, "a", "nope", ByteSize::mb(1), |_, _| {});
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicate_endpoint_panics() {
        let mut net: FlowNetwork<NetState> = FlowNetwork::new(1, FaultPlan::none());
        net.add_endpoint(ep("a", 1.0, 1.0, 1.0));
        net.add_endpoint(ep("a", 1.0, 1.0, 1.0));
    }
}

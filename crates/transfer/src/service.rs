//! A Globus-Transfer-like batch transfer service.
//!
//! A *task* names a source endpoint, a destination endpoint and a list of
//! files. The service moves the files with up to `parallel_streams`
//! concurrent flows, verifies integrity, retries failed files up to
//! `retry_limit` times, and reports aggregate statistics — the behaviour the
//! paper's stage 5 (shipment to Frontier's Orion) relies on.

use crate::backoff::BackoffPolicy;
use crate::faults::FlowOutcome;
use crate::flownet::{start_flow, HasNetwork};
use eoml_simtime::{SimTime, Simulation};
use eoml_util::units::ByteSize;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration as StdDuration;

eoml_util::typed_id!(
    /// Identifier of a submitted transfer task.
    TransferTaskId,
    "xfer"
);

/// Task-level options.
#[derive(Debug, Clone, Copy)]
pub struct TransferOptions {
    /// Maximum concurrent file flows (Globus's `parallelism`).
    pub parallel_streams: usize,
    /// Retry budget per file *after* its first attempt: a file is tried
    /// at most `retry_limit + 1` times in total before it counts as
    /// failed — the same convention as
    /// [`DownloadPool::run`](crate::pool::DownloadPool::run).
    pub retry_limit: usize,
    /// Wait applied before each retry. The default is the bounded
    /// exponential [`BackoffPolicy::wan_default`]; use
    /// [`BackoffPolicy::immediate`] for the legacy no-wait loop.
    pub backoff: BackoffPolicy,
}

impl Default for TransferOptions {
    fn default() -> Self {
        Self {
            parallel_streams: 4,
            retry_limit: 3,
            backoff: BackoffPolicy::wan_default(),
        }
    }
}

/// Final report for a transfer task.
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// Task id.
    pub task: TransferTaskId,
    /// Files delivered successfully.
    pub files_ok: usize,
    /// Files abandoned after exhausting retries.
    pub files_failed: usize,
    /// Bytes of successfully delivered files.
    pub bytes: ByteSize,
    /// Total retry attempts made.
    pub retries: usize,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Per-file `(name, seconds)` for delivered files.
    pub file_times: Vec<(String, f64)>,
    /// Per-file `(name, started, finished)` windows for delivered files —
    /// what per-granule shipment spans are recorded from.
    pub file_windows: Vec<(String, SimTime, SimTime)>,
}

impl TransferReport {
    /// Wall-clock duration of the whole task.
    pub fn duration_s(&self) -> f64 {
        (self.finished - self.submitted).as_secs_f64()
    }

    /// Effective aggregate throughput (delivered bytes / task duration).
    pub fn effective_rate(&self) -> eoml_util::units::Rate {
        let d = self.duration_s();
        if d <= 0.0 {
            return eoml_util::units::Rate::bytes_per_sec(0.0);
        }
        eoml_util::units::Rate::bytes_per_sec(self.bytes.as_u64() as f64 / d)
    }
}

type TaskDoneFn<S> = Box<dyn FnOnce(&mut Simulation<S>, TransferReport)>;

struct TaskState<S> {
    id: TransferTaskId,
    src: String,
    dst: String,
    // name, size, attempt number (1-based: first try is attempt 1, the
    // same convention as the download pool).
    queue: VecDeque<(String, ByteSize, usize)>,
    /// Failed files waiting out a backoff delay before requeueing; the
    /// task is not finished while any are outstanding.
    pending_retries: usize,
    in_flight: usize,
    options: TransferOptions,
    files_ok: usize,
    files_failed: usize,
    bytes: ByteSize,
    retries: usize,
    submitted: SimTime,
    file_times: Vec<(String, f64)>,
    file_windows: Vec<(String, SimTime, SimTime)>,
    file_started: std::collections::HashMap<String, SimTime>,
    on_done: Option<TaskDoneFn<S>>,
}

/// Submit a batch transfer; `on_done` receives the final report.
pub fn submit_transfer<S: HasNetwork>(
    sim: &mut Simulation<S>,
    src: &str,
    dst: &str,
    files: Vec<(String, ByteSize)>,
    options: TransferOptions,
    on_done: impl FnOnce(&mut Simulation<S>, TransferReport) + 'static,
) -> TransferTaskId {
    assert!(options.parallel_streams > 0, "need at least one stream");
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let id = TransferTaskId::from_raw(NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
    let state = Rc::new(RefCell::new(TaskState {
        id,
        src: src.to_string(),
        dst: dst.to_string(),
        queue: files.into_iter().map(|(n, s)| (n, s, 1)).collect(),
        pending_retries: 0,
        in_flight: 0,
        options,
        files_ok: 0,
        files_failed: 0,
        bytes: ByteSize::ZERO,
        retries: 0,
        submitted: sim.now(),
        file_times: Vec::new(),
        file_windows: Vec::new(),
        file_started: std::collections::HashMap::new(),
        on_done: Some(Box::new(on_done)),
    }));
    pump(sim, &state);
    id
}

/// Launch flows until the stream budget is used or the queue is empty; if
/// everything is done, emit the report.
fn pump<S: HasNetwork>(sim: &mut Simulation<S>, state: &Rc<RefCell<TaskState<S>>>) {
    loop {
        let next = {
            let mut st = state.borrow_mut();
            if st.in_flight >= st.options.parallel_streams {
                None
            } else if let Some(item) = st.queue.pop_front() {
                st.in_flight += 1;
                st.file_started.entry(item.0.clone()).or_insert(sim.now());
                Some((st.src.clone(), st.dst.clone(), item))
            } else {
                None
            }
        };
        let Some((src, dst, (name, size, attempt))) = next else {
            break;
        };
        let state2 = Rc::clone(state);
        start_flow(sim, &src, &dst, size, move |sim, outcome| {
            on_flow_done(sim, &state2, name, size, attempt, outcome);
        });
    }
    maybe_finish(sim, state);
}

fn on_flow_done<S: HasNetwork>(
    sim: &mut Simulation<S>,
    state: &Rc<RefCell<TaskState<S>>>,
    name: String,
    size: ByteSize,
    attempt: usize,
    outcome: FlowOutcome,
) {
    {
        let mut st = state.borrow_mut();
        st.in_flight -= 1;
        match outcome {
            FlowOutcome::Success => {
                st.files_ok += 1;
                st.bytes += size;
                let started = st.file_started[&name];
                let elapsed = (sim.now() - started).as_secs_f64();
                st.file_windows.push((name.clone(), started, sim.now()));
                st.file_times.push((name, elapsed));
            }
            FlowOutcome::ConnectionDropped | FlowOutcome::ChecksumMismatch => {
                // attempt is 1-based, so `attempt <= retry_limit` grants
                // exactly `retry_limit` retries beyond the first try.
                if attempt <= st.options.retry_limit {
                    st.retries += 1;
                    let delay = st.options.backoff.delay_s(attempt);
                    if delay <= 0.0 {
                        st.queue.push_back((name, size, attempt + 1));
                    } else {
                        st.pending_retries += 1;
                        let state3 = Rc::clone(state);
                        sim.schedule_in(StdDuration::from_secs_f64(delay), move |sim| {
                            {
                                let mut st = state3.borrow_mut();
                                st.pending_retries -= 1;
                                st.queue.push_back((name, size, attempt + 1));
                            }
                            pump(sim, &state3);
                        });
                    }
                } else {
                    st.files_failed += 1;
                }
            }
        }
    }
    if outcome.is_success() {
        sim.state_mut().network().note_delivered(size);
    }
    pump(sim, state);
}

fn maybe_finish<S: HasNetwork>(sim: &mut Simulation<S>, state: &Rc<RefCell<TaskState<S>>>) {
    let report = {
        let mut st = state.borrow_mut();
        if st.in_flight > 0
            || !st.queue.is_empty()
            || st.pending_retries > 0
            || st.on_done.is_none()
        {
            return;
        }
        let on_done = st.on_done.take().expect("checked");
        let report = TransferReport {
            task: st.id,
            files_ok: st.files_ok,
            files_failed: st.files_failed,
            bytes: st.bytes,
            retries: st.retries,
            submitted: st.submitted,
            finished: sim.now(),
            file_times: std::mem::take(&mut st.file_times),
            file_windows: std::mem::take(&mut st.file_windows),
        };
        Some((on_done, report))
    };
    if let Some((on_done, report)) = report {
        on_done(sim, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Endpoint;
    use crate::faults::FaultPlan;
    use crate::flownet::FlowNetwork;
    use eoml_util::units::Rate;
    use std::time::Duration;

    struct St {
        net: FlowNetwork<St>,
        report: Option<TransferReport>,
    }

    impl HasNetwork for St {
        fn network(&mut self) -> &mut FlowNetwork<St> {
            &mut self.net
        }
    }

    fn sim(fault: FaultPlan) -> Simulation<St> {
        let mut net = FlowNetwork::new(11, fault);
        net.add_endpoint(Endpoint::new(
            "src",
            Rate::mb_per_sec(40.0),
            Rate::mb_per_sec(40.0),
            Rate::mb_per_sec(10.0),
            Duration::ZERO,
        ));
        net.add_endpoint(Endpoint::new(
            "dst",
            Rate::mb_per_sec(1000.0),
            Rate::mb_per_sec(1000.0),
            Rate::mb_per_sec(1000.0),
            Duration::ZERO,
        ));
        Simulation::new(St { net, report: None })
    }

    fn files(n: usize, mb: u64) -> Vec<(String, ByteSize)> {
        (0..n)
            .map(|i| (format!("file{i}"), ByteSize::mb(mb)))
            .collect()
    }

    #[test]
    fn all_files_delivered() {
        let mut s = sim(FaultPlan::none());
        submit_transfer(
            &mut s,
            "src",
            "dst",
            files(8, 10),
            TransferOptions::default(),
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.files_ok, 8);
        assert_eq!(r.files_failed, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.bytes, ByteSize::mb(80));
        // 4 streams × 10 MB/s (cap) = 40 MB/s aggregate → 80 MB in 2 s.
        assert!((r.duration_s() - 2.0).abs() < 1e-6, "{}", r.duration_s());
        assert!((r.effective_rate().as_mb_per_sec() - 40.0).abs() < 0.01);
    }

    #[test]
    fn parallel_streams_bound_concurrency() {
        let mut s = sim(FaultPlan::none());
        submit_transfer(
            &mut s,
            "src",
            "dst",
            files(6, 10),
            TransferOptions {
                parallel_streams: 1,
                retry_limit: 0,
                ..TransferOptions::default()
            },
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        // Serial: 6 files × 1 s each at 10 MB/s.
        assert!((r.duration_s() - 6.0).abs() < 1e-6, "{}", r.duration_s());
    }

    #[test]
    fn failures_are_retried_until_delivered() {
        // 100 % drop on first attempts is impossible to recover from, so use
        // a seeded moderate drop rate and a generous retry budget.
        let mut s = sim(FaultPlan {
            drop_probability: 0.4,
            corrupt_probability: 0.1,
        });
        submit_transfer(
            &mut s,
            "src",
            "dst",
            files(20, 5),
            TransferOptions {
                parallel_streams: 4,
                retry_limit: 50,
                ..TransferOptions::default()
            },
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.files_ok, 20);
        assert_eq!(r.files_failed, 0);
        assert!(
            r.retries > 0,
            "with 50 % fault rate some retries must happen"
        );
        assert_eq!(r.bytes, ByteSize::mb(100));
    }

    #[test]
    fn retry_exhaustion_counts_failures() {
        let mut s = sim(FaultPlan {
            drop_probability: 1.0,
            corrupt_probability: 0.0,
        });
        submit_transfer(
            &mut s,
            "src",
            "dst",
            files(3, 5),
            TransferOptions {
                parallel_streams: 2,
                retry_limit: 2,
                ..TransferOptions::default()
            },
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.files_ok, 0);
        assert_eq!(r.files_failed, 3);
        assert_eq!(r.retries, 6, "3 files × 2 retries");
        assert_eq!(r.bytes, ByteSize::ZERO);
    }

    #[test]
    fn empty_task_completes_immediately() {
        let mut s = sim(FaultPlan::none());
        submit_transfer(
            &mut s,
            "src",
            "dst",
            Vec::new(),
            TransferOptions::default(),
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.files_ok, 0);
        assert_eq!(r.duration_s(), 0.0);
    }

    #[test]
    fn file_times_recorded_for_successes() {
        let mut s = sim(FaultPlan::none());
        submit_transfer(
            &mut s,
            "src",
            "dst",
            files(4, 10),
            TransferOptions::default(),
            |sim, r| sim.state_mut().report = Some(r),
        );
        s.run();
        let r = s.state().report.as_ref().expect("report");
        assert_eq!(r.file_times.len(), 4);
        for (name, t) in &r.file_times {
            assert!(name.starts_with("file"));
            assert!((t - 1.0).abs() < 1e-6, "{name}: {t}");
        }
        // Windows agree with the elapsed times and the task bounds.
        assert_eq!(r.file_windows.len(), 4);
        for ((name, t), (wname, started, finished)) in r.file_times.iter().zip(&r.file_windows) {
            assert_eq!(name, wname);
            assert!(((*finished - *started).as_secs_f64() - t).abs() < 1e-9);
            assert!(*started >= r.submitted && *finished <= r.finished);
        }
    }
}

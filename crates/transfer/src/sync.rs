//! The journal-sync leg of a shipment: transfer-with-provenance.
//!
//! A [`crate::manifest::ShipmentManifest`] carries only a *digest* of the
//! source facility's control journal. That is enough to tell two
//! campaigns apart, but not enough for the destination to act alone: if
//! the source facility is lost mid-campaign, the digest cannot seed a
//! failover. The journal-sync leg closes that gap by shipping the
//! compacted journal's materialised state *alongside* the data. The
//! destination then:
//!
//! 1. recomputes the state's work checksum and matches it against both
//!    the sync payload's own digest and the manifest's journal digest
//!    (tamper/truncation detection — the payload crossed the same WAN as
//!    the data);
//! 2. runs a typed completeness check: every labeled file the journal
//!    claims must appear in the manifest with the digest the journal's
//!    byte counts imply, and the manifest must ship nothing the journal
//!    never labeled;
//! 3. on a facility outage, seeds a fresh journal from the synced state
//!    (`Journal::open_seeded`) and resumes the campaign at a second
//!    compute site — from the synced journal alone.
//!
//! Failures are typed ([`SyncError`]) so chaos harnesses and health
//! rollups can tell a corrupt payload from an incomplete shipment.

use crate::backoff::BackoffPolicy;
use crate::faults::FaultInjector;
use crate::ingest::{receive, IngestReport, Ingestor};
use crate::manifest::{synthetic_digest, JournalDigest, ShipmentManifest};
use eoml_journal::CampaignState;
use serde_json::{json, Value};

/// The synced journal payload that travels with a shipment: the source's
/// `(events, checksum)` digest plus the compacted journal's materialised
/// state, serialized exactly as a snapshot frame would hold it.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSync {
    /// Source journal digest at ship time (mirrors the manifest's).
    pub digest: JournalDigest,
    /// Canonical JSON of the source's materialised [`CampaignState`].
    pub state: Value,
}

/// Why a journal-sync payload failed verification, typed for chaos
/// harnesses and ops-event folding.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncError {
    /// The state payload does not parse as a [`CampaignState`].
    StateCorrupt(String),
    /// The recomputed work checksum of the state payload disagrees with
    /// the digest it shipped under — the payload was tampered with or
    /// damaged in flight.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// The manifest carries no journal digest to check against.
    JournalMissing,
    /// The manifest's journal digest and the sync payload's digest name
    /// different completed work — data and journal are from different
    /// campaigns (or different points of one).
    JournalMismatch { manifest: u64, sync: u64 },
    /// The journal says this file was labeled, but the manifest does not
    /// ship it: the shipment is incomplete.
    MissingArtifact { artifact: String },
    /// The manifest ships a file the journal never labeled.
    UnknownArtifact { artifact: String },
    /// A shipped artifact's digest disagrees with what the journal's
    /// byte counts imply.
    DigestMismatch {
        artifact: String,
        expected: u64,
        actual: u64,
    },
}

impl SyncError {
    /// Stable machine-readable kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SyncError::StateCorrupt(_) => "state_corrupt",
            SyncError::ChecksumMismatch { .. } => "checksum_mismatch",
            SyncError::JournalMissing => "journal_missing",
            SyncError::JournalMismatch { .. } => "journal_mismatch",
            SyncError::MissingArtifact { .. } => "missing_artifact",
            SyncError::UnknownArtifact { .. } => "unknown_artifact",
            SyncError::DigestMismatch { .. } => "digest_mismatch",
        }
    }

    /// JSON form for ops events and chaos reports.
    pub fn to_json(&self) -> Value {
        match self {
            SyncError::StateCorrupt(detail) => json!({"kind": self.kind(), "detail": detail}),
            SyncError::ChecksumMismatch { expected, actual } => {
                json!({"kind": self.kind(), "expected": expected, "actual": actual})
            }
            SyncError::JournalMissing => json!({"kind": self.kind()}),
            SyncError::JournalMismatch { manifest, sync } => {
                json!({"kind": self.kind(), "manifest": manifest, "sync": sync})
            }
            SyncError::MissingArtifact { artifact } | SyncError::UnknownArtifact { artifact } => {
                json!({"kind": self.kind(), "artifact": artifact})
            }
            SyncError::DigestMismatch {
                artifact,
                expected,
                actual,
            } => {
                json!({"kind": self.kind(), "artifact": artifact, "expected": expected, "actual": actual})
            }
        }
    }
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::StateCorrupt(detail) => write!(f, "sync state corrupt: {detail}"),
            SyncError::ChecksumMismatch { expected, actual } => write!(
                f,
                "sync state checksum mismatch: shipped {expected:#x}, recomputed {actual:#x}"
            ),
            SyncError::JournalMissing => write!(f, "manifest has no journal digest"),
            SyncError::JournalMismatch { manifest, sync } => write!(
                f,
                "journal digests disagree: manifest {manifest:#x}, sync {sync:#x}"
            ),
            SyncError::MissingArtifact { artifact } => {
                write!(f, "journal labels '{artifact}' but the manifest lacks it")
            }
            SyncError::UnknownArtifact { artifact } => {
                write!(f, "manifest ships '{artifact}' the journal never labeled")
            }
            SyncError::DigestMismatch {
                artifact,
                expected,
                actual,
            } => write!(
                f,
                "'{artifact}' digest mismatch: journal implies {expected:#x}, manifest has {actual:#x}"
            ),
        }
    }
}

impl std::error::Error for SyncError {}

/// A passed completeness check: what the destination now knows it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncCheck {
    /// Artifacts cross-checked between journal and manifest.
    pub artifacts: usize,
    /// Durable events behind the synced state.
    pub events: u64,
    /// The verified work checksum.
    pub checksum: u64,
}

impl JournalSync {
    /// Package a source journal's digest and exported state for shipment.
    pub fn from_parts(events: u64, checksum: u64, state: Value) -> JournalSync {
        JournalSync {
            digest: JournalDigest { events, checksum },
            state,
        }
    }

    /// Package directly from a materialised state (computes the checksum).
    pub fn from_state(events: u64, state: &CampaignState) -> JournalSync {
        JournalSync {
            digest: JournalDigest {
                events,
                checksum: state.work_checksum(),
            },
            state: state.to_json(),
        }
    }

    /// Parse the synced state payload.
    pub fn state(&self) -> Result<CampaignState, SyncError> {
        CampaignState::from_json(&self.state).map_err(SyncError::StateCorrupt)
    }

    /// The typed completeness check (steps 1–2 of the module contract):
    /// payload integrity, digest agreement with the manifest, and the
    /// labeled-set ↔ artifact-set cross-check in both directions. Errors
    /// are ordered: payload corruption is reported before completeness
    /// gaps, and missing artifacts before unknown ones.
    pub fn verify(&self, manifest: &ShipmentManifest) -> Result<SyncCheck, SyncError> {
        let state = self.state()?;
        let recomputed = state.work_checksum();
        if recomputed != self.digest.checksum {
            return Err(SyncError::ChecksumMismatch {
                expected: self.digest.checksum,
                actual: recomputed,
            });
        }
        let journal = manifest.journal.ok_or(SyncError::JournalMissing)?;
        if journal.checksum != self.digest.checksum {
            return Err(SyncError::JournalMismatch {
                manifest: journal.checksum,
                sync: self.digest.checksum,
            });
        }
        // Journal → manifest: every labeled file must ship, byte-exact.
        for (name, &(_labels, bytes)) in &state.labeled {
            let entry = manifest
                .artifact(name)
                .ok_or_else(|| SyncError::MissingArtifact {
                    artifact: name.clone(),
                })?;
            let expected = synthetic_digest(name, bytes);
            if entry.digest != expected {
                return Err(SyncError::DigestMismatch {
                    artifact: name.clone(),
                    expected,
                    actual: entry.digest,
                });
            }
        }
        // Manifest → journal: nothing ships that was never labeled.
        for entry in &manifest.artifacts {
            if !state.labeled.contains_key(&entry.name) {
                return Err(SyncError::UnknownArtifact {
                    artifact: entry.name.clone(),
                });
            }
        }
        Ok(SyncCheck {
            artifacts: manifest.len(),
            events: self.digest.events,
            checksum: self.digest.checksum,
        })
    }

    /// JSON form (travels next to the manifest).
    pub fn to_json(&self) -> Value {
        json!({
            "events": self.digest.events,
            "checksum": format!("{:016x}", self.digest.checksum),
            "state": self.state,
        })
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Value) -> Result<JournalSync, String> {
        let events = v["events"]
            .as_u64()
            .ok_or("journal sync: missing 'events'")?;
        let checksum = v["checksum"]
            .as_str()
            .ok_or("journal sync: missing 'checksum'")
            .and_then(|s| u64::from_str_radix(s, 16).map_err(|_| "journal sync: not hex"))?;
        if v["state"].is_null() {
            return Err("journal sync: missing 'state'".into());
        }
        Ok(JournalSync {
            digest: JournalDigest { events, checksum },
            state: v["state"].clone(),
        })
    }
}

/// [`Ingestor::ingest`] gated on the journal-sync completeness check: the
/// destination refuses to verify artifacts against a manifest whose
/// journal leg is corrupt or incomplete. A failed check counts on the
/// `sync_failures{stage="facility:<name>"}` counter.
pub fn ingest_synced(
    ingestor: &mut Ingestor,
    manifest: &ShipmentManifest,
    sync: &JournalSync,
    received: &[crate::ingest::ReceivedArtifact],
    now_s: f64,
) -> Result<IngestReport, SyncError> {
    if let Err(e) = sync.verify(manifest) {
        if let Some(obs) = ingestor.obs_hub() {
            obs.counter_add(
                "sync_failures",
                &format!("facility:{}", ingestor.facility()),
                1,
            );
        }
        return Err(e);
    }
    Ok(ingestor.ingest(manifest, received, now_s))
}

/// Outcome of a bounded-backoff re-ship loop.
#[derive(Debug)]
pub struct ReshipOutcome {
    /// Per-attempt ingest reports, in order. At most one acks.
    pub reports: Vec<IngestReport>,
    /// Attempts made (1-based; ≤ `retry_limit + 1`).
    pub attempts: usize,
    /// Whether the final attempt verified clean (or hit the idempotent
    /// duplicate path).
    pub acked: bool,
    /// Total backoff seconds waited between attempts.
    pub waited_s: f64,
    /// Trace clock after the final attempt started.
    pub finished_s: f64,
}

/// Re-ship `manifest` across a faulty WAN until the destination verifies
/// it clean, waiting out `policy` between attempts — the bounded
/// exponential-backoff replacement for immediate re-ship loops. The same
/// retry convention as the transfer constructors applies: `retry_limit`
/// re-ships beyond the first attempt. When `sync` is provided, every
/// attempt runs the typed completeness check first ([`ingest_synced`]);
/// a sync failure is terminal (re-sending identical bytes cannot fix a
/// corrupt or incomplete journal leg). The caller journals a single
/// `IngestAcked` when `acked` and the last report is not a duplicate.
pub fn reship_with_backoff(
    manifest: &ShipmentManifest,
    sync: Option<&JournalSync>,
    ingestor: &mut Ingestor,
    faults: &mut FaultInjector,
    policy: &BackoffPolicy,
    retry_limit: usize,
    start_s: f64,
) -> Result<ReshipOutcome, SyncError> {
    if let Some(s) = sync {
        s.verify(manifest)?;
    }
    let max_attempts = retry_limit + 1;
    let mut clock = start_s;
    let mut waited = 0.0;
    let mut reports = Vec::new();
    for attempt in 1..=max_attempts {
        let received = receive(manifest, faults);
        let report = ingestor.ingest(manifest, &received, clock);
        let done = report.ok();
        reports.push(report);
        if done {
            return Ok(ReshipOutcome {
                reports,
                attempts: attempt,
                acked: true,
                waited_s: waited,
                finished_s: clock,
            });
        }
        if attempt < max_attempts {
            let delay = policy.delay_s(attempt);
            waited += delay;
            clock = start_s + waited;
        }
    }
    Ok(ReshipOutcome {
        reports,
        attempts: max_attempts,
        acked: false,
        waited_s: waited,
        finished_s: clock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::manifest::ArtifactEntry;
    use eoml_journal::JournalEvent;

    /// A state whose labeled set matches `files`, built by replaying the
    /// events a real campaign would journal.
    fn labeled_state(files: &[(&str, u64)]) -> CampaignState {
        let mut s = CampaignState::default();
        for (name, bytes) in files {
            s.apply(&JournalEvent::LabelsAppended {
                file: name.to_string(),
                labels: 3,
                bytes: *bytes,
            });
        }
        s
    }

    fn manifest_for(files: &[(&str, u64)], checksum: u64) -> ShipmentManifest {
        let mut m = ShipmentManifest::new("ace-defiant", "frontier-orion", 100.0);
        m.journal = Some(JournalDigest {
            events: files.len() as u64,
            checksum,
        });
        for (name, bytes) in files {
            m.artifacts.push(ArtifactEntry {
                name: name.to_string(),
                bytes: *bytes,
                digest: synthetic_digest(name, *bytes),
                trace_id: None,
            });
        }
        m
    }

    const FILES: &[(&str, u64)] = &[("tiles-a.nc", 4096), ("tiles-b.nc", 8192)];

    fn sync_and_manifest() -> (JournalSync, ShipmentManifest) {
        let state = labeled_state(FILES);
        let sync = JournalSync::from_state(FILES.len() as u64, &state);
        let manifest = manifest_for(FILES, state.work_checksum());
        (sync, manifest)
    }

    #[test]
    fn clean_sync_verifies() {
        let (sync, manifest) = sync_and_manifest();
        let check = sync.verify(&manifest).expect("clean sync");
        assert_eq!(check.artifacts, 2);
        assert_eq!(check.checksum, sync.digest.checksum);
    }

    #[test]
    fn tampered_state_payload_is_rejected() {
        let (mut sync, manifest) = sync_and_manifest();
        // Flip a labeled byte count inside the shipped state.
        sync.state["labeled"]["tiles-a.nc"]["bytes"] = serde_json::json!(4097);
        match sync.verify(&manifest) {
            Err(SyncError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn garbage_state_payload_is_state_corrupt() {
        let (mut sync, manifest) = sync_and_manifest();
        // A labeled entry without its byte count is structurally invalid.
        sync.state = serde_json::json!({"labeled": {"tiles-a.nc": {}}});
        assert!(matches!(
            sync.verify(&manifest),
            Err(SyncError::StateCorrupt(_))
        ));
    }

    #[test]
    fn manifest_without_journal_digest_is_rejected() {
        let (sync, mut manifest) = sync_and_manifest();
        manifest.journal = None;
        assert_eq!(sync.verify(&manifest), Err(SyncError::JournalMissing));
    }

    #[test]
    fn mismatched_journals_are_rejected() {
        let (sync, mut manifest) = sync_and_manifest();
        let j = manifest.journal.as_mut().unwrap();
        j.checksum ^= 0xdead_beef;
        assert!(matches!(
            sync.verify(&manifest),
            Err(SyncError::JournalMismatch { .. })
        ));
    }

    #[test]
    fn incomplete_shipment_names_the_missing_artifact() {
        let (sync, mut manifest) = sync_and_manifest();
        manifest.artifacts.retain(|a| a.name != "tiles-b.nc");
        // Keep the journal digest consistent with the sync payload — the
        // *data* is what is incomplete here.
        match sync.verify(&manifest) {
            Err(SyncError::MissingArtifact { artifact }) => assert_eq!(artifact, "tiles-b.nc"),
            other => panic!("expected missing artifact, got {other:?}"),
        }
    }

    #[test]
    fn unlabeled_extra_artifact_is_rejected() {
        let (sync, mut manifest) = sync_and_manifest();
        manifest.artifacts.push(ArtifactEntry {
            name: "tiles-rogue.nc".into(),
            bytes: 1,
            digest: synthetic_digest("tiles-rogue.nc", 1),
            trace_id: None,
        });
        match sync.verify(&manifest) {
            Err(SyncError::UnknownArtifact { artifact }) => assert_eq!(artifact, "tiles-rogue.nc"),
            other => panic!("expected unknown artifact, got {other:?}"),
        }
    }

    #[test]
    fn wrong_artifact_digest_is_rejected() {
        let (sync, mut manifest) = sync_and_manifest();
        manifest.artifacts[0].digest ^= 1;
        assert!(matches!(
            sync.verify(&manifest),
            Err(SyncError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn json_round_trip() {
        let (sync, _) = sync_and_manifest();
        let back = JournalSync::from_json(&sync.to_json()).expect("parse");
        assert_eq!(back, sync);
        // And the parsed payload still verifies.
        let (_, manifest) = sync_and_manifest();
        assert!(back.verify(&manifest).is_ok());
    }

    #[test]
    fn ingest_synced_refuses_a_bad_leg_before_verifying_artifacts() {
        let (sync, mut manifest) = sync_and_manifest();
        manifest.journal = None;
        let mut ing = Ingestor::new("frontier-orion");
        let received: Vec<crate::ingest::ReceivedArtifact> = manifest
            .artifacts
            .iter()
            .map(crate::ingest::ReceivedArtifact::faithful)
            .collect();
        let err = ingest_synced(&mut ing, &manifest, &sync, &received, 0.0).unwrap_err();
        assert_eq!(err, SyncError::JournalMissing);
        assert_eq!(ing.acked_count(), 0, "nothing may ack on a bad sync leg");
    }

    #[test]
    fn reship_with_backoff_converges_on_a_flaky_wan() {
        let (sync, manifest) = sync_and_manifest();
        let mut ing = Ingestor::new("frontier-orion");
        // Heavy but recoverable loss, deterministic stream.
        let mut faults = FaultInjector::new(FaultPlan {
            drop_probability: 0.6,
            corrupt_probability: 0.2,
        })
        .with_seed(1207);
        let policy = BackoffPolicy::wan_default();
        let out = reship_with_backoff(
            &manifest,
            Some(&sync),
            &mut ing,
            &mut faults,
            &policy,
            40,
            0.0,
        )
        .expect("sync leg is clean");
        assert!(out.acked, "40 re-ships at 60/20% loss must converge");
        assert!(out.attempts > 1, "seeded stream must fail at least once");
        // Waited time follows the policy's schedule exactly.
        assert_eq!(out.waited_s, policy.total_delay_s(out.attempts - 1));
        // Exactly one report acks, and it is the last one.
        let acked: Vec<_> = out
            .reports
            .iter()
            .filter(|r| r.ok() && !r.duplicate)
            .collect();
        assert_eq!(acked.len(), 1);
        assert!(out.reports.last().unwrap().ok());
        assert_eq!(ing.acked_count(), 1);
    }

    #[test]
    fn reship_gives_up_after_the_budget() {
        let (sync, manifest) = sync_and_manifest();
        let mut ing = Ingestor::new("frontier-orion");
        // Total partition: every artifact drops, every attempt.
        let mut faults = FaultInjector::new(FaultPlan {
            drop_probability: 1.0,
            corrupt_probability: 0.0,
        })
        .with_seed(7);
        let policy = BackoffPolicy::wan_default();
        let out = reship_with_backoff(
            &manifest,
            Some(&sync),
            &mut ing,
            &mut faults,
            &policy,
            3,
            0.0,
        )
        .expect("sync leg is clean");
        assert!(!out.acked);
        assert_eq!(out.attempts, 4, "retry_limit 3 = 4 total attempts");
        assert_eq!(out.waited_s, policy.total_delay_s(3));
        assert_eq!(ing.acked_count(), 0);
    }
}

//! Fault injection for data movement.
//!
//! Real multi-facility transfers fail: connections drop mid-file and
//! payloads arrive corrupted. The services in this crate retry on failure;
//! these types decide *when* failures happen, deterministically from the
//! world seed.

use eoml_util::rng::{Rng64, Xoshiro256};

/// How a finished flow ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOutcome {
    /// All bytes arrived and the checksum (if verified) matched.
    Success,
    /// The connection dropped partway; the transfer must restart.
    ConnectionDropped,
    /// Bytes arrived but integrity verification failed.
    ChecksumMismatch,
}

impl FlowOutcome {
    /// Whether the flow delivered a usable file.
    pub fn is_success(self) -> bool {
        self == FlowOutcome::Success
    }
}

/// Per-flow failure probabilities.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability that a flow's connection drops.
    pub drop_probability: f64,
    /// Probability that a completed flow fails checksum verification.
    pub corrupt_probability: f64,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
        }
    }

    /// A mildly unreliable WAN (≈2 % drops, 0.5 % corruption).
    pub fn flaky_wan() -> Self {
        Self {
            drop_probability: 0.02,
            corrupt_probability: 0.005,
        }
    }

    /// Sample an outcome for one flow attempt.
    pub fn sample(&self, rng: &mut Xoshiro256) -> FlowOutcome {
        if rng.chance(self.drop_probability) {
            FlowOutcome::ConnectionDropped
        } else if rng.chance(self.corrupt_probability) {
            FlowOutcome::ChecksumMismatch
        } else {
            FlowOutcome::Success
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut rng = Xoshiro256::seed_from(1);
        let plan = FaultPlan::none();
        for _ in 0..1000 {
            assert_eq!(plan.sample(&mut rng), FlowOutcome::Success);
        }
    }

    #[test]
    fn rates_are_respected() {
        let mut rng = Xoshiro256::seed_from(2);
        let plan = FaultPlan {
            drop_probability: 0.3,
            corrupt_probability: 0.2,
        };
        let n = 100_000;
        let mut drops = 0;
        let mut corrupt = 0;
        for _ in 0..n {
            match plan.sample(&mut rng) {
                FlowOutcome::ConnectionDropped => drops += 1,
                FlowOutcome::ChecksumMismatch => corrupt += 1,
                FlowOutcome::Success => {}
            }
        }
        let drop_rate = drops as f64 / n as f64;
        // corrupt is conditioned on no drop: expected 0.7 × 0.2 = 0.14
        let corrupt_rate = corrupt as f64 / n as f64;
        assert!((drop_rate - 0.3).abs() < 0.01, "{drop_rate}");
        assert!((corrupt_rate - 0.14).abs() < 0.01, "{corrupt_rate}");
    }

    #[test]
    fn outcome_success_predicate() {
        assert!(FlowOutcome::Success.is_success());
        assert!(!FlowOutcome::ConnectionDropped.is_success());
        assert!(!FlowOutcome::ChecksumMismatch.is_success());
    }
}

//! Fault injection for data movement.
//!
//! Real multi-facility transfers fail: connections drop mid-file and
//! payloads arrive corrupted. The services in this crate retry on failure;
//! these types decide *when* failures happen, deterministically from the
//! world seed.

use eoml_util::rng::{Rng64, Xoshiro256};

/// How a finished flow ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOutcome {
    /// All bytes arrived and the checksum (if verified) matched.
    Success,
    /// The connection dropped partway; the transfer must restart.
    ConnectionDropped,
    /// Bytes arrived but integrity verification failed.
    ChecksumMismatch,
}

impl FlowOutcome {
    /// Whether the flow delivered a usable file.
    pub fn is_success(self) -> bool {
        self == FlowOutcome::Success
    }
}

/// Per-flow failure probabilities.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability that a flow's connection drops.
    pub drop_probability: f64,
    /// Probability that a completed flow fails checksum verification.
    pub corrupt_probability: f64,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
        }
    }

    /// A mildly unreliable WAN (≈2 % drops, 0.5 % corruption).
    pub fn flaky_wan() -> Self {
        Self {
            drop_probability: 0.02,
            corrupt_probability: 0.005,
        }
    }

    /// Sample an outcome for one flow attempt.
    pub fn sample(&self, rng: &mut Xoshiro256) -> FlowOutcome {
        if rng.chance(self.drop_probability) {
            FlowOutcome::ConnectionDropped
        } else if rng.chance(self.corrupt_probability) {
            FlowOutcome::ChecksumMismatch
        } else {
            FlowOutcome::Success
        }
    }
}

/// Default seed for [`FaultInjector`] when neither the builder nor
/// `EOML_FAULT_SEED` picks one.
pub const DEFAULT_FAULT_SEED: u64 = 0xfa17_0b5e_ed00_0001;

/// A [`FaultPlan`] bundled with its own deterministically seeded RNG —
/// the reproducible fault source the ingest-verification path samples.
///
/// Seed resolution, in priority order:
/// 1. an explicit [`FaultInjector::with_seed`] builder call,
/// 2. the `EOML_FAULT_SEED` environment variable,
/// 3. [`DEFAULT_FAULT_SEED`].
///
/// Two injectors built from the same plan and seed produce the same
/// outcome sequence, so a failing corruption/loss test reruns
/// identically under `EOML_FAULT_SEED=<n>`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    rng: Xoshiro256,
}

/// Resolve the `EOML_FAULT_SEED` override: `Ok(None)` when unset (or set
/// to the empty string), `Ok(Some(seed))` for a valid decimal u64, and a
/// descriptive `Err` for anything else. A malformed seed must fail loudly:
/// silently falling back to [`DEFAULT_FAULT_SEED`] would let a typo'd
/// reproduction run "reproduce" a different fault stream than the one the
/// user asked for.
fn parse_env_seed(raw: Option<&str>) -> Result<Option<u64>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed.parse::<u64>().map(Some).map_err(|e| {
        format!("EOML_FAULT_SEED={raw:?} is not a valid u64 fault seed ({e}); unset it or pass a decimal integer")
    })
}

impl FaultInjector {
    /// Injector over `plan`, seeded from `EOML_FAULT_SEED` when set,
    /// else [`DEFAULT_FAULT_SEED`].
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `EOML_FAULT_SEED` is set
    /// but malformed — a typo'd seed must never silently reproduce the
    /// default stream. Use [`FaultInjector::try_new`] for a typed error.
    pub fn new(plan: FaultPlan) -> Self {
        Self::try_new(plan).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`FaultInjector::new`] with the malformed-`EOML_FAULT_SEED` case
    /// surfaced as a typed error instead of a panic.
    pub fn try_new(plan: FaultPlan) -> Result<Self, String> {
        let env = std::env::var("EOML_FAULT_SEED").ok();
        let seed = parse_env_seed(env.as_deref())?.unwrap_or(DEFAULT_FAULT_SEED);
        Ok(Self::seeded(plan, seed))
    }

    /// Builder: replace the seed (and reset the stream).
    pub fn with_seed(self, seed: u64) -> Self {
        Self::seeded(self.plan, seed)
    }

    fn seeded(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            seed,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// The seed this injector's stream started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan being sampled.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Sample the next flow outcome.
    pub fn sample(&mut self) -> FlowOutcome {
        self.plan.sample(&mut self.rng)
    }

    /// Deterministically perturb a content digest — how a
    /// [`FlowOutcome::ChecksumMismatch`] corrupts a virtual artifact
    /// whose payload exists only as a digest. Never returns `digest`
    /// unchanged.
    pub fn corrupt_digest(&mut self, digest: u64) -> u64 {
        let noise = self.rng.next_u64() | 1; // non-zero ⇒ always differs
        digest ^ noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut rng = Xoshiro256::seed_from(1);
        let plan = FaultPlan::none();
        for _ in 0..1000 {
            assert_eq!(plan.sample(&mut rng), FlowOutcome::Success);
        }
    }

    #[test]
    fn rates_are_respected() {
        let mut rng = Xoshiro256::seed_from(2);
        let plan = FaultPlan {
            drop_probability: 0.3,
            corrupt_probability: 0.2,
        };
        let n = 100_000;
        let mut drops = 0;
        let mut corrupt = 0;
        for _ in 0..n {
            match plan.sample(&mut rng) {
                FlowOutcome::ConnectionDropped => drops += 1,
                FlowOutcome::ChecksumMismatch => corrupt += 1,
                FlowOutcome::Success => {}
            }
        }
        let drop_rate = drops as f64 / n as f64;
        // corrupt is conditioned on no drop: expected 0.7 × 0.2 = 0.14
        let corrupt_rate = corrupt as f64 / n as f64;
        assert!((drop_rate - 0.3).abs() < 0.01, "{drop_rate}");
        assert!((corrupt_rate - 0.14).abs() < 0.01, "{corrupt_rate}");
    }

    #[test]
    fn outcome_success_predicate() {
        assert!(FlowOutcome::Success.is_success());
        assert!(!FlowOutcome::ConnectionDropped.is_success());
        assert!(!FlowOutcome::ChecksumMismatch.is_success());
    }

    #[test]
    fn injectors_with_the_same_seed_replay_the_same_stream() {
        let plan = FaultPlan {
            drop_probability: 0.3,
            corrupt_probability: 0.3,
        };
        let mut a = FaultInjector::new(plan).with_seed(77);
        let mut b = FaultInjector::new(plan).with_seed(77);
        assert_eq!(a.seed(), 77);
        for _ in 0..200 {
            assert_eq!(a.sample(), b.sample());
        }
        assert_eq!(a.corrupt_digest(0x1234), b.corrupt_digest(0x1234));
        // A different seed diverges somewhere in the stream.
        let mut c = FaultInjector::new(plan).with_seed(78);
        let mut a = FaultInjector::new(plan).with_seed(77);
        let diverged = (0..200).any(|_| a.sample() != c.sample());
        assert!(diverged, "seeds 77 and 78 produced identical streams");
    }

    #[test]
    fn env_seed_parsing_rejects_malformed_values() {
        // Unset and empty both mean "no override".
        assert_eq!(parse_env_seed(None), Ok(None));
        assert_eq!(parse_env_seed(Some("")), Ok(None));
        assert_eq!(parse_env_seed(Some("   ")), Ok(None));
        // Valid decimal seeds pass through (whitespace tolerated).
        assert_eq!(parse_env_seed(Some("42")), Ok(Some(42)));
        assert_eq!(parse_env_seed(Some(" 99 ")), Ok(Some(99)));
        assert_eq!(
            parse_env_seed(Some("18446744073709551615")),
            Ok(Some(u64::MAX))
        );
        // Malformed values are errors, never a silent default fallback.
        for bad in ["0x10", "12abc", "-3", "1e9", "18446744073709551616"] {
            let err = parse_env_seed(Some(bad)).unwrap_err();
            assert!(err.contains("EOML_FAULT_SEED"), "{err}");
            assert!(err.contains(bad), "{err} should name the bad value");
        }
    }

    #[test]
    fn corrupt_digest_always_differs() {
        let mut inj = FaultInjector::new(FaultPlan::none()).with_seed(5);
        for d in [0u64, 1, u64::MAX, 0xabcd] {
            assert_ne!(inj.corrupt_digest(d), d);
        }
    }
}

//! Transfer endpoints: the places data lives and the capacity of their
//! access links.

use eoml_util::units::Rate;
use std::time::Duration;

eoml_util::typed_id!(
    /// Identifier of a registered endpoint.
    EndpointId,
    "ep"
);

/// An endpoint (archive, cluster file system, …) and its link model.
#[derive(Debug, Clone)]
pub struct Endpoint {
    /// Human-readable unique name, e.g. `"laads"`, `"ace-defiant"`,
    /// `"frontier-orion"`.
    pub name: String,
    /// Maximum aggregate outbound rate.
    pub egress: Rate,
    /// Maximum aggregate inbound rate.
    pub ingress: Rate,
    /// Per-flow (single TCP stream) rate cap.
    pub stream_cap: Rate,
    /// Fixed per-request setup cost (TLS handshake, request dispatch,
    /// metadata lookup) paid before bytes start moving.
    pub request_overhead: Duration,
}

impl Endpoint {
    /// The synthetic LAADS DAAC: a public HTTPS archive far away — modest
    /// per-stream throughput, meaningful per-request overhead, and an
    /// aggregate egress just above what 3 workers can pull. Calibrated to
    /// paper Fig. 3: going from 3 workers (3 × 9 = 27 MB/s, stream-capped)
    /// to 6 workers (30 MB/s, egress-capped) gains ≈3 MB/s on multi-file
    /// batches and nothing on single files.
    pub fn laads() -> Self {
        Self {
            name: "laads".into(),
            egress: Rate::mb_per_sec(30.0),
            ingress: Rate::mb_per_sec(30.0),
            stream_cap: Rate::mb_per_sec(9.0),
            request_overhead: Duration::from_millis(1200),
        }
    }

    /// The ACE Defiant cluster: 12.5 GB/s Slingshot-10 interconnect; WAN
    /// ingress bounded by the site's data transfer nodes.
    pub fn ace_defiant() -> Self {
        Self {
            name: "ace-defiant".into(),
            egress: Rate::gbit_per_sec(100.0),
            ingress: Rate::mb_per_sec(400.0),
            stream_cap: Rate::mb_per_sec(300.0),
            request_overhead: Duration::from_millis(50),
        }
    }

    /// Frontier's Orion Lustre file system: very fast intra-facility links.
    pub fn frontier_orion() -> Self {
        Self {
            name: "frontier-orion".into(),
            egress: Rate::gbit_per_sec(200.0),
            ingress: Rate::gbit_per_sec(200.0),
            stream_cap: Rate::mb_per_sec(1000.0),
            request_overhead: Duration::from_millis(30),
        }
    }

    /// A custom endpoint.
    pub fn new(
        name: impl Into<String>,
        egress: Rate,
        ingress: Rate,
        stream_cap: Rate,
        request_overhead: Duration,
    ) -> Self {
        Self {
            name: name.into(),
            egress,
            ingress,
            stream_cap,
            request_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_endpoints_are_sane() {
        for ep in [
            Endpoint::laads(),
            Endpoint::ace_defiant(),
            Endpoint::frontier_orion(),
        ] {
            assert!(ep.egress.as_bytes_per_sec() > 0.0);
            assert!(ep.ingress.as_bytes_per_sec() > 0.0);
            assert!(ep.stream_cap.as_bytes_per_sec() > 0.0);
            assert!(!ep.name.is_empty());
        }
        // The WAN bottleneck ordering that shapes Fig 3: LAADS egress is the
        // scarce resource, far below the clusters' ingress.
        assert!(
            Endpoint::laads().egress.as_bytes_per_sec()
                < Endpoint::ace_defiant().ingress.as_bytes_per_sec()
        );
    }

    #[test]
    fn endpoint_id_display() {
        assert_eq!(EndpointId::from_raw(3).to_string(), "ep-3");
    }
}

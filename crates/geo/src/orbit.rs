//! Sun-synchronous circular-orbit propagation and swath geometry.
//!
//! This module stands in for the MOD03 geolocation product: given a platform
//! (Terra or Aqua) and a time, it produces the sub-satellite ground track and
//! the lat/lon of every pixel in a cross-track scan line, from which the
//! synthetic MOD03 granules are assembled.
//!
//! The model is a spherical-earth circular orbit with secular nodal
//! precession — accurate to tens of kilometers over a day, which is far more
//! fidelity than the downstream pipeline needs (it consumes lat/lon only for
//! ocean masking and per-tile metadata).

use crate::latlon::LatLon;
use crate::{EARTH_RADIUS_KM, SIDEREAL_DAY_S};

/// Earth gravitational parameter, km³/s².
const MU_EARTH: f64 = 398_600.441_8;

/// Seconds in a tropical year (for sun-synchronous nodal precession).
const TROPICAL_YEAR_S: f64 = 365.242_19 * 86_400.0;

/// Static description of a circular orbit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbitParams {
    /// Altitude above the spherical earth, km.
    pub altitude_km: f64,
    /// Inclination, degrees (>90 ⇒ retrograde, as for sun-sync).
    pub inclination_deg: f64,
    /// Right ascension of ascending node at epoch, degrees.
    pub raan_deg: f64,
    /// Argument of latitude at epoch, degrees.
    pub arg_lat_deg: f64,
}

impl OrbitParams {
    /// NASA Terra (EOS AM-1): ~10:30 descending-node sun-sync orbit.
    pub fn terra() -> Self {
        Self {
            altitude_km: 705.0,
            inclination_deg: 98.2,
            raan_deg: 0.0,
            arg_lat_deg: 0.0,
        }
    }

    /// NASA Aqua (EOS PM-1): ~13:30 ascending-node sun-sync orbit.
    pub fn aqua() -> Self {
        Self {
            altitude_km: 705.0,
            inclination_deg: 98.2,
            raan_deg: 45.0,
            arg_lat_deg: 180.0,
        }
    }
}

/// A propagatable sun-synchronous orbit.
#[derive(Debug, Clone, Copy)]
pub struct SunSyncOrbit {
    params: OrbitParams,
    /// Mean motion, rad/s.
    n: f64,
    /// Nodal precession rate, rad/s (sun-sync: 2π per tropical year).
    raan_dot: f64,
}

impl SunSyncOrbit {
    /// Build from parameters; the nodal precession is fixed to the
    /// sun-synchronous rate rather than derived from J2 (same effect, no
    /// gravity-field model needed).
    pub fn new(params: OrbitParams) -> Self {
        let a = EARTH_RADIUS_KM + params.altitude_km;
        let n = (MU_EARTH / (a * a * a)).sqrt();
        Self {
            params,
            n,
            raan_dot: std::f64::consts::TAU / TROPICAL_YEAR_S,
        }
    }

    /// Orbital period in seconds (~5933 s / 98.9 min for MODIS platforms).
    pub fn period_s(&self) -> f64 {
        std::f64::consts::TAU / self.n
    }

    /// Ground speed of the sub-satellite point, km/s (~6.7 for MODIS).
    pub fn ground_speed_km_s(&self) -> f64 {
        EARTH_RADIUS_KM * self.n
    }

    /// Sub-satellite point at `t` seconds after epoch. Earth rotation uses
    /// the sidereal rate; longitudes assume RAAN is measured from the
    /// Greenwich meridian at epoch (adequate for synthetic data).
    pub fn ground_point(&self, t: f64) -> LatLon {
        let i = self.params.inclination_deg.to_radians();
        let u = self.params.arg_lat_deg.to_radians() + self.n * t;
        let lat = (i.sin() * u.sin()).asin();
        // Longitude of the satellite in the inertial frame relative to the
        // ascending node, then shifted by the (precessing) node and earth
        // rotation.
        let dlon_inertial = (i.cos() * u.sin()).atan2(u.cos());
        let raan = self.params.raan_deg.to_radians() + self.raan_dot * t;
        let earth_rot = std::f64::consts::TAU / SIDEREAL_DAY_S * t;
        let lon = dlon_inertial + raan - earth_rot;
        LatLon::new(lat.to_degrees(), lon.to_degrees())
    }

    /// Ground-track heading (degrees clockwise from north) at time `t`,
    /// via symmetric finite difference.
    pub fn heading_deg(&self, t: f64) -> f64 {
        let dt = 0.5;
        let a = self.ground_point(t - dt);
        let b = self.ground_point(t + dt);
        a.bearing_to(&b)
    }

    /// Times (within `[t0, t1]`) at which the ground track crosses the
    /// equator, found by sign-change bisection on latitude.
    pub fn equator_crossings(&self, t0: f64, t1: f64) -> Vec<f64> {
        let mut crossings = Vec::new();
        let step = 30.0;
        let mut prev_t = t0;
        let mut prev_lat = self.ground_point(t0).lat;
        let mut t = t0 + step;
        while t <= t1 {
            let lat = self.ground_point(t).lat;
            if prev_lat == 0.0 || (prev_lat < 0.0) != (lat < 0.0) {
                // Bisect to ~1 ms.
                let (mut lo, mut hi) = (prev_t, t);
                for _ in 0..40 {
                    let mid = 0.5 * (lo + hi);
                    let mlat = self.ground_point(mid).lat;
                    if (self.ground_point(lo).lat < 0.0) == (mlat < 0.0) {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                crossings.push(0.5 * (lo + hi));
            }
            prev_t = t;
            prev_lat = lat;
            t += step;
        }
        crossings
    }
}

/// Cross-track swath geometry: maps `(scan time, pixel index)` to lat/lon.
#[derive(Debug, Clone, Copy)]
pub struct SwathGeometry {
    orbit: SunSyncOrbit,
    /// Full swath width on the ground, km (MODIS: 2330).
    pub swath_width_km: f64,
    /// Pixels per scan line (MODIS 1-km: 1354).
    pub pixels_per_line: usize,
    /// Along-track distance between scan lines, km (MODIS 1-km: ~1).
    pub line_spacing_km: f64,
}

impl SwathGeometry {
    /// MODIS 1-km-resolution swath on the given orbit.
    pub fn modis_1km(orbit: SunSyncOrbit) -> Self {
        Self {
            orbit,
            swath_width_km: 2330.0,
            pixels_per_line: 1354,
            line_spacing_km: 1.0,
        }
    }

    /// The underlying orbit.
    pub fn orbit(&self) -> &SunSyncOrbit {
        &self.orbit
    }

    /// Seconds between successive scan lines.
    pub fn line_period_s(&self) -> f64 {
        self.line_spacing_km / self.orbit.ground_speed_km_s()
    }

    /// Geolocate a full scan line observed at `t`: pixel 0 is at the left
    /// edge of the swath (relative to flight direction).
    pub fn scan_line(&self, t: f64) -> Vec<LatLon> {
        let center = self.orbit.ground_point(t);
        let heading = self.orbit.heading_deg(t);
        let n = self.pixels_per_line;
        (0..n)
            .map(|k| {
                let frac = (k as f64 + 0.5) / n as f64 - 0.5;
                let cross = frac * self.swath_width_km;
                if cross >= 0.0 {
                    center.destination(heading + 90.0, cross)
                } else {
                    center.destination(heading - 90.0, -cross)
                }
            })
            .collect()
    }

    /// Geolocate a single pixel without building the whole line.
    pub fn pixel(&self, t: f64, k: usize) -> LatLon {
        let center = self.orbit.ground_point(t);
        let heading = self.orbit.heading_deg(t);
        let frac = (k as f64 + 0.5) / self.pixels_per_line as f64 - 0.5;
        let cross = frac * self.swath_width_km;
        if cross >= 0.0 {
            center.destination(heading + 90.0, cross)
        } else {
            center.destination(heading - 90.0, -cross)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terra() -> SunSyncOrbit {
        SunSyncOrbit::new(OrbitParams::terra())
    }

    #[test]
    fn period_matches_modis_platforms() {
        let p = terra().period_s();
        // Published Terra/Aqua period: ~98.8–99 minutes.
        assert!((p / 60.0 - 98.9).abs() < 0.5, "period {} min", p / 60.0);
    }

    #[test]
    fn ground_speed_is_about_6_7_km_s() {
        let v = terra().ground_speed_km_s();
        assert!((v - 6.74).abs() < 0.1, "speed {v}");
    }

    #[test]
    fn latitude_bounded_by_inclination() {
        let orbit = terra();
        let mut max_lat: f64 = 0.0;
        for i in 0..6000 {
            let lat = orbit.ground_point(i as f64).lat.abs();
            max_lat = max_lat.max(lat);
        }
        // Max |lat| for i=98.2° is 180−98.2 = 81.8°.
        assert!(max_lat <= 81.9, "max lat {max_lat}");
        assert!(
            max_lat > 80.0,
            "orbit should reach high latitudes, got {max_lat}"
        );
    }

    #[test]
    fn ground_track_is_continuous() {
        let orbit = terra();
        for i in 0..1000 {
            let a = orbit.ground_point(i as f64);
            let b = orbit.ground_point(i as f64 + 1.0);
            let d = a.distance_km(&b);
            // One second of flight ≈ ground speed (+ up to ~0.5 km/s of
            // earth-rotation sweep at the equator).
            assert!(d < 7.5 && d > 6.0, "step {i}: {d} km");
        }
    }

    #[test]
    fn sun_synchronous_local_time_is_stable() {
        // The defining property: local solar time of same-direction equator
        // crossings stays fixed. Check over one day (~14.5 orbits).
        let orbit = terra();
        let crossings = orbit.equator_crossings(0.0, 86_400.0);
        assert!(
            crossings.len() >= 28,
            "expected ≥28 crossings, got {}",
            crossings.len()
        );
        // Ascending crossings are every other one; compute local solar time
        // = UTC hours + lon/15 (UTC here = t seconds, epoch midnight).
        let lst: Vec<f64> = crossings
            .iter()
            .step_by(2)
            .map(|&t| {
                let lon = orbit.ground_point(t).lon;
                ((t / 3600.0) + lon / 15.0).rem_euclid(24.0)
            })
            .collect();
        let spread = lst
            .iter()
            .map(|&x| {
                // circular distance to the first crossing's LST
                let d = (x - lst[0]).abs();
                d.min(24.0 - d)
            })
            .fold(0.0f64, f64::max);
        assert!(spread < 0.25, "LST drift {spread} h over one day: {lst:?}");
    }

    #[test]
    fn orbits_per_day_is_about_14_and_a_half() {
        let orbit = terra();
        let orbits = 86_400.0 / orbit.period_s();
        assert!((orbits - 14.56).abs() < 0.2, "{orbits} orbits/day");
    }

    #[test]
    fn swath_width_matches_modis() {
        let g = SwathGeometry::modis_1km(terra());
        let line = g.scan_line(1000.0);
        assert_eq!(line.len(), 1354);
        let width = line[0].distance_km(&line[1353]);
        // Edge-pixel centers are half a pixel in from each edge.
        let expected = 2330.0 * (1353.0 / 1354.0);
        assert!((width - expected).abs() < 5.0, "swath width {width}");
    }

    #[test]
    fn scan_line_center_is_on_ground_track() {
        let g = SwathGeometry::modis_1km(terra());
        let t = 2345.0;
        let line = g.scan_line(t);
        let center_pair_mid = {
            let a = line[676];
            let b = line[677];
            LatLon::new((a.lat + b.lat) / 2.0, (a.lon + b.lon) / 2.0)
        };
        let sub = g.orbit().ground_point(t);
        assert!(center_pair_mid.distance_km(&sub) < 2.0);
    }

    #[test]
    fn pixel_matches_scan_line() {
        let g = SwathGeometry::modis_1km(terra());
        let t = 777.0;
        let line = g.scan_line(t);
        for k in [0, 100, 677, 1353] {
            let p = g.pixel(t, k);
            assert!(p.distance_km(&line[k]) < 1e-6, "pixel {k}");
        }
    }

    #[test]
    fn line_period_yields_2030_lines_per_granule() {
        // A 5-minute MODIS granule contains ~2030 1-km scan lines; with our
        // spherical model the line period must make that come out right to
        // within a few percent.
        let g = SwathGeometry::modis_1km(terra());
        let lines_per_granule = 300.0 / g.line_period_s();
        assert!(
            (lines_per_granule - 2030.0).abs() < 80.0,
            "{lines_per_granule} lines per 5-min granule"
        );
    }

    #[test]
    fn terra_and_aqua_tracks_differ() {
        let t = SunSyncOrbit::new(OrbitParams::terra());
        let a = SunSyncOrbit::new(OrbitParams::aqua());
        let d = t.ground_point(0.0).distance_km(&a.ground_point(0.0));
        assert!(d > 1000.0, "platforms should start far apart: {d} km");
    }
}

//! Procedural land/ocean mask.
//!
//! The real pipeline reads per-pixel land/sea flags from the MOD03 product;
//! here a deterministic fractal mask supplies them. Continents are the
//! super-level set of a low-frequency fBm field sampled on the unit sphere
//! (via 3-D-ish coordinates folded into 2-D noise), with the threshold
//! calibrated so the global land fraction is ≈29 %, matching Earth. The
//! pipeline's behaviour — some swaths are mostly ocean, some mostly land,
//! with spatially coherent boundaries — is preserved.

use crate::latlon::LatLon;
use eoml_util::noise::Fbm;

/// Deterministic global land/ocean mask.
#[derive(Debug, Clone, Copy)]
pub struct LandMask {
    field: Fbm,
    threshold: f64,
    /// Spatial frequency scale: continents span tens of degrees.
    scale: f64,
}

impl LandMask {
    /// Earth-like mask (≈29 % land) for the given seed.
    pub fn earth_like(seed: u64) -> Self {
        Self {
            field: Fbm::new(seed, 5),
            // Calibrated in tests: fBm of 5 octaves is approximately
            // symmetric around 0.5; a threshold of 0.565 yields ~29 % land.
            threshold: 0.565,
            scale: 1.0 / 30.0,
        }
    }

    /// Mask with a custom land fraction knob (higher threshold ⇒ less land).
    pub fn with_threshold(seed: u64, threshold: f64) -> Self {
        Self {
            field: Fbm::new(seed, 5),
            threshold,
            scale: 1.0 / 30.0,
        }
    }

    /// Continuous "elevation-like" field value in `[0, 1)` at a point.
    /// Values above the threshold are land.
    pub fn field_value(&self, p: &LatLon) -> f64 {
        // Project onto a cylinder with two longitude phases to hide the
        // antimeridian seam: blend noise sampled at lon and lon+180° with
        // weights that swap smoothly across the seam.
        let x1 = (p.lon + 180.0) * self.scale / 1.0;
        let x2 = (p.lon.rem_euclid(360.0)) * self.scale / 1.0;
        let y = (p.lat + 90.0) * self.scale;
        let v1 = self.field.sample(x1, y);
        let v2 = self.field.sample(x2 + 61.7, y + 13.3);
        // Weight: 1 near lon=0, 0 near ±180, smooth.
        let w = 0.5 * (1.0 + (p.lon.to_radians()).cos());
        // Polar caps get an elevation boost so high latitudes trend toward
        // land/ice, vaguely Earth-like.
        let polar = ((p.lat.abs() - 66.0) / 24.0).clamp(0.0, 1.0) * 0.18;
        (v1 * w + v2 * (1.0 - w) + polar).min(0.999_999)
    }

    /// Whether the point is land.
    pub fn is_land(&self, p: &LatLon) -> bool {
        self.field_value(p) >= self.threshold
    }

    /// Whether the point is ocean.
    pub fn is_ocean(&self, p: &LatLon) -> bool {
        !self.is_land(p)
    }

    /// Monte-Carlo estimate of the global land fraction using an
    /// area-correct (cosine-latitude) sample of `n` points.
    pub fn land_fraction(&self, n: usize) -> f64 {
        let mut land = 0usize;
        for i in 0..n {
            // Low-discrepancy-ish lattice over the sphere.
            let u = (i as f64 + 0.5) / n as f64;
            let v = (i as f64 * 0.618_033_988_75).fract();
            let lat = (2.0 * u - 1.0).asin().to_degrees();
            let lon = v * 360.0 - 180.0;
            if self.is_land(&LatLon::new(lat, lon)) {
                land += 1;
            }
        }
        land as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_deterministic() {
        let m1 = LandMask::earth_like(2022);
        let m2 = LandMask::earth_like(2022);
        for i in 0..100 {
            let p = LatLon::new(
                (i as f64 * 1.7) % 80.0 - 40.0,
                (i as f64 * 3.1) % 360.0 - 180.0,
            );
            assert_eq!(m1.is_land(&p), m2.is_land(&p));
        }
    }

    #[test]
    fn land_fraction_is_earth_like() {
        let m = LandMask::earth_like(2022);
        let frac = m.land_fraction(20_000);
        assert!(
            (0.20..=0.40).contains(&frac),
            "land fraction {frac} should be roughly Earth's 0.29"
        );
    }

    #[test]
    fn threshold_controls_land_fraction() {
        let wet = LandMask::with_threshold(7, 0.8);
        let dry = LandMask::with_threshold(7, 0.3);
        assert!(wet.land_fraction(5_000) < dry.land_fraction(5_000));
    }

    #[test]
    fn mask_is_spatially_coherent() {
        // Neighbouring points (≈10 km apart) should usually agree — a mask
        // of uncorrelated noise would break tile-level ocean filtering.
        let m = LandMask::earth_like(2022);
        let mut agree = 0;
        let mut total = 0;
        for i in 0..500 {
            let lat = (i as f64 * 0.31) % 120.0 - 60.0;
            let lon = (i as f64 * 1.13) % 360.0 - 180.0;
            let p = LatLon::new(lat, lon);
            let q = LatLon::new(lat + 0.09, lon);
            if m.is_land(&p) == m.is_land(&q) {
                agree += 1;
            }
            total += 1;
        }
        assert!(
            agree as f64 / total as f64 > 0.95,
            "coherence {agree}/{total}"
        );
    }

    #[test]
    fn no_seam_at_antimeridian() {
        // Field values just west and just east of ±180° must be close.
        let m = LandMask::earth_like(2022);
        for i in 0..50 {
            let lat = i as f64 * 2.0 - 50.0;
            let w = m.field_value(&LatLon::new(lat, 179.95));
            let e = m.field_value(&LatLon::new(lat, -179.95));
            assert!(
                (w - e).abs() < 0.05,
                "seam jump {} at lat {lat}",
                (w - e).abs()
            );
        }
    }

    #[test]
    fn different_seeds_make_different_worlds() {
        let a = LandMask::earth_like(1);
        let b = LandMask::earth_like(2);
        let diffs = (0..200)
            .filter(|&i| {
                let p = LatLon::new(
                    (i as f64 * 0.83) % 120.0 - 60.0,
                    (i as f64 * 2.9) % 360.0 - 180.0,
                );
                a.is_land(&p) != b.is_land(&p)
            })
            .count();
        assert!(diffs > 20, "only {diffs}/200 differ");
    }

    #[test]
    fn field_value_in_range() {
        let m = LandMask::earth_like(5);
        for i in 0..300 {
            let p = LatLon::new(
                (i as f64 * 0.61) % 180.0 - 90.0,
                (i as f64 * 1.27) % 360.0 - 180.0,
            );
            let v = m.field_value(&p);
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }
}

//! `eoml-geo` — geodesy for the synthetic MODIS generator.
//!
//! Three pieces:
//!
//! * [`latlon`] — spherical-earth coordinates, great-circle math, bearings.
//! * [`orbit`] — a sun-synchronous circular-orbit propagator producing the
//!   ground track and cross-track swath geometry of the Terra/Aqua
//!   platforms; this is what stands in for the MOD03 geolocation product.
//! * [`landmask`] — a deterministic procedural land/ocean mask with a
//!   realistic (~29 %) land fraction, replacing the paper's reliance on the
//!   MOD03 land/sea flags.
//! * [`solar`] — solar declination/zenith geometry for day/night
//!   discrimination (the real MOD03 carries per-pixel solar zenith).

pub mod landmask;
pub mod latlon;
pub mod orbit;
pub mod solar;

pub use landmask::LandMask;
pub use latlon::LatLon;
pub use orbit::{OrbitParams, SunSyncOrbit, SwathGeometry};
pub use solar::solar_zenith_deg;

/// Mean Earth radius in kilometers (spherical model).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Sidereal day length in seconds (Earth rotation period).
pub const SIDEREAL_DAY_S: f64 = 86_164.090_5;

//! Solar geometry: declination, equation of time, solar zenith angle.
//!
//! MODIS reflective bands are only meaningful in sunlight, so the pipeline
//! needs day/night discrimination. The real MOD03 product carries per-pixel
//! solar zenith angles; this module computes them from first principles
//! (low-precision NOAA-style formulas, accurate to a fraction of a degree —
//! far better than the pipeline needs).

use crate::latlon::LatLon;
use eoml_util::timebase::UtcTime;

/// Solar declination in degrees for a given day-of-year (1–366).
/// Cooper's formula (±0.5° accuracy).
pub fn declination_deg(doy: u16) -> f64 {
    23.45 * (std::f64::consts::TAU * (284.0 + doy as f64) / 365.0).sin()
}

/// Equation of time in minutes (apparent solar time − mean solar time).
pub fn equation_of_time_min(doy: u16) -> f64 {
    let b = std::f64::consts::TAU * (doy as f64 - 81.0) / 364.0;
    9.87 * (2.0 * b).sin() - 7.53 * b.cos() - 1.5 * b.sin()
}

/// Solar hour angle in degrees at a longitude and UTC instant (0 at local
/// solar noon, negative in the morning).
pub fn hour_angle_deg(lon: f64, t: UtcTime) -> f64 {
    let doy = t.date().ordinal();
    let solar_minutes = t.seconds_of_day() / 60.0 + 4.0 * lon + equation_of_time_min(doy);
    // Wrap (solar_minutes/4 − 180°) into [−180°, 180°).
    (solar_minutes / 4.0).rem_euclid(360.0) - 180.0
}

/// Solar zenith angle in degrees at a point and instant (0 = sun overhead,
/// 90 = horizon, >90 = night).
pub fn solar_zenith_deg(p: &LatLon, t: UtcTime) -> f64 {
    let decl = declination_deg(t.date().ordinal()).to_radians();
    let h = hour_angle_deg(p.lon, t).to_radians();
    let lat = p.lat_rad();
    let cos_z = lat.sin() * decl.sin() + lat.cos() * decl.cos() * h.cos();
    cos_z.clamp(-1.0, 1.0).acos().to_degrees()
}

/// Whether the sun is above the `max_zenith` threshold commonly used for
/// daytime remote sensing (defaults in callers are ~81–85°).
pub fn is_daylit(p: &LatLon, t: UtcTime, max_zenith_deg: f64) -> bool {
    solar_zenith_deg(p, t) < max_zenith_deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_util::timebase::CivilDate;

    fn at(y: i32, m: u8, d: u8, hh: u8, mm: u8) -> UtcTime {
        UtcTime::from_date_hms(CivilDate::new(y, m, d).unwrap(), hh, mm, 0.0)
    }

    #[test]
    fn declination_extremes() {
        // Solstices: ±23.45°; equinoxes: ≈0.
        let jun21 = CivilDate::new(2022, 6, 21).unwrap().ordinal();
        let dec21 = CivilDate::new(2022, 12, 21).unwrap().ordinal();
        let mar21 = CivilDate::new(2022, 3, 21).unwrap().ordinal();
        assert!((declination_deg(jun21) - 23.45).abs() < 0.5);
        assert!((declination_deg(dec21) + 23.45).abs() < 0.5);
        assert!(declination_deg(mar21).abs() < 1.5);
    }

    #[test]
    fn equation_of_time_bounds() {
        // EoT stays within about ±17 minutes over the year.
        for doy in 1..=365 {
            let e = equation_of_time_min(doy);
            assert!((-17.0..=17.0).contains(&e), "doy {doy}: {e}");
        }
        // Known extreme: early November ≈ +16 min.
        let nov3 = CivilDate::new(2022, 11, 3).unwrap().ordinal();
        assert!(equation_of_time_min(nov3) > 14.0);
    }

    #[test]
    fn zenith_at_subsolar_point_is_small() {
        // Equinox, local solar noon at lon 0 → sun nearly overhead at the
        // equator.
        let z = solar_zenith_deg(&LatLon::new(0.0, 0.0), at(2022, 3, 21, 12, 7));
        assert!(z < 3.0, "zenith {z}");
    }

    #[test]
    fn midnight_is_night() {
        let z = solar_zenith_deg(&LatLon::new(0.0, 0.0), at(2022, 3, 21, 0, 0));
        assert!(z > 150.0, "zenith {z}");
        assert!(!is_daylit(
            &LatLon::new(0.0, 0.0),
            at(2022, 3, 21, 0, 0),
            85.0
        ));
    }

    #[test]
    fn longitude_shifts_local_noon() {
        // At 90°W, solar noon is ~18:00 UTC.
        let z_noon = solar_zenith_deg(&LatLon::new(0.0, -90.0), at(2022, 3, 21, 18, 7));
        let z_off = solar_zenith_deg(&LatLon::new(0.0, -90.0), at(2022, 3, 21, 12, 0));
        assert!(z_noon < 5.0, "{z_noon}");
        assert!(z_off > 80.0, "{z_off}");
    }

    #[test]
    fn polar_night_and_midnight_sun() {
        // Late December: 80°N never sees the sun; 80°S always does.
        for hh in [0, 6, 12, 18] {
            let north = solar_zenith_deg(&LatLon::new(80.0, 0.0), at(2022, 12, 21, hh, 0));
            let south = solar_zenith_deg(&LatLon::new(-80.0, 0.0), at(2022, 12, 21, hh, 0));
            assert!(north > 85.0, "north at {hh}h: {north}");
            assert!(south < 90.0, "south at {hh}h: {south}");
        }
    }

    #[test]
    fn zenith_is_continuous_in_time() {
        let p = LatLon::new(35.0, -84.0);
        let mut prev = solar_zenith_deg(&p, at(2022, 7, 1, 0, 0));
        for step in 1..96 {
            let t = UtcTime::from_date_hms(
                CivilDate::new(2022, 7, 1).unwrap(),
                (step * 15 / 60) as u8,
                (step * 15 % 60) as u8,
                0.0,
            );
            let z = solar_zenith_deg(&p, t);
            assert!((z - prev).abs() < 6.0, "jump at step {step}: {prev} → {z}");
            prev = z;
        }
    }
}

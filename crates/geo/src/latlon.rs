//! Spherical-earth coordinates and great-circle math.

use crate::EARTH_RADIUS_KM;
use std::fmt;

/// A geographic coordinate in degrees. Latitude in `[-90, 90]`, longitude
/// normalized to `(-180, 180]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

/// Normalize a longitude to `(-180, 180]`.
pub fn normalize_lon(lon: f64) -> f64 {
    let mut l = (lon + 180.0).rem_euclid(360.0) - 180.0;
    if l == -180.0 {
        l = 180.0;
    }
    l
}

impl LatLon {
    /// Construct, clamping latitude and normalizing longitude.
    pub fn new(lat: f64, lon: f64) -> Self {
        Self {
            lat: lat.clamp(-90.0, 90.0),
            lon: normalize_lon(lon),
        }
    }

    /// Latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Great-circle (haversine) distance to `other` in kilometers.
    pub fn distance_km(&self, other: &LatLon) -> f64 {
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2)
            + self.lat_rad().cos() * other.lat_rad().cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Initial great-circle bearing toward `other`, degrees clockwise from
    /// north in `[0, 360)`.
    pub fn bearing_to(&self, other: &LatLon) -> f64 {
        let dlon = (other.lon - self.lon).to_radians();
        let y = dlon.sin() * other.lat_rad().cos();
        let x = self.lat_rad().cos() * other.lat_rad().sin()
            - self.lat_rad().sin() * other.lat_rad().cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The point `distance_km` away along the great circle at initial
    /// `bearing_deg` (clockwise from north).
    pub fn destination(&self, bearing_deg: f64, distance_km: f64) -> LatLon {
        let delta = distance_km / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let phi1 = self.lat_rad();
        let lam1 = self.lon_rad();
        let phi2 = (phi1.sin() * delta.cos() + phi1.cos() * delta.sin() * theta.cos()).asin();
        let lam2 = lam1
            + (theta.sin() * delta.sin() * phi1.cos()).atan2(delta.cos() - phi1.sin() * phi2.sin());
        LatLon::new(phi2.to_degrees(), lam2.to_degrees())
    }

    /// Whether this point falls inside the lat/lon box (handles boxes that
    /// cross the antimeridian).
    pub fn in_box(&self, south: f64, north: f64, west: f64, east: f64) -> bool {
        if self.lat < south || self.lat > north {
            return false;
        }
        if west <= east {
            self.lon >= west && self.lon <= east
        } else {
            self.lon >= west || self.lon <= east
        }
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = if self.lat >= 0.0 { 'N' } else { 'S' };
        let ew = if self.lon >= 0.0 { 'E' } else { 'W' };
        write!(
            f,
            "{:.3}°{} {:.3}°{}",
            self.lat.abs(),
            ns,
            self.lon.abs(),
            ew
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lon_wraps() {
        assert_eq!(normalize_lon(0.0), 0.0);
        assert_eq!(normalize_lon(190.0), -170.0);
        assert_eq!(normalize_lon(-190.0), 170.0);
        assert_eq!(normalize_lon(540.0), 180.0);
        assert_eq!(normalize_lon(-180.0), 180.0);
        assert_eq!(normalize_lon(360.0), 0.0);
    }

    #[test]
    fn constructor_clamps_and_normalizes() {
        let p = LatLon::new(95.0, 200.0);
        assert_eq!(p.lat, 90.0);
        assert_eq!(p.lon, -160.0);
    }

    #[test]
    fn distance_known_values() {
        // Quarter circumference: pole to equator.
        let pole = LatLon::new(90.0, 0.0);
        let eq = LatLon::new(0.0, 0.0);
        let quarter = std::f64::consts::PI * EARTH_RADIUS_KM / 2.0;
        assert!((pole.distance_km(&eq) - quarter).abs() < 1.0);
        // Antipodal points: half circumference.
        let a = LatLon::new(0.0, 0.0);
        let b = LatLon::new(0.0, 180.0);
        assert!((a.distance_km(&b) - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
        // Identity.
        assert!(a.distance_km(&a) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = LatLon::new(35.2, -97.4);
        let b = LatLon::new(-12.0, 130.8);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = LatLon::new(0.0, 0.0);
        assert!((origin.bearing_to(&LatLon::new(10.0, 0.0)) - 0.0).abs() < 1e-6);
        assert!((origin.bearing_to(&LatLon::new(0.0, 10.0)) - 90.0).abs() < 1e-6);
        assert!((origin.bearing_to(&LatLon::new(-10.0, 0.0)) - 180.0).abs() < 1e-6);
        assert!((origin.bearing_to(&LatLon::new(0.0, -10.0)) - 270.0).abs() < 1e-6);
    }

    #[test]
    fn destination_round_trip() {
        let start = LatLon::new(20.0, -30.0);
        for bearing in [0.0, 45.0, 137.0, 260.0] {
            for dist in [10.0, 500.0, 3000.0] {
                let end = start.destination(bearing, dist);
                let measured = start.distance_km(&end);
                assert!(
                    (measured - dist).abs() < 1.0,
                    "bearing {bearing} dist {dist}: measured {measured}"
                );
            }
        }
    }

    #[test]
    fn in_box_simple_and_antimeridian() {
        let p = LatLon::new(10.0, -100.0);
        assert!(p.in_box(0.0, 20.0, -110.0, -90.0));
        assert!(!p.in_box(11.0, 20.0, -110.0, -90.0));
        // Box crossing the antimeridian: 170E..-170E (20° wide).
        let q = LatLon::new(0.0, 175.0);
        assert!(q.in_box(-5.0, 5.0, 170.0, -170.0));
        let r = LatLon::new(0.0, 0.0);
        assert!(!r.in_box(-5.0, 5.0, 170.0, -170.0));
    }

    #[test]
    fn display_formats_hemispheres() {
        assert_eq!(LatLon::new(-10.5, -76.25).to_string(), "10.500°S 76.250°W");
        assert_eq!(LatLon::new(45.0, 30.0).to_string(), "45.000°N 30.000°E");
    }

    #[test]
    fn paper_fig1_region_box() {
        // Fig 1 of the paper: swath off the west coast of South America,
        // 18S–3N, 76W–104W. Sanity-check in_box with that region.
        let inside = LatLon::new(-10.0, -90.0);
        let outside = LatLon::new(-10.0, -60.0);
        assert!(inside.in_box(-18.0, 3.0, -104.0, -76.0));
        assert!(!outside.in_box(-18.0, 3.0, -104.0, -76.0));
    }
}

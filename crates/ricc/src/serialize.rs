//! Model artifact serialization.
//!
//! Stage 4 of the paper's workflow loads "the trained autoencoder and
//! centroids" produced by the training stage; this module defines that
//! artifact: a small self-describing binary format (magic `RICC`, version,
//! hyperparameters, parameter buffers, centroids) with length validation
//! on load. Everything is little-endian f32/u32.

use crate::aicca::AiccaModel;
use crate::autoencoder::{AeConfig, ConvAutoencoder};
use std::fmt;

/// Artifact magic bytes.
pub const MAGIC: &[u8; 4] = b"RICC";

/// Artifact format version.
pub const VERSION: u16 = 1;

/// Errors from loading a model artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelIoError {
    /// Too short / length field overruns.
    Truncated,
    /// Wrong magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// A buffer's length disagrees with the hyperparameters.
    Inconsistent(&'static str),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Truncated => write!(f, "model artifact truncated"),
            ModelIoError::BadMagic => write!(f, "not a RICC model artifact"),
            ModelIoError::BadVersion(v) => write!(f, "unsupported artifact version {v}"),
            ModelIoError::Inconsistent(what) => write!(f, "inconsistent artifact: {what}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, xs: &[f32]) {
        self.u32(xs.len() as u32);
        for x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelIoError> {
        if self.pos + n > self.buf.len() {
            return Err(ModelIoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, ModelIoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, ModelIoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn f32s(&mut self) -> Result<Vec<f32>, ModelIoError> {
        let n = self.u32()? as usize;
        let raw = self.take(n.checked_mul(4).ok_or(ModelIoError::Truncated)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Serialize a full AICCA model (encoder weights + centroids).
pub fn save_model(model: &AiccaModel) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    let cfg = model.encoder.cfg;
    for v in [cfg.in_ch, cfg.c1, cfg.c2, cfg.latent, cfg.input] {
        w.u32(v as u32);
    }
    w.buf.extend_from_slice(&cfg.lr.to_le_bytes());
    w.buf.extend_from_slice(&cfg.lambda.to_le_bytes());
    for buf in model.encoder.param_buffers() {
        w.f32s(buf);
    }
    w.u32(model.centroids.len() as u32);
    for c in &model.centroids {
        w.f32s(c);
    }
    w.buf
}

/// Load a model saved by [`save_model`], validating structure.
pub fn load_model(bytes: &[u8]) -> Result<AiccaModel, ModelIoError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ModelIoError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ModelIoError::BadVersion(version));
    }
    let in_ch = r.u32()? as usize;
    let c1 = r.u32()? as usize;
    let c2 = r.u32()? as usize;
    let latent = r.u32()? as usize;
    let input = r.u32()? as usize;
    let lr_bytes = r.take(4)?;
    let lr = f32::from_le_bytes(lr_bytes.try_into().expect("4 bytes"));
    let lambda_bytes = r.take(4)?;
    let lambda = f32::from_le_bytes(lambda_bytes.try_into().expect("4 bytes"));
    if input == 0 || !input.is_multiple_of(4) || in_ch == 0 || c1 == 0 || c2 == 0 || latent == 0 {
        return Err(ModelIoError::Inconsistent("hyperparameters"));
    }
    let cfg = AeConfig {
        in_ch,
        c1,
        c2,
        latent,
        input,
        lr,
        lambda,
    };
    let mut encoder = ConvAutoencoder::new(cfg, 0);
    let expected: Vec<usize> = encoder.param_buffers().iter().map(|b| b.len()).collect();
    let mut loaded = Vec::with_capacity(expected.len());
    for want in &expected {
        let buf = r.f32s()?;
        if buf.len() != *want {
            return Err(ModelIoError::Inconsistent("parameter buffer length"));
        }
        loaded.push(buf);
    }
    encoder.set_param_buffers(&loaded);
    let k = r.u32()? as usize;
    let mut centroids = Vec::with_capacity(k);
    for _ in 0..k {
        let c = r.f32s()?;
        if c.len() != latent {
            return Err(ModelIoError::Inconsistent("centroid dimension"));
        }
        centroids.push(c);
    }
    if r.pos != bytes.len() {
        return Err(ModelIoError::Inconsistent("trailing bytes"));
    }
    Ok(AiccaModel { encoder, centroids })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aicca::synthetic_texture_sample;

    fn model() -> AiccaModel {
        AiccaModel::pretrained(AeConfig::tiny(), 77)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let m = model();
        let bytes = save_model(&m);
        let back = load_model(&bytes).unwrap();
        assert_eq!(back.centroids, m.centroids);
        assert_eq!(back.encoder.cfg, m.encoder.cfg);
        let tiles = synthetic_texture_sample(AeConfig::tiny(), 12, 5);
        assert_eq!(back.predict_batch(&tiles), m.predict_batch(&tiles));
        for t in &tiles {
            assert_eq!(back.embed(t), m.embed(t), "latents must match exactly");
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(load_model(b"JU").unwrap_err(), ModelIoError::Truncated);
        assert_eq!(load_model(b"JUNKMORE").unwrap_err(), ModelIoError::BadMagic);
        let bytes = save_model(&model());
        for cut in [0, 4, 5, 10, 40, bytes.len() - 1] {
            assert!(load_model(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_bad_version_and_trailing() {
        let mut bytes = save_model(&model());
        bytes[4] = 9;
        assert_eq!(load_model(&bytes).unwrap_err(), ModelIoError::BadVersion(9));
        let mut bytes = save_model(&model());
        bytes.push(0);
        assert_eq!(
            load_model(&bytes).unwrap_err(),
            ModelIoError::Inconsistent("trailing bytes")
        );
    }

    #[test]
    fn rejects_corrupt_hyperparameters() {
        let mut bytes = save_model(&model());
        // input size field (5th u32 after magic+version) → offset 4+2+4*4.
        let off = 4 + 2 + 16;
        bytes[off..off + 4].copy_from_slice(&7u32.to_le_bytes()); // not %4
        assert!(matches!(
            load_model(&bytes).unwrap_err(),
            ModelIoError::Inconsistent(_)
        ));
    }

    #[test]
    fn artifact_is_compact() {
        let m = model();
        let bytes = save_model(&m);
        // Tiny model: parameters + 42 × 8-dim centroids — well under 1 MB.
        assert!(bytes.len() < 1_000_000, "{} bytes", bytes.len());
        assert!(bytes.len() > 1_000);
    }
}

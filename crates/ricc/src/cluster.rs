//! Agglomerative hierarchical clustering with Ward linkage.
//!
//! RICC clusters the autoencoder's latent vectors bottom-up: start with
//! every point as its own cluster and repeatedly merge the pair whose merge
//! minimizes the increase in within-cluster variance (Ward's criterion).
//! The implementation uses the Lance–Williams update with the
//! nearest-neighbor-chain algorithm — O(n²) time and memory, exact (not a
//! heuristic), which comfortably handles the latent-sample sizes the model
//! fit uses.

// Index-based loops mirror the maths (i/j/o/k subscripts) in these
// numeric kernels; iterator adaptors would obscure the indexing.
#![allow(clippy::needless_range_loop)]

/// One merge step of the dendrogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster (see [`Dendrogram`] id scheme).
    pub a: usize,
    /// Second merged cluster.
    pub b: usize,
    /// Ward distance at which the merge happened.
    pub distance: f64,
    /// Size of the merged cluster.
    pub size: usize,
}

/// The full merge tree. Cluster ids: `0..n` are the original points;
/// `n + i` is the cluster created by `merges[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of original points.
    pub n: usize,
    /// The `n − 1` merges in order of increasing distance.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Flat cluster assignment with exactly `k` clusters (labels `0..k`,
    /// relabeled to be contiguous and ordered by first occurrence).
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n, "k must be in 1..=n");
        // Union-find over the first n − k merges.
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().take(self.n - k).enumerate() {
            let new_id = self.n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        let mut labels = vec![usize::MAX; self.n];
        let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for p in 0..self.n {
            let root = find(&mut parent, p);
            let next = remap.len();
            let label = *remap.entry(root).or_insert(next);
            labels[p] = label;
        }
        labels
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum()
}

/// Ward-linkage agglomerative clustering of `points` (each a feature
/// vector of equal length). Returns the dendrogram.
pub fn agglomerate(points: &[Vec<f32>]) -> Dendrogram {
    let n = points.len();
    assert!(n >= 1, "need at least one point");
    if n == 1 {
        return Dendrogram {
            n,
            merges: Vec::new(),
        };
    }
    // Active clusters: index into `dist` matrix rows. We keep a full n×n
    // distance matrix over *slots* and reuse slot `a` for merged clusters.
    // Initial Ward distance between singletons: ½‖x−y‖² (scaled so the
    // Lance–Williams update is exact for Ward's criterion).
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    // Map from slot to dendrogram cluster id.
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let d = 0.5 * sq_dist(&points[i], &points[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    let mut merges = Vec::with_capacity(n - 1);
    // Nearest-neighbor chain.
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut next_id = n;
    while merges.len() < n - 1 {
        if chain.is_empty() {
            let start = (0..n).find(|&i| active[i]).expect("active cluster");
            chain.push(start);
        }
        loop {
            let top = *chain.last().expect("non-empty chain");
            // Nearest active neighbor of `top`.
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for j in 0..n {
                if j != top && active[j] {
                    let d = dist[top * n + j];
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
            }
            debug_assert!(best != usize::MAX);
            if chain.len() >= 2 && chain[chain.len() - 2] == best {
                // Reciprocal nearest neighbors: merge top and best.
                chain.pop();
                chain.pop();
                let (a, b) = (top.min(best), top.max(best));
                let (sa, sb) = (size[a], size[b]);
                merges.push(Merge {
                    a: cluster_id[a],
                    b: cluster_id[b],
                    distance: best_d,
                    size: sa + sb,
                });
                // Merge b into slot a with Lance–Williams (Ward):
                // d(a∪b, k) = [(s_a+s_k)d(a,k) + (s_b+s_k)d(b,k) − s_k d(a,b)]
                //             / (s_a + s_b + s_k)
                for k in 0..n {
                    if k != a && k != b && active[k] {
                        let sk = size[k] as f64;
                        let dak = dist[a * n + k];
                        let dbk = dist[b * n + k];
                        let dab = dist[a * n + b];
                        let d = ((sa as f64 + sk) * dak + (sb as f64 + sk) * dbk - sk * dab)
                            / (sa as f64 + sb as f64 + sk);
                        dist[a * n + k] = d;
                        dist[k * n + a] = d;
                    }
                }
                active[b] = false;
                size[a] = sa + sb;
                cluster_id[a] = next_id;
                next_id += 1;
                break;
            }
            chain.push(best);
        }
    }
    Dendrogram { n, merges }
}

/// Mean vector of each cluster under a flat labeling.
pub fn centroids(points: &[Vec<f32>], labels: &[usize], k: usize) -> Vec<Vec<f32>> {
    assert_eq!(points.len(), labels.len());
    let dim = points.first().map(|p| p.len()).unwrap_or(0);
    let mut sums = vec![vec![0.0f64; dim]; k];
    let mut counts = vec![0usize; k];
    for (p, &l) in points.iter().zip(labels) {
        assert!(l < k, "label {l} out of range");
        counts[l] += 1;
        for (s, &v) in sums[l].iter_mut().zip(p) {
            *s += v as f64;
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(s, c)| {
            assert!(c > 0, "empty cluster");
            s.into_iter().map(|v| (v / c as f64) as f32).collect()
        })
        .collect()
}

/// Assign each point to its nearest centroid (squared Euclidean).
pub fn assign(points: &[Vec<f32>], centroids: &[Vec<f32>]) -> Vec<usize> {
    points
        .iter()
        .map(|p| {
            centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| sq_dist(p, a).partial_cmp(&sq_dist(p, b)).expect("finite"))
                .map(|(i, _)| i)
                .expect("at least one centroid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_util::rng::{Rng64, Xoshiro256};

    /// Three well-separated Gaussian blobs.
    fn blobs(per: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut points = Vec::new();
        let mut truth = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..per {
                points.push(vec![
                    (c[0] + rng.normal(0.0, 0.5)) as f32,
                    (c[1] + rng.normal(0.0, 0.5)) as f32,
                ]);
                truth.push(ci);
            }
        }
        (points, truth)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (points, truth) = blobs(20, 1);
        let dendro = agglomerate(&points);
        let labels = dendro.cut(3);
        // Perfect recovery up to label permutation: points with the same
        // truth share a label, different truths differ.
        for i in 0..points.len() {
            for j in 0..points.len() {
                assert_eq!(
                    truth[i] == truth[j],
                    labels[i] == labels[j],
                    "points {i},{j}"
                );
            }
        }
    }

    #[test]
    fn merge_count_and_monotone_heights() {
        let (points, _) = blobs(10, 2);
        let d = agglomerate(&points);
        assert_eq!(d.merges.len(), points.len() - 1);
        // Ward distances from NN-chain are sorted after the fact — the
        // merge *sequence* need not be globally monotone, but the final
        // merge must be the largest (joining the blobs).
        let last = d.merges.last().unwrap().distance;
        let max = d.merges.iter().map(|m| m.distance).fold(0.0f64, f64::max);
        assert!((last - max).abs() < 1e-9, "last {last} vs max {max}");
        assert_eq!(d.merges.last().unwrap().size, points.len());
    }

    #[test]
    fn cut_extremes() {
        let (points, _) = blobs(5, 3);
        let d = agglomerate(&points);
        let all_one = d.cut(1);
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = d.cut(points.len());
        let mut sorted = singletons.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), points.len());
    }

    #[test]
    fn permutation_invariance() {
        // Clustering structure must not depend on point order.
        let (mut points, mut truth) = blobs(8, 4);
        let d1 = agglomerate(&points);
        let l1 = d1.cut(3);
        // Reverse the order.
        points.reverse();
        truth.reverse();
        let d2 = agglomerate(&points);
        let l2 = d2.cut(3);
        for i in 0..points.len() {
            for j in 0..points.len() {
                assert_eq!(
                    l2[i] == l2[j],
                    l1[points.len() - 1 - i] == l1[points.len() - 1 - j]
                );
            }
        }
        let _ = truth;
    }

    #[test]
    fn centroids_are_cluster_means() {
        let points = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![10.0, 10.0],
            vec![12.0, 10.0],
        ];
        let labels = vec![0, 0, 1, 1];
        let c = centroids(&points, &labels, 2);
        assert_eq!(c[0], vec![1.0, 0.0]);
        assert_eq!(c[1], vec![11.0, 10.0]);
    }

    #[test]
    fn assign_picks_nearest() {
        let cents = vec![vec![0.0f32, 0.0], vec![10.0, 10.0]];
        let points = vec![vec![1.0f32, 1.0], vec![9.0, 9.5], vec![4.9, 4.9]];
        assert_eq!(assign(&points, &cents), vec![0, 1, 0]);
    }

    #[test]
    fn ward_prefers_balanced_merges() {
        // Ward distance between a big cluster and a point grows with
        // cluster size; verify the classic 1-D example: {0, 1} vs {10}.
        // Merging 0 and 1 first is mandatory.
        let points = vec![vec![0.0f32], vec![1.0], vec![10.0]];
        let d = agglomerate(&points);
        assert_eq!(d.merges[0].distance, 0.5); // ½·1²
        let labels = d.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn single_point_dendrogram() {
        let d = agglomerate(&[vec![1.0f32, 2.0]]);
        assert_eq!(d.merges.len(), 0);
        assert_eq!(d.cut(1), vec![0]);
    }

    #[test]
    fn forty_two_clusters_from_many_points() {
        // The AICCA use case: cut at k = 42 on a few hundred latents.
        let mut rng = Xoshiro256::seed_from(9);
        let points: Vec<Vec<f32>> = (0..300)
            .map(|_| (0..8).map(|_| rng.normal(0.0, 1.0) as f32).collect())
            .collect();
        let d = agglomerate(&points);
        let labels = d.cut(42);
        let mut uniq = labels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 42);
        let c = centroids(&points, &labels, 42);
        assert_eq!(c.len(), 42);
        // Re-assigning points to the centroids mostly reproduces labels.
        let re = assign(&points, &c);
        let agree = re.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 / labels.len() as f64 > 0.7,
            "centroid assignment agreement {agree}/300"
        );
    }
}

//! The AICCA model: encoder + 42 cluster centroids.
//!
//! Stage 4 of the workflow loads "the trained autoencoder and centroids"
//! and predicts a cloud label for every tile of unseen data. This module is
//! that artifact: [`AiccaModel::fit`] builds it from an encoder and a tile
//! sample (the paper's "RICC training" + "label assignment" stages), and
//! [`AiccaModel::predict`] is the inference kernel.
//!
//! Because the paper's 1 M-tile GPU training run is out of scope for a CPU
//! reproduction, [`AiccaModel::pretrained`] provides a deterministic stand-
//! in: an untrained (random-projection) encoder whose distance structure is
//! still informative (Johnson–Lindenstrauss), with centroids fitted on a
//! procedurally generated sample of cloud-like textures. The pipeline code
//! paths — encode, nearest centroid, append label — are identical either
//! way.

use crate::autoencoder::{AeConfig, ConvAutoencoder};
use crate::cluster::{agglomerate, assign, centroids};
use crate::tensor::Tensor;
use crate::AICCA_CLASSES;
use eoml_util::noise::Fbm;
use rayon::prelude::*;

/// Encoder + centroids.
#[derive(Debug, Clone)]
pub struct AiccaModel {
    /// The (possibly trained) autoencoder whose encoder defines the latent
    /// space.
    pub encoder: ConvAutoencoder,
    /// One centroid per cloud class.
    pub centroids: Vec<Vec<f32>>,
}

impl AiccaModel {
    /// Number of classes (42 for AICCA).
    pub fn num_classes(&self) -> usize {
        self.centroids.len()
    }

    /// Fit centroids by encoding `sample` tiles, agglomerating to `k`
    /// clusters (Ward) and taking cluster means.
    pub fn fit(encoder: ConvAutoencoder, sample: &[Tensor], k: usize) -> Self {
        assert!(
            sample.len() >= k,
            "need at least k={k} sample tiles, got {}",
            sample.len()
        );
        let latents: Vec<Vec<f32>> = sample.par_iter().map(|t| encoder.encode(t)).collect();
        let dendro = agglomerate(&latents);
        let labels = dendro.cut(k);
        let cents = centroids(&latents, &labels, k);
        Self {
            encoder,
            centroids: cents,
        }
    }

    /// Deterministic stand-in for the published trained model: random
    /// encoder + centroids fitted on `4 × AICCA_CLASSES` synthetic texture
    /// tiles spanning a range of cloud morphologies.
    pub fn pretrained(cfg: AeConfig, seed: u64) -> Self {
        let encoder = ConvAutoencoder::new(cfg, seed);
        let sample = synthetic_texture_sample(cfg, 4 * AICCA_CLASSES, seed ^ 0x7117E5);
        Self::fit(encoder, &sample, AICCA_CLASSES)
    }

    /// Predict the class of one tile.
    pub fn predict(&self, tile: &Tensor) -> usize {
        let z = self.encoder.encode(tile);
        nearest(&z, &self.centroids)
    }

    /// Predict a batch (rayon-parallel).
    pub fn predict_batch(&self, tiles: &[Tensor]) -> Vec<usize> {
        tiles.par_iter().map(|t| self.predict(t)).collect()
    }

    /// Latent representation of one tile.
    pub fn embed(&self, tile: &Tensor) -> Vec<f32> {
        self.encoder.encode(tile)
    }
}

fn nearest(z: &[f32], cents: &[Vec<f32>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in cents.iter().enumerate() {
        let d: f64 = z
            .iter()
            .zip(c)
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Assign labels to already-encoded latents.
pub fn predict_latents(latents: &[Vec<f32>], cents: &[Vec<f32>]) -> Vec<usize> {
    assign(latents, cents)
}

/// Generate `n` cloud-texture-like tiles of the model's input shape,
/// spanning a spread of spatial frequencies, anisotropies and ridge
/// morphologies (the stand-in for the paper's training sample).
pub fn synthetic_texture_sample(cfg: AeConfig, n: usize, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            let octaves = 2 + (i % 5) as u32;
            let gain = 0.35 + 0.12 * ((i / 5) % 5) as f64;
            let f = Fbm::with_params(seed.wrapping_add(i as u64 * 7919), octaves, 2.0, gain);
            let scale = 0.06 + 0.05 * ((i / 25) % 4) as f64;
            let ridged = i % 3 == 0;
            let mut t = Tensor::zeros(cfg.in_ch, cfg.input, cfg.input);
            for c in 0..cfg.in_ch {
                let off = c as f64 * 31.7;
                for y in 0..cfg.input {
                    for x in 0..cfg.input {
                        let (fx, fy) = (x as f64 * scale + off, y as f64 * scale - off);
                        let v = if ridged {
                            f.ridged(fx, fy)
                        } else {
                            f.sample(fx, fy)
                        };
                        *t.at_mut(c, y, x) = (v as f32 - 0.5) * 2.0;
                    }
                }
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> AiccaModel {
        AiccaModel::pretrained(AeConfig::tiny(), 2022)
    }

    #[test]
    fn pretrained_has_42_classes() {
        let m = tiny_model();
        assert_eq!(m.num_classes(), 42);
        assert_eq!(m.centroids.len(), 42);
        for c in &m.centroids {
            assert_eq!(c.len(), AeConfig::tiny().latent);
        }
    }

    #[test]
    fn predictions_are_valid_and_deterministic() {
        let m = tiny_model();
        let tiles = synthetic_texture_sample(AeConfig::tiny(), 20, 5);
        let labels = m.predict_batch(&tiles);
        assert_eq!(labels.len(), 20);
        for &l in &labels {
            assert!(l < 42);
        }
        assert_eq!(labels, m.predict_batch(&tiles));
        // Same construction gives the same model.
        let m2 = tiny_model();
        assert_eq!(labels, m2.predict_batch(&tiles));
    }

    #[test]
    fn predictions_use_many_classes() {
        let m = tiny_model();
        let tiles = synthetic_texture_sample(AeConfig::tiny(), 100, 77);
        let labels = m.predict_batch(&tiles);
        let mut uniq = labels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(
            uniq.len() >= 8,
            "a texture spread should hit many classes, got {}",
            uniq.len()
        );
    }

    #[test]
    fn similar_tiles_get_same_class_more_often_than_different() {
        let m = tiny_model();
        let tiles = synthetic_texture_sample(AeConfig::tiny(), 30, 9);
        // A tile and a slightly perturbed copy should agree far more often
        // than two unrelated tiles.
        let mut same = 0;
        for t in &tiles {
            let mut p = t.clone();
            for v in &mut p.data {
                *v += 0.01;
            }
            if m.predict(t) == m.predict(&p) {
                same += 1;
            }
        }
        assert!(
            same >= 28,
            "perturbation flipped {} of 30 labels",
            30 - same
        );
    }

    #[test]
    fn fit_requires_enough_samples() {
        let enc = ConvAutoencoder::new(AeConfig::tiny(), 1);
        let tiles = synthetic_texture_sample(AeConfig::tiny(), 5, 1);
        let result = std::panic::catch_unwind(|| AiccaModel::fit(enc, &tiles, 42));
        assert!(result.is_err());
    }

    #[test]
    fn fit_with_small_k() {
        let enc = ConvAutoencoder::new(AeConfig::tiny(), 3);
        let tiles = synthetic_texture_sample(AeConfig::tiny(), 12, 3);
        let m = AiccaModel::fit(enc, &tiles, 4);
        assert_eq!(m.num_classes(), 4);
        let labels = m.predict_batch(&tiles);
        let mut uniq = labels;
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() >= 2);
    }

    #[test]
    fn predict_latents_matches_predict() {
        let m = tiny_model();
        let tiles = synthetic_texture_sample(AeConfig::tiny(), 10, 4);
        let latents: Vec<Vec<f32>> = tiles.iter().map(|t| m.embed(t)).collect();
        let a = predict_latents(&latents, &m.centroids);
        let b = m.predict_batch(&tiles);
        assert_eq!(a, b);
    }
}

//! `eoml-ricc` — Rotationally Invariant Cloud Clustering, in pure Rust.
//!
//! The paper's stage 4 runs a TensorFlow implementation of RICC
//! (Kurihana et al., TGRS 2021): a convolutional autoencoder trained with a
//! rotation-invariant loss, whose latent space is clustered by agglomerative
//! hierarchical clustering into the 42 AICCA cloud classes; inference
//! assigns each ocean-cloud tile to the nearest cluster centroid. TensorFlow
//! is not available here, so this crate implements the whole stack:
//!
//! * [`tensor`] — CHW tensors with the forward *and backward* ops the model
//!   needs (strided conv2d, transposed conv2d, dense, leaky-ReLU),
//!   gradient-checked against finite differences;
//! * [`rotation`] — 90°-rotation ops and the rotation-invariant loss
//!   (restoration error minimized over the four rotations, plus a latent
//!   invariance term);
//! * [`autoencoder`] — the convolutional autoencoder with Adam training;
//! * [`cluster`] — Ward-linkage agglomerative hierarchical clustering
//!   (O(n²) memory, nearest-neighbor-chain merging) and centroid extraction;
//! * [`aicca`] — the end model: encoder + 42 centroids, `fit` from a tile
//!   sample, `predict` for inference, and a deterministic `pretrained`
//!   construction for pipeline runs where training would be beside the
//!   point;
//! * [`metrics`] — the cluster-evaluation protocol (silhouette,
//!   intra/inter separation, adjusted Rand index across seeds, rotation
//!   invariance score).
//!
//! Scale substitution: the paper trains on 1 M tiles across GPU nodes; the
//! tests and examples here train reduced architectures on hundreds of tiles
//! — the algorithms are the same, the scale is not (documented in
//! DESIGN.md).

pub mod aicca;
pub mod autoencoder;
pub mod cluster;
pub mod continual;
pub mod metrics;
pub mod rotation;
pub mod serialize;
pub mod tensor;

pub use aicca::AiccaModel;
pub use autoencoder::{AeConfig, ConvAutoencoder};
pub use cluster::{agglomerate, centroids, Dendrogram};
pub use continual::{ContinualTrainer, WaveReport};
pub use rotation::{rot90, rotation_invariant_loss};
pub use serialize::{load_model, save_model, ModelIoError};
pub use tensor::Tensor;

/// Number of AICCA cloud classes.
pub const AICCA_CLASSES: usize = 42;

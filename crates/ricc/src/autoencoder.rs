//! The rotationally invariant convolutional autoencoder.
//!
//! Architecture (size-agnostic; the paper's full model is larger but
//! structurally identical):
//!
//! ```text
//! encoder: conv(k3 s2) → lrelu → conv(k3 s2) → lrelu → flatten → dense → z
//! decoder: dense → lrelu → reshape → tconv(k4 s2) → lrelu → tconv(k4 s2)
//! ```
//!
//! Down-sampling convs use k=3/s=2/p=1 (halves even sizes); up-sampling
//! transposed convs use k=4/s=2/p=1 (exactly doubles), so input sizes that
//! are multiples of 4 reconstruct at full size.
//!
//! Training minimizes the rotation-invariant loss of [`crate::rotation`]
//! with Adam; batches are processed sample-parallel with rayon and
//! gradients reduced before each optimizer step.

use crate::rotation::{min_rotation_mse, rot90};
use crate::tensor::{
    conv2d_bwd, conv2d_fwd, dense_bwd, dense_fwd, leaky_relu_bwd, leaky_relu_fwd, tconv2d_bwd,
    tconv2d_fwd, Adam, ConvSpec, Tensor,
};
use eoml_util::rng::{Rng64, Xoshiro256};
use rayon::prelude::*;

/// Autoencoder hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AeConfig {
    /// Input channels (6 for AICCA tiles).
    pub in_ch: usize,
    /// Channels after the first conv.
    pub c1: usize,
    /// Channels after the second conv.
    pub c2: usize,
    /// Latent dimension.
    pub latent: usize,
    /// Square input edge (must be a multiple of 4).
    pub input: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight of the latent-invariance term.
    pub lambda: f32,
}

impl AeConfig {
    /// A tiny configuration for tests (2-channel 16×16 tiles).
    pub fn tiny() -> Self {
        Self {
            in_ch: 2,
            c1: 4,
            c2: 8,
            latent: 8,
            input: 16,
            lr: 2e-3,
            lambda: 0.1,
        }
    }

    /// Configuration for AICCA tiles (6-channel 128×128); sized to stay
    /// trainable on CPU at reduced sample counts.
    pub fn aicca() -> Self {
        Self {
            in_ch: 6,
            c1: 8,
            c2: 16,
            latent: 32,
            input: 128,
            lr: 1e-3,
            lambda: 0.1,
        }
    }
}

const DOWN: ConvSpec = ConvSpec {
    k: 3,
    stride: 2,
    pad: 1,
};
const UP: ConvSpec = ConvSpec {
    k: 4,
    stride: 2,
    pad: 1,
};

/// Parameter gradients, in the same layout as [`ConvAutoencoder`]'s
/// parameters.
#[derive(Debug, Clone)]
struct Grads {
    w1: Vec<f32>,
    b1: Vec<f32>,
    w2: Vec<f32>,
    b2: Vec<f32>,
    we: Vec<f32>,
    be: Vec<f32>,
    wd: Vec<f32>,
    bd: Vec<f32>,
    wu1: Vec<f32>,
    bu1: Vec<f32>,
    wu2: Vec<f32>,
    bu2: Vec<f32>,
}

impl Grads {
    fn zeros_like(m: &ConvAutoencoder) -> Self {
        Self {
            w1: vec![0.0; m.w1.len()],
            b1: vec![0.0; m.b1.len()],
            w2: vec![0.0; m.w2.len()],
            b2: vec![0.0; m.b2.len()],
            we: vec![0.0; m.we.len()],
            be: vec![0.0; m.be.len()],
            wd: vec![0.0; m.wd.len()],
            bd: vec![0.0; m.bd.len()],
            wu1: vec![0.0; m.wu1.len()],
            bu1: vec![0.0; m.bu1.len()],
            wu2: vec![0.0; m.wu2.len()],
            bu2: vec![0.0; m.bu2.len()],
        }
    }

    fn add(&mut self, other: &Grads) {
        fn axpy(a: &mut [f32], b: &[f32]) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        axpy(&mut self.w1, &other.w1);
        axpy(&mut self.b1, &other.b1);
        axpy(&mut self.w2, &other.w2);
        axpy(&mut self.b2, &other.b2);
        axpy(&mut self.we, &other.we);
        axpy(&mut self.be, &other.be);
        axpy(&mut self.wd, &other.wd);
        axpy(&mut self.bd, &other.bd);
        axpy(&mut self.wu1, &other.wu1);
        axpy(&mut self.bu1, &other.bu1);
        axpy(&mut self.wu2, &other.wu2);
        axpy(&mut self.bu2, &other.bu2);
    }

    fn scale(&mut self, s: f32) {
        for buf in [
            &mut self.w1,
            &mut self.b1,
            &mut self.w2,
            &mut self.b2,
            &mut self.we,
            &mut self.be,
            &mut self.wd,
            &mut self.bd,
            &mut self.wu1,
            &mut self.bu1,
            &mut self.wu2,
            &mut self.bu2,
        ] {
            for v in buf.iter_mut() {
                *v *= s;
            }
        }
    }
}

/// The model: all parameter buffers plus per-buffer Adam state.
#[derive(Debug, Clone)]
pub struct ConvAutoencoder {
    /// Hyperparameters.
    pub cfg: AeConfig,
    // encoder
    w1: Vec<f32>,
    b1: Vec<f32>,
    w2: Vec<f32>,
    b2: Vec<f32>,
    we: Vec<f32>,
    be: Vec<f32>,
    // decoder
    wd: Vec<f32>,
    bd: Vec<f32>,
    wu1: Vec<f32>,
    bu1: Vec<f32>,
    wu2: Vec<f32>,
    bu2: Vec<f32>,
    opt: Vec<Adam>,
}

struct Cache {
    x: Tensor,
    a1: Tensor,
    h1: Tensor,
    a2: Tensor,
    h2: Tensor,
    z: Vec<f32>,
    d_pre: Vec<f32>,
    d_act: Vec<f32>,
    d1: Tensor,
    u1: Tensor,
    hu1: Tensor,
    recon: Tensor,
}

impl ConvAutoencoder {
    /// Initialize with He-style random weights from `seed`.
    pub fn new(cfg: AeConfig, seed: u64) -> Self {
        assert!(
            cfg.input.is_multiple_of(4),
            "input size must be a multiple of 4"
        );
        let mut rng = Xoshiro256::seed_from(seed ^ 0xAE0C0DE);
        let mut init = |n: usize, fan_in: usize| -> Vec<f32> {
            let std = (2.0 / fan_in as f64).sqrt();
            (0..n).map(|_| rng.normal(0.0, std) as f32).collect()
        };
        let q = cfg.input / 4;
        let flat = cfg.c2 * q * q;
        let w1 = init(cfg.c1 * cfg.in_ch * 9, cfg.in_ch * 9);
        let w2 = init(cfg.c2 * cfg.c1 * 9, cfg.c1 * 9);
        let we = init(cfg.latent * flat, flat);
        let wd = init(flat * cfg.latent, cfg.latent);
        let wu1 = init(cfg.c2 * cfg.c1 * 16, cfg.c2 * 16);
        let wu2 = init(cfg.c1 * cfg.in_ch * 16, cfg.c1 * 16);
        let sizes = [
            w1.len(),
            cfg.c1,
            w2.len(),
            cfg.c2,
            we.len(),
            cfg.latent,
            wd.len(),
            flat,
            wu1.len(),
            cfg.c1,
            wu2.len(),
            cfg.in_ch,
        ];
        Self {
            cfg,
            w1,
            b1: vec![0.0; cfg.c1],
            w2,
            b2: vec![0.0; cfg.c2],
            we,
            be: vec![0.0; cfg.latent],
            wd,
            bd: vec![0.0; flat],
            wu1,
            bu1: vec![0.0; cfg.c1],
            wu2,
            bu2: vec![0.0; cfg.in_ch],
            opt: sizes.iter().map(|&n| Adam::new(n, cfg.lr)).collect(),
        }
    }

    /// All parameter buffers in a fixed serialization order
    /// (w1, b1, w2, b2, we, be, wd, bd, wu1, bu1, wu2, bu2).
    pub fn param_buffers(&self) -> [&[f32]; 12] {
        [
            &self.w1, &self.b1, &self.w2, &self.b2, &self.we, &self.be, &self.wd, &self.bd,
            &self.wu1, &self.bu1, &self.wu2, &self.bu2,
        ]
    }

    /// Overwrite all parameter buffers (same order and lengths as
    /// [`param_buffers`](Self::param_buffers); panics on mismatch).
    /// Optimizer state is reset.
    pub fn set_param_buffers(&mut self, bufs: &[Vec<f32>]) {
        assert_eq!(bufs.len(), 12, "expected 12 parameter buffers");
        let lr = self.cfg.lr;
        let mut sizes = Vec::with_capacity(12);
        for (dst, src) in [
            (&mut self.w1, &bufs[0]),
            (&mut self.b1, &bufs[1]),
            (&mut self.w2, &bufs[2]),
            (&mut self.b2, &bufs[3]),
            (&mut self.we, &bufs[4]),
            (&mut self.be, &bufs[5]),
            (&mut self.wd, &bufs[6]),
            (&mut self.bd, &bufs[7]),
            (&mut self.wu1, &bufs[8]),
            (&mut self.bu1, &bufs[9]),
            (&mut self.wu2, &bufs[10]),
            (&mut self.bu2, &bufs[11]),
        ] {
            assert_eq!(dst.len(), src.len(), "parameter buffer length mismatch");
            dst.copy_from_slice(src);
            sizes.push(dst.len());
        }
        self.opt = sizes.into_iter().map(|n| Adam::new(n, lr)).collect();
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.w1.len()
            + self.b1.len()
            + self.w2.len()
            + self.b2.len()
            + self.we.len()
            + self.be.len()
            + self.wd.len()
            + self.bd.len()
            + self.wu1.len()
            + self.bu1.len()
            + self.wu2.len()
            + self.bu2.len()
    }

    /// Encode a tile to its latent vector.
    pub fn encode(&self, x: &Tensor) -> Vec<f32> {
        let a1 = conv2d_fwd(x, &self.w1, &self.b1, self.cfg.c1, DOWN);
        let h1 = leaky_relu_fwd(&a1);
        let a2 = conv2d_fwd(&h1, &self.w2, &self.b2, self.cfg.c2, DOWN);
        let h2 = leaky_relu_fwd(&a2);
        dense_fwd(&h2.data, &self.we, &self.be)
    }

    /// Decode a latent vector back to a tile.
    pub fn decode(&self, z: &[f32]) -> Tensor {
        let q = self.cfg.input / 4;
        let d_pre = dense_fwd(z, &self.wd, &self.bd);
        let d_act: Vec<f32> = d_pre
            .iter()
            .map(|&v| if v < 0.0 { v * 0.1 } else { v })
            .collect();
        let d1 = Tensor::from_data(self.cfg.c2, q, q, d_act);
        let u1 = tconv2d_fwd(&d1, &self.wu1, &self.bu1, self.cfg.c1, UP);
        let hu1 = leaky_relu_fwd(&u1);
        tconv2d_fwd(&hu1, &self.wu2, &self.bu2, self.cfg.in_ch, UP)
    }

    /// Full reconstruction.
    pub fn reconstruct(&self, x: &Tensor) -> Tensor {
        self.decode(&self.encode(x))
    }

    fn forward(&self, x: &Tensor) -> Cache {
        let q = self.cfg.input / 4;
        let a1 = conv2d_fwd(x, &self.w1, &self.b1, self.cfg.c1, DOWN);
        let h1 = leaky_relu_fwd(&a1);
        let a2 = conv2d_fwd(&h1, &self.w2, &self.b2, self.cfg.c2, DOWN);
        let h2 = leaky_relu_fwd(&a2);
        let z = dense_fwd(&h2.data, &self.we, &self.be);
        let d_pre = dense_fwd(&z, &self.wd, &self.bd);
        let d_act: Vec<f32> = d_pre
            .iter()
            .map(|&v| if v < 0.0 { v * 0.1 } else { v })
            .collect();
        let d1 = Tensor::from_data(self.cfg.c2, q, q, d_act.clone());
        let u1 = tconv2d_fwd(&d1, &self.wu1, &self.bu1, self.cfg.c1, UP);
        let hu1 = leaky_relu_fwd(&u1);
        let recon = tconv2d_fwd(&hu1, &self.wu2, &self.bu2, self.cfg.in_ch, UP);
        Cache {
            x: x.clone(),
            a1,
            h1,
            a2,
            h2,
            z,
            d_pre,
            d_act,
            d1,
            u1,
            hu1,
            recon,
        }
    }

    /// Per-sample loss and gradients.
    fn backward(&self, cache: &Cache) -> (f32, Grads) {
        let mut g = Grads::zeros_like(self);
        // Restoration term: MSE against the best rotation.
        let (restore, best_r) = min_rotation_mse(&cache.recon, &cache.x);
        let target = rot90(&cache.x, best_r);
        let n = cache.recon.len() as f32;
        let drecon = Tensor::from_data(
            cache.recon.c,
            cache.recon.h,
            cache.recon.w,
            cache
                .recon
                .data
                .iter()
                .zip(&target.data)
                .map(|(r, t)| 2.0 * (r - t) / n)
                .collect(),
        );
        // Invariance term: latents of rotations as stop-gradient targets.
        let z_rots: Vec<Vec<f32>> = (1..4).map(|r| self.encode(&rot90(&cache.x, r))).collect();
        let zl = cache.z.len() as f32;
        let mut inv = 0.0f32;
        let mut dz_inv = vec![0.0f32; cache.z.len()];
        for zr in &z_rots {
            for i in 0..cache.z.len() {
                let d = cache.z[i] - zr[i];
                inv += d * d / zl;
                dz_inv[i] += self.cfg.lambda * 2.0 * d / (zl * z_rots.len() as f32);
            }
        }
        inv /= z_rots.len() as f32;
        let loss = restore + self.cfg.lambda * inv;

        // Decoder backward.
        let (dhu1, dwu2, dbu2) = tconv2d_bwd(&cache.hu1, &self.wu2, &drecon, self.cfg.in_ch, UP);
        g.wu2 = dwu2;
        g.bu2 = dbu2;
        let du1 = leaky_relu_bwd(&cache.u1, &dhu1);
        let (dd1, dwu1, dbu1) = tconv2d_bwd(&cache.d1, &self.wu1, &du1, self.cfg.c1, UP);
        g.wu1 = dwu1;
        g.bu1 = dbu1;
        // Through the decoder dense + its leaky relu.
        let dd_act = dd1.data;
        let dd_pre: Vec<f32> = dd_act
            .iter()
            .zip(&cache.d_pre)
            .map(|(&d, &p)| if p < 0.0 { d * 0.1 } else { d })
            .collect();
        let (dz_dec, dwd, dbd) = dense_bwd(&cache.z, &self.wd, &dd_pre);
        g.wd = dwd;
        g.bd = dbd;

        // Encoder backward: total latent gradient.
        let dz: Vec<f32> = dz_dec.iter().zip(&dz_inv).map(|(a, b)| a + b).collect();
        let (dh2_flat, dwe, dbe) = dense_bwd(&cache.h2.data, &self.we, &dz);
        g.we = dwe;
        g.be = dbe;
        let dh2 = Tensor::from_data(cache.h2.c, cache.h2.h, cache.h2.w, dh2_flat);
        let da2 = leaky_relu_bwd(&cache.a2, &dh2);
        let (dh1, dw2, db2) = conv2d_bwd(&cache.h1, &self.w2, &da2, self.cfg.c2, DOWN);
        g.w2 = dw2;
        g.b2 = db2;
        let da1 = leaky_relu_bwd(&cache.a1, &dh1);
        let (_dx, dw1, db1) = conv2d_bwd(&cache.x, &self.w1, &da1, self.cfg.c1, DOWN);
        g.w1 = dw1;
        g.b1 = db1;
        // Unused but documents the full chain.
        let _ = cache.d_act.len();
        (loss, g)
    }

    /// One Adam step over a batch; returns the mean loss.
    pub fn train_batch(&mut self, batch: &[Tensor]) -> f32 {
        assert!(!batch.is_empty());
        let results: Vec<(f32, Grads)> = batch
            .par_iter()
            .map(|x| {
                let cache = self.forward(x);
                self.backward(&cache)
            })
            .collect();
        let mut total = Grads::zeros_like(self);
        let mut loss = 0.0f32;
        for (l, g) in &results {
            loss += l;
            total.add(g);
        }
        total.scale(1.0 / batch.len() as f32);
        loss /= batch.len() as f32;
        // Apply per-buffer Adam steps.
        self.opt[0].step(&mut self.w1, &total.w1);
        self.opt[1].step(&mut self.b1, &total.b1);
        self.opt[2].step(&mut self.w2, &total.w2);
        self.opt[3].step(&mut self.b2, &total.b2);
        self.opt[4].step(&mut self.we, &total.we);
        self.opt[5].step(&mut self.be, &total.be);
        self.opt[6].step(&mut self.wd, &total.wd);
        self.opt[7].step(&mut self.bd, &total.bd);
        self.opt[8].step(&mut self.wu1, &total.wu1);
        self.opt[9].step(&mut self.bu1, &total.bu1);
        self.opt[10].step(&mut self.wu2, &total.wu2);
        self.opt[11].step(&mut self.bu2, &total.bu2);
        loss
    }

    /// Evaluate the mean rotation-invariant loss without training.
    pub fn eval_loss(&self, batch: &[Tensor]) -> f32 {
        batch
            .par_iter()
            .map(|x| {
                let cache = self.forward(x);
                self.backward(&cache).0
            })
            .sum::<f32>()
            / batch.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_util::noise::Fbm;

    /// Synthetic "cloud texture" tiles for training tests.
    fn toy_tiles(n: usize, size: usize, ch: usize, seed: u64) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                let f = Fbm::new(seed + i as u64, 4);
                let mut t = Tensor::zeros(ch, size, size);
                for c in 0..ch {
                    for y in 0..size {
                        for x in 0..size {
                            let v = f.sample(
                                x as f64 * 0.3 + c as f64 * 17.0,
                                y as f64 * 0.3 + i as f64 * 3.0,
                            );
                            *t.at_mut(c, y, x) = (v as f32 - 0.5) * 2.0;
                        }
                    }
                }
                t
            })
            .collect()
    }

    #[test]
    fn shapes_are_consistent() {
        let m = ConvAutoencoder::new(AeConfig::tiny(), 1);
        let x = Tensor::zeros(2, 16, 16);
        let z = m.encode(&x);
        assert_eq!(z.len(), 8);
        let recon = m.decode(&z);
        assert_eq!((recon.c, recon.h, recon.w), (2, 16, 16));
        assert!(m.param_count() > 1000);
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = ConvAutoencoder::new(AeConfig::tiny(), 7);
        let tiles = toy_tiles(16, 16, 2, 100);
        let initial = m.eval_loss(&tiles);
        let mut last = initial;
        for _ in 0..150 {
            last = m.train_batch(&tiles);
        }
        assert!(
            last < initial * 0.7,
            "loss should drop ≥30 %: {initial} → {last}"
        );
    }

    #[test]
    fn training_improves_rotation_invariance() {
        use crate::rotation::rot90;
        let mut m = ConvAutoencoder::new(AeConfig::tiny(), 9);
        let tiles = toy_tiles(12, 16, 2, 200);
        let inv_score = |m: &ConvAutoencoder| -> f32 {
            tiles
                .iter()
                .map(|t| {
                    let z = m.encode(t);
                    let zr = m.encode(&rot90(t, 1));
                    z.iter()
                        .zip(&zr)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f32>()
                        / z.iter().map(|a| a * a).sum::<f32>().max(1e-9)
                })
                .sum::<f32>()
                / tiles.len() as f32
        };
        let before = inv_score(&m);
        for _ in 0..60 {
            m.train_batch(&tiles);
        }
        let after = inv_score(&m);
        assert!(
            after < before,
            "relative latent rotation distance should shrink: {before} → {after}"
        );
    }

    #[test]
    fn encode_is_deterministic() {
        let m = ConvAutoencoder::new(AeConfig::tiny(), 5);
        let x = toy_tiles(1, 16, 2, 3).pop().unwrap();
        assert_eq!(m.encode(&x), m.encode(&x));
        let m2 = ConvAutoencoder::new(AeConfig::tiny(), 5);
        assert_eq!(m.encode(&x), m2.encode(&x), "same seed, same weights");
        let m3 = ConvAutoencoder::new(AeConfig::tiny(), 6);
        assert_ne!(
            m.encode(&x),
            m3.encode(&x),
            "different seed, different weights"
        );
    }

    #[test]
    fn different_textures_get_different_latents() {
        let m = ConvAutoencoder::new(AeConfig::tiny(), 11);
        let tiles = toy_tiles(8, 16, 2, 400);
        let latents: Vec<Vec<f32>> = tiles.iter().map(|t| m.encode(t)).collect();
        for i in 0..latents.len() {
            for j in i + 1..latents.len() {
                let d: f32 = latents[i]
                    .iter()
                    .zip(&latents[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                assert!(d > 1e-9, "tiles {i} and {j} collapsed");
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_input_size_panics() {
        let cfg = AeConfig {
            input: 18,
            ..AeConfig::tiny()
        };
        ConvAutoencoder::new(cfg, 1);
    }
}

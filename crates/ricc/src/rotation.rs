//! 90°-rotation ops and the rotation-invariant loss.
//!
//! RICC's training objective makes the learned representation invariant to
//! tile orientation: a cloud deck rotated 90° is the same cloud deck. Two
//! terms implement this (following Kurihana et al. 2021, simplified):
//!
//! * **restoration** — the decoder output is compared against the *best*
//!   of the four rotations of the input (min over rotations), so the model
//!   is not penalized for reconstructing in a canonical orientation;
//! * **invariance** — the encoder's latent for `x` is pulled toward the
//!   latents of the rotated copies (treated as stop-gradient targets, a
//!   standard simplification).

use crate::tensor::Tensor;

/// Rotate a CHW tensor 90° counter-clockwise `times` times (square tensors
/// only).
pub fn rot90(x: &Tensor, times: usize) -> Tensor {
    assert_eq!(x.h, x.w, "rot90 requires square tiles");
    let times = times % 4;
    if times == 0 {
        return x.clone();
    }
    let n = x.h;
    let mut y = Tensor::zeros(x.c, n, n);
    for c in 0..x.c {
        for yy in 0..n {
            for xx in 0..n {
                let (sy, sx) = match times {
                    1 => (xx, n - 1 - yy),
                    2 => (n - 1 - yy, n - 1 - xx),
                    3 => (n - 1 - xx, yy),
                    _ => unreachable!(),
                };
                *y.at_mut(c, yy, xx) = x.at(c, sy, sx);
            }
        }
    }
    y
}

/// The rotation-minimum restoration loss: `min_r MSE(recon, rot_r(x))`.
/// Returns `(loss, argmin rotation)`.
pub fn min_rotation_mse(recon: &Tensor, x: &Tensor) -> (f32, usize) {
    let mut best = f32::INFINITY;
    let mut best_r = 0;
    for r in 0..4 {
        let target = rot90(x, r);
        let mse = recon.mse(&target);
        if mse < best {
            best = mse;
            best_r = r;
        }
    }
    (best, best_r)
}

/// Full rotation-invariant loss given the reconstruction, the input, the
/// latent of `x` and the latents of its rotations:
/// `min_r MSE(recon, rot_r(x)) + λ · mean_r ||z − z_r||²`.
pub fn rotation_invariant_loss(
    recon: &Tensor,
    x: &Tensor,
    z: &[f32],
    z_rots: &[Vec<f32>],
    lambda: f32,
) -> (f32, usize) {
    let (restore, best_r) = min_rotation_mse(recon, x);
    let mut inv = 0.0f32;
    for zr in z_rots {
        assert_eq!(zr.len(), z.len());
        inv += z
            .iter()
            .zip(zr)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / z.len() as f32;
    }
    if !z_rots.is_empty() {
        inv /= z_rots.len() as f32;
    }
    (restore + lambda * inv, best_r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_data(
            1,
            2,
            2,
            vec![
                1.0, 2.0, //
                3.0, 4.0,
            ],
        )
    }

    #[test]
    fn rot90_single() {
        let x = sample();
        let r = rot90(&x, 1);
        // CCW: top row becomes right column.
        assert_eq!(r.data, vec![2.0, 4.0, 1.0, 3.0]);
    }

    #[test]
    fn rot90_four_times_is_identity() {
        let x = sample();
        assert_eq!(rot90(&x, 4), x);
        assert_eq!(rot90(&rot90(&rot90(&rot90(&x, 1), 1), 1), 1), x);
    }

    #[test]
    fn rot90_composition() {
        let x = sample();
        assert_eq!(rot90(&rot90(&x, 1), 1), rot90(&x, 2));
        assert_eq!(rot90(&rot90(&x, 2), 1), rot90(&x, 3));
    }

    #[test]
    fn rot90_preserves_values() {
        let x = Tensor::from_data(2, 3, 3, (0..18).map(|i| i as f32).collect());
        for r in 0..4 {
            let mut a = rot90(&x, r).data;
            let mut b = x.data.clone();
            a.sort_by(f32::total_cmp);
            b.sort_by(f32::total_cmp);
            assert_eq!(a, b, "rotation {r} must permute values");
        }
    }

    #[test]
    fn min_rotation_mse_finds_best_orientation() {
        let x = sample();
        // Pretend the reconstruction is exactly the 270° rotation.
        let recon = rot90(&x, 3);
        let (loss, r) = min_rotation_mse(&recon, &x);
        assert!(loss < 1e-12);
        assert_eq!(r, 3);
        // A reconstruction equal to x itself picks rotation 0.
        let (loss0, r0) = min_rotation_mse(&x, &x);
        assert!(loss0 < 1e-12);
        assert_eq!(r0, 0);
    }

    #[test]
    fn invariance_term_penalizes_unstable_latents() {
        let x = sample();
        let recon = x.clone();
        let z = vec![1.0, 0.0];
        let stable = vec![vec![1.0, 0.0]; 3];
        let unstable = vec![vec![0.0, 1.0]; 3];
        let (l_stable, _) = rotation_invariant_loss(&recon, &x, &z, &stable, 0.5);
        let (l_unstable, _) = rotation_invariant_loss(&recon, &x, &z, &unstable, 0.5);
        assert!(l_stable < 1e-12);
        assert!((l_unstable - 0.5).abs() < 1e-6, "{l_unstable}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rotation_panics() {
        rot90(&Tensor::zeros(1, 2, 3), 1);
    }
}

//! Continual learning — the paper's §V extension: "AI applications are
//! continually trained periodically on new data without catastrophically
//! forgetting what had been learned previously".
//!
//! The mechanism here is *rehearsal*: a bounded reservoir of previously
//! seen tiles is mixed into every new training batch, so the encoder keeps
//! seeing old cloud morphologies while adapting to new ones. Reservoir
//! sampling keeps the buffer an unbiased sample of everything seen, in
//! O(capacity) memory — the property that matters when "everything seen"
//! is a decades-long satellite record.

use crate::autoencoder::ConvAutoencoder;
use crate::tensor::Tensor;
use eoml_util::rng::{Rng64, Xoshiro256};

/// Result of learning one wave of new data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveReport {
    /// Mean loss on the wave before training.
    pub loss_before: f32,
    /// Mean loss on the wave after training.
    pub loss_after: f32,
    /// Tiles rehearsed per epoch alongside the wave.
    pub rehearsed: usize,
}

/// A model plus a rehearsal buffer.
#[derive(Debug, Clone)]
pub struct ContinualTrainer {
    /// The model being continually trained.
    pub model: ConvAutoencoder,
    buffer: Vec<Tensor>,
    capacity: usize,
    seen: u64,
    rng: Xoshiro256,
}

impl ContinualTrainer {
    /// Wrap a model with a rehearsal buffer of `capacity` tiles
    /// (`capacity = 0` disables rehearsal — plain sequential fine-tuning,
    /// the baseline that forgets).
    pub fn new(model: ConvAutoencoder, capacity: usize, seed: u64) -> Self {
        Self {
            model,
            buffer: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: Xoshiro256::seed_from(seed ^ 0xC0117),
        }
    }

    /// Current rehearsal-buffer occupancy.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Total tiles ever offered to the buffer.
    pub fn tiles_seen(&self) -> u64 {
        self.seen
    }

    /// Reservoir-sample one tile into the buffer.
    fn offer(&mut self, tile: &Tensor) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buffer.len() < self.capacity {
            self.buffer.push(tile.clone());
        } else {
            // Classic reservoir sampling: replace with probability cap/seen.
            let j = self.rng.next_below(self.seen) as usize;
            if j < self.capacity {
                self.buffer[j] = tile.clone();
            }
        }
    }

    /// Train on a new wave for `epochs` passes, mixing in the whole
    /// rehearsal buffer each epoch, then absorb the wave into the buffer.
    pub fn learn_wave(&mut self, wave: &[Tensor], epochs: usize) -> WaveReport {
        assert!(!wave.is_empty());
        let loss_before = self.model.eval_loss(wave);
        let rehearsed = self.buffer.len();
        for _ in 0..epochs {
            let mut batch: Vec<Tensor> = wave.to_vec();
            batch.extend(self.buffer.iter().cloned());
            self.model.train_batch(&batch);
        }
        let loss_after = self.model.eval_loss(wave);
        for t in wave {
            self.offer(t);
        }
        WaveReport {
            loss_before,
            loss_after,
            rehearsed,
        }
    }

    /// Mean loss on a held-out set (for forgetting measurements).
    pub fn eval(&self, tiles: &[Tensor]) -> f32 {
        self.model.eval_loss(tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::AeConfig;
    use eoml_util::noise::Fbm;

    /// Two visually distinct tile populations: smooth low-frequency decks
    /// vs ridged high-frequency filaments.
    fn wave(kind: u8, n: usize, seed: u64) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                let mut t = Tensor::zeros(2, 16, 16);
                let f = match kind {
                    0 => Fbm::with_params(seed + i as u64, 2, 2.0, 0.4),
                    _ => Fbm::with_params(seed + i as u64, 6, 2.0, 0.9),
                };
                for c in 0..2 {
                    for y in 0..16 {
                        for x in 0..16 {
                            let (fx, fy) = if kind == 0 {
                                (x as f64 * 0.1, y as f64 * 0.1 + c as f64 * 9.0)
                            } else {
                                (x as f64 * 0.8, y as f64 * 0.8 + c as f64 * 9.0)
                            };
                            let v = if kind == 0 {
                                f.sample(fx, fy)
                            } else {
                                f.ridged(fx, fy)
                            };
                            *t.at_mut(c, y, x) = (v as f32 - 0.5) * 2.0;
                        }
                    }
                }
                t
            })
            .collect()
    }

    #[test]
    fn reservoir_respects_capacity_and_samples_everything() {
        let model = ConvAutoencoder::new(AeConfig::tiny(), 1);
        let mut tr = ContinualTrainer::new(model, 8, 3);
        let tiles = wave(0, 40, 500);
        for t in &tiles {
            tr.offer(t);
        }
        assert_eq!(tr.buffer_len(), 8);
        assert_eq!(tr.tiles_seen(), 40);
        // The buffer is not just the first 8 offered (reservoir replaced
        // some) — compare against the first 8 tiles.
        let first8: Vec<&Tensor> = tiles.iter().take(8).collect();
        let identical = tr
            .buffer
            .iter()
            .zip(first8)
            .filter(|(a, b)| a.data == b.data)
            .count();
        assert!(identical < 8, "reservoir never replaced anything");
    }

    #[test]
    fn zero_capacity_keeps_no_buffer() {
        let model = ConvAutoencoder::new(AeConfig::tiny(), 1);
        let mut tr = ContinualTrainer::new(model, 0, 3);
        let report = tr.learn_wave(&wave(0, 6, 1), 2);
        assert_eq!(tr.buffer_len(), 0);
        assert_eq!(report.rehearsed, 0);
    }

    #[test]
    fn learning_a_wave_reduces_its_loss() {
        let model = ConvAutoencoder::new(AeConfig::tiny(), 5);
        let mut tr = ContinualTrainer::new(model, 16, 5);
        let report = tr.learn_wave(&wave(0, 10, 100), 60);
        assert!(
            report.loss_after < report.loss_before,
            "{} → {}",
            report.loss_before,
            report.loss_after
        );
    }

    #[test]
    fn rehearsal_mitigates_forgetting() {
        // Train both trainers on wave A, then fine-tune on a very
        // different wave B; the rehearsal trainer must retain wave A
        // better than the naive one.
        let wave_a = wave(0, 10, 1000);
        let wave_b = wave(1, 10, 2000);
        let base = ConvAutoencoder::new(AeConfig::tiny(), 9);

        let mut naive = ContinualTrainer::new(base.clone(), 0, 7);
        naive.learn_wave(&wave_a, 60);
        let naive_a_before = naive.eval(&wave_a);
        naive.learn_wave(&wave_b, 60);
        let naive_a_after = naive.eval(&wave_a);

        let mut rehearsal = ContinualTrainer::new(base, 10, 7);
        rehearsal.learn_wave(&wave_a, 60);
        rehearsal.learn_wave(&wave_b, 60);
        let rehearsal_a_after = rehearsal.eval(&wave_a);

        assert!(
            naive_a_after > naive_a_before,
            "naive fine-tuning should forget wave A: {naive_a_before} → {naive_a_after}"
        );
        assert!(
            rehearsal_a_after < naive_a_after,
            "rehearsal ({rehearsal_a_after}) should retain wave A better than naive ({naive_a_after})"
        );
    }

    #[test]
    fn wave_reports_track_rehearsal_counts() {
        let model = ConvAutoencoder::new(AeConfig::tiny(), 2);
        let mut tr = ContinualTrainer::new(model, 32, 2);
        let r1 = tr.learn_wave(&wave(0, 6, 10), 1);
        assert_eq!(r1.rehearsed, 0, "nothing to rehearse on the first wave");
        let r2 = tr.learn_wave(&wave(1, 6, 20), 1);
        assert_eq!(r2.rehearsed, 6, "first wave is in the buffer");
        assert_eq!(tr.buffer_len(), 12);
    }
}

//! The cluster-evaluation protocol.
//!
//! The paper's stage 3 ("Cluster evaluation") scores resulting clusters
//! before accepting them; following the RICC/AICCA protocol the relevant
//! criteria are cluster compactness/separation (silhouette, intra/inter
//! ratio), stability across seeds (adjusted Rand index) and rotation
//! invariance of the representation.

use crate::rotation::rot90;
use crate::tensor::Tensor;

fn dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Mean silhouette coefficient over all points (−1 … 1, higher = better
/// separated clusters). O(n²); singleton clusters score 0 per convention.
pub fn silhouette(points: &[Vec<f32>], labels: &[usize]) -> f64 {
    assert_eq!(points.len(), labels.len());
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut total = 0.0;
    for i in 0..n {
        // Mean distance to each cluster.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist(&points[i], &points[j]);
                counts[labels[j]] += 1;
            }
        }
        let own = labels[i];
        if counts[own] == 0 {
            // Singleton cluster.
            continue;
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

/// Ratio of mean intra-cluster distance to mean inter-centroid distance
/// (lower = tighter, better-separated clusters).
pub fn intra_inter_ratio(points: &[Vec<f32>], labels: &[usize], cents: &[Vec<f32>]) -> f64 {
    let mut intra = 0.0;
    let mut n = 0usize;
    for (p, &l) in points.iter().zip(labels) {
        intra += dist(p, &cents[l]);
        n += 1;
    }
    let intra = intra / n.max(1) as f64;
    let mut inter = 0.0;
    let mut pairs = 0usize;
    for i in 0..cents.len() {
        for j in i + 1..cents.len() {
            inter += dist(&cents[i], &cents[j]);
            pairs += 1;
        }
    }
    let inter = inter / pairs.max(1) as f64;
    if inter == 0.0 {
        return f64::INFINITY;
    }
    intra / inter
}

/// Adjusted Rand index between two labelings (1 = identical partitions,
/// ≈0 = random agreement).
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().max().map(|&m| m + 1).unwrap_or(0);
    let kb = b.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut table = vec![0u64; ka * kb];
    let mut row = vec![0u64; ka];
    let mut col = vec![0u64; kb];
    for i in 0..n {
        table[a[i] * kb + b[i]] += 1;
        row[a[i]] += 1;
        col[b[i]] += 1;
    }
    fn c2(x: u64) -> f64 {
        (x as f64) * (x as f64 - 1.0) / 2.0
    }
    let sum_ij: f64 = table.iter().map(|&x| c2(x)).sum();
    let sum_a: f64 = row.iter().map(|&x| c2(x)).sum();
    let sum_b: f64 = col.iter().map(|&x| c2(x)).sum();
    let total = c2(n as u64);
    let expected = sum_a * sum_b / total;
    let max = 0.5 * (sum_a + sum_b);
    if (max - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max - expected)
}

/// Rotation-invariance score of an embedding: mean latent distance between
/// a tile and its 90° rotation, normalized by the mean distance between
/// *different* tiles. 0 = perfectly invariant; ≥1 = rotations look like
/// unrelated tiles.
pub fn rotation_invariance_score(embed: impl Fn(&Tensor) -> Vec<f32>, tiles: &[Tensor]) -> f64 {
    assert!(tiles.len() >= 2);
    let latents: Vec<Vec<f32>> = tiles.iter().map(&embed).collect();
    let mut rot_d = 0.0;
    for (t, z) in tiles.iter().zip(&latents) {
        let zr = embed(&rot90(t, 1));
        rot_d += dist(z, &zr);
    }
    rot_d /= tiles.len() as f64;
    let mut pair_d = 0.0;
    let mut pairs = 0usize;
    for i in 0..latents.len() {
        for j in i + 1..latents.len() {
            pair_d += dist(&latents[i], &latents[j]);
            pairs += 1;
        }
    }
    pair_d /= pairs as f64;
    if pair_d == 0.0 {
        return 0.0;
    }
    rot_d / pair_d
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_util::rng::{Rng64, Xoshiro256};

    fn blobs(per: usize, spread: f64, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..per {
                points.push(vec![
                    (c[0] + rng.normal(0.0, spread)) as f32,
                    (c[1] + rng.normal(0.0, spread)) as f32,
                ]);
                labels.push(ci);
            }
        }
        (points, labels)
    }

    #[test]
    fn silhouette_high_for_separated_low_for_mixed() {
        let (points, labels) = blobs(15, 0.5, 1);
        let good = silhouette(&points, &labels);
        assert!(good > 0.7, "good clustering silhouette {good}");
        // Scramble the labels.
        let mut rng = Xoshiro256::seed_from(2);
        let bad_labels: Vec<usize> = labels.iter().map(|_| rng.next_below(3) as usize).collect();
        let bad = silhouette(&points, &bad_labels);
        assert!(bad < 0.2, "scrambled silhouette {bad}");
        assert!(good > bad);
    }

    #[test]
    fn silhouette_edge_cases() {
        assert_eq!(silhouette(&[vec![1.0]], &[0]), 0.0);
        // All in one cluster: no b term → 0 contribution.
        let points = vec![vec![0.0f32], vec![1.0]];
        assert_eq!(silhouette(&points, &[0, 0]), 0.0);
    }

    #[test]
    fn intra_inter_ratio_orders_clusterings() {
        let (points, labels) = blobs(15, 0.5, 3);
        let cents = crate::cluster::centroids(&points, &labels, 3);
        let tight = intra_inter_ratio(&points, &labels, &cents);
        let (loose_pts, loose_labels) = blobs(15, 3.0, 3);
        let loose_cents = crate::cluster::centroids(&loose_pts, &loose_labels, 3);
        let loose = intra_inter_ratio(&loose_pts, &loose_labels, &loose_cents);
        assert!(tight < loose, "{tight} vs {loose}");
        assert!(tight < 0.2);
    }

    #[test]
    fn ari_identical_is_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // Label permutation is still a perfect match.
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_random_is_near_zero() {
        let mut rng = Xoshiro256::seed_from(4);
        let a: Vec<usize> = (0..2000).map(|_| rng.next_below(5) as usize).collect();
        let b: Vec<usize> = (0..2000).map(|_| rng.next_below(5) as usize).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.05, "random ARI {ari}");
    }

    #[test]
    fn ari_partial_agreement_is_between() {
        let a = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let mut b = a.clone();
        b[0] = 1;
        b[3] = 2;
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.2 && ari < 1.0, "{ari}");
    }

    #[test]
    fn rotation_invariance_score_detects_invariance() {
        // Embedding = mean per channel (rotation invariant by construction)
        // vs embedding = first row (not invariant).
        let mut rng = Xoshiro256::seed_from(6);
        let tiles: Vec<Tensor> = (0..8)
            .map(|_| {
                Tensor::from_data(
                    1,
                    8,
                    8,
                    (0..64).map(|_| rng.normal(0.0, 1.0) as f32).collect(),
                )
            })
            .collect();
        let invariant = |t: &Tensor| -> Vec<f32> {
            vec![
                t.data.iter().sum::<f32>() / t.data.len() as f32,
                t.data.iter().map(|v| v * v).sum::<f32>() / t.data.len() as f32,
            ]
        };
        let sensitive = |t: &Tensor| -> Vec<f32> { t.data[..8].to_vec() };
        let s_inv = rotation_invariance_score(invariant, &tiles);
        let s_sens = rotation_invariance_score(sensitive, &tiles);
        assert!(s_inv < 1e-6, "invariant embedding score {s_inv}");
        assert!(s_sens > 0.5, "sensitive embedding score {s_sens}");
    }
}

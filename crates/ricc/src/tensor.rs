//! Minimal CHW tensors and neural-network ops with explicit backward
//! passes.
//!
//! Everything operates on a single sample (channels × height × width);
//! batching is a loop at the training level (rayon-parallel there). Ops are
//! written for clarity and verified by finite-difference gradient checks in
//! the test suite — correctness over peak speed, with the hot inner loops
//! kept allocation-free.

// Index-based loops mirror the maths (i/j/o/k subscripts) in these
// numeric kernels; iterator adaptors would obscure the indexing.
#![allow(clippy::needless_range_loop)]

/// A dense CHW tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Row-major data, `data[ch * h * w + y * w + x]`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// From existing data (length must match).
    pub fn from_data(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), c * h * w, "shape/data mismatch");
        Self { c, h, w, data }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, ch: usize, y: usize, x: usize) -> f32 {
        self.data[(ch * self.h + y) * self.w + x]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, ch: usize, y: usize, x: usize) -> &mut f32 {
        &mut self.data[(ch * self.h + y) * self.w + x]
    }

    /// Mean squared difference to another tensor of the same shape.
    pub fn mse(&self, other: &Tensor) -> f32 {
        assert_eq!(self.data.len(), other.data.len());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / self.data.len() as f32
    }
}

/// Convolution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel height/width (square kernels).
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub pad: usize,
}

impl ConvSpec {
    /// Output spatial size for an input of size `n`.
    pub fn out_size(&self, n: usize) -> usize {
        (n + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Transposed-conv output size for an input of size `n`.
    pub fn tconv_out_size(&self, n: usize) -> usize {
        (n - 1) * self.stride + self.k - 2 * self.pad
    }
}

/// Forward convolution. `w` is `[c_out][c_in][k][k]` flattened; `b` is per
/// output channel.
pub fn conv2d_fwd(x: &Tensor, w: &[f32], b: &[f32], c_out: usize, spec: ConvSpec) -> Tensor {
    let c_in = x.c;
    assert_eq!(w.len(), c_out * c_in * spec.k * spec.k);
    assert_eq!(b.len(), c_out);
    let oh = spec.out_size(x.h);
    let ow = spec.out_size(x.w);
    let mut y = Tensor::zeros(c_out, oh, ow);
    for o in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b[o];
                for i in 0..c_in {
                    for ky in 0..spec.k {
                        let sy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if sy < 0 || sy >= x.h as isize {
                            continue;
                        }
                        for kx in 0..spec.k {
                            let sx = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if sx < 0 || sx >= x.w as isize {
                                continue;
                            }
                            acc += x.at(i, sy as usize, sx as usize)
                                * w[((o * c_in + i) * spec.k + ky) * spec.k + kx];
                        }
                    }
                }
                *y.at_mut(o, oy, ox) = acc;
            }
        }
    }
    y
}

/// Backward convolution: returns `(dx, dw, db)` for upstream gradient `dy`.
pub fn conv2d_bwd(
    x: &Tensor,
    w: &[f32],
    dy: &Tensor,
    c_out: usize,
    spec: ConvSpec,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let c_in = x.c;
    let mut dx = Tensor::zeros(x.c, x.h, x.w);
    let mut dw = vec![0.0f32; w.len()];
    let mut db = vec![0.0f32; c_out];
    for o in 0..c_out {
        for oy in 0..dy.h {
            for ox in 0..dy.w {
                let g = dy.at(o, oy, ox);
                db[o] += g;
                for i in 0..c_in {
                    for ky in 0..spec.k {
                        let sy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if sy < 0 || sy >= x.h as isize {
                            continue;
                        }
                        for kx in 0..spec.k {
                            let sx = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if sx < 0 || sx >= x.w as isize {
                                continue;
                            }
                            let wi = ((o * c_in + i) * spec.k + ky) * spec.k + kx;
                            dw[wi] += g * x.at(i, sy as usize, sx as usize);
                            *dx.at_mut(i, sy as usize, sx as usize) += g * w[wi];
                        }
                    }
                }
            }
        }
    }
    (dx, dw, db)
}

/// Forward transposed convolution. `w` is `[c_in][c_out][k][k]` flattened.
pub fn tconv2d_fwd(x: &Tensor, w: &[f32], b: &[f32], c_out: usize, spec: ConvSpec) -> Tensor {
    let c_in = x.c;
    assert_eq!(w.len(), c_in * c_out * spec.k * spec.k);
    assert_eq!(b.len(), c_out);
    let oh = spec.tconv_out_size(x.h);
    let ow = spec.tconv_out_size(x.w);
    let mut y = Tensor::zeros(c_out, oh, ow);
    for o in 0..c_out {
        for e in y.data[o * oh * ow..(o + 1) * oh * ow].iter_mut() {
            *e = b[o];
        }
    }
    for i in 0..c_in {
        for sy in 0..x.h {
            for sx in 0..x.w {
                let v = x.at(i, sy, sx);
                for o in 0..c_out {
                    for ky in 0..spec.k {
                        let oy = (sy * spec.stride + ky) as isize - spec.pad as isize;
                        if oy < 0 || oy >= oh as isize {
                            continue;
                        }
                        for kx in 0..spec.k {
                            let ox = (sx * spec.stride + kx) as isize - spec.pad as isize;
                            if ox < 0 || ox >= ow as isize {
                                continue;
                            }
                            *y.at_mut(o, oy as usize, ox as usize) +=
                                v * w[((i * c_out + o) * spec.k + ky) * spec.k + kx];
                        }
                    }
                }
            }
        }
    }
    y
}

/// Backward transposed convolution: `(dx, dw, db)`.
pub fn tconv2d_bwd(
    x: &Tensor,
    w: &[f32],
    dy: &Tensor,
    c_out: usize,
    spec: ConvSpec,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let c_in = x.c;
    let mut dx = Tensor::zeros(x.c, x.h, x.w);
    let mut dw = vec![0.0f32; w.len()];
    let mut db = vec![0.0f32; c_out];
    let (oh, ow) = (dy.h, dy.w);
    for o in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                db[o] += dy.at(o, oy, ox);
            }
        }
    }
    for i in 0..c_in {
        for sy in 0..x.h {
            for sx in 0..x.w {
                let v = x.at(i, sy, sx);
                let mut acc = 0.0f32;
                for o in 0..c_out {
                    for ky in 0..spec.k {
                        let oy = (sy * spec.stride + ky) as isize - spec.pad as isize;
                        if oy < 0 || oy >= oh as isize {
                            continue;
                        }
                        for kx in 0..spec.k {
                            let ox = (sx * spec.stride + kx) as isize - spec.pad as isize;
                            if ox < 0 || ox >= ow as isize {
                                continue;
                            }
                            let g = dy.at(o, oy as usize, ox as usize);
                            let wi = ((i * c_out + o) * spec.k + ky) * spec.k + kx;
                            acc += g * w[wi];
                            dw[wi] += g * v;
                        }
                    }
                }
                *dx.at_mut(i, sy, sx) = acc;
            }
        }
    }
    (dx, dw, db)
}

/// Leaky ReLU forward (slope 0.1 for negatives).
pub fn leaky_relu_fwd(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    for v in &mut y.data {
        if *v < 0.0 {
            *v *= 0.1;
        }
    }
    y
}

/// Leaky ReLU backward: `dx = dy ⊙ f'(x)`.
pub fn leaky_relu_bwd(x: &Tensor, dy: &Tensor) -> Tensor {
    let mut dx = dy.clone();
    for (d, &xv) in dx.data.iter_mut().zip(&x.data) {
        if xv < 0.0 {
            *d *= 0.1;
        }
    }
    dx
}

/// Dense forward: `y = W·x + b`, `W` is `[out][in]` flattened.
pub fn dense_fwd(x: &[f32], w: &[f32], b: &[f32]) -> Vec<f32> {
    let n_out = b.len();
    let n_in = x.len();
    assert_eq!(w.len(), n_out * n_in);
    let mut y = b.to_vec();
    for o in 0..n_out {
        let row = &w[o * n_in..(o + 1) * n_in];
        let mut acc = 0.0f32;
        for (wi, xi) in row.iter().zip(x) {
            acc += wi * xi;
        }
        y[o] += acc;
    }
    y
}

/// Dense backward: `(dx, dw, db)`.
pub fn dense_bwd(x: &[f32], w: &[f32], dy: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let n_out = dy.len();
    let n_in = x.len();
    let mut dx = vec![0.0f32; n_in];
    let mut dw = vec![0.0f32; w.len()];
    for o in 0..n_out {
        let g = dy[o];
        let row = &w[o * n_in..(o + 1) * n_in];
        let drow = &mut dw[o * n_in..(o + 1) * n_in];
        for i in 0..n_in {
            dx[i] += g * row[i];
            drow[i] = g * x[i];
        }
    }
    (dx, dw, dy.to_vec())
}

/// Adam optimizer state for one parameter buffer.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    /// Learning rate.
    pub lr: f32,
}

impl Adam {
    /// State for a buffer of `n` parameters.
    pub fn new(n: usize, lr: f32) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
        }
    }

    /// Apply one update step in place.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= self.lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_util::rng::{Rng64, Xoshiro256};

    fn rand_tensor(rng: &mut Xoshiro256, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_data(
            c,
            h,
            w,
            (0..c * h * w)
                .map(|_| rng.normal(0.0, 1.0) as f32)
                .collect(),
        )
    }

    fn rand_vec(rng: &mut Xoshiro256, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.normal(0.0, 0.5) as f32).collect()
    }

    /// Scalar loss = sum(y) for gradient checking (so dL/dy = 1).
    fn grad_check_conv(stride: usize, pad: usize) {
        let mut rng = Xoshiro256::seed_from(42);
        let spec = ConvSpec { k: 3, stride, pad };
        let (c_in, c_out) = (2, 3);
        let x = rand_tensor(&mut rng, c_in, 6, 6);
        let w = rand_vec(&mut rng, c_out * c_in * 9);
        let b = rand_vec(&mut rng, c_out);
        let y = conv2d_fwd(&x, &w, &b, c_out, spec);
        let dy = Tensor::from_data(y.c, y.h, y.w, vec![1.0; y.len()]);
        let (dx, dw, db) = conv2d_bwd(&x, &w, &dy, c_out, spec);
        let eps = 1e-3f32;
        let loss = |x: &Tensor, w: &[f32], b: &[f32]| -> f32 {
            conv2d_fwd(x, w, b, c_out, spec).data.iter().sum()
        };
        // Check a scatter of coordinates in each buffer.
        for idx in [0usize, 7, 20, x.len() - 1] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let num = (loss(&xp, &w, &b) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - dx.data[idx]).abs() < 0.05,
                "dx[{idx}] {num} vs {}",
                dx.data[idx]
            );
        }
        for idx in [0usize, 5, w.len() - 1] {
            let mut wp = w.clone();
            wp[idx] += eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - dw[idx]).abs() < 0.05,
                "dw[{idx}] {num} vs {}",
                dw[idx]
            );
        }
        for idx in 0..b.len() {
            let mut bp = b.clone();
            bp[idx] += eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &b)) / eps;
            assert!(
                (num - db[idx]).abs() < 0.05,
                "db[{idx}] {num} vs {}",
                db[idx]
            );
        }
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        grad_check_conv(1, 1);
        grad_check_conv(2, 1);
        grad_check_conv(1, 0);
    }

    #[test]
    fn tconv_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from(43);
        let spec = ConvSpec {
            k: 3,
            stride: 2,
            pad: 1,
        };
        let (c_in, c_out) = (3, 2);
        let x = rand_tensor(&mut rng, c_in, 4, 4);
        let w = rand_vec(&mut rng, c_in * c_out * 9);
        let b = rand_vec(&mut rng, c_out);
        let y = tconv2d_fwd(&x, &w, &b, c_out, spec);
        let dy = Tensor::from_data(y.c, y.h, y.w, vec![1.0; y.len()]);
        let (dx, dw, db) = tconv2d_bwd(&x, &w, &dy, c_out, spec);
        let eps = 1e-3f32;
        let loss = |x: &Tensor, w: &[f32], b: &[f32]| -> f32 {
            tconv2d_fwd(x, w, b, c_out, spec).data.iter().sum()
        };
        for idx in [0usize, 13, x.len() - 1] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let num = (loss(&xp, &w, &b) - loss(&x, &w, &b)) / eps;
            assert!((num - dx.data[idx]).abs() < 0.05, "dx[{idx}]");
        }
        for idx in [0usize, 11, w.len() - 1] {
            let mut wp = w.clone();
            wp[idx] += eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &w, &b)) / eps;
            assert!((num - dw[idx]).abs() < 0.05, "dw[{idx}]");
        }
        for idx in 0..b.len() {
            let mut bp = b.clone();
            bp[idx] += eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &b)) / eps;
            assert!((num - db[idx]).abs() < 0.05, "db[{idx}]");
        }
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from(44);
        let x = rand_vec(&mut rng, 10);
        let w = rand_vec(&mut rng, 4 * 10);
        let b = rand_vec(&mut rng, 4);
        let dy = vec![1.0f32; 4];
        let (dx, dw, db) = dense_bwd(&x, &w, &dy);
        let eps = 1e-3f32;
        let loss = |x: &[f32], w: &[f32], b: &[f32]| -> f32 { dense_fwd(x, w, b).iter().sum() };
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp[idx] += eps;
            let num = (loss(&xp, &w, &b) - loss(&x, &w, &b)) / eps;
            assert!((num - dx[idx]).abs() < 0.02, "dx[{idx}]");
        }
        for idx in [0usize, 17, 39] {
            let mut wp = w.clone();
            wp[idx] += eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &w, &b)) / eps;
            assert!((num - dw[idx]).abs() < 0.02, "dw[{idx}]");
        }
        assert_eq!(db, dy);
    }

    #[test]
    fn conv_output_shapes() {
        // Down-sampling uses k=3/s=2/p=1; exact doubling back up needs
        // k=4/s=2/p=1 (k=3 would give 2n−1).
        let down = ConvSpec {
            k: 3,
            stride: 2,
            pad: 1,
        };
        let up = ConvSpec {
            k: 4,
            stride: 2,
            pad: 1,
        };
        assert_eq!(down.out_size(16), 8);
        assert_eq!(up.tconv_out_size(8), 16);
        let x = Tensor::zeros(6, 16, 16);
        let w = vec![0.0; 8 * 6 * 9];
        let b = vec![0.0; 8];
        let y = conv2d_fwd(&x, &w, &b, 8, down);
        assert_eq!((y.c, y.h, y.w), (8, 8, 8));
        let wt = vec![0.0; 8 * 6 * 16];
        let bt = vec![0.0; 6];
        let z = tconv2d_fwd(&y, &wt, &bt, 6, up);
        assert_eq!((z.c, z.h, z.w), (6, 16, 16));
    }

    #[test]
    fn conv_identity_kernel() {
        // A 1×1 kernel with weight 1 and zero bias reproduces the input.
        let mut rng = Xoshiro256::seed_from(3);
        let x = rand_tensor(&mut rng, 1, 5, 5);
        let spec = ConvSpec {
            k: 1,
            stride: 1,
            pad: 0,
        };
        let y = conv2d_fwd(&x, &[1.0], &[0.0], 1, spec);
        assert_eq!(y, x);
    }

    #[test]
    fn leaky_relu_fwd_bwd() {
        let x = Tensor::from_data(1, 1, 4, vec![-2.0, -0.5, 0.5, 2.0]);
        let y = leaky_relu_fwd(&x);
        assert_eq!(y.data, vec![-0.2, -0.05, 0.5, 2.0]);
        let dy = Tensor::from_data(1, 1, 4, vec![1.0; 4]);
        let dx = leaky_relu_bwd(&x, &dy);
        assert_eq!(dx.data, vec![0.1, 0.1, 1.0, 1.0]);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize ||p − target||² — Adam should converge quickly.
        let target = [3.0f32, -2.0, 0.5];
        let mut p = vec![0.0f32; 3];
        let mut opt = Adam::new(3, 0.05);
        for _ in 0..500 {
            let grads: Vec<f32> = p
                .iter()
                .zip(&target)
                .map(|(pi, t)| 2.0 * (pi - t))
                .collect();
            opt.step(&mut p, &grads);
        }
        for (pi, t) in p.iter().zip(&target) {
            assert!((pi - t).abs() < 0.01, "{pi} vs {t}");
        }
    }

    #[test]
    fn tensor_accessors_and_mse() {
        let mut t = Tensor::zeros(2, 3, 4);
        *t.at_mut(1, 2, 3) = 5.0;
        assert_eq!(t.at(1, 2, 3), 5.0);
        assert_eq!(t.len(), 24);
        let z = Tensor::zeros(2, 3, 4);
        assert!((t.mse(&z) - 25.0 / 24.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        Tensor::from_data(1, 2, 2, vec![0.0; 5]);
    }
}

//! LAADS-style archive catalog: what files exist and how big they are.
//!
//! The download experiments (paper Fig. 3) depend on realistic file-size
//! statistics: ~288 granule files per product per day, averaging ≈111 MB for
//! MOD02, ≈29 MB for MOD03 and ≈62 MB for MOD06, summing to the daily
//! volumes the paper quotes (32 / 8.4 / 18 GB). Sizes here are sampled from
//! a deterministic lognormal around those means, with MOD02 day granules
//! larger than night granules (reflective bands carry no information at
//! night and compress away, a real effect the paper alludes to).

use crate::granule::{GranuleId, SLOTS_PER_DAY};
use crate::product::{Platform, ProductKind};
use eoml_util::rng::{Rng64, SplitMix64, Xoshiro256};
use eoml_util::timebase::CivilDate;
use eoml_util::units::ByteSize;

/// One downloadable archive file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Which granule.
    pub granule: GranuleId,
    /// Which product.
    pub product: ProductKind,
    /// Archive file name (LAADS convention).
    pub file_name: String,
    /// File size.
    pub size: ByteSize,
}

/// Deterministic catalog of the synthetic archive.
#[derive(Debug, Clone, Copy)]
pub struct Catalog {
    seed: u64,
    gap_probability: f64,
}

impl Catalog {
    /// Catalog for the archive identified by `seed` (must match the
    /// synthesizer seed for a coherent world).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            gap_probability: 0.0,
        }
    }

    /// Archive with data gaps: each granule file is independently missing
    /// with probability `p` (deterministic per granule). Real MODIS
    /// archives have such gaps — instrument safe-holds, downlink losses —
    /// and a robust workflow must tolerate them.
    pub fn with_gaps(seed: u64, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p));
        Self {
            seed,
            gap_probability: p,
        }
    }

    /// Whether the archive holds this granule file (false = data gap).
    pub fn exists(&self, granule: GranuleId, product: ProductKind) -> bool {
        if self.gap_probability == 0.0 {
            return true;
        }
        let key = SplitMix64::mix(
            self.seed
                ^ SplitMix64::mix(granule.orbit_time_s() as u64).rotate_left(13)
                ^ ((product as u64) << 40)
                ^ 0x6A95,
        );
        let mut rng = Xoshiro256::seed_from(key);
        !rng.chance(self.gap_probability)
    }

    /// Deterministic file size for one granule file.
    pub fn file_size(&self, granule: GranuleId, product: ProductKind) -> ByteSize {
        let mean = product.nominal_daily_bytes() as f64 / SLOTS_PER_DAY as f64;
        // Key the stream on (seed, granule, product) so listings are stable
        // regardless of query order.
        let key = SplitMix64::mix(
            self.seed
                ^ SplitMix64::mix(granule.orbit_time_s() as u64)
                ^ ((product as u64) << 56)
                ^ ((granule.platform as u64) << 48),
        );
        let mut rng = Xoshiro256::seed_from(key);
        // MOD02 halves at night (no reflective-band payload).
        let day_factor = if product == ProductKind::Mod02 {
            // Day/night alternates with the orbit: half of each ~99-minute
            // orbit is sunlit.
            let phase = (granule.orbit_time_s() / 5_933.0) * std::f64::consts::TAU;
            if phase.sin() > 0.0 {
                1.35
            } else {
                0.65
            }
        } else {
            1.0
        };
        let size = rng.lognormal_mean_cv(mean * day_factor, 0.12);
        ByteSize::bytes(size.max(1.0) as u64)
    }

    /// All files for `product` on `date` from `platform`, slot order
    /// (granules lost to archive gaps are omitted).
    pub fn day_listing(
        &self,
        platform: Platform,
        product: ProductKind,
        date: CivilDate,
    ) -> Vec<CatalogEntry> {
        GranuleId::day_granules(platform, date)
            .filter(|&g| self.exists(g, product))
            .map(|g| CatalogEntry {
                granule: g,
                product,
                file_name: g.file_name(product),
                size: self.file_size(g, product),
            })
            .collect()
    }

    /// Listing spanning `ndays` consecutive days.
    pub fn range_listing(
        &self,
        platform: Platform,
        product: ProductKind,
        start: CivilDate,
        ndays: usize,
    ) -> Vec<CatalogEntry> {
        start
            .iter_days(ndays)
            .flat_map(|d| self.day_listing(platform, product, d))
            .collect()
    }

    /// A batch of the first `n` files of a day across all three products —
    /// the unit the download benchmarks sweep over (paper Fig. 3 scales
    /// from 1 file ≈ 100 MB per product up to ~128 files ≈ 30 GB).
    pub fn batch(
        &self,
        platform: Platform,
        date: CivilDate,
        n_per_product: usize,
    ) -> Vec<CatalogEntry> {
        assert!(n_per_product <= SLOTS_PER_DAY as usize);
        ProductKind::all()
            .into_iter()
            .flat_map(|p| {
                self.day_listing(platform, p, date)
                    .into_iter()
                    .take(n_per_product)
            })
            .collect()
    }
}

/// Sum of entry sizes.
pub fn total_size(entries: &[CatalogEntry]) -> ByteSize {
    entries.iter().map(|e| e.size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day1() -> CivilDate {
        CivilDate::new(2022, 1, 1).unwrap()
    }

    #[test]
    fn listing_has_288_entries_in_slot_order() {
        let cat = Catalog::new(2022);
        let l = cat.day_listing(Platform::Terra, ProductKind::Mod02, day1());
        assert_eq!(l.len(), 288);
        for (i, e) in l.iter().enumerate() {
            assert_eq!(e.granule.slot, i as u16);
            assert_eq!(e.product, ProductKind::Mod02);
            assert!(e.size.as_u64() > 0);
        }
    }

    #[test]
    fn listing_is_deterministic() {
        let a = Catalog::new(7).day_listing(Platform::Aqua, ProductKind::Mod06, day1());
        let b = Catalog::new(7).day_listing(Platform::Aqua, ProductKind::Mod06, day1());
        assert_eq!(a, b);
    }

    #[test]
    fn daily_totals_match_paper_volumes() {
        let cat = Catalog::new(2022);
        for (product, nominal) in [
            (ProductKind::Mod02, 32.0e9),
            (ProductKind::Mod03, 8.4e9),
            (ProductKind::Mod06, 18.0e9),
        ] {
            let l = cat.day_listing(Platform::Terra, product, day1());
            let total = total_size(&l).as_u64() as f64;
            assert!(
                (total - nominal).abs() / nominal < 0.10,
                "{product}: {total} vs nominal {nominal}"
            );
        }
    }

    #[test]
    fn mod02_day_files_larger_than_night() {
        let cat = Catalog::new(2022);
        let l = cat.day_listing(Platform::Terra, ProductKind::Mod02, day1());
        let mut sizes: Vec<u64> = l.iter().map(|e| e.size.as_u64()).collect();
        sizes.sort_unstable();
        // Bimodal: the top quartile should be ≥ 1.5× the bottom quartile.
        let lo = sizes[sizes.len() / 4] as f64;
        let hi = sizes[3 * sizes.len() / 4] as f64;
        assert!(hi / lo > 1.5, "expected bimodal sizes, got {lo} vs {hi}");
    }

    #[test]
    fn file_names_parse_back() {
        let cat = Catalog::new(1);
        let l = cat.day_listing(Platform::Terra, ProductKind::Mod03, day1());
        for e in l.iter().step_by(37) {
            let (g, p) = GranuleId::parse_file_name(&e.file_name).unwrap();
            assert_eq!(g, e.granule);
            assert_eq!(p, ProductKind::Mod03);
        }
    }

    #[test]
    fn range_listing_spans_days() {
        let cat = Catalog::new(3);
        let l = cat.range_listing(Platform::Terra, ProductKind::Mod03, day1(), 3);
        assert_eq!(l.len(), 3 * 288);
        assert_eq!(l[0].granule.date, day1());
        assert_eq!(l[2 * 288].granule.date, CivilDate::new(2022, 1, 3).unwrap());
    }

    #[test]
    fn batch_covers_all_products() {
        let cat = Catalog::new(2022);
        let b = cat.batch(Platform::Terra, day1(), 1);
        assert_eq!(b.len(), 3);
        // One file of each product ≈ 111 + 29 + 62 ≈ 200 MB give or take.
        let total = total_size(&b).as_mb();
        assert!((100.0..400.0).contains(&total), "batch size {total} MB");
        let b128 = cat.batch(Platform::Terra, day1(), 128);
        assert_eq!(b128.len(), 384);
        // ~128/288 of a full day ≈ 26 GB.
        let total = total_size(&b128).as_gb();
        assert!((18.0..34.0).contains(&total), "batch size {total} GB");
    }

    #[test]
    fn different_seeds_give_different_sizes() {
        let a = Catalog::new(1).file_size(
            GranuleId::new(Platform::Terra, day1(), 0),
            ProductKind::Mod02,
        );
        let b = Catalog::new(2).file_size(
            GranuleId::new(Platform::Terra, day1(), 0),
            ProductKind::Mod02,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn gaps_remove_a_deterministic_subset() {
        let gappy = Catalog::with_gaps(2022, 0.1);
        let l1 = gappy.day_listing(Platform::Terra, ProductKind::Mod02, day1());
        let l2 = gappy.day_listing(Platform::Terra, ProductKind::Mod02, day1());
        assert_eq!(l1, l2, "gaps are deterministic");
        let missing = 288 - l1.len();
        assert!((10..=50).contains(&missing), "{missing} gaps at p=0.1");
        // A gap-free catalog is complete.
        assert_eq!(
            Catalog::new(2022)
                .day_listing(Platform::Terra, ProductKind::Mod02, day1())
                .len(),
            288
        );
        // Gaps are independent across products: the same slot can exist
        // for one product and not another.
        let l03 = gappy.day_listing(Platform::Terra, ProductKind::Mod03, day1());
        let slots02: std::collections::HashSet<u16> = l1.iter().map(|e| e.granule.slot).collect();
        let slots03: std::collections::HashSet<u16> = l03.iter().map(|e| e.granule.slot).collect();
        assert_ne!(slots02, slots03);
    }

    #[test]
    fn product_size_ordering_holds_on_average() {
        let cat = Catalog::new(2022);
        let avg = |p: ProductKind| {
            let l = cat.day_listing(Platform::Terra, p, day1());
            total_size(&l).as_u64() / l.len() as u64
        };
        let m02 = avg(ProductKind::Mod02);
        let m03 = avg(ProductKind::Mod03);
        let m06 = avg(ProductKind::Mod06);
        assert!(m02 > m06 && m06 > m03, "{m02} {m06} {m03}");
    }
}

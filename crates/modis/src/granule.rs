//! Granule identity and naming.
//!
//! MODIS observations are binned into 5-minute *granules* (scenes); a day
//! holds 288 slots. LAADS names files
//! `<SHORTNAME>.A<YYYY><DDD>.<HHMM>.<collection>.<production>.hdf`; we keep
//! the convention (with an `.eogr` extension for our container) so that the
//! download/preprocess stages exercise realistic name parsing.

use crate::product::{Platform, ProductKind};
use eoml_util::timebase::{CivilDate, UtcTime};
use std::fmt;
use std::time::Duration;

/// Number of 5-minute granule slots in a day.
pub const SLOTS_PER_DAY: u16 = 288;

/// Collection (processing version) used in filenames; 061 is the current
/// MODIS collection.
pub const COLLECTION: &str = "061";

/// Identity of one 5-minute granule: platform + date + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GranuleId {
    /// Host platform.
    pub platform: Platform,
    /// Acquisition date (UTC).
    pub date: CivilDate,
    /// 5-minute slot within the day, `0..288`.
    pub slot: u16,
}

impl GranuleId {
    /// Construct; panics if `slot >= 288`.
    pub fn new(platform: Platform, date: CivilDate, slot: u16) -> Self {
        assert!(slot < SLOTS_PER_DAY, "slot {slot} out of range");
        Self {
            platform,
            date,
            slot,
        }
    }

    /// Acquisition start time (UTC).
    pub fn start_time(&self) -> UtcTime {
        UtcTime::from_date(self.date) + Duration::from_secs(self.slot as u64 * 300)
    }

    /// `HHMM` string of the slot start.
    pub fn hhmm(&self) -> String {
        let mins = self.slot as u32 * 5;
        format!("{:02}{:02}", mins / 60, mins % 60)
    }

    /// Seconds since the platform's epoch-of-day 0 — used by the
    /// synthesizer to phase the orbit (continuous across days).
    pub fn orbit_time_s(&self) -> f64 {
        self.date.days_from_epoch() as f64 * 86_400.0 + self.slot as f64 * 300.0
    }

    /// LAADS-convention file name for `product` of this granule.
    /// Example: `MOD021KM.A2022001.0005.061.2022003141500.eogr`.
    pub fn file_name(&self, product: ProductKind) -> String {
        // Production timestamp: deterministic fiction two days after
        // acquisition, as LAADS production lags acquisition.
        let prod_date = CivilDate::from_days_from_epoch(self.date.days_from_epoch() + 2);
        format!(
            "{}.A{:04}{:03}.{}.{}.{:04}{:03}141500.eogr",
            product.short_name(self.platform),
            self.date.year(),
            self.date.ordinal(),
            self.hhmm(),
            COLLECTION,
            prod_date.year(),
            prod_date.ordinal(),
        )
    }

    /// Parse a file name produced by [`file_name`](Self::file_name).
    /// Returns the id and the product kind.
    pub fn parse_file_name(name: &str) -> Option<(GranuleId, ProductKind)> {
        let mut parts = name.split('.');
        let short = parts.next()?;
        let (kind, platform) = ProductKind::parse_short_name(short)?;
        let adate = parts.next()?;
        if !adate.starts_with('A') || adate.len() != 8 {
            return None;
        }
        let year: i32 = adate[1..5].parse().ok()?;
        let doy: u16 = adate[5..8].parse().ok()?;
        let date = CivilDate::from_ordinal(year, doy)?;
        let hhmm = parts.next()?;
        if hhmm.len() != 4 {
            return None;
        }
        let hh: u16 = hhmm[..2].parse().ok()?;
        let mm: u16 = hhmm[2..].parse().ok()?;
        if !mm.is_multiple_of(5) || hh >= 24 || mm >= 60 {
            return None;
        }
        let slot = hh * 12 + mm / 5;
        Some((GranuleId::new(platform, date, slot), kind))
    }

    /// All granules of a day in slot order.
    pub fn day_granules(platform: Platform, date: CivilDate) -> impl Iterator<Item = GranuleId> {
        (0..SLOTS_PER_DAY).map(move |slot| GranuleId::new(platform, date, slot))
    }
}

impl fmt::Display for GranuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.A{:04}{:03}.{}",
            self.platform.prefix(),
            self.date.year(),
            self.date.ordinal(),
            self.hhmm()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day1() -> CivilDate {
        CivilDate::new(2022, 1, 1).unwrap()
    }

    #[test]
    fn slot_times() {
        let g = GranuleId::new(Platform::Terra, day1(), 0);
        assert_eq!(g.start_time().iso8601(), "2022-01-01T00:00:00Z");
        assert_eq!(g.hhmm(), "0000");
        let g = GranuleId::new(Platform::Terra, day1(), 1);
        assert_eq!(g.hhmm(), "0005");
        let g = GranuleId::new(Platform::Terra, day1(), 287);
        assert_eq!(g.hhmm(), "2355");
        assert_eq!(g.start_time().iso8601(), "2022-01-01T23:55:00Z");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_288_panics() {
        GranuleId::new(Platform::Terra, day1(), 288);
    }

    #[test]
    fn file_name_convention() {
        let g = GranuleId::new(Platform::Terra, day1(), 1);
        let name = g.file_name(ProductKind::Mod02);
        assert!(
            name.starts_with("MOD021KM.A2022001.0005.061."),
            "bad name {name}"
        );
        assert!(name.ends_with(".eogr"));
        let name3 = g.file_name(ProductKind::Mod03);
        assert!(name3.starts_with("MOD03.A2022001.0005."));
    }

    #[test]
    fn file_name_round_trip() {
        for slot in [0, 1, 100, 287] {
            for product in ProductKind::all() {
                for platform in Platform::all() {
                    let g = GranuleId::new(platform, day1(), slot);
                    let name = g.file_name(product);
                    let (parsed, kind) = GranuleId::parse_file_name(&name)
                        .unwrap_or_else(|| panic!("failed to parse {name}"));
                    assert_eq!(parsed, g);
                    assert_eq!(kind, product);
                }
            }
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(GranuleId::parse_file_name("garbage").is_none());
        assert!(GranuleId::parse_file_name("MOD021KM.2022001.0005.061.x.eogr").is_none());
        assert!(GranuleId::parse_file_name("MOD021KM.A2022400.0005.061.x.eogr").is_none());
        assert!(GranuleId::parse_file_name("MOD021KM.A2022001.0007.061.x.eogr").is_none());
        assert!(GranuleId::parse_file_name("MOD021KM.A2022001.2500.061.x.eogr").is_none());
    }

    #[test]
    fn day_granules_covers_day() {
        let all: Vec<_> = GranuleId::day_granules(Platform::Aqua, day1()).collect();
        assert_eq!(all.len(), 288);
        assert_eq!(all[0].hhmm(), "0000");
        assert_eq!(all[287].hhmm(), "2355");
        // Unique and sorted.
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn orbit_time_continuous_across_days() {
        let g1 = GranuleId::new(Platform::Terra, day1(), 287);
        let g2 = GranuleId::new(Platform::Terra, day1().succ(), 0);
        assert!((g2.orbit_time_s() - g1.orbit_time_s() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn display_compact() {
        let g = GranuleId::new(Platform::Aqua, day1(), 130);
        assert_eq!(g.to_string(), "MYD.A2022001.1050");
    }
}

//! Conversions between in-memory [`Swath`]s and on-disk product containers.
//!
//! The real pipeline reads three separate HDF4 files per granule and
//! co-registers them; this module produces the equivalent three `EOGR`
//! containers from a synthesized swath and reassembles a swath from them
//! (with validation), so the preprocessing stage exercises the same
//! "integrate three products at each time step" logic the paper describes.

use crate::container::{Container, ContainerError, Dataset, DatasetData};
use crate::granule::GranuleId;
use crate::product::{Platform, ProductKind};
use crate::synth::{Swath, SwathDims};
use eoml_util::timebase::CivilDate;
use std::fmt;

/// Errors from reassembling a swath out of product containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProductFileError {
    /// Underlying container decode failure.
    Container(ContainerError),
    /// A required attribute is missing or malformed.
    BadAttr(&'static str),
    /// A required dataset is missing.
    MissingDataset(String),
    /// Dataset has the wrong type or shape.
    BadDataset(String),
    /// The three products disagree about which granule they belong to.
    GranuleMismatch,
}

impl fmt::Display for ProductFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProductFileError::Container(e) => write!(f, "container error: {e}"),
            ProductFileError::BadAttr(a) => write!(f, "bad or missing attribute {a:?}"),
            ProductFileError::MissingDataset(d) => write!(f, "missing dataset {d:?}"),
            ProductFileError::BadDataset(d) => write!(f, "bad dataset {d:?}"),
            ProductFileError::GranuleMismatch => write!(f, "products are from different granules"),
        }
    }
}

impl std::error::Error for ProductFileError {}

impl From<ContainerError> for ProductFileError {
    fn from(e: ContainerError) -> Self {
        ProductFileError::Container(e)
    }
}

fn base_attrs(id: GranuleId, dims: SwathDims, product: ProductKind) -> Container {
    Container::new()
        .with_attr("product", product.short_name(id.platform))
        .with_attr("platform", id.platform.to_string())
        .with_attr("date", id.date.to_string())
        .with_attr("slot", id.slot.to_string())
        .with_attr("lines", dims.lines.to_string())
        .with_attr("pixels", dims.pixels.to_string())
        .with_attr("start_time", id.start_time().iso8601())
}

/// Build the MOD02 (radiances) container for a swath.
pub fn to_mod02(swath: &Swath) -> Container {
    let dims2 = vec![swath.dims.lines as u32, swath.dims.pixels as u32];
    let mut c = base_attrs(swath.id, swath.dims, ProductKind::Mod02)
        .with_attr("day", swath.day.to_string())
        .with_attr(
            "bands",
            swath
                .bands
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
    for (i, &band) in swath.bands.iter().enumerate() {
        c = c.with_dataset(Dataset::new(
            format!("radiance_b{band:02}"),
            dims2.clone(),
            DatasetData::F32(swath.band_plane(i).to_vec()),
        ));
    }
    c
}

/// Build the MOD03 (geolocation + land mask) container for a swath.
pub fn to_mod03(swath: &Swath) -> Container {
    let dims2 = vec![swath.dims.lines as u32, swath.dims.pixels as u32];
    base_attrs(swath.id, swath.dims, ProductKind::Mod03)
        .with_dataset(Dataset::new(
            "latitude",
            dims2.clone(),
            DatasetData::F32(swath.lat.clone()),
        ))
        .with_dataset(Dataset::new(
            "longitude",
            dims2.clone(),
            DatasetData::F32(swath.lon.clone()),
        ))
        .with_dataset(Dataset::new(
            "land_sea_mask",
            dims2,
            DatasetData::U8(swath.land.clone()),
        ))
}

/// Build the MOD06 (cloud products) container for a swath.
pub fn to_mod06(swath: &Swath) -> Container {
    let dims2 = vec![swath.dims.lines as u32, swath.dims.pixels as u32];
    base_attrs(swath.id, swath.dims, ProductKind::Mod06)
        .with_dataset(Dataset::new(
            "cloud_mask",
            dims2.clone(),
            DatasetData::U8(swath.cloud.clone()),
        ))
        .with_dataset(Dataset::new(
            "cloud_optical_thickness",
            dims2.clone(),
            DatasetData::F32(swath.cot.clone()),
        ))
        .with_dataset(Dataset::new(
            "cloud_top_pressure",
            dims2.clone(),
            DatasetData::F32(swath.ctp.clone()),
        ))
        .with_dataset(Dataset::new(
            "cloud_effective_radius",
            dims2,
            DatasetData::F32(swath.cer.clone()),
        ))
}

fn parse_id(c: &Container) -> Result<(GranuleId, SwathDims), ProductFileError> {
    let platform = match c.attrs.get("platform").map(String::as_str) {
        Some("Terra") => Platform::Terra,
        Some("Aqua") => Platform::Aqua,
        _ => return Err(ProductFileError::BadAttr("platform")),
    };
    let date = c
        .attrs
        .get("date")
        .and_then(|d| {
            let mut parts = d.split('-');
            let y: i32 = parts.next()?.parse().ok()?;
            let m: u8 = parts.next()?.parse().ok()?;
            let dd: u8 = parts.next()?.parse().ok()?;
            CivilDate::new(y, m, dd)
        })
        .ok_or(ProductFileError::BadAttr("date"))?;
    let slot: u16 = c
        .attrs
        .get("slot")
        .and_then(|s| s.parse().ok())
        .filter(|&s| s < crate::granule::SLOTS_PER_DAY)
        .ok_or(ProductFileError::BadAttr("slot"))?;
    let lines: usize = c
        .attrs
        .get("lines")
        .and_then(|s| s.parse().ok())
        .ok_or(ProductFileError::BadAttr("lines"))?;
    let pixels: usize = c
        .attrs
        .get("pixels")
        .and_then(|s| s.parse().ok())
        .ok_or(ProductFileError::BadAttr("pixels"))?;
    Ok((
        GranuleId::new(platform, date, slot),
        SwathDims { lines, pixels },
    ))
}

fn f32_dataset(c: &Container, name: &str, n: usize) -> Result<Vec<f32>, ProductFileError> {
    let ds = c
        .dataset(name)
        .ok_or_else(|| ProductFileError::MissingDataset(name.to_string()))?;
    let v = ds
        .data
        .as_f32()
        .ok_or_else(|| ProductFileError::BadDataset(name.to_string()))?;
    if v.len() != n {
        return Err(ProductFileError::BadDataset(name.to_string()));
    }
    Ok(v.to_vec())
}

fn u8_dataset(c: &Container, name: &str, n: usize) -> Result<Vec<u8>, ProductFileError> {
    let ds = c
        .dataset(name)
        .ok_or_else(|| ProductFileError::MissingDataset(name.to_string()))?;
    let v = ds
        .data
        .as_u8()
        .ok_or_else(|| ProductFileError::BadDataset(name.to_string()))?;
    if v.len() != n {
        return Err(ProductFileError::BadDataset(name.to_string()));
    }
    Ok(v.to_vec())
}

/// Reassemble a [`Swath`] from the three product containers, validating
/// shapes and that all three belong to the same granule.
pub fn swath_from_products(
    mod02: &Container,
    mod03: &Container,
    mod06: &Container,
) -> Result<Swath, ProductFileError> {
    let (id, dims) = parse_id(mod02)?;
    let (id3, dims3) = parse_id(mod03)?;
    let (id6, dims6) = parse_id(mod06)?;
    if id != id3 || id != id6 || dims != dims3 || dims != dims6 {
        return Err(ProductFileError::GranuleMismatch);
    }
    let n = dims.len();

    let bands: Vec<u8> = mod02
        .attrs
        .get("bands")
        .ok_or(ProductFileError::BadAttr("bands"))?
        .split(',')
        .map(|s| s.parse::<u8>())
        .collect::<Result<_, _>>()
        .map_err(|_| ProductFileError::BadAttr("bands"))?;
    let day: bool = mod02
        .attrs
        .get("day")
        .and_then(|s| s.parse().ok())
        .ok_or(ProductFileError::BadAttr("day"))?;

    let mut radiance = Vec::with_capacity(bands.len() * n);
    for &band in &bands {
        radiance.extend(f32_dataset(mod02, &format!("radiance_b{band:02}"), n)?);
    }

    Ok(Swath {
        id,
        dims,
        bands,
        radiance,
        lat: f32_dataset(mod03, "latitude", n)?,
        lon: f32_dataset(mod03, "longitude", n)?,
        land: u8_dataset(mod03, "land_sea_mask", n)?,
        cloud: u8_dataset(mod06, "cloud_mask", n)?,
        cot: f32_dataset(mod06, "cloud_optical_thickness", n)?,
        ctp: f32_dataset(mod06, "cloud_top_pressure", n)?,
        cer: f32_dataset(mod06, "cloud_effective_radius", n)?,
        day,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SwathSynthesizer;

    fn swath() -> Swath {
        let sy = SwathSynthesizer::new(2022, SwathDims::small());
        sy.synthesize(GranuleId::new(
            Platform::Terra,
            CivilDate::new(2022, 1, 1).unwrap(),
            100,
        ))
    }

    #[test]
    fn product_round_trip_preserves_swath() {
        let s = swath();
        let m02 = to_mod02(&s);
        let m03 = to_mod03(&s);
        let m06 = to_mod06(&s);
        let back = swath_from_products(&m02, &m03, &m06).unwrap();
        assert_eq!(back.id, s.id);
        assert_eq!(back.dims, s.dims);
        assert_eq!(back.bands, s.bands);
        assert_eq!(back.radiance, s.radiance);
        assert_eq!(back.lat, s.lat);
        assert_eq!(back.lon, s.lon);
        assert_eq!(back.land, s.land);
        assert_eq!(back.cloud, s.cloud);
        assert_eq!(back.cot, s.cot);
        assert_eq!(back.ctp, s.ctp);
        assert_eq!(back.cer, s.cer);
        assert_eq!(back.day, s.day);
    }

    #[test]
    fn round_trip_through_bytes() {
        let s = swath();
        let m02 = Container::decode(&to_mod02(&s).encode()).unwrap();
        let m03 = Container::decode(&to_mod03(&s).encode()).unwrap();
        let m06 = Container::decode(&to_mod06(&s).encode()).unwrap();
        let back = swath_from_products(&m02, &m03, &m06).unwrap();
        assert_eq!(back.radiance, s.radiance);
    }

    #[test]
    fn mismatched_granules_rejected() {
        let sy = SwathSynthesizer::new(2022, SwathDims::small());
        let a = sy.synthesize(GranuleId::new(
            Platform::Terra,
            CivilDate::new(2022, 1, 1).unwrap(),
            0,
        ));
        let b = sy.synthesize(GranuleId::new(
            Platform::Terra,
            CivilDate::new(2022, 1, 1).unwrap(),
            1,
        ));
        let err = swath_from_products(&to_mod02(&a), &to_mod03(&b), &to_mod06(&a)).unwrap_err();
        assert_eq!(err, ProductFileError::GranuleMismatch);
    }

    #[test]
    fn missing_dataset_rejected() {
        let s = swath();
        let mut m03 = to_mod03(&s);
        m03.datasets.retain(|d| d.name != "latitude");
        let err = swath_from_products(&to_mod02(&s), &m03, &to_mod06(&s)).unwrap_err();
        assert_eq!(err, ProductFileError::MissingDataset("latitude".into()));
    }

    #[test]
    fn missing_attr_rejected() {
        let s = swath();
        let mut m02 = to_mod02(&s);
        m02.attrs.remove("slot");
        let err = swath_from_products(&m02, &to_mod03(&s), &to_mod06(&s)).unwrap_err();
        assert_eq!(err, ProductFileError::BadAttr("slot"));
    }

    #[test]
    fn mod02_container_has_expected_attrs() {
        let s = swath();
        let c = to_mod02(&s);
        assert_eq!(c.attrs["product"], "MOD021KM");
        assert_eq!(c.attrs["platform"], "Terra");
        assert_eq!(c.attrs["bands"], "6,7,20,28,29,31");
        assert_eq!(c.datasets.len(), 6);
    }

    #[test]
    fn container_sizes_scale_with_dims() {
        let s = swath();
        let m02 = to_mod02(&s).encode();
        let m03 = to_mod03(&s).encode();
        let m06 = to_mod06(&s).encode();
        // 6 f32 planes vs 2 f32 + 1 u8 vs 3 f32 + 1 u8.
        assert!(m02.len() > m06.len());
        assert!(m06.len() > m03.len());
        // MOD02 ≈ 6 × 4 bytes per pixel.
        let n = s.dims.len();
        assert!((m02.len() as f64 - (24 * n) as f64).abs() / ((24 * n) as f64) < 0.01);
    }
}

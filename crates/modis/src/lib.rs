//! `eoml-modis` — a synthetic MODIS instrument and archive.
//!
//! The paper's workflow consumes three NASA MODIS data products:
//!
//! * **MOD02** (`MOD021KM`/`MYD021KM`) — Level-1B calibrated radiances,
//!   36 spectral bands, 2030 × 1354 pixels per 5-minute granule;
//! * **MOD03** (`MOD03`/`MYD03`) — per-pixel geolocation (latitude,
//!   longitude) and land/sea flags;
//! * **MOD06** (`MOD06_L2`/`MYD06_L2`) — Level-2 cloud products (cloud mask,
//!   optical thickness, top pressure, effective radius).
//!
//! None of these are available here (LAADS DAAC is an external service and
//! the files are HDF4), so this crate *is* the substitution: a deterministic
//! synthesizer that produces physically plausible granules from a seed, a
//! self-describing binary container standing in for HDF4, and a LAADS-style
//! catalog that the transfer fabric downloads from.
//!
//! Layout:
//!
//! * [`product`] — platforms, products, spectral bands, the 6 AICCA bands.
//! * [`granule`] — granule identity (platform, date, 5-minute slot) and the
//!   LAADS filename convention.
//! * [`synth`] — the swath synthesizer: orbital geolocation + procedural
//!   cloud fields + radiative transfer toy model → [`synth::Swath`].
//! * [`container`] — the `EOGR` binary granule container (HDF4 stand-in)
//!   with CRC-32-validated datasets.
//! * [`catalog`] — per-day file listings with realistic size statistics
//!   (MOD02 ≈ 32 GB/day, MOD03 ≈ 8.4 GB/day, MOD06 ≈ 18 GB/day).

pub mod catalog;
pub mod container;
pub mod files;
pub mod granule;
pub mod product;
pub mod synth;

pub use catalog::{Catalog, CatalogEntry};
pub use container::{Container, Dataset, DatasetData};
pub use granule::{GranuleId, SLOTS_PER_DAY};
pub use product::{Platform, ProductKind, AICCA_BANDS};
pub use synth::{Swath, SwathDims, SwathSynthesizer};

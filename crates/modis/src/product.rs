//! Platforms, products and spectral bands.

use std::fmt;

/// The two MODIS host platforms. `MOD*` product names refer to Terra,
/// `MYD*` to Aqua.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    /// EOS AM-1, in operation since 2000, ~10:30 descending node.
    Terra,
    /// EOS PM-1, in operation since 2002, ~13:30 ascending node.
    Aqua,
}

impl Platform {
    /// Product prefix: `MOD` for Terra, `MYD` for Aqua.
    pub fn prefix(&self) -> &'static str {
        match self {
            Platform::Terra => "MOD",
            Platform::Aqua => "MYD",
        }
    }

    /// First year with data for this platform.
    pub fn first_year(&self) -> i32 {
        match self {
            Platform::Terra => 2000,
            Platform::Aqua => 2002,
        }
    }

    /// Both platforms.
    pub fn all() -> [Platform; 2] {
        [Platform::Terra, Platform::Aqua]
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Terra => write!(f, "Terra"),
            Platform::Aqua => write!(f, "Aqua"),
        }
    }
}

/// The three product families the workflow consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProductKind {
    /// Level-1B calibrated radiances at 1 km (`MOD021KM`).
    Mod02,
    /// Geolocation at 1 km (`MOD03`).
    Mod03,
    /// Level-2 cloud product (`MOD06_L2`).
    Mod06,
}

impl ProductKind {
    /// LAADS short name for the product on `platform`.
    pub fn short_name(&self, platform: Platform) -> String {
        let p = platform.prefix();
        match self {
            ProductKind::Mod02 => format!("{p}021KM"),
            ProductKind::Mod03 => format!("{p}03"),
            ProductKind::Mod06 => format!("{p}06_L2"),
        }
    }

    /// Parse a short name back to `(kind, platform)`.
    pub fn parse_short_name(name: &str) -> Option<(ProductKind, Platform)> {
        let platform = if name.starts_with("MOD") {
            Platform::Terra
        } else if name.starts_with("MYD") {
            Platform::Aqua
        } else {
            return None;
        };
        let kind = match &name[3..] {
            "021KM" => ProductKind::Mod02,
            "03" => ProductKind::Mod03,
            "06_L2" => ProductKind::Mod06,
            _ => return None,
        };
        Some((kind, platform))
    }

    /// Nominal archive volume per day (from the paper §III: ≈32 GB MOD02,
    /// 8.4 GB MOD03, 18 GB MOD06 per day of 288 granules).
    pub fn nominal_daily_bytes(&self) -> u64 {
        match self {
            ProductKind::Mod02 => 32_000_000_000,
            ProductKind::Mod03 => 8_400_000_000,
            ProductKind::Mod06 => 18_000_000_000,
        }
    }

    /// All three products.
    pub fn all() -> [ProductKind; 3] {
        [ProductKind::Mod02, ProductKind::Mod03, ProductKind::Mod06]
    }
}

impl fmt::Display for ProductKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProductKind::Mod02 => write!(f, "MOD02"),
            ProductKind::Mod03 => write!(f, "MOD03"),
            ProductKind::Mod06 => write!(f, "MOD06"),
        }
    }
}

/// The six MODIS bands used by AICCA/RICC tiles (1-based band numbers).
/// Bands 6 and 7 are shortwave-infrared reflective bands, 20 and 28–31 are
/// thermal emissive bands — the combination is informative for cloud texture
/// and phase and remains available at night (except 6/7).
pub const AICCA_BANDS: [u8; 6] = [6, 7, 20, 28, 29, 31];

/// Number of spectral bands on the MODIS instrument.
pub const MODIS_BAND_COUNT: usize = 36;

/// Center wavelength in micrometres for each MODIS band (1-based index into
/// a table of 36). Values follow the MODIS instrument specification closely
/// enough for the synthesizer's toy radiative model.
pub fn band_center_um(band: u8) -> f64 {
    const CENTERS: [f64; 36] = [
        0.645, 0.858, 0.469, 0.555, 1.240, 1.640, 2.130, 0.412, 0.443, 0.488, // 1-10
        0.531, 0.551, 0.667, 0.678, 0.748, 0.869, 0.905, 0.936, 0.940, 3.750, // 11-20
        3.959, 3.959, 4.050, 4.465, 4.515, 1.375, 6.715, 7.325, 8.550, 9.730, // 21-30
        11.030, 12.020, 13.335, 13.635, 13.935, 14.235, // 31-36
    ];
    assert!((1..=36).contains(&band), "MODIS bands are 1–36, got {band}");
    CENTERS[(band - 1) as usize]
}

/// Whether a band is reflective solar (daylight only) as opposed to thermal
/// emissive (available day and night). Bands 1–19 and 26 are reflective.
pub fn is_reflective_band(band: u8) -> bool {
    (1..=19).contains(&band) || band == 26
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_match_laads_conventions() {
        assert_eq!(ProductKind::Mod02.short_name(Platform::Terra), "MOD021KM");
        assert_eq!(ProductKind::Mod02.short_name(Platform::Aqua), "MYD021KM");
        assert_eq!(ProductKind::Mod03.short_name(Platform::Terra), "MOD03");
        assert_eq!(ProductKind::Mod06.short_name(Platform::Aqua), "MYD06_L2");
    }

    #[test]
    fn parse_round_trip() {
        for kind in ProductKind::all() {
            for platform in Platform::all() {
                let name = kind.short_name(platform);
                assert_eq!(ProductKind::parse_short_name(&name), Some((kind, platform)));
            }
        }
        assert_eq!(ProductKind::parse_short_name("MOD35"), None);
        assert_eq!(ProductKind::parse_short_name("VIIRS"), None);
    }

    #[test]
    fn daily_volumes_match_paper() {
        assert_eq!(ProductKind::Mod02.nominal_daily_bytes(), 32_000_000_000);
        assert_eq!(ProductKind::Mod03.nominal_daily_bytes(), 8_400_000_000);
        assert_eq!(ProductKind::Mod06.nominal_daily_bytes(), 18_000_000_000);
    }

    #[test]
    fn aicca_bands_are_valid_and_sorted() {
        assert_eq!(AICCA_BANDS.len(), 6);
        let mut sorted = AICCA_BANDS;
        sorted.sort_unstable();
        assert_eq!(sorted, AICCA_BANDS);
        for b in AICCA_BANDS {
            assert!((1..=36).contains(&b));
            let _ = band_center_um(b);
        }
    }

    #[test]
    fn band_wavelengths_sane() {
        // Band 1 is red visible, band 31 the classic 11 µm thermal window.
        assert!((band_center_um(1) - 0.645).abs() < 1e-9);
        assert!((band_center_um(31) - 11.03).abs() < 1e-9);
        // All in MODIS's 0.4–14.4 µm range.
        for b in 1..=36 {
            let wl = band_center_um(b);
            assert!((0.4..=14.4).contains(&wl), "band {b}: {wl}");
        }
    }

    #[test]
    fn reflective_vs_emissive_split() {
        assert!(is_reflective_band(1));
        assert!(is_reflective_band(6));
        assert!(is_reflective_band(7));
        assert!(is_reflective_band(26));
        assert!(!is_reflective_band(20));
        assert!(!is_reflective_band(31));
        assert!(!is_reflective_band(36));
    }

    #[test]
    #[should_panic(expected = "MODIS bands are 1–36")]
    fn band_zero_panics() {
        band_center_um(0);
    }

    #[test]
    fn platform_metadata() {
        assert_eq!(Platform::Terra.prefix(), "MOD");
        assert_eq!(Platform::Aqua.prefix(), "MYD");
        assert_eq!(Platform::Terra.first_year(), 2000);
        assert_eq!(Platform::Aqua.first_year(), 2002);
        assert_eq!(Platform::Terra.to_string(), "Terra");
    }
}

//! The swath synthesizer — deterministic, physically plausible MODIS scenes.
//!
//! A [`Swath`] is the in-memory union of the three products for one granule:
//! radiances (MOD02), geolocation and land mask (MOD03), and cloud products
//! (MOD06). The synthesizer produces it from `(seed, granule id)` alone:
//!
//! * geolocation comes from the sun-synchronous orbit propagator, computed
//!   on a coarse lattice and interpolated through 3-D unit vectors (the same
//!   trick the real MOD03 5-km → 1-km interpolation uses, and robust across
//!   the antimeridian);
//! * cloudiness is a multi-octave fBm field in along-track/cross-track
//!   coordinates (continuous across granule boundaries) modulated by a
//!   latitude climatology (ITCZ and mid-latitude storm tracks are cloudier);
//! * radiances follow a toy radiative model: reflective bands respond to
//!   surface albedo and cloud optical thickness (and are missing at night,
//!   as in the real instrument), thermal bands to surface/cloud-top
//!   brightness temperature.

use crate::granule::GranuleId;
use crate::product::{is_reflective_band, AICCA_BANDS};
use eoml_geo::landmask::LandMask;
use eoml_geo::latlon::LatLon;
use eoml_geo::orbit::{OrbitParams, SunSyncOrbit, SwathGeometry};
use eoml_util::noise::Fbm;

/// Fill value for radiances that are unavailable (reflective bands at
/// night) — mirrors the `_FillValue` convention of the real product.
pub const RADIANCE_FILL: f32 = -999.0;

/// Swath raster dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwathDims {
    /// Along-track scan lines.
    pub lines: usize,
    /// Cross-track pixels per line.
    pub pixels: usize,
}

impl SwathDims {
    /// Full MODIS 1-km granule: 2030 × 1354.
    pub const fn modis() -> Self {
        Self {
            lines: 2030,
            pixels: 1354,
        }
    }

    /// Reduced size for tests and examples: 256 × 256 (4 × 2 tiles of 128²).
    pub const fn small() -> Self {
        Self {
            lines: 256,
            pixels: 256,
        }
    }

    /// Total pixel count.
    pub const fn len(&self) -> usize {
        self.lines * self.pixels
    }

    /// True if either dimension is zero.
    pub const fn is_empty(&self) -> bool {
        self.lines == 0 || self.pixels == 0
    }

    /// Flat index of `(line, pixel)`.
    pub const fn idx(&self, line: usize, pixel: usize) -> usize {
        line * self.pixels + pixel
    }
}

/// One granule's worth of co-registered fields (the union of MOD02, MOD03
/// and MOD06 for the pipeline's purposes).
#[derive(Debug, Clone)]
pub struct Swath {
    /// Which granule this is.
    pub id: GranuleId,
    /// Raster dimensions.
    pub dims: SwathDims,
    /// Band numbers present in `radiance`, in order.
    pub bands: Vec<u8>,
    /// Radiances, band-major: `radiance[b * dims.len() + idx]`.
    /// Reflective bands hold [`RADIANCE_FILL`] at night.
    pub radiance: Vec<f32>,
    /// Per-pixel latitude, degrees.
    pub lat: Vec<f32>,
    /// Per-pixel longitude, degrees.
    pub lon: Vec<f32>,
    /// 1 = land, 0 = ocean (from MOD03 land/sea flags).
    pub land: Vec<u8>,
    /// 1 = cloudy, 0 = clear (from the MOD06 cloud mask).
    pub cloud: Vec<u8>,
    /// Cloud optical thickness (0 where clear).
    pub cot: Vec<f32>,
    /// Cloud-top pressure, hPa (0 where clear).
    pub ctp: Vec<f32>,
    /// Cloud effective radius, µm (0 where clear).
    pub cer: Vec<f32>,
    /// Whether the granule is daytime (reflective bands valid).
    pub day: bool,
}

impl Swath {
    /// Fraction of pixels flagged cloudy.
    pub fn cloud_fraction(&self) -> f64 {
        if self.cloud.is_empty() {
            return 0.0;
        }
        self.cloud.iter().map(|&c| c as u64).sum::<u64>() as f64 / self.cloud.len() as f64
    }

    /// Fraction of pixels flagged ocean.
    pub fn ocean_fraction(&self) -> f64 {
        if self.land.is_empty() {
            return 0.0;
        }
        1.0 - self.land.iter().map(|&c| c as u64).sum::<u64>() as f64 / self.land.len() as f64
    }

    /// Radiance plane for band-list index `b` (not band number).
    pub fn band_plane(&self, b: usize) -> &[f32] {
        let n = self.dims.len();
        &self.radiance[b * n..(b + 1) * n]
    }
}

/// Deterministic generator of [`Swath`]s.
#[derive(Debug, Clone)]
pub struct SwathSynthesizer {
    seed: u64,
    dims: SwathDims,
    terra: SwathGeometry,
    aqua: SwathGeometry,
    landmask: LandMask,
    cloud_field: Fbm,
    cot_field: Fbm,
    ctp_field: Fbm,
    cer_field: Fbm,
}

impl SwathSynthesizer {
    /// Synthesizer for `seed` producing granules of `dims`.
    pub fn new(seed: u64, dims: SwathDims) -> Self {
        Self {
            seed,
            dims,
            terra: SwathGeometry::modis_1km(SunSyncOrbit::new(OrbitParams::terra())),
            aqua: SwathGeometry::modis_1km(SunSyncOrbit::new(OrbitParams::aqua())),
            landmask: LandMask::earth_like(seed),
            cloud_field: Fbm::new(seed ^ 0xC10D, 6),
            cot_field: Fbm::new(seed ^ 0x0C07, 5),
            ctp_field: Fbm::new(seed ^ 0x0C79, 4),
            cer_field: Fbm::new(seed ^ 0x0CE6, 4),
        }
    }

    /// The generator's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raster dimensions this synthesizer produces.
    pub fn dims(&self) -> SwathDims {
        self.dims
    }

    /// The land mask shared by all granules of this synthesizer.
    pub fn landmask(&self) -> &LandMask {
        &self.landmask
    }

    fn geometry(&self, id: &GranuleId) -> &SwathGeometry {
        match id.platform {
            crate::product::Platform::Terra => &self.terra,
            crate::product::Platform::Aqua => &self.aqua,
        }
    }

    /// Generate the full co-registered swath for `id`.
    pub fn synthesize(&self, id: GranuleId) -> Swath {
        let dims = self.dims;
        let n = dims.len();
        let geom = self.geometry(&id);

        let (lat, lon) = self.geolocate(id, geom);

        // Land mask from geolocation.
        let mut land = vec![0u8; n];
        for i in 0..n {
            let p = LatLon::new(lat[i] as f64, lon[i] as f64);
            land[i] = self.landmask.is_land(&p) as u8;
        }

        // Day/night from the solar zenith angle at the swath center (the
        // real product's criterion; reflective bands need sunlight).
        let center = dims.idx(dims.lines / 2, dims.pixels / 2);
        let center_pt = LatLon::new(lat[center] as f64, lon[center] as f64);
        let zenith = eoml_geo::solar::solar_zenith_deg(&center_pt, id.start_time());
        let day = zenith < 81.0;

        // Cloud fields in along-track/cross-track coordinates. The
        // along-track coordinate advances with the granule slot so that
        // consecutive granules are spatially continuous.
        let along0 = id.orbit_time_s() * 6.7; // ≈ km along track
        let scale = 1.0 / 96.0; // structures of ~100 km, like real cloud decks
        let mut cloud = vec![0u8; n];
        let mut cot = vec![0.0f32; n];
        let mut ctp = vec![0.0f32; n];
        let mut cer = vec![0.0f32; n];
        for line in 0..dims.lines {
            let y = (along0 + line as f64) * scale;
            for px in 0..dims.pixels {
                let i = dims.idx(line, px);
                let x = px as f64 * scale;
                let cf = self.cloud_field.sample(x, y);
                // Latitude climatology: cloudier at the ITCZ (0°) and the
                // mid-latitude storm tracks (±55°), drier in the subtropics.
                let latr = (lat[i] as f64).to_radians();
                let climo = 0.52 + 0.13 * (2.0 * latr).cos().powi(2)
                    - 0.12 * (latr.abs().to_degrees() / 90.0 - 0.3).powi(2);
                let threshold = 1.0 - climo.clamp(0.25, 0.75);
                if cf > threshold {
                    cloud[i] = 1;
                    let strength = ((cf - threshold) / (1.0 - threshold)).clamp(0.0, 1.0);
                    cot[i] = (strength as f32).powi(2) * 60.0
                        + 3.0 * self.cot_field.sample(x * 2.0, y * 2.0) as f32;
                    // Thicker clouds reach higher (lower pressure).
                    ctp[i] = 950.0
                        - 650.0 * strength as f32
                        - 100.0 * self.ctp_field.sample(x * 1.5, y * 1.5) as f32;
                    cer[i] = 6.0 + 28.0 * self.cer_field.sample(x * 3.0, y * 3.0) as f32;
                }
            }
        }

        // Radiances for the 6 AICCA bands.
        let bands: Vec<u8> = AICCA_BANDS.to_vec();
        let mut radiance = vec![0.0f32; bands.len() * n];
        for (b, &band) in bands.iter().enumerate() {
            let plane = &mut radiance[b * n..(b + 1) * n];
            if is_reflective_band(band) && !day {
                plane.fill(RADIANCE_FILL);
                continue;
            }
            for i in 0..n {
                let cloudy = cloud[i] == 1;
                let tau = cot[i];
                plane[i] = if is_reflective_band(band) {
                    // Reflectance-like: surface albedo plus cloud albedo
                    // 1 − e^(−τ/10), scaled per band.
                    let surf = if land[i] == 1 { 0.25 } else { 0.05 };
                    let cloud_albedo = if cloudy {
                        0.75 * (1.0 - (-tau / 10.0).exp())
                    } else {
                        0.0
                    };
                    let band_gain = if band == 6 { 1.0 } else { 0.8 };
                    band_gain * (surf + cloud_albedo * (1.0 - surf))
                } else {
                    // Brightness-temperature-like (K): warm surface, cold
                    // cloud tops; band-dependent small offsets.
                    let latr = (lat[i] as f64).to_radians();
                    let tsurf = 300.0 - 45.0 * latr.sin().powi(2) as f32
                        + if land[i] == 1 { 3.0 } else { 0.0 };
                    let t = if cloudy {
                        // Cloud-top temperature from pressure: ~200 K at
                        // 300 hPa up to ~285 K at 950 hPa.
                        let tc = 160.0 + 0.13 * ctp[i];
                        let emis = (1.0 - (-tau / 5.0).exp()).clamp(0.0, 1.0);
                        tsurf * (1.0 - emis) + tc * emis
                    } else {
                        tsurf
                    };
                    let band_offset = (band as f32 - 28.0) * 0.4;
                    t + band_offset
                };
            }
        }

        Swath {
            id,
            dims,
            bands,
            radiance,
            lat,
            lon,
            land,
            cloud,
            cot,
            ctp,
            cer,
            day,
        }
    }

    /// Geolocation on a coarse lattice + unit-vector bilinear interpolation.
    fn geolocate(&self, id: GranuleId, geom: &SwathGeometry) -> (Vec<f32>, Vec<f32>) {
        let dims = self.dims;
        let n = dims.len();
        let t0 = id.orbit_time_s();
        let line_dt = geom.line_period_s();
        const STEP: usize = 16;

        // Coarse lattice of unit vectors, inclusive of the far edges.
        let glines = dims.lines.div_ceil(STEP) + 1;
        let gpix = dims.pixels.div_ceil(STEP) + 1;
        let mut gx = vec![0.0f64; glines * gpix];
        let mut gy = vec![0.0f64; glines * gpix];
        let mut gz = vec![0.0f64; glines * gpix];
        for gl in 0..glines {
            // Lattice points may extend past the raster edge; the orbit and
            // swath geometry extrapolate smoothly, which keeps the cell
            // spacing uniform (clamping would skew edge interpolation).
            let line = gl * STEP;
            let t = t0 + line as f64 * line_dt;
            for gp in 0..gpix {
                let px_full = gp * STEP;
                // Map full-resolution pixel index into the instrument's
                // 1354-pixel scan so reduced rasters still span the swath.
                let k = px_full * geom.pixels_per_line / dims.pixels;
                let p = geom.pixel(t, k);
                let (la, lo) = (p.lat_rad(), p.lon_rad());
                let g = gl * gpix + gp;
                gx[g] = la.cos() * lo.cos();
                gy[g] = la.cos() * lo.sin();
                gz[g] = la.sin();
            }
        }

        let mut lat = vec![0.0f32; n];
        let mut lon = vec![0.0f32; n];
        for line in 0..dims.lines {
            let gl = line / STEP;
            let fl = (line % STEP) as f64 / STEP as f64;
            let gl1 = (gl + 1).min(glines - 1);
            for px in 0..dims.pixels {
                let gp = px / STEP;
                let fp = (px % STEP) as f64 / STEP as f64;
                let gp1 = (gp + 1).min(gpix - 1);
                let i00 = gl * gpix + gp;
                let i01 = gl * gpix + gp1;
                let i10 = gl1 * gpix + gp;
                let i11 = gl1 * gpix + gp1;
                let bilerp = |v: &[f64]| -> f64 {
                    let a = v[i00] * (1.0 - fp) + v[i01] * fp;
                    let b = v[i10] * (1.0 - fp) + v[i11] * fp;
                    a * (1.0 - fl) + b * fl
                };
                let (x, y, z) = (bilerp(&gx), bilerp(&gy), bilerp(&gz));
                let norm = (x * x + y * y + z * z).sqrt().max(1e-12);
                let i = dims.idx(line, px);
                lat[i] = (z / norm).asin().to_degrees() as f32;
                lon[i] = y.atan2(x).to_degrees() as f32;
            }
        }
        (lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::Platform;
    use eoml_util::timebase::CivilDate;

    fn synth() -> SwathSynthesizer {
        SwathSynthesizer::new(2022, SwathDims::small())
    }

    fn gid(slot: u16) -> GranuleId {
        GranuleId::new(Platform::Terra, CivilDate::new(2022, 1, 1).unwrap(), slot)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synth().synthesize(gid(100));
        let b = synth().synthesize(gid(100));
        assert_eq!(a.radiance, b.radiance);
        assert_eq!(a.cloud, b.cloud);
        assert_eq!(a.lat, b.lat);
    }

    #[test]
    fn different_granules_differ() {
        let a = synth().synthesize(gid(10));
        let b = synth().synthesize(gid(150));
        assert_ne!(a.lat, b.lat);
        assert_ne!(a.cloud, b.cloud);
    }

    #[test]
    fn dims_and_lengths_consistent() {
        let s = synth().synthesize(gid(7));
        let n = s.dims.len();
        assert_eq!(n, 256 * 256);
        assert_eq!(s.lat.len(), n);
        assert_eq!(s.lon.len(), n);
        assert_eq!(s.land.len(), n);
        assert_eq!(s.cloud.len(), n);
        assert_eq!(s.cot.len(), n);
        assert_eq!(s.radiance.len(), 6 * n);
        assert_eq!(s.bands, AICCA_BANDS.to_vec());
    }

    #[test]
    fn geolocation_is_plausible() {
        let s = synth().synthesize(gid(42));
        for i in 0..s.dims.len() {
            assert!((-90.0..=90.0).contains(&s.lat[i]), "lat {}", s.lat[i]);
            assert!((-180.0..=180.0).contains(&s.lon[i]), "lon {}", s.lon[i]);
        }
        // Neighbouring pixels are ≲ a few km apart → ≤ ~0.25° unless near
        // the antimeridian.
        let dims = s.dims;
        for line in 0..dims.lines - 1 {
            for px in 0..dims.pixels - 1 {
                let i = dims.idx(line, px);
                let j = dims.idx(line, px + 1);
                let dlat = (s.lat[i] - s.lat[j]).abs();
                assert!(dlat < 0.5, "lat jump {dlat} at ({line},{px})");
            }
        }
    }

    #[test]
    fn interpolated_geolocation_matches_direct() {
        // Interpolation error vs direct orbital computation should be tiny
        // (well under a pixel).
        let sy = synth();
        let id = gid(88);
        let s = sy.synthesize(id);
        let geom = SwathGeometry::modis_1km(SunSyncOrbit::new(OrbitParams::terra()));
        let t0 = id.orbit_time_s();
        let line_dt = geom.line_period_s();
        for &(line, px) in &[(5usize, 9usize), (100, 200), (200, 30), (255, 255)] {
            let t = t0 + line as f64 * line_dt;
            let k = px * geom.pixels_per_line / s.dims.pixels;
            let direct = geom.pixel(t, k);
            let i = s.dims.idx(line, px);
            let interp = LatLon::new(s.lat[i] as f64, s.lon[i] as f64);
            let err = direct.distance_km(&interp);
            assert!(err < 3.0, "interp error {err} km at ({line},{px})");
        }
    }

    #[test]
    fn cloud_fraction_is_moderate() {
        // Across many granules the mean cloud fraction should be earth-like
        // (~0.5 give or take) — neither clear-sky nor overcast everywhere.
        let sy = synth();
        let mean: f64 = (0..12)
            .map(|k| sy.synthesize(gid(k * 20)).cloud_fraction())
            .sum::<f64>()
            / 12.0;
        assert!((0.25..=0.8).contains(&mean), "mean cloud fraction {mean}");
    }

    #[test]
    fn cloud_products_zero_where_clear() {
        let s = synth().synthesize(gid(3));
        for i in 0..s.dims.len() {
            if s.cloud[i] == 0 {
                assert_eq!(s.cot[i], 0.0);
                assert_eq!(s.ctp[i], 0.0);
                assert_eq!(s.cer[i], 0.0);
            } else {
                assert!(s.cot[i] >= 0.0);
                assert!((150.0..=1000.0).contains(&s.ctp[i]), "ctp {}", s.ctp[i]);
                assert!((4.0..=40.0).contains(&s.cer[i]), "cer {}", s.cer[i]);
            }
        }
    }

    #[test]
    fn night_granules_have_fill_in_reflective_bands() {
        let sy = synth();
        // Find one day and one night granule.
        let mut day_seen = false;
        let mut night_seen = false;
        for slot in 0..288 {
            let s = sy.synthesize(gid(slot));
            let b6 = s.band_plane(0); // band 6, reflective
            let b31 = s.band_plane(5); // band 31, thermal
            if s.day {
                day_seen = true;
                assert!(b6.iter().all(|&v| v != RADIANCE_FILL));
            } else {
                night_seen = true;
                assert!(b6.iter().all(|&v| v == RADIANCE_FILL));
            }
            // Thermal bands always valid and in brightness-temp range.
            assert!(b31.iter().all(|&v| (150.0..=330.0).contains(&v)));
            if day_seen && night_seen {
                return;
            }
        }
        panic!("day_seen={day_seen} night_seen={night_seen}: need both in a day");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn thermal_radiance_colder_over_thick_cloud() {
        let sy = synth();
        // Average band-31 brightness temperature over thick-cloud pixels
        // must be colder than over clear pixels (that's the physics the
        // tile classifier keys on).
        let mut cold = (0.0f64, 0u32);
        let mut clear = (0.0f64, 0u32);
        for slot in [0, 40, 80, 120] {
            let s = sy.synthesize(gid(slot));
            let b31 = s.band_plane(5);
            for i in 0..s.dims.len() {
                if s.cloud[i] == 1 && s.cot[i] > 20.0 {
                    cold.0 += b31[i] as f64;
                    cold.1 += 1;
                } else if s.cloud[i] == 0 {
                    clear.0 += b31[i] as f64;
                    clear.1 += 1;
                }
            }
        }
        assert!(cold.1 > 100 && clear.1 > 100, "need both populations");
        let tc = cold.0 / cold.1 as f64;
        let ts = clear.0 / clear.1 as f64;
        assert!(tc < ts - 15.0, "thick cloud {tc} K vs clear {ts} K");
    }

    #[test]
    fn land_ocean_fractions_vary_by_granule() {
        let sy = synth();
        let fracs: Vec<f64> = (0..10)
            .map(|k| sy.synthesize(gid(k * 28)).ocean_fraction())
            .collect();
        let min = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fracs.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.05, "ocean fraction should vary: {fracs:?}");
    }

    #[test]
    fn cloud_mask_is_spatially_coherent() {
        // Cloud decks are ~100 km structures, so neighbouring scan lines
        // must agree almost everywhere — uncorrelated per-pixel masks would
        // make the ≥30 % tile filter meaningless.
        let s = synth().synthesize(gid(60));
        let dims = s.dims;
        let mut agree = 0u64;
        let mut total = 0u64;
        for line in 0..dims.lines - 1 {
            for px in 0..dims.pixels {
                if s.cloud[dims.idx(line, px)] == s.cloud[dims.idx(line + 1, px)] {
                    agree += 1;
                }
                total += 1;
            }
        }
        let coherence = agree as f64 / total as f64;
        assert!(coherence > 0.9, "line-to-line agreement {coherence}");
    }
}

//! The `EOGR` granule container — this repository's stand-in for HDF4.
//!
//! Real MODIS granules are HDF4 files; implementing HDF4 would add nothing
//! to the experiments, so granules are serialized in a small self-describing
//! container that preserves what matters to the pipeline: named,
//! multi-dimensional, typed datasets with attributes and end-to-end
//! integrity checking (per-dataset CRC-32, which the download stage uses to
//! detect corrupted transfers).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "EOGR"            4 bytes
//! version u16               currently 1
//! n_attrs u16
//!   per attr: klen u16, key utf-8, vlen u32, value utf-8
//! n_datasets u16
//!   per dataset:
//!     nlen u16, name utf-8
//!     dtype u8 (0 = f32, 1 = u8, 2 = i32)
//!     ndims u8, dims u32 × ndims
//!     crc32 u32 (of the raw data bytes)
//!     data  (elem_size × Π dims bytes)
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// Container format magic bytes.
pub const MAGIC: &[u8; 4] = b"EOGR";

/// Container format version.
pub const VERSION: u16 = 1;

/// Errors produced when decoding a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Buffer too short or a length field overruns it.
    Truncated,
    /// Magic bytes are not `EOGR`.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Attribute or dataset name is not valid UTF-8.
    BadUtf8,
    /// Unknown dtype tag.
    BadDtype(u8),
    /// A dataset's CRC-32 does not match its payload.
    ChecksumMismatch {
        /// Dataset whose checksum failed.
        dataset: String,
    },
    /// A dataset's declared shape implies a size that overflows.
    ShapeOverflow,
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::Truncated => write!(f, "container truncated"),
            ContainerError::BadMagic => write!(f, "bad magic (not an EOGR container)"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            ContainerError::BadDtype(d) => write!(f, "unknown dtype tag {d}"),
            ContainerError::ChecksumMismatch { dataset } => {
                write!(f, "checksum mismatch in dataset {dataset:?}")
            }
            ContainerError::ShapeOverflow => write!(f, "dataset shape overflows"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Typed dataset payload.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// Unsigned bytes (masks, flags).
    U8(Vec<u8>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
}

impl DatasetData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            DatasetData::F32(v) => v.len(),
            DatasetData::U8(v) => v.len(),
            DatasetData::I32(v) => v.len(),
        }
    }

    /// Whether the payload has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn dtype_tag(&self) -> u8 {
        match self {
            DatasetData::F32(_) => 0,
            DatasetData::U8(_) => 1,
            DatasetData::I32(_) => 2,
        }
    }

    fn elem_size(tag: u8) -> Option<usize> {
        match tag {
            0 => Some(4),
            1 => Some(1),
            2 => Some(4),
            _ => None,
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        match self {
            DatasetData::F32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            DatasetData::U8(v) => v.clone(),
            DatasetData::I32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        }
    }

    fn from_bytes(tag: u8, bytes: &[u8]) -> Result<Self, ContainerError> {
        match tag {
            0 => Ok(DatasetData::F32(
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            )),
            1 => Ok(DatasetData::U8(bytes.to_vec())),
            2 => Ok(DatasetData::I32(
                bytes
                    .chunks_exact(4)
                    .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            )),
            other => Err(ContainerError::BadDtype(other)),
        }
    }

    /// Borrow as `&[f32]`, if that is the payload type.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            DatasetData::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[u8]`, if that is the payload type.
    pub fn as_u8(&self) -> Option<&[u8]> {
        match self {
            DatasetData::U8(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[i32]`, if that is the payload type.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            DatasetData::I32(v) => Some(v),
            _ => None,
        }
    }
}

/// A named, shaped dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (e.g. `"radiance_b06"`).
    pub name: String,
    /// Dimension sizes, outermost first.
    pub dims: Vec<u32>,
    /// Payload; element count must equal the product of `dims`.
    pub data: DatasetData,
}

impl Dataset {
    /// Construct, asserting shape/payload agreement.
    pub fn new(name: impl Into<String>, dims: Vec<u32>, data: DatasetData) -> Self {
        let expect: usize = dims.iter().map(|&d| d as usize).product();
        assert_eq!(
            expect,
            data.len(),
            "dataset shape {dims:?} does not match payload length {}",
            data.len()
        );
        Self {
            name: name.into(),
            dims,
            data,
        }
    }
}

/// An in-memory granule container: string attributes plus datasets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Container {
    /// Global attributes (sorted map for deterministic serialization).
    pub attrs: BTreeMap<String, String>,
    /// Datasets in insertion order.
    pub datasets: Vec<Dataset>,
}

impl Container {
    /// Empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Append a dataset (builder style).
    pub fn with_dataset(mut self, ds: Dataset) -> Self {
        self.datasets.push(ds);
        self
    }

    /// Look up a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.attrs.len() as u16).to_le_bytes());
        for (k, v) in &self.attrs {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        out.extend_from_slice(&(self.datasets.len() as u16).to_le_bytes());
        for ds in &self.datasets {
            out.extend_from_slice(&(ds.name.len() as u16).to_le_bytes());
            out.extend_from_slice(ds.name.as_bytes());
            out.push(ds.data.dtype_tag());
            out.push(ds.dims.len() as u8);
            for &d in &ds.dims {
                out.extend_from_slice(&d.to_le_bytes());
            }
            let bytes = ds.data.to_bytes();
            out.extend_from_slice(&crc32(&bytes).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Deserialize and validate checksums.
    pub fn decode(buf: &[u8]) -> Result<Self, ContainerError> {
        let mut cur = Cursor { buf, pos: 0 };
        if cur.take(4)? != MAGIC {
            return Err(ContainerError::BadMagic);
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(ContainerError::BadVersion(version));
        }
        let n_attrs = cur.u16()?;
        let mut attrs = BTreeMap::new();
        for _ in 0..n_attrs {
            let klen = cur.u16()? as usize;
            let key = std::str::from_utf8(cur.take(klen)?)
                .map_err(|_| ContainerError::BadUtf8)?
                .to_string();
            let vlen = cur.u32()? as usize;
            let value = std::str::from_utf8(cur.take(vlen)?)
                .map_err(|_| ContainerError::BadUtf8)?
                .to_string();
            attrs.insert(key, value);
        }
        let n_datasets = cur.u16()?;
        let mut datasets = Vec::with_capacity(n_datasets as usize);
        for _ in 0..n_datasets {
            let nlen = cur.u16()? as usize;
            let name = std::str::from_utf8(cur.take(nlen)?)
                .map_err(|_| ContainerError::BadUtf8)?
                .to_string();
            let dtype = cur.u8()?;
            let elem = DatasetData::elem_size(dtype).ok_or(ContainerError::BadDtype(dtype))?;
            let ndims = cur.u8()? as usize;
            let mut dims = Vec::with_capacity(ndims);
            let mut count: usize = 1;
            for _ in 0..ndims {
                let d = cur.u32()?;
                count = count
                    .checked_mul(d as usize)
                    .ok_or(ContainerError::ShapeOverflow)?;
                dims.push(d);
            }
            let expected_crc = cur.u32()?;
            let nbytes = count
                .checked_mul(elem)
                .ok_or(ContainerError::ShapeOverflow)?;
            let bytes = cur.take(nbytes)?;
            if crc32(bytes) != expected_crc {
                return Err(ContainerError::ChecksumMismatch { dataset: name });
            }
            let data = DatasetData::from_bytes(dtype, bytes)?;
            datasets.push(Dataset { name, dims, data });
        }
        Ok(Self { attrs, datasets })
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ContainerError> {
        if self.pos + n > self.buf.len() {
            return Err(ContainerError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ContainerError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ContainerError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        Container::new()
            .with_attr("platform", "Terra")
            .with_attr("granule", "MOD.A2022001.0005")
            .with_dataset(Dataset::new(
                "radiance_b06",
                vec![2, 3],
                DatasetData::F32(vec![1.0, 2.5, -3.0, 0.0, 1e-9, 42.0]),
            ))
            .with_dataset(Dataset::new(
                "cloud_mask",
                vec![2, 3],
                DatasetData::U8(vec![0, 1, 1, 0, 0, 1]),
            ))
            .with_dataset(Dataset::new(
                "counts",
                vec![3],
                DatasetData::I32(vec![-1, 0, 7]),
            ))
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = sample();
        let bytes = c.encode();
        let back = Container::decode(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(Container::decode(&bytes), Err(ContainerError::BadMagic));
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert_eq!(
            Container::decode(&bytes),
            Err(ContainerError::BadVersion(99))
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = sample().encode();
        for cut in [0, 3, 5, 10, bytes.len() - 1] {
            let res = Container::decode(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_detects_payload_corruption() {
        let c = sample();
        let bytes = c.encode();
        // Flip a byte inside the f32 payload (near the end of the first
        // dataset region). Find the radiance data by scanning for the name.
        let name_pos = bytes
            .windows(12)
            .position(|w| w == b"radiance_b06")
            .unwrap();
        // name + dtype(1) + ndims(1) + dims(8) + crc(4) then data
        let data_pos = name_pos + 12 + 1 + 1 + 8 + 4;
        let mut corrupted = bytes.clone();
        corrupted[data_pos] ^= 0xFF;
        match Container::decode(&corrupted) {
            Err(ContainerError::ChecksumMismatch { dataset }) => {
                assert_eq!(dataset, "radiance_b06");
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn dataset_lookup() {
        let c = sample();
        assert!(c.dataset("cloud_mask").is_some());
        assert!(c.dataset("nope").is_none());
        let ds = c.dataset("counts").unwrap();
        assert_eq!(ds.data.as_i32(), Some(&[-1, 0, 7][..]));
        assert_eq!(ds.data.as_f32(), None);
    }

    #[test]
    #[should_panic(expected = "does not match payload length")]
    fn dataset_shape_mismatch_panics() {
        Dataset::new("x", vec![2, 2], DatasetData::U8(vec![1, 2, 3]));
    }

    #[test]
    fn empty_container_round_trip() {
        let c = Container::new();
        let back = Container::decode(&c.encode()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn unicode_attrs_round_trip() {
        let c = Container::new().with_attr("τ", "café ☁");
        let back = Container::decode(&c.encode()).unwrap();
        assert_eq!(back.attrs["τ"], "café ☁");
    }
}

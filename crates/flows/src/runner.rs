//! The flow runner: executes a definition against action providers,
//! recording a per-transition event log.

use crate::definition::{FlowDefinition, FlowState};
use serde_json::{Map, Value};
use std::collections::HashMap;
use std::fmt;

eoml_util::typed_id!(
    /// Identifier of a flow run.
    RunId,
    "run"
);

/// Something that can execute a named action.
pub trait ActionProvider {
    /// Execute `action` with resolved `params`; may read the run context.
    fn invoke(&mut self, action: &str, params: &Value, ctx: &Value) -> Result<Value, String>;
}

impl<F> ActionProvider for F
where
    F: FnMut(&str, &Value, &Value) -> Result<Value, String>,
{
    fn invoke(&mut self, action: &str, params: &Value, ctx: &Value) -> Result<Value, String> {
        self(action, params, ctx)
    }
}

/// Terminal status of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Reached a `succeed` state.
    Succeeded,
    /// Reached a `fail` state or an action errored.
    Failed(String),
}

impl RunStatus {
    /// Whether the run succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, RunStatus::Succeeded)
    }
}

/// One entry in the run's event log.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEvent {
    /// State name.
    pub state: String,
    /// Virtual seconds since run start when the state was entered.
    pub entered_at: f64,
    /// Virtual seconds spent in the state (action time, wait time, or the
    /// per-transition overhead for control states).
    pub duration: f64,
}

/// A completed flow run.
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// Run id.
    pub id: RunId,
    /// Terminal status.
    pub status: RunStatus,
    /// Final context.
    pub context: Value,
    /// Per-state event log in execution order.
    pub events: Vec<FlowEvent>,
}

impl FlowRun {
    /// Total virtual duration of the run.
    pub fn total_duration(&self) -> f64 {
        self.events.iter().map(|e| e.duration).sum()
    }

    /// Sum of per-transition overheads (everything except action/wait
    /// bodies) — the quantity Fig. 7 reports as ≈50 ms per action hop.
    pub fn overhead(&self) -> f64 {
        self.events.len() as f64 * 0.0 // overhead is folded into durations; see runner
    }
}

/// Resolve `$.a.b` expressions against the context; non-`$.` values pass
/// through unchanged, and objects/arrays are resolved recursively.
pub fn resolve_params(params: &Value, ctx: &Value) -> Value {
    match params {
        Value::String(s) if s.starts_with("$.") => {
            lookup_path(ctx, &s[2..]).cloned().unwrap_or(Value::Null)
        }
        Value::Object(map) => Value::Object(
            map.iter()
                .map(|(k, v)| (k.clone(), resolve_params(v, ctx)))
                .collect::<Map<String, Value>>(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(|v| resolve_params(v, ctx)).collect()),
        other => other.clone(),
    }
}

/// Dot-path lookup: `lookup_path(ctx, "a.b")` → `ctx["a"]["b"]`.
pub fn lookup_path<'a>(ctx: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = ctx;
    for part in path.split('.') {
        cur = cur.get(part)?;
    }
    Some(cur)
}

/// Executes flows; holds the provider table and a per-transition overhead
/// model (virtual seconds added per state transition, matching the ~50 ms
/// Globus Flows action overhead).
pub struct FlowRunner<'a> {
    providers: HashMap<String, &'a mut dyn ActionProvider>,
    /// Virtual seconds charged per state transition.
    pub transition_overhead: f64,
    /// Safety limit on state transitions per run.
    pub max_steps: usize,
    next_run: u64,
}

impl fmt::Debug for FlowRunner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowRunner")
            .field("providers", &self.providers.keys().collect::<Vec<_>>())
            .field("transition_overhead", &self.transition_overhead)
            .finish()
    }
}

impl<'a> FlowRunner<'a> {
    /// Runner with a 50 ms transition overhead and a 10 000-step limit.
    pub fn new() -> Self {
        Self {
            providers: HashMap::new(),
            transition_overhead: 0.05,
            max_steps: 10_000,
            next_run: 1,
        }
    }

    /// Register an action provider under `name`.
    pub fn register(&mut self, name: impl Into<String>, provider: &'a mut dyn ActionProvider) {
        self.providers.insert(name.into(), provider);
    }

    /// Execute `flow` with the given initial `input` (stored at
    /// `context.input`).
    pub fn run(&mut self, flow: &FlowDefinition, input: Value) -> FlowRun {
        let id = RunId::from_raw(self.next_run);
        self.next_run += 1;
        let mut ctx = serde_json::json!({ "input": input });
        let mut events = Vec::new();
        let mut clock = 0.0f64;
        let mut current = flow.start_at.clone();

        for _ in 0..self.max_steps {
            let state = flow.states.get(&current).expect("validated definition");
            let entered_at = clock;
            let (duration, outcome) = match state {
                FlowState::Succeed => {
                    events.push(FlowEvent {
                        state: current.clone(),
                        entered_at,
                        duration: self.transition_overhead,
                    });
                    return FlowRun {
                        id,
                        status: RunStatus::Succeeded,
                        context: ctx,
                        events,
                    };
                }
                FlowState::Fail { error } => {
                    events.push(FlowEvent {
                        state: current.clone(),
                        entered_at,
                        duration: self.transition_overhead,
                    });
                    return FlowRun {
                        id,
                        status: RunStatus::Failed(error.clone()),
                        context: ctx,
                        events,
                    };
                }
                FlowState::Pass { next } => (self.transition_overhead, Ok(next.clone())),
                FlowState::Wait { seconds, next } => {
                    (self.transition_overhead + seconds, Ok(next.clone()))
                }
                FlowState::Choice {
                    variable,
                    cases,
                    default,
                } => {
                    let path = variable.strip_prefix("$.").unwrap_or(variable);
                    let actual = lookup_path(&ctx, path).cloned().unwrap_or(Value::Null);
                    let target = cases
                        .iter()
                        .find(|(v, _)| *v == actual)
                        .map(|(_, n)| n.clone())
                        .unwrap_or_else(|| default.clone());
                    (self.transition_overhead, Ok(target))
                }
                FlowState::Action {
                    provider,
                    parameters,
                    result_path,
                    next,
                } => {
                    let resolved = resolve_params(parameters, &ctx);
                    match self.providers.get_mut(provider.as_str()) {
                        None => (
                            self.transition_overhead,
                            Err(format!("no provider named {provider:?}")),
                        ),
                        Some(p) => match p.invoke(provider, &resolved, &ctx) {
                            Ok(result) => {
                                // Actions may report their own virtual
                                // duration via a `_duration` field.
                                let action_time = result
                                    .get("_duration")
                                    .and_then(Value::as_f64)
                                    .unwrap_or(0.0);
                                if let Some(rp) = result_path {
                                    ctx[rp.as_str()] = result;
                                }
                                (self.transition_overhead + action_time, Ok(next.clone()))
                            }
                            Err(e) => (self.transition_overhead, Err(e)),
                        },
                    }
                }
            };
            clock += duration;
            events.push(FlowEvent {
                state: current.clone(),
                entered_at,
                duration,
            });
            match outcome {
                Ok(next) => current = next,
                Err(e) => {
                    return FlowRun {
                        id,
                        status: RunStatus::Failed(e),
                        context: ctx,
                        events,
                    };
                }
            }
        }
        FlowRun {
            id,
            status: RunStatus::Failed(format!("exceeded {} steps", self.max_steps)),
            context: ctx,
            events,
        }
    }
}

impl Default for FlowRunner<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn linear_flow() -> FlowDefinition {
        FlowDefinition::from_json(&json!({
            "start_at": "A",
            "states": {
                "A": {"type": "action", "provider": "stamp",
                       "parameters": {"tag": "a", "file": "$.input.file"},
                       "result_path": "out_a", "next": "B"},
                "B": {"type": "action", "provider": "stamp",
                       "parameters": {"tag": "b", "prev": "$.out_a.tag"},
                       "result_path": "out_b", "next": "Done"},
                "Done": {"type": "succeed"}
            }
        }))
        .unwrap()
    }

    #[test]
    fn linear_flow_runs_and_threads_context() {
        let mut calls: Vec<Value> = Vec::new();
        let mut provider = |_: &str, params: &Value, _: &Value| {
            calls.push(params.clone());
            Ok(json!({"tag": params["tag"], "_duration": 1.0}))
        };
        let mut runner = FlowRunner::new();
        runner.register("stamp", &mut provider);
        let run = runner.run(&linear_flow(), json!({"file": "tiles.nc"}));
        assert!(run.status.is_success());
        assert_eq!(run.events.len(), 3);
        assert_eq!(run.events[0].state, "A");
        assert_eq!(run.events[2].state, "Done");
        // Each action: 1.0 s body + 0.05 overhead; terminal adds overhead.
        assert!((run.total_duration() - 2.15).abs() < 1e-9);
        drop(runner);
        // Param resolution: B saw A's output through the context.
        assert_eq!(calls[1]["prev"], json!("a"));
        // Unresolvable paths become null.
        assert_eq!(calls[0]["file"], json!("tiles.nc"));
    }

    #[test]
    fn action_error_fails_run() {
        let mut provider =
            |_: &str, _: &Value, _: &Value| -> Result<Value, String> { Err("inference OOM".into()) };
        let mut runner = FlowRunner::new();
        runner.register("stamp", &mut provider);
        let run = runner.run(&linear_flow(), json!({}));
        assert_eq!(run.status, RunStatus::Failed("inference OOM".into()));
        assert_eq!(run.events.len(), 1);
    }

    #[test]
    fn missing_provider_fails_run() {
        let mut runner = FlowRunner::new();
        let run = runner.run(&linear_flow(), json!({}));
        match run.status {
            RunStatus::Failed(e) => assert!(e.contains("no provider"), "{e}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn choice_branches_and_default() {
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "C",
            "states": {
                "C": {"type": "choice", "variable": "$.input.kind",
                       "cases": [{"equals": "day", "next": "Day"}],
                       "default": "Night"},
                "Day": {"type": "succeed"},
                "Night": {"type": "fail", "error": "night granule"}
            }
        }))
        .unwrap();
        let mut runner = FlowRunner::new();
        assert!(runner.run(&flow, json!({"kind": "day"})).status.is_success());
        assert_eq!(
            runner.run(&flow, json!({"kind": "night"})).status,
            RunStatus::Failed("night granule".into())
        );
        assert_eq!(
            runner.run(&flow, json!({})).status,
            RunStatus::Failed("night granule".into()),
            "missing variable takes default"
        );
    }

    #[test]
    fn wait_accumulates_time() {
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "W",
            "states": {
                "W": {"type": "wait", "seconds": 2.5, "next": "Done"},
                "Done": {"type": "succeed"}
            }
        }))
        .unwrap();
        let mut runner = FlowRunner::new();
        let run = runner.run(&flow, json!({}));
        assert!((run.total_duration() - 2.6).abs() < 1e-9, "{}", run.total_duration());
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "A",
            "states": {
                "A": {"type": "pass", "next": "B"},
                "B": {"type": "pass", "next": "A"},
                "Done": {"type": "succeed"}
            }
        }));
        // Unreachable "Done" is rejected at validation, so build a loop that
        // includes a reachable-but-never-taken terminal via choice.
        let flow = match flow {
            Ok(f) => f,
            Err(_) => FlowDefinition::from_json(&json!({
                "start_at": "A",
                "states": {
                    "A": {"type": "choice", "variable": "$.never",
                           "cases": [{"equals": true, "next": "Done"}],
                           "default": "B"},
                    "B": {"type": "pass", "next": "A"},
                    "Done": {"type": "succeed"}
                }
            }))
            .unwrap(),
        };
        let mut runner = FlowRunner::new();
        runner.max_steps = 50;
        let run = runner.run(&flow, json!({}));
        match run.status {
            RunStatus::Failed(e) => assert!(e.contains("exceeded"), "{e}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transition_overhead_is_50ms_by_default() {
        let runner = FlowRunner::new();
        assert!((runner.transition_overhead - 0.05).abs() < 1e-12);
    }

    #[test]
    fn resolve_params_handles_nesting() {
        let ctx = json!({"a": {"b": [1, 2, 3]}, "s": "x"});
        let params = json!({
            "direct": "$.a.b",
            "nested": {"v": "$.s"},
            "list": ["$.s", "literal"],
            "missing": "$.nope.deep",
            "plain": 42
        });
        let r = resolve_params(&params, &ctx);
        assert_eq!(r["direct"], json!([1, 2, 3]));
        assert_eq!(r["nested"]["v"], json!("x"));
        assert_eq!(r["list"], json!(["x", "literal"]));
        assert_eq!(r["missing"], Value::Null);
        assert_eq!(r["plain"], 42);
    }

    #[test]
    fn run_ids_increment() {
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "Done",
            "states": {"Done": {"type": "succeed"}}
        }))
        .unwrap();
        let mut runner = FlowRunner::new();
        let a = runner.run(&flow, json!({}));
        let b = runner.run(&flow, json!({}));
        assert!(a.id < b.id);
    }
}

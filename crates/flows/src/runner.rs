//! The flow runner: executes a definition against action providers,
//! recording a per-transition event log.

use crate::definition::{FlowDefinition, FlowState};
use eoml_journal::{Journal, JournalError, JournalEvent, Storage};
use eoml_obs::{Obs, TraceContext};
use serde_json::{Map, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

eoml_util::typed_id!(
    /// Identifier of a flow run.
    RunId,
    "run"
);

/// Something that can execute a named action.
pub trait ActionProvider {
    /// Execute `action` with resolved `params`; may read the run context.
    fn invoke(&mut self, action: &str, params: &Value, ctx: &Value) -> Result<Value, String>;
}

impl<F> ActionProvider for F
where
    F: FnMut(&str, &Value, &Value) -> Result<Value, String>,
{
    fn invoke(&mut self, action: &str, params: &Value, ctx: &Value) -> Result<Value, String> {
        self(action, params, ctx)
    }
}

/// Terminal status of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Reached a `succeed` state.
    Succeeded,
    /// Reached a `fail` state or an action errored.
    Failed(String),
}

impl RunStatus {
    /// Whether the run succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, RunStatus::Succeeded)
    }
}

/// One entry in the run's event log.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEvent {
    /// State name.
    pub state: String,
    /// Virtual seconds since run start when the state was entered.
    pub entered_at: f64,
    /// Virtual seconds spent in the state (action time, wait time, or the
    /// per-transition overhead for control states).
    pub duration: f64,
}

/// A completed flow run.
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// Run id.
    pub id: RunId,
    /// Terminal status.
    pub status: RunStatus,
    /// Final context.
    pub context: Value,
    /// Per-state event log in execution order.
    pub events: Vec<FlowEvent>,
}

impl FlowRun {
    /// Total virtual duration of the run.
    pub fn total_duration(&self) -> f64 {
        self.events.iter().map(|e| e.duration).sum()
    }

    /// Sum of per-transition overheads (everything except action/wait
    /// bodies) — the quantity Fig. 7 reports as ≈50 ms per action hop.
    pub fn overhead(&self) -> f64 {
        self.events.len() as f64 * 0.0 // overhead is folded into durations; see runner
    }
}

/// Resolve `$.a.b` expressions against the context; non-`$.` values pass
/// through unchanged, and objects/arrays are resolved recursively.
pub fn resolve_params(params: &Value, ctx: &Value) -> Value {
    match params {
        Value::String(s) if s.starts_with("$.") => {
            lookup_path(ctx, &s[2..]).cloned().unwrap_or(Value::Null)
        }
        Value::Object(map) => Value::Object(
            map.iter()
                .map(|(k, v)| (k.clone(), resolve_params(v, ctx)))
                .collect::<Map<String, Value>>(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(|v| resolve_params(v, ctx)).collect()),
        other => other.clone(),
    }
}

/// Dot-path lookup: `lookup_path(ctx, "a.b")` → `ctx["a"]["b"]`.
pub fn lookup_path<'a>(ctx: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = ctx;
    for part in path.split('.') {
        cur = cur.get(part)?;
    }
    Some(cur)
}

/// Executes flows; holds the provider table and a per-transition overhead
/// model (virtual seconds added per state transition, matching the ~50 ms
/// Globus Flows action overhead).
pub struct FlowRunner<'a> {
    providers: HashMap<String, &'a mut dyn ActionProvider>,
    /// Virtual seconds charged per state transition.
    pub transition_overhead: f64,
    /// Safety limit on state transitions per run.
    pub max_steps: usize,
    /// Optional observability hub: every state transition becomes a
    /// sim-stamped `flow` span, and action states additionally feed the
    /// `action_seconds{stage="flow"}` latency histogram.
    pub obs: Option<Arc<Obs>>,
    /// Trace identity stamped onto every span the *next* runs record.
    /// Set it (or use [`FlowRunner::run_traced`]) when a run processes a
    /// single granule so its flow hops join that granule's end-to-end
    /// trace.
    pub current_trace: Option<TraceContext>,
    next_run: u64,
}

impl fmt::Debug for FlowRunner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowRunner")
            .field("providers", &self.providers.keys().collect::<Vec<_>>())
            .field("transition_overhead", &self.transition_overhead)
            .finish()
    }
}

impl<'a> FlowRunner<'a> {
    /// Runner with a 50 ms transition overhead and a 10 000-step limit.
    pub fn new() -> Self {
        Self {
            providers: HashMap::new(),
            transition_overhead: 0.05,
            max_steps: 10_000,
            obs: None,
            current_trace: None,
            next_run: 1,
        }
    }

    /// Attach an observability hub (see the `obs` field).
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Record one executed state into the hub, if attached: a
    /// `transitions` count, a `flow/<state>` span on the run's virtual
    /// clock, and per-action latency for action states.
    fn obs_event(&self, flow: &FlowDefinition, state: &str, entered_at: f64, duration: f64) {
        let Some(obs) = &self.obs else { return };
        obs.counter_add("transitions", "flow", 1);
        obs.record_sim_span_traced_secs(
            "flow",
            state,
            entered_at,
            entered_at + duration,
            self.current_trace.as_ref(),
        );
        if matches!(flow.states.get(state), Some(FlowState::Action { .. })) {
            obs.counter_add("actions", "flow", 1);
            obs.observe("action_seconds", "flow", duration);
        }
    }

    /// Register an action provider under `name`.
    pub fn register(&mut self, name: impl Into<String>, provider: &'a mut dyn ActionProvider) {
        self.providers.insert(name.into(), provider);
    }

    /// Execute one state of `flow`, mutating `ctx` in place. Returns either
    /// the terminal status or the next state to enter, plus the virtual time
    /// spent in the state.
    fn step(&mut self, flow: &FlowDefinition, current: &str, ctx: &mut Value) -> Step {
        let state = flow.states.get(current).expect("validated definition");
        match state {
            FlowState::Succeed => Step::Done {
                status: RunStatus::Succeeded,
                duration: self.transition_overhead,
            },
            FlowState::Fail { error } => Step::Done {
                status: RunStatus::Failed(error.clone()),
                duration: self.transition_overhead,
            },
            FlowState::Pass { next } => Step::Next {
                state: next.clone(),
                duration: self.transition_overhead,
            },
            FlowState::Wait { seconds, next } => Step::Next {
                state: next.clone(),
                duration: self.transition_overhead + seconds,
            },
            FlowState::Choice {
                variable,
                cases,
                default,
            } => {
                let path = variable.strip_prefix("$.").unwrap_or(variable);
                let actual = lookup_path(ctx, path).cloned().unwrap_or(Value::Null);
                let target = cases
                    .iter()
                    .find(|(v, _)| *v == actual)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_else(|| default.clone());
                Step::Next {
                    state: target,
                    duration: self.transition_overhead,
                }
            }
            FlowState::Action {
                provider,
                parameters,
                result_path,
                next,
            } => {
                let resolved = resolve_params(parameters, ctx);
                match self.providers.get_mut(provider.as_str()) {
                    None => Step::Done {
                        status: RunStatus::Failed(format!("no provider named {provider:?}")),
                        duration: self.transition_overhead,
                    },
                    Some(p) => match p.invoke(provider, &resolved, ctx) {
                        Ok(result) => {
                            // Actions may report their own virtual
                            // duration via a `_duration` field.
                            let action_time = result
                                .get("_duration")
                                .and_then(Value::as_f64)
                                .unwrap_or(0.0);
                            if let Some(rp) = result_path {
                                ctx[rp.as_str()] = result;
                            }
                            Step::Next {
                                state: next.clone(),
                                duration: self.transition_overhead + action_time,
                            }
                        }
                        Err(e) => Step::Done {
                            status: RunStatus::Failed(e),
                            duration: self.transition_overhead,
                        },
                    },
                }
            }
        }
    }

    /// Execute `flow` as [`FlowRunner::run`] does, stamping every span the
    /// run records with `trace` so the hops join that granule's
    /// end-to-end trace. The trace is cleared again before returning.
    pub fn run_traced(
        &mut self,
        flow: &FlowDefinition,
        input: Value,
        trace: &TraceContext,
    ) -> FlowRun {
        self.current_trace = Some(trace.clone());
        let run = self.run(flow, input);
        self.current_trace = None;
        run
    }

    /// Execute `flow` with the given initial `input` (stored at
    /// `context.input`).
    pub fn run(&mut self, flow: &FlowDefinition, input: Value) -> FlowRun {
        let id = RunId::from_raw(self.next_run);
        self.next_run += 1;
        let mut ctx = serde_json::json!({ "input": input });
        let mut events = Vec::new();
        let mut clock = 0.0f64;
        let mut current = flow.start_at.clone();

        for _ in 0..self.max_steps {
            let entered_at = clock;
            match self.step(flow, &current, &mut ctx) {
                Step::Done { status, duration } => {
                    self.obs_event(flow, &current, entered_at, duration);
                    events.push(FlowEvent {
                        state: current,
                        entered_at,
                        duration,
                    });
                    return FlowRun {
                        id,
                        status,
                        context: ctx,
                        events,
                    };
                }
                Step::Next { state, duration } => {
                    clock += duration;
                    self.obs_event(flow, &current, entered_at, duration);
                    events.push(FlowEvent {
                        state: current.clone(),
                        entered_at,
                        duration,
                    });
                    current = state;
                }
            }
        }
        FlowRun {
            id,
            status: RunStatus::Failed(format!("exceeded {} steps", self.max_steps)),
            context: ctx,
            events,
        }
    }

    /// Execute `flow` against a write-ahead `journal`, resuming run `run`
    /// from its last journaled transition.
    ///
    /// Every state entry is journaled as a [`JournalEvent::FlowTransition`]
    /// carrying the context accumulated so far, and the terminal outcome as a
    /// [`JournalEvent::FlowFinished`]. On restart:
    ///
    /// - a run the journal records as finished returns its terminal status
    ///   immediately, invoking no providers (context is not retained past the
    ///   finish event and comes back as `Null`);
    /// - an in-flight run resumes from the last durable transition with the
    ///   journaled context — states before it are never re-executed, while
    ///   the state that was in flight at the crash re-runs (at-least-once,
    ///   as with any write-ahead log).
    ///
    /// A failed append aborts the run with the journal's error; nothing past
    /// the failure is executed.
    pub fn run_journaled<S: Storage>(
        &mut self,
        flow: &FlowDefinition,
        input: Value,
        journal: &mut Journal<S>,
        run: u64,
    ) -> Result<FlowRun, JournalError> {
        let id = RunId::from_raw(run);
        if let Some(status) = journal.state().flows_finished.get(&run) {
            let status = match status.strip_prefix("failed:") {
                Some(e) => RunStatus::Failed(e.to_string()),
                None => RunStatus::Succeeded,
            };
            return Ok(FlowRun {
                id,
                status,
                context: Value::Null,
                events: Vec::new(),
            });
        }
        let (mut current, mut ctx) = match journal.state().flow_states.get(&run) {
            Some((state, context)) => (state.clone(), context.clone()),
            None => {
                let ctx = serde_json::json!({ "input": input });
                journal.append(JournalEvent::FlowTransition {
                    run,
                    state: flow.start_at.clone(),
                    context: ctx.clone(),
                })?;
                (flow.start_at.clone(), ctx)
            }
        };
        let mut events = Vec::new();
        let mut clock = 0.0f64;
        for _ in 0..self.max_steps {
            let entered_at = clock;
            match self.step(flow, &current, &mut ctx) {
                Step::Done { status, duration } => {
                    self.obs_event(flow, &current, entered_at, duration);
                    events.push(FlowEvent {
                        state: current,
                        entered_at,
                        duration,
                    });
                    let tag = match &status {
                        RunStatus::Succeeded => "succeeded".to_string(),
                        RunStatus::Failed(e) => format!("failed:{e}"),
                    };
                    journal.append(JournalEvent::FlowFinished { run, status: tag })?;
                    return Ok(FlowRun {
                        id,
                        status,
                        context: ctx,
                        events,
                    });
                }
                Step::Next { state, duration } => {
                    clock += duration;
                    self.obs_event(flow, &current, entered_at, duration);
                    events.push(FlowEvent {
                        state: current.clone(),
                        entered_at,
                        duration,
                    });
                    journal.append(JournalEvent::FlowTransition {
                        run,
                        state: state.clone(),
                        context: ctx.clone(),
                    })?;
                    current = state;
                }
            }
        }
        let status = RunStatus::Failed(format!("exceeded {} steps", self.max_steps));
        journal.append(JournalEvent::FlowFinished {
            run,
            status: format!("failed:exceeded {} steps", self.max_steps),
        })?;
        Ok(FlowRun {
            id,
            status,
            context: ctx,
            events,
        })
    }
}

/// Outcome of executing a single state.
enum Step {
    /// The run reached a terminal state (or failed).
    Done { status: RunStatus, duration: f64 },
    /// Continue to the named state.
    Next { state: String, duration: f64 },
}

impl Default for FlowRunner<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn observed_runner_records_transitions_and_action_latency() {
        let obs = Obs::shared();
        let mut stamp = |_: &str, params: &Value, _: &Value| {
            let mut out = params.clone();
            out["_duration"] = json!(0.25);
            Ok(out)
        };
        let flow = linear_flow();
        let run = {
            let mut runner = FlowRunner::new().with_obs(Arc::clone(&obs));
            runner.register("stamp", &mut stamp);
            runner.run(&flow, json!({"file": "g1.eogr"}))
        };
        assert!(run.status.is_success());
        let m = obs.metrics();
        assert_eq!(
            m.counter_value("transitions", "flow"),
            Some(run.events.len() as u64)
        );
        assert_eq!(m.counter_value("actions", "flow"), Some(2));
        let h = m.histogram("action_seconds", "flow").unwrap();
        assert_eq!(h.count(), 2);
        // Each action: 50 ms overhead + 250 ms body.
        assert!((h.sum() - 0.6).abs() < 1e-9, "sum {}", h.sum());
        // One sim-stamped span per executed state, on the run's clock.
        let spans = obs.spans();
        assert_eq!(spans.len(), run.events.len());
        assert!(spans
            .iter()
            .all(|s| s.stage == "flow" && s.sim_start.is_some()));
        let total: f64 = spans.iter().map(|s| s.sim_seconds().unwrap()).sum();
        assert!((total - run.total_duration()).abs() < 1e-6);
    }

    #[test]
    fn traced_run_stamps_every_span_and_clears_the_trace() {
        let obs = Obs::shared();
        let mut stamp = |_: &str, params: &Value, _: &Value| {
            let mut out = params.clone();
            out["_duration"] = json!(0.25);
            Ok(out)
        };
        let flow = linear_flow();
        let mut runner = FlowRunner::new().with_obs(Arc::clone(&obs));
        runner.register("stamp", &mut stamp);
        let trace = TraceContext::new("MOD.A2022001.0610");
        let traced = runner.run_traced(&flow, json!({"file": "g1.eogr"}), &trace);
        assert!(traced.status.is_success());
        assert!(runner.current_trace.is_none(), "trace not cleared");
        // A later plain run must NOT inherit the previous trace.
        let plain = runner.run(&flow, json!({"file": "g2.eogr"}));
        assert!(plain.status.is_success());
        let spans = obs.spans();
        assert_eq!(spans.len(), traced.events.len() + plain.events.len());
        let tagged: Vec<_> = spans
            .iter()
            .filter(|s| s.trace_id.as_deref() == Some("MOD.A2022001.0610"))
            .collect();
        assert_eq!(tagged.len(), traced.events.len());
        assert!(spans[spans.len() - 1].trace_id.is_none());
    }

    fn linear_flow() -> FlowDefinition {
        FlowDefinition::from_json(&json!({
            "start_at": "A",
            "states": {
                "A": {"type": "action", "provider": "stamp",
                       "parameters": {"tag": "a", "file": "$.input.file"},
                       "result_path": "out_a", "next": "B"},
                "B": {"type": "action", "provider": "stamp",
                       "parameters": {"tag": "b", "prev": "$.out_a.tag"},
                       "result_path": "out_b", "next": "Done"},
                "Done": {"type": "succeed"}
            }
        }))
        .unwrap()
    }

    #[test]
    fn linear_flow_runs_and_threads_context() {
        let mut calls: Vec<Value> = Vec::new();
        let mut provider = |_: &str, params: &Value, _: &Value| {
            calls.push(params.clone());
            Ok(json!({"tag": params["tag"], "_duration": 1.0}))
        };
        let mut runner = FlowRunner::new();
        runner.register("stamp", &mut provider);
        let run = runner.run(&linear_flow(), json!({"file": "tiles.nc"}));
        assert!(run.status.is_success());
        assert_eq!(run.events.len(), 3);
        assert_eq!(run.events[0].state, "A");
        assert_eq!(run.events[2].state, "Done");
        // Each action: 1.0 s body + 0.05 overhead; terminal adds overhead.
        assert!((run.total_duration() - 2.15).abs() < 1e-9);
        drop(runner);
        // Param resolution: B saw A's output through the context.
        assert_eq!(calls[1]["prev"], json!("a"));
        // Unresolvable paths become null.
        assert_eq!(calls[0]["file"], json!("tiles.nc"));
    }

    #[test]
    fn action_error_fails_run() {
        let mut provider = |_: &str, _: &Value, _: &Value| -> Result<Value, String> {
            Err("inference OOM".into())
        };
        let mut runner = FlowRunner::new();
        runner.register("stamp", &mut provider);
        let run = runner.run(&linear_flow(), json!({}));
        assert_eq!(run.status, RunStatus::Failed("inference OOM".into()));
        assert_eq!(run.events.len(), 1);
    }

    #[test]
    fn missing_provider_fails_run() {
        let mut runner = FlowRunner::new();
        let run = runner.run(&linear_flow(), json!({}));
        match run.status {
            RunStatus::Failed(e) => assert!(e.contains("no provider"), "{e}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn choice_branches_and_default() {
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "C",
            "states": {
                "C": {"type": "choice", "variable": "$.input.kind",
                       "cases": [{"equals": "day", "next": "Day"}],
                       "default": "Night"},
                "Day": {"type": "succeed"},
                "Night": {"type": "fail", "error": "night granule"}
            }
        }))
        .unwrap();
        let mut runner = FlowRunner::new();
        assert!(runner
            .run(&flow, json!({"kind": "day"}))
            .status
            .is_success());
        assert_eq!(
            runner.run(&flow, json!({"kind": "night"})).status,
            RunStatus::Failed("night granule".into())
        );
        assert_eq!(
            runner.run(&flow, json!({})).status,
            RunStatus::Failed("night granule".into()),
            "missing variable takes default"
        );
    }

    #[test]
    fn wait_accumulates_time() {
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "W",
            "states": {
                "W": {"type": "wait", "seconds": 2.5, "next": "Done"},
                "Done": {"type": "succeed"}
            }
        }))
        .unwrap();
        let mut runner = FlowRunner::new();
        let run = runner.run(&flow, json!({}));
        assert!(
            (run.total_duration() - 2.6).abs() < 1e-9,
            "{}",
            run.total_duration()
        );
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "A",
            "states": {
                "A": {"type": "pass", "next": "B"},
                "B": {"type": "pass", "next": "A"},
                "Done": {"type": "succeed"}
            }
        }));
        // Unreachable "Done" is rejected at validation, so build a loop that
        // includes a reachable-but-never-taken terminal via choice.
        let flow = match flow {
            Ok(f) => f,
            Err(_) => FlowDefinition::from_json(&json!({
                "start_at": "A",
                "states": {
                    "A": {"type": "choice", "variable": "$.never",
                           "cases": [{"equals": true, "next": "Done"}],
                           "default": "B"},
                    "B": {"type": "pass", "next": "A"},
                    "Done": {"type": "succeed"}
                }
            }))
            .unwrap(),
        };
        let mut runner = FlowRunner::new();
        runner.max_steps = 50;
        let run = runner.run(&flow, json!({}));
        match run.status {
            RunStatus::Failed(e) => assert!(e.contains("exceeded"), "{e}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transition_overhead_is_50ms_by_default() {
        let runner = FlowRunner::new();
        assert!((runner.transition_overhead - 0.05).abs() < 1e-12);
    }

    #[test]
    fn resolve_params_handles_nesting() {
        let ctx = json!({"a": {"b": [1, 2, 3]}, "s": "x"});
        let params = json!({
            "direct": "$.a.b",
            "nested": {"v": "$.s"},
            "list": ["$.s", "literal"],
            "missing": "$.nope.deep",
            "plain": 42
        });
        let r = resolve_params(&params, &ctx);
        assert_eq!(r["direct"], json!([1, 2, 3]));
        assert_eq!(r["nested"]["v"], json!("x"));
        assert_eq!(r["list"], json!(["x", "literal"]));
        assert_eq!(r["missing"], Value::Null);
        assert_eq!(r["plain"], 42);
    }

    #[test]
    fn journaled_run_without_crash_matches_plain() {
        use eoml_journal::MemStorage;
        let mut provider = |_: &str, params: &Value, _: &Value| {
            Ok(json!({"tag": params["tag"], "_duration": 1.0}))
        };
        let plain = {
            let mut p = provider;
            let mut runner = FlowRunner::new();
            runner.register("stamp", &mut p);
            runner.run(&linear_flow(), json!({"file": "tiles.nc"}))
        };
        let (mut journal, _) = Journal::open(MemStorage::new()).unwrap();
        let mut runner = FlowRunner::new();
        runner.register("stamp", &mut provider);
        let journaled = runner
            .run_journaled(&linear_flow(), json!({"file": "tiles.nc"}), &mut journal, 7)
            .unwrap();
        assert_eq!(journaled.status, plain.status);
        assert_eq!(journaled.context, plain.context);
        assert_eq!(journaled.events.len(), plain.events.len());
        assert_eq!(journal.state().flows_finished.get(&7).unwrap(), "succeeded");
    }

    #[test]
    fn crashed_flow_resumes_from_last_transition() {
        use eoml_journal::MemStorage;
        use std::cell::Cell;
        let invocations = Cell::new(0usize);
        let mut provider = |_: &str, params: &Value, _: &Value| {
            invocations.set(invocations.get() + 1);
            Ok(json!({"tag": params["tag"], "_duration": 1.0}))
        };
        let baseline = {
            let mut p = |_: &str, params: &Value, _: &Value| -> Result<Value, String> {
                Ok(json!({"tag": params["tag"], "_duration": 1.0}))
            };
            let mut runner = FlowRunner::new();
            runner.register("stamp", &mut p);
            runner.run(&linear_flow(), json!({"file": "tiles.nc"}))
        };

        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        // Durable budget: start transition + A's successor transition, then
        // crash journaling the transition out of B.
        journal.crash_after(2);
        let mut runner = FlowRunner::new();
        runner.register("stamp", &mut provider);
        let crashed =
            runner.run_journaled(&linear_flow(), json!({"file": "tiles.nc"}), &mut journal, 7);
        assert!(crashed.is_err());
        let ran_before_crash = invocations.get();
        assert!(ran_before_crash >= 1, "crash fired before any state ran");

        let (mut journal, recovery) = Journal::open(store).unwrap();
        assert_eq!(recovery.events, 2);
        let resumed = runner
            .run_journaled(&linear_flow(), json!({"file": "tiles.nc"}), &mut journal, 7)
            .unwrap();
        assert_eq!(resumed.status, baseline.status);
        assert_eq!(resumed.context, baseline.context);
        // The durable prefix (state A) is skipped: the resumed run replays
        // fewer states than the full flow.
        assert!(resumed.events.len() < baseline.events.len());
        assert_eq!(journal.state().flows_finished.get(&7).unwrap(), "succeeded");
    }

    #[test]
    fn finished_flow_is_not_reexecuted() {
        use eoml_journal::MemStorage;
        use std::cell::Cell;
        let invocations = Cell::new(0usize);
        let mut provider = |_: &str, params: &Value, _: &Value| {
            invocations.set(invocations.get() + 1);
            Ok(json!({"tag": params["tag"], "_duration": 1.0}))
        };
        let (mut journal, _) = Journal::open(MemStorage::new()).unwrap();
        let mut runner = FlowRunner::new();
        runner.register("stamp", &mut provider);
        let first = runner
            .run_journaled(&linear_flow(), json!({"file": "tiles.nc"}), &mut journal, 3)
            .unwrap();
        let after_first = invocations.get();
        let again = runner
            .run_journaled(&linear_flow(), json!({"file": "tiles.nc"}), &mut journal, 3)
            .unwrap();
        assert_eq!(
            invocations.get(),
            after_first,
            "finished flow re-invoked providers"
        );
        assert_eq!(again.status, first.status);
        assert!(again.events.is_empty());
    }

    #[test]
    fn journaled_failure_status_round_trips() {
        use eoml_journal::MemStorage;
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "Boom",
            "states": {"Boom": {"type": "fail", "error": "night granule"}}
        }))
        .unwrap();
        let (mut journal, _) = Journal::open(MemStorage::new()).unwrap();
        let mut runner = FlowRunner::new();
        let first = runner
            .run_journaled(&flow, json!({}), &mut journal, 9)
            .unwrap();
        assert_eq!(first.status, RunStatus::Failed("night granule".into()));
        let again = runner
            .run_journaled(&flow, json!({}), &mut journal, 9)
            .unwrap();
        assert_eq!(again.status, RunStatus::Failed("night granule".into()));
    }

    #[test]
    fn run_ids_increment() {
        let flow = FlowDefinition::from_json(&json!({
            "start_at": "Done",
            "states": {"Done": {"type": "succeed"}}
        }))
        .unwrap();
        let mut runner = FlowRunner::new();
        let a = runner.run(&flow, json!({}));
        let b = runner.run(&flow, json!({}));
        assert!(a.id < b.id);
    }
}

//! Flow definitions: a JSON state machine in the style of Globus Flows /
//! Amazon States Language.
//!
//! ```json
//! {
//!   "start_at": "Infer",
//!   "states": {
//!     "Infer":  { "type": "action", "provider": "inference",
//!                  "parameters": {"file": "$.input.file"},
//!                  "result_path": "labels", "next": "Append" },
//!     "Append": { "type": "action", "provider": "append_labels",
//!                  "parameters": {"file": "$.input.file"}, "next": "Done" },
//!     "Done":   { "type": "succeed" }
//!   }
//! }
//! ```

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;

/// One state in a flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowState {
    /// Invoke an action provider.
    Action {
        /// Provider name to invoke.
        provider: String,
        /// Parameter template (strings of the form `$.a.b` are resolved
        /// against the run context).
        parameters: Value,
        /// Context key to store the action result under (optional).
        result_path: Option<String>,
        /// Next state.
        next: String,
    },
    /// Branch on a context value.
    Choice {
        /// `$.path` expression to evaluate.
        variable: String,
        /// `(expected value, next state)` cases, checked in order.
        cases: Vec<(Value, String)>,
        /// State when no case matches.
        default: String,
    },
    /// Delay (virtual seconds, recorded in the event log).
    Wait {
        /// Seconds to wait.
        seconds: f64,
        /// Next state.
        next: String,
    },
    /// No-op passthrough.
    Pass {
        /// Next state.
        next: String,
    },
    /// Terminal success.
    Succeed,
    /// Terminal failure.
    Fail {
        /// Error description.
        error: String,
    },
}

impl FlowState {
    fn next_states(&self) -> Vec<&str> {
        match self {
            FlowState::Action { next, .. }
            | FlowState::Wait { next, .. }
            | FlowState::Pass { next } => {
                vec![next]
            }
            FlowState::Choice { cases, default, .. } => {
                let mut v: Vec<&str> = cases.iter().map(|(_, n)| n.as_str()).collect();
                v.push(default);
                v
            }
            FlowState::Succeed | FlowState::Fail { .. } => Vec::new(),
        }
    }
}

/// A validated flow definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDefinition {
    /// Initial state name.
    pub start_at: String,
    /// States by name (ordered map for deterministic iteration).
    pub states: BTreeMap<String, FlowState>,
}

/// Definition parse/validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefinitionError {
    /// Top-level JSON is not an object or misses a field.
    Malformed(String),
    /// A state references an undefined state.
    DanglingNext {
        /// Referencing state.
        from: String,
        /// Missing target.
        to: String,
    },
    /// `start_at` names an undefined state.
    BadStart(String),
    /// No terminal (`succeed`/`fail`) state exists.
    NoTerminal,
    /// A state is unreachable from `start_at`.
    Unreachable(String),
}

impl fmt::Display for DefinitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefinitionError::Malformed(m) => write!(f, "malformed flow definition: {m}"),
            DefinitionError::DanglingNext { from, to } => {
                write!(f, "state {from:?} references undefined state {to:?}")
            }
            DefinitionError::BadStart(s) => write!(f, "start_at names undefined state {s:?}"),
            DefinitionError::NoTerminal => write!(f, "flow has no succeed/fail state"),
            DefinitionError::Unreachable(s) => write!(f, "state {s:?} is unreachable"),
        }
    }
}

impl std::error::Error for DefinitionError {}

fn malformed(m: impl Into<String>) -> DefinitionError {
    DefinitionError::Malformed(m.into())
}

impl FlowDefinition {
    /// Parse and validate a JSON definition.
    pub fn from_json(doc: &Value) -> Result<Self, DefinitionError> {
        let obj = doc.as_object().ok_or_else(|| malformed("not an object"))?;
        let start_at = obj
            .get("start_at")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed("missing start_at"))?
            .to_string();
        let states_obj = obj
            .get("states")
            .and_then(Value::as_object)
            .ok_or_else(|| malformed("missing states object"))?;
        let mut states = BTreeMap::new();
        for (name, s) in states_obj {
            states.insert(name.clone(), Self::parse_state(name, s)?);
        }
        let def = FlowDefinition { start_at, states };
        def.validate()?;
        Ok(def)
    }

    /// Parse from a JSON string.
    pub fn from_json_str(src: &str) -> Result<Self, DefinitionError> {
        let doc: Value =
            serde_json::from_str(src).map_err(|e| malformed(format!("bad JSON: {e}")))?;
        Self::from_json(&doc)
    }

    fn parse_state(name: &str, s: &Value) -> Result<FlowState, DefinitionError> {
        let obj = s
            .as_object()
            .ok_or_else(|| malformed(format!("state {name:?} is not an object")))?;
        let ty = obj
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed(format!("state {name:?} missing type")))?;
        let next = |key: &str| -> Result<String, DefinitionError> {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| malformed(format!("state {name:?} missing {key:?}")))
        };
        Ok(match ty {
            "action" => FlowState::Action {
                provider: next("provider")?,
                parameters: obj.get("parameters").cloned().unwrap_or(Value::Null),
                result_path: obj
                    .get("result_path")
                    .and_then(Value::as_str)
                    .map(str::to_owned),
                next: next("next")?,
            },
            "choice" => {
                let variable = next("variable")?;
                let cases = obj
                    .get("cases")
                    .and_then(Value::as_array)
                    .ok_or_else(|| malformed(format!("state {name:?} missing cases")))?
                    .iter()
                    .map(|c| {
                        let co = c
                            .as_object()
                            .ok_or_else(|| malformed("case is not an object"))?;
                        let value = co
                            .get("equals")
                            .cloned()
                            .ok_or_else(|| malformed("case missing equals"))?;
                        let nxt = co
                            .get("next")
                            .and_then(Value::as_str)
                            .ok_or_else(|| malformed("case missing next"))?;
                        Ok((value, nxt.to_string()))
                    })
                    .collect::<Result<Vec<_>, DefinitionError>>()?;
                FlowState::Choice {
                    variable,
                    cases,
                    default: next("default")?,
                }
            }
            "wait" => FlowState::Wait {
                seconds: obj
                    .get("seconds")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| malformed(format!("state {name:?} missing seconds")))?,
                next: next("next")?,
            },
            "pass" => FlowState::Pass {
                next: next("next")?,
            },
            "succeed" => FlowState::Succeed,
            "fail" => FlowState::Fail {
                error: obj
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("failed")
                    .to_string(),
            },
            other => {
                return Err(malformed(format!(
                    "state {name:?} has unknown type {other:?}"
                )))
            }
        })
    }

    fn validate(&self) -> Result<(), DefinitionError> {
        if !self.states.contains_key(&self.start_at) {
            return Err(DefinitionError::BadStart(self.start_at.clone()));
        }
        if !self
            .states
            .values()
            .any(|s| matches!(s, FlowState::Succeed | FlowState::Fail { .. }))
        {
            return Err(DefinitionError::NoTerminal);
        }
        for (name, state) in &self.states {
            for nxt in state.next_states() {
                if !self.states.contains_key(nxt) {
                    return Err(DefinitionError::DanglingNext {
                        from: name.clone(),
                        to: nxt.to_string(),
                    });
                }
            }
        }
        // Reachability from start.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.start_at.as_str()];
        while let Some(s) = stack.pop() {
            if !seen.insert(s.to_string()) {
                continue;
            }
            for nxt in self.states[s].next_states() {
                stack.push(nxt);
            }
        }
        for name in self.states.keys() {
            if !seen.contains(name) {
                return Err(DefinitionError::Unreachable(name.clone()));
            }
        }
        Ok(())
    }

    /// The paper's monitor-and-trigger inference flow: crawl result in the
    /// context → inference → append labels → move to transfer-out.
    pub fn inference_flow() -> Self {
        Self::from_json_str(
            r#"{
              "start_at": "Infer",
              "states": {
                "Infer": {
                  "type": "action", "provider": "inference",
                  "parameters": {"file": "$.input.file"},
                  "result_path": "labels", "next": "Append"
                },
                "Append": {
                  "type": "action", "provider": "append_labels",
                  "parameters": {"file": "$.input.file", "labels": "$.labels"},
                  "next": "Move"
                },
                "Move": {
                  "type": "action", "provider": "move_to_outbox",
                  "parameters": {"file": "$.input.file"},
                  "next": "Done"
                },
                "Done": {"type": "succeed"}
              }
            }"#,
        )
        .expect("built-in flow is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn inference_flow_is_valid() {
        let f = FlowDefinition::inference_flow();
        assert_eq!(f.start_at, "Infer");
        assert_eq!(f.states.len(), 4);
        assert!(matches!(f.states["Done"], FlowState::Succeed));
    }

    #[test]
    fn dangling_next_rejected() {
        let doc = json!({
            "start_at": "A",
            "states": {
                "A": {"type": "pass", "next": "Missing"},
                "B": {"type": "succeed"}
            }
        });
        match FlowDefinition::from_json(&doc) {
            Err(DefinitionError::DanglingNext { from, to }) => {
                assert_eq!(from, "A");
                assert_eq!(to, "Missing");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_start_rejected() {
        let doc = json!({
            "start_at": "Nope",
            "states": {"A": {"type": "succeed"}}
        });
        assert_eq!(
            FlowDefinition::from_json(&doc),
            Err(DefinitionError::BadStart("Nope".into()))
        );
    }

    #[test]
    fn no_terminal_rejected() {
        let doc = json!({
            "start_at": "A",
            "states": {
                "A": {"type": "pass", "next": "B"},
                "B": {"type": "pass", "next": "A"}
            }
        });
        assert_eq!(
            FlowDefinition::from_json(&doc),
            Err(DefinitionError::NoTerminal)
        );
    }

    #[test]
    fn unreachable_state_rejected() {
        let doc = json!({
            "start_at": "A",
            "states": {
                "A": {"type": "succeed"},
                "Orphan": {"type": "succeed"}
            }
        });
        assert_eq!(
            FlowDefinition::from_json(&doc),
            Err(DefinitionError::Unreachable("Orphan".into()))
        );
    }

    #[test]
    fn choice_parses() {
        let doc = json!({
            "start_at": "C",
            "states": {
                "C": {
                    "type": "choice", "variable": "$.kind",
                    "cases": [
                        {"equals": "day", "next": "Day"},
                        {"equals": "night", "next": "Night"}
                    ],
                    "default": "Night"
                },
                "Day": {"type": "succeed"},
                "Night": {"type": "fail", "error": "no daylight"}
            }
        });
        let f = FlowDefinition::from_json(&doc).unwrap();
        match &f.states["C"] {
            FlowState::Choice { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(default, "Night");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(FlowDefinition::from_json_str("not json").is_err());
        assert!(FlowDefinition::from_json(&json!([1, 2])).is_err());
        assert!(FlowDefinition::from_json(&json!({"states": {}})).is_err());
        let bad_type = json!({
            "start_at": "A",
            "states": {"A": {"type": "teleport"}}
        });
        assert!(matches!(
            FlowDefinition::from_json(&bad_type),
            Err(DefinitionError::Malformed(_))
        ));
    }
}

//! Monitor & trigger: the file-system crawler of workflow stage 3.
//!
//! "A monitoring script scans whether preprocessed files are generated and
//! stored in \[the\] file system. If yes, triggers the inference script." The
//! crawler polls a directory, reports each matching file exactly once, and
//! the caller starts one flow run per reported file.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// A stateful directory crawler: each `crawl` returns matching files never
/// reported before (by path), in sorted order for determinism.
#[derive(Debug)]
pub struct DirectoryCrawler {
    root: PathBuf,
    /// Required file-name suffix (e.g. `".nc"`).
    suffix: String,
    seen: HashSet<PathBuf>,
}

impl DirectoryCrawler {
    /// Watch `root` for files ending in `suffix`.
    pub fn new(root: impl Into<PathBuf>, suffix: impl Into<String>) -> Self {
        Self {
            root: root.into(),
            suffix: suffix.into(),
            seen: HashSet::new(),
        }
    }

    /// The watched directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of files reported so far.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Scan the directory (non-recursive) and return newly appeared files.
    /// A missing directory yields an empty result (the preprocess stage may
    /// not have created it yet — not an error while monitoring).
    pub fn crawl(&mut self) -> std::io::Result<Vec<PathBuf>> {
        let mut fresh = Vec::new();
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(fresh),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n,
                None => continue,
            };
            // Skip in-progress files by convention (writers rename on
            // completion) — mirrors the paper's care around partially
            // written HDF files.
            if name.ends_with(".part") || name.starts_with('.') {
                continue;
            }
            if name.ends_with(&self.suffix) && !self.seen.contains(&path) {
                self.seen.insert(path.clone());
                fresh.push(path);
            }
        }
        fresh.sort();
        Ok(fresh)
    }

    /// Record files as seen without reporting them (e.g. pre-existing files
    /// at monitor start that should not trigger inference).
    pub fn mark_existing(&mut self) -> std::io::Result<usize> {
        let fresh = self.crawl()?;
        Ok(fresh.len())
    }
}

/// In-memory variant used by the virtual-time workflow: paths are announced
/// by the preprocessing model rather than discovered on a real disk.
#[derive(Debug, Default)]
pub struct VirtualCrawler {
    pending: Vec<String>,
    seen: HashSet<String>,
}

impl VirtualCrawler {
    /// Empty crawler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announce that a file now exists.
    pub fn announce(&mut self, path: impl Into<String>) {
        let path = path.into();
        if !self.seen.contains(&path) {
            self.pending.push(path);
        }
    }

    /// Take all announced-but-unreported files.
    pub fn crawl(&mut self) -> Vec<String> {
        let mut out: Vec<String> = self
            .pending
            .drain(..)
            .filter(|p| self.seen.insert(p.clone()))
            .collect();
        out.sort();
        out
    }

    /// Files reported so far.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eoml-crawler-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn reports_new_files_exactly_once() {
        let dir = tempdir("once");
        let mut c = DirectoryCrawler::new(&dir, ".nc");
        assert!(c.crawl().unwrap().is_empty());
        fs::write(dir.join("a.nc"), b"x").unwrap();
        fs::write(dir.join("b.nc"), b"x").unwrap();
        let first = c.crawl().unwrap();
        assert_eq!(first.len(), 2);
        assert!(c.crawl().unwrap().is_empty(), "no re-reporting");
        fs::write(dir.join("c.nc"), b"x").unwrap();
        let second = c.crawl().unwrap();
        assert_eq!(second.len(), 1);
        assert!(second[0].ends_with("c.nc"));
        assert_eq!(c.seen_count(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suffix_filter_applies() {
        let dir = tempdir("suffix");
        fs::write(dir.join("tiles.nc"), b"x").unwrap();
        fs::write(dir.join("raw.eogr"), b"x").unwrap();
        fs::write(dir.join("notes.txt"), b"x").unwrap();
        let mut c = DirectoryCrawler::new(&dir, ".nc");
        let found = c.crawl().unwrap();
        assert_eq!(found.len(), 1);
        assert!(found[0].ends_with("tiles.nc"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_files_are_skipped() {
        let dir = tempdir("partial");
        fs::write(dir.join("t.nc.part"), b"x").unwrap();
        fs::write(dir.join(".hidden.nc"), b"x").unwrap();
        let mut c = DirectoryCrawler::new(&dir, ".nc");
        assert!(c.crawl().unwrap().is_empty());
        // Writer completes the file by renaming.
        fs::rename(dir.join("t.nc.part"), dir.join("t.nc")).unwrap();
        assert_eq!(c.crawl().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_empty_not_error() {
        let mut c = DirectoryCrawler::new("/definitely/not/a/real/dir", ".nc");
        assert!(c.crawl().unwrap().is_empty());
    }

    #[test]
    fn mark_existing_suppresses_initial_files() {
        let dir = tempdir("preexist");
        fs::write(dir.join("old.nc"), b"x").unwrap();
        let mut c = DirectoryCrawler::new(&dir, ".nc");
        assert_eq!(c.mark_existing().unwrap(), 1);
        assert!(c.crawl().unwrap().is_empty());
        fs::write(dir.join("new.nc"), b"x").unwrap();
        assert_eq!(c.crawl().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn results_are_sorted() {
        let dir = tempdir("sorted");
        for name in ["c.nc", "a.nc", "b.nc"] {
            fs::write(dir.join(name), b"x").unwrap();
        }
        let mut c = DirectoryCrawler::new(&dir, ".nc");
        let found = c.crawl().unwrap();
        let names: Vec<_> = found
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["a.nc", "b.nc", "c.nc"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn virtual_crawler_semantics_match() {
        let mut c = VirtualCrawler::new();
        c.announce("b.nc");
        c.announce("a.nc");
        c.announce("a.nc"); // duplicate announcement
        assert_eq!(c.crawl(), vec!["a.nc".to_string(), "b.nc".to_string()]);
        assert!(c.crawl().is_empty());
        c.announce("a.nc"); // already seen
        assert!(c.crawl().is_empty());
        c.announce("c.nc");
        assert_eq!(c.crawl(), vec!["c.nc".to_string()]);
        assert_eq!(c.seen_count(), 3);
    }
}

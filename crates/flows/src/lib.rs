//! `eoml-flows` — a Globus Flows substitute: declarative state-machine
//! workflows with action providers, runs, event logs, and the
//! monitor-and-trigger engine of the paper's stage 3.
//!
//! The paper automates "(i) monitoring the file system for the creation of
//! new files, and (ii) triggering the inference" with a Globus Flow whose
//! steps are: launch crawler → run inference → append labels → move file to
//! the transfer-out directory. This crate provides:
//!
//! * [`definition`] — JSON flow definitions (Action / Choice / Wait / Pass /
//!   Succeed / Fail states) with structural validation;
//! * [`runner`] — a flow runner over pluggable [`runner::ActionProvider`]s,
//!   recording a per-state event log with (virtual) timing;
//! * [`trigger`] — the file-system crawler that detects newly created files
//!   exactly once and starts a flow run per file.

pub mod definition;
pub mod registry;
pub mod runner;
pub mod trigger;

pub use definition::{FlowDefinition, FlowState};
pub use registry::{FlowRegistry, RegisteredFlow, RegistryError};
pub use runner::{ActionProvider, FlowEvent, FlowRun, FlowRunner, RunStatus};
pub use trigger::DirectoryCrawler;

//! A shareable flow registry — the paper's §V-A vision of a "federated
//! pipeline-as-a-service platform that offers a shareable and publicly
//! accessible repository of complete workflows or individual workflow
//! steps".
//!
//! Flow definitions are registered under names with monotonically
//! increasing versions; consumers resolve `name` (latest) or
//! `name@version` (pinned). Registration validates the definition, so
//! everything in the registry is runnable.

use crate::definition::{DefinitionError, FlowDefinition};
use std::collections::HashMap;

/// A registered flow: definition plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredFlow {
    /// Flow name.
    pub name: String,
    /// Version (1-based, monotone per name).
    pub version: u32,
    /// Who registered it.
    pub owner: String,
    /// Free-form description.
    pub description: String,
    /// The validated definition.
    pub definition: FlowDefinition,
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The definition failed validation.
    Invalid(DefinitionError),
    /// No flow with this name (or name@version).
    NotFound(String),
    /// Malformed `name@version` reference.
    BadReference(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Invalid(e) => write!(f, "invalid flow definition: {e}"),
            RegistryError::NotFound(r) => write!(f, "no registered flow {r:?}"),
            RegistryError::BadReference(r) => write!(f, "malformed flow reference {r:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry: append-only, versioned, name-addressed flows.
#[derive(Debug, Clone, Default)]
pub struct FlowRegistry {
    flows: Vec<RegisteredFlow>,
    latest: HashMap<String, usize>,
}

impl FlowRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-register, bumping the version) a flow from its JSON
    /// definition text.
    pub fn register_json(
        &mut self,
        name: impl Into<String>,
        owner: impl Into<String>,
        description: impl Into<String>,
        definition_json: &str,
    ) -> Result<&RegisteredFlow, RegistryError> {
        let definition =
            FlowDefinition::from_json_str(definition_json).map_err(RegistryError::Invalid)?;
        self.register(name, owner, description, definition)
    }

    /// Register a pre-built (already validated) definition.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        owner: impl Into<String>,
        description: impl Into<String>,
        definition: FlowDefinition,
    ) -> Result<&RegisteredFlow, RegistryError> {
        let name = name.into();
        let version = self
            .flows
            .iter()
            .filter(|f| f.name == name)
            .map(|f| f.version)
            .max()
            .map(|v| v + 1)
            .unwrap_or(1);
        let idx = self.flows.len();
        self.flows.push(RegisteredFlow {
            name: name.clone(),
            version,
            owner: owner.into(),
            description: description.into(),
            definition,
        });
        self.latest.insert(name, idx);
        Ok(&self.flows[idx])
    }

    /// Resolve `name` (latest version) or `name@version` (pinned).
    pub fn resolve(&self, reference: &str) -> Result<&RegisteredFlow, RegistryError> {
        match reference.split_once('@') {
            None => self
                .latest
                .get(reference)
                .map(|&i| &self.flows[i])
                .ok_or_else(|| RegistryError::NotFound(reference.to_string())),
            Some((name, version)) => {
                let version: u32 = version
                    .parse()
                    .map_err(|_| RegistryError::BadReference(reference.to_string()))?;
                self.flows
                    .iter()
                    .find(|f| f.name == name && f.version == version)
                    .ok_or_else(|| RegistryError::NotFound(reference.to_string()))
            }
        }
    }

    /// All `(name, latest version)` pairs, sorted by name — the "publicly
    /// accessible repository" listing.
    pub fn list(&self) -> Vec<(&str, u32)> {
        let mut out: Vec<(&str, u32)> = self
            .latest
            .values()
            .map(|&i| (self.flows[i].name.as_str(), self.flows[i].version))
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of registered entries (all versions).
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{FlowRunner, RunStatus};
    use serde_json::json;

    const TRIVIAL: &str = r#"{
        "start_at": "Done",
        "states": {"Done": {"type": "succeed"}}
    }"#;

    #[test]
    fn register_and_resolve_latest() {
        let mut reg = FlowRegistry::new();
        reg.register_json("eo-ml-inference", "olcf", "paper stage 3-4", TRIVIAL)
            .unwrap();
        let f = reg.resolve("eo-ml-inference").unwrap();
        assert_eq!(f.version, 1);
        assert_eq!(f.owner, "olcf");
    }

    #[test]
    fn versions_bump_and_pin() {
        let mut reg = FlowRegistry::new();
        reg.register_json("f", "a", "v1", TRIVIAL).unwrap();
        reg.register("f", "b", "v2", FlowDefinition::inference_flow())
            .unwrap();
        assert_eq!(reg.resolve("f").unwrap().version, 2);
        assert_eq!(reg.resolve("f@1").unwrap().description, "v1");
        assert_eq!(reg.resolve("f@2").unwrap().owner, "b");
        assert_eq!(reg.len(), 2);
        assert!(matches!(
            reg.resolve("f@3").unwrap_err(),
            RegistryError::NotFound(_)
        ));
    }

    #[test]
    fn invalid_definitions_rejected() {
        let mut reg = FlowRegistry::new();
        let err = reg
            .register_json("bad", "x", "", r#"{"start_at": "A", "states": {}}"#)
            .unwrap_err();
        assert!(matches!(err, RegistryError::Invalid(_)));
        assert!(reg.is_empty());
    }

    #[test]
    fn bad_references() {
        let reg = FlowRegistry::new();
        assert!(matches!(
            reg.resolve("nope").unwrap_err(),
            RegistryError::NotFound(_)
        ));
        let mut reg = FlowRegistry::new();
        reg.register_json("f", "a", "", TRIVIAL).unwrap();
        assert!(matches!(
            reg.resolve("f@notanumber").unwrap_err(),
            RegistryError::BadReference(_)
        ));
    }

    #[test]
    fn listing_shows_latest_only() {
        let mut reg = FlowRegistry::new();
        reg.register_json("b", "x", "", TRIVIAL).unwrap();
        reg.register_json("a", "x", "", TRIVIAL).unwrap();
        reg.register_json("b", "x", "", TRIVIAL).unwrap();
        assert_eq!(reg.list(), vec![("a", 1), ("b", 2)]);
    }

    #[test]
    fn resolved_flow_is_runnable() {
        let mut reg = FlowRegistry::new();
        reg.register(
            "infer",
            "olcf",
            "the paper's flow",
            FlowDefinition::inference_flow(),
        )
        .unwrap();
        let flow = &reg.resolve("infer").unwrap().definition;
        let mut ok = |_: &str, _: &serde_json::Value, _: &serde_json::Value| Ok(json!({}));
        let mut runner = FlowRunner::new();
        runner.register("inference", &mut ok);
        // Only one provider registered → the run fails at Append, but it
        // *runs*, proving the registry hands back executable definitions.
        let run = runner.run(flow, json!({"file": "x.nc"}));
        assert!(matches!(run.status, RunStatus::Failed(_)));
        assert_eq!(run.events[0].state, "Infer");
    }
}

//! Tenant identity, fair-share weight, and worker budget.

use eoml_cluster::MIN_WORKER_BUDGET;
use serde_json::{json, Value};

/// A registered tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant id: `[A-Za-z0-9_-]+`, not `_`-led (underscore-led names are
    /// reserved for service internals), ≤48 bytes. Tenant ids and campaign
    /// names combine into ledger namespaces, so both stay dot-free.
    pub id: String,
    /// Fair-share weight: a tenant with weight `w` receives `w` admission
    /// quanta per weighted round-robin cycle of its shard.
    pub weight: u32,
    /// Worker budget: the peak concurrent workers any of this tenant's
    /// campaign runs may occupy (carved from the cluster's cores; see
    /// [`eoml_cluster::BudgetPool`]).
    pub budget_workers: usize,
}

impl TenantSpec {
    /// Build and validate a tenant spec.
    pub fn new(id: &str, weight: u32, budget_workers: usize) -> Result<TenantSpec, String> {
        let spec = TenantSpec {
            id: id.to_string(),
            weight,
            budget_workers,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validate id shape, weight, and budget floor.
    pub fn validate(&self) -> Result<(), String> {
        let id_ok = !self.id.is_empty()
            && self.id.len() <= 48
            && !self.id.starts_with('_')
            && self
                .id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_'));
        if !id_ok {
            return Err(format!(
                "tenant id {:?} invalid (want [A-Za-z0-9_-]+, not _-led, <=48 bytes)",
                self.id
            ));
        }
        if self.weight == 0 {
            return Err(format!("tenant {:?}: weight must be >= 1", self.id));
        }
        if self.budget_workers < MIN_WORKER_BUDGET {
            return Err(format!(
                "tenant {:?}: budget_workers {} below minimum {MIN_WORKER_BUDGET}",
                self.id, self.budget_workers
            ));
        }
        Ok(())
    }

    /// The stable on-disk JSON form (control-journal record payload).
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id,
            "weight": self.weight,
            "budget_workers": self.budget_workers,
        })
    }

    /// Parse the on-disk JSON form.
    pub fn from_json(v: &Value) -> Result<TenantSpec, String> {
        Ok(TenantSpec {
            id: v["id"].as_str().ok_or("tenant missing 'id'")?.to_string(),
            weight: v["weight"].as_u64().ok_or("tenant missing 'weight'")? as u32,
            budget_workers: v["budget_workers"]
                .as_u64()
                .ok_or("tenant missing 'budget_workers'")? as usize,
        })
    }
}

/// Validate a campaign name: same alphabet as tenant ids (the pair embeds
/// into a ledger namespace `<campaign>-day-<date>` inside the tenant's
/// ledger).
pub fn check_campaign_name(name: &str) -> Result<(), String> {
    let ok = !name.is_empty()
        && name.len() <= 48
        && !name.starts_with('_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_'));
    if ok {
        Ok(())
    } else {
        Err(format!(
            "campaign name {name:?} invalid (want [A-Za-z0-9_-]+, not _-led, <=48 bytes)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_validation_and_round_trip() {
        let t = TenantSpec::new("acme-01", 4, 16).unwrap();
        assert_eq!(TenantSpec::from_json(&t.to_json()).unwrap(), t);
        for (id, weight, budget) in [
            ("", 1, 8),
            ("_control", 1, 8),
            ("a/b", 1, 8),
            ("dots.bad", 1, 8),
            ("ok", 0, 8),
            ("ok", 1, 2),
        ] {
            assert!(
                TenantSpec::new(id, weight, budget).is_err(),
                "accepted {id:?}/{weight}/{budget}"
            );
        }
    }

    #[test]
    fn campaign_names_share_the_alphabet() {
        assert!(check_campaign_name("winter-2022").is_ok());
        for bad in ["", "_svc", "a.b", "a b", "x/y"] {
            assert!(check_campaign_name(bad).is_err(), "accepted {bad:?}");
        }
    }
}

//! The serialisable campaign description a tenant submits.
//!
//! [`CampaignSpec`] is the durable subset of
//! [`eoml_core::CampaignParams`]: everything needed to re-derive the
//! deterministic world after a service restart, and nothing that cannot be
//! journaled (no live observability handles, no fault injectors). The JSON
//! form is the stable on-disk schema carried inside the service's control
//! records.

use eoml_cluster::MIN_WORKER_BUDGET;
use eoml_core::CampaignParams;
use eoml_modis::product::Platform;
use eoml_transfer::faults::FaultPlan;
use eoml_util::timebase::CivilDate;
use serde_json::{json, Value};

/// A tenant's campaign request.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// World seed (campaign determinism + resume identity).
    pub seed: u64,
    /// Platform to pull data for.
    pub platform: Platform,
    /// First acquisition day.
    pub start: CivilDate,
    /// Days in the campaign — one day is one admission quantum.
    pub days: usize,
    /// Granule files per product per day (1..=288).
    pub files_per_day: usize,
    /// Requested download workers.
    pub download_workers: usize,
    /// Requested preprocess nodes.
    pub nodes: usize,
    /// Requested preprocess workers per node.
    pub workers_per_node: usize,
    /// Requested inference workers.
    pub inference_workers: usize,
    /// Inference throughput per worker, tiles/s.
    pub inference_rate: f64,
    /// Monitor poll period, seconds.
    pub monitor_period_s: f64,
    /// Bytes per tile in the output NetCDF.
    pub tile_nc_bytes: u64,
}

impl CampaignSpec {
    /// A one-day, one-file campaign — the "small tenant" shape of the
    /// tenant-storm tests.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            platform: Platform::Terra,
            start: CivilDate::new(2022, 1, 1).expect("valid date"),
            days: 1,
            files_per_day: 1,
            download_workers: 1,
            nodes: 1,
            workers_per_node: 2,
            inference_workers: 1,
            inference_rate: 500.0,
            monitor_period_s: 1.0,
            tile_nc_bytes: 6 * 128 * 128 * 4 + 1024,
        }
    }

    /// A multi-day, many-file campaign — the "whale tenant" shape.
    pub fn whale(seed: u64, days: usize) -> Self {
        Self {
            days,
            files_per_day: 6,
            download_workers: 3,
            nodes: 4,
            workers_per_node: 8,
            inference_workers: 2,
            ..Self::small(seed)
        }
    }

    /// Validate ranges; `Err` names the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.days == 0 {
            return Err("days must be >= 1".into());
        }
        if self.files_per_day == 0 || self.files_per_day > 288 {
            return Err(format!(
                "files_per_day {} out of range 1..=288",
                self.files_per_day
            ));
        }
        if self.download_workers == 0
            || self.nodes == 0
            || self.workers_per_node == 0
            || self.inference_workers == 0
        {
            return Err("every worker count must be >= 1".into());
        }
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !positive(self.inference_rate) || !positive(self.monitor_period_s) {
            return Err("inference_rate and monitor_period_s must be > 0".into());
        }
        Ok(())
    }

    /// Peak concurrent workers this spec can occupy: the three stages that
    /// overlap in the paper's pipeline (download, preprocess, inference)
    /// summed at their widest.
    pub fn worker_demand(&self) -> usize {
        self.download_workers + self.nodes * self.workers_per_node + self.inference_workers
    }

    /// The spec with worker counts reduced until [`worker_demand`] fits
    /// `budget` (floor [`MIN_WORKER_BUDGET`]: one worker per concurrent
    /// stage). The widest stage shrinks first, so the allocation shape
    /// degrades proportionally and deterministically.
    ///
    /// [`worker_demand`]: CampaignSpec::worker_demand
    pub fn clamped_to(&self, budget: usize) -> CampaignSpec {
        let budget = budget.max(MIN_WORKER_BUDGET);
        let mut s = self.clone();
        while s.worker_demand() > budget {
            let pre = s.nodes * s.workers_per_node;
            if pre >= s.download_workers && pre >= s.inference_workers && pre > 1 {
                if s.workers_per_node > 1 {
                    s.workers_per_node -= 1;
                } else {
                    s.nodes -= 1;
                }
            } else if s.download_workers >= s.inference_workers && s.download_workers > 1 {
                s.download_workers -= 1;
            } else if s.inference_workers > 1 {
                s.inference_workers -= 1;
            } else {
                break; // all stages at one worker: demand == 3
            }
        }
        s
    }

    /// Lower to the runnable [`CampaignParams`] (no faults, no obs handle —
    /// the service attaches its own tenant-labeled telemetry).
    pub fn to_params(&self) -> CampaignParams {
        CampaignParams {
            seed: self.seed,
            platform: self.platform,
            start: self.start,
            days: self.days,
            files_per_day: self.files_per_day,
            download_workers: self.download_workers,
            nodes: self.nodes,
            workers_per_node: self.workers_per_node,
            inference_workers: self.inference_workers,
            inference_rate: self.inference_rate,
            monitor_period_s: self.monitor_period_s,
            tile_nc_bytes: self.tile_nc_bytes,
            faults: FaultPlan::none(),
            obs: None,
        }
    }

    /// The stable on-disk JSON form.
    pub fn to_json(&self) -> Value {
        json!({
            "seed": self.seed,
            "platform": match self.platform { Platform::Terra => "Terra", Platform::Aqua => "Aqua" },
            "start": { "year": self.start.year(), "month": self.start.month(), "day": self.start.day() },
            "days": self.days,
            "files_per_day": self.files_per_day,
            "download_workers": self.download_workers,
            "nodes": self.nodes,
            "workers_per_node": self.workers_per_node,
            "inference_workers": self.inference_workers,
            "inference_rate": self.inference_rate,
            "monitor_period_s": self.monitor_period_s,
            "tile_nc_bytes": self.tile_nc_bytes,
        })
    }

    /// Parse the on-disk JSON form; `Err` names the missing/invalid field.
    pub fn from_json(v: &Value) -> Result<CampaignSpec, String> {
        let u = |k: &str| -> Result<u64, String> {
            v[k].as_u64().ok_or_else(|| format!("spec missing '{k}'"))
        };
        let f = |k: &str| -> Result<f64, String> {
            v[k].as_f64().ok_or_else(|| format!("spec missing '{k}'"))
        };
        let platform = match v["platform"].as_str() {
            Some("Aqua") => Platform::Aqua,
            Some("Terra") => Platform::Terra,
            other => return Err(format!("spec platform invalid: {other:?}")),
        };
        let start = CivilDate::new(
            v["start"]["year"]
                .as_i64()
                .ok_or("spec missing start.year")? as i32,
            v["start"]["month"]
                .as_u64()
                .ok_or("spec missing start.month")? as u8,
            v["start"]["day"].as_u64().ok_or("spec missing start.day")? as u8,
        )
        .ok_or("spec start is not a valid date")?;
        Ok(CampaignSpec {
            seed: u("seed")?,
            platform,
            start,
            days: u("days")? as usize,
            files_per_day: u("files_per_day")? as usize,
            download_workers: u("download_workers")? as usize,
            nodes: u("nodes")? as usize,
            workers_per_node: u("workers_per_node")? as usize,
            inference_workers: u("inference_workers")? as usize,
            inference_rate: f("inference_rate")?,
            monitor_period_s: f("monitor_period_s")?,
            tile_nc_bytes: u("tile_nc_bytes")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        for spec in [CampaignSpec::small(7), CampaignSpec::whale(8, 3)] {
            let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
        }
        assert!(CampaignSpec::from_json(&json!({ "seed": 1 })).is_err());
    }

    #[test]
    fn clamping_fits_budget_and_bottoms_out_at_minimum() {
        let whale = CampaignSpec::whale(1, 2); // demand 3 + 32 + 2 = 37
        assert_eq!(whale.worker_demand(), 37);
        for budget in [40, 16, 8, 3, 0] {
            let clamped = whale.clamped_to(budget);
            assert!(
                clamped.worker_demand() <= budget.max(MIN_WORKER_BUDGET),
                "budget {budget}: demand {}",
                clamped.worker_demand()
            );
            assert!(clamped.download_workers >= 1);
            assert!(clamped.nodes * clamped.workers_per_node >= 1);
            assert!(clamped.inference_workers >= 1);
            assert!(clamped.validate().is_ok());
        }
        // A spec already inside its budget is untouched.
        assert_eq!(whale.clamped_to(37), whale);
        // Clamping is deterministic.
        assert_eq!(whale.clamped_to(8), whale.clamped_to(8));
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let mut s = CampaignSpec::small(1);
        s.days = 0;
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::small(1);
        s.files_per_day = 289;
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::small(1);
        s.inference_workers = 0;
        assert!(s.validate().is_err());
        assert!(CampaignSpec::small(1).validate().is_ok());
    }
}

//! The long-lived, in-process campaign service.
//!
//! One [`CampaignService`] multiplexes many tenants over the existing
//! resumable pipeline:
//!
//! * **Namespaces** — every tenant owns a [`Ledger`] under
//!   `<root>/tenants/<id>/`; each admission quantum (one campaign day)
//!   journals into `<campaign>-day-<date>/wal.log` inside it, so restart
//!   recovery inherits the single-day driver's crash-equivalence guarantee
//!   wholesale.
//! * **Control plane** — tenant registrations and campaign lifecycle
//!   records are themselves journaled (`<root>/control/service/wal.log`)
//!   as [`JournalEvent::ServiceRecord`] upserts. Submit, pause, resume,
//!   and cancel are therefore durable: reopening the service over the same
//!   root rebuilds every tenant and requeues every in-flight campaign.
//! * **Scheduling** — tenants hash onto one of N shards; within a shard,
//!   smooth weighted round-robin admits one campaign-day at a time (see
//!   [`crate::shard`]), so whales interleave with small tenants instead of
//!   starving them.
//! * **Budgets** — each admitted quantum leases its (budget-clamped) peak
//!   worker demand from a [`BudgetPool`] carved from the cluster's
//!   node/core model; the sum of concurrent leases can never exceed the
//!   cluster.
//! * **Metrics** — every tenant's telemetry lands in a shared
//!   [`Obs`] hub under a `tenant:<id>` stage label; [`tenant_report`]
//!   serves the per-tenant [`ObsReport`] slice.
//!
//! [`tenant_report`]: CampaignService::tenant_report

use crate::error::ServiceError;
use crate::shard::{shard_of, ShardQueue};
use crate::spec::CampaignSpec;
use crate::tenant::{check_campaign_name, TenantSpec};
use eoml_cluster::{BudgetPool, ClusterSpec};
use eoml_core::campaign::run_campaign_resumable;
use eoml_core::scheduler::{run_day_in_namespace_ticked, DayRun};
use eoml_journal::{FileStorage, Journal};
use eoml_journal::{JournalError, JournalEvent, Ledger, LedgerLock};
use eoml_obs::{
    AuditRecord, HealthReport, Obs, ObsReport, OpsConfig, OpsEvent, OpsPlane, WindowDelta,
};
use eoml_util::timebase::CivilDate;
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Campaign lifecycle status — the state machine the control journal
/// records. Legal transitions:
///
/// ```text
/// submit -> Queued -> Running -> Completed
///              |  ^      |
///   pause      v  | resume/requeue
///            Paused
/// Queued|Running|Paused -- cancel --> Cancelled   (terminal)
/// Completed                                        (terminal)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Awaiting admission on its shard.
    Queued,
    /// At least one quantum admitted; more remain.
    Running,
    /// Parked by `pause`; `resume` re-queues it.
    Paused,
    /// Terminally cancelled; quantum namespaces removed from the ledger.
    Cancelled,
    /// All days ran; totals are final.
    Completed,
}

impl CampaignStatus {
    /// Stable on-disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignStatus::Queued => "queued",
            CampaignStatus::Running => "running",
            CampaignStatus::Paused => "paused",
            CampaignStatus::Cancelled => "cancelled",
            CampaignStatus::Completed => "completed",
        }
    }

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "queued" => CampaignStatus::Queued,
            "running" => CampaignStatus::Running,
            "paused" => CampaignStatus::Paused,
            "cancelled" => CampaignStatus::Cancelled,
            "completed" => CampaignStatus::Completed,
            other => return Err(format!("unknown campaign status {other:?}")),
        })
    }
}

/// Accumulated per-campaign output totals (across completed quanta).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CampaignTotals {
    /// Granules preprocessed.
    pub granules: usize,
    /// Tile NetCDF files produced.
    pub tile_files: usize,
    /// Total tiles across files.
    pub total_tiles: f64,
    /// Files labeled by inference.
    pub labeled_files: usize,
    /// Sum of per-day makespans, seconds (virtual time).
    pub makespan_s: f64,
}

/// One campaign's durable control record.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRecord {
    /// Owning tenant.
    pub tenant: String,
    /// Campaign name (unique per tenant).
    pub name: String,
    /// The submitted spec.
    pub spec: CampaignSpec,
    /// Lifecycle status.
    pub status: CampaignStatus,
    /// Days (quanta) completed so far.
    pub days_done: usize,
    /// Global submission sequence number (recovery re-queues in this
    /// order, so admission stays deterministic across restarts).
    pub submit_seq: u64,
    /// Output totals across completed quanta.
    pub totals: CampaignTotals,
}

impl CampaignRecord {
    fn key(tenant: &str, name: &str) -> String {
        format!("campaign/{tenant}/{name}")
    }

    fn to_json(&self) -> Value {
        json!({
            "tenant": self.tenant,
            "name": self.name,
            "spec": self.spec.to_json(),
            "status": self.status.as_str(),
            "days_done": self.days_done,
            "submit_seq": self.submit_seq,
            "totals": {
                "granules": self.totals.granules,
                "tile_files": self.totals.tile_files,
                "total_tiles": self.totals.total_tiles,
                "labeled_files": self.totals.labeled_files,
                "makespan_s": self.totals.makespan_s,
            },
        })
    }

    fn from_json(v: &Value) -> Result<CampaignRecord, String> {
        let t = &v["totals"];
        Ok(CampaignRecord {
            tenant: v["tenant"]
                .as_str()
                .ok_or("record missing tenant")?
                .to_string(),
            name: v["name"].as_str().ok_or("record missing name")?.to_string(),
            spec: CampaignSpec::from_json(&v["spec"])?,
            status: CampaignStatus::from_str(v["status"].as_str().ok_or("record missing status")?)?,
            days_done: v["days_done"].as_u64().ok_or("record missing days_done")? as usize,
            submit_seq: v["submit_seq"]
                .as_u64()
                .ok_or("record missing submit_seq")?,
            totals: CampaignTotals {
                granules: t["granules"].as_u64().unwrap_or(0) as usize,
                tile_files: t["tile_files"].as_u64().unwrap_or(0) as usize,
                total_tiles: t["total_tiles"].as_f64().unwrap_or(0.0),
                labeled_files: t["labeled_files"].as_u64().unwrap_or(0) as usize,
                makespan_s: t["makespan_s"].as_f64().unwrap_or(0.0),
            },
        })
    }

    /// The ledger namespace of one quantum.
    fn quantum_namespace(&self, date: CivilDate) -> String {
        format!("{}-day-{date}", self.name)
    }

    /// The date quantum `day_index` covers.
    fn quantum_date(&self, day_index: usize) -> CivilDate {
        CivilDate::from_days_from_epoch(self.spec.start.days_from_epoch() + day_index as i64)
    }
}

/// Injected service death, for kill-and-recover tests: the whole service
/// stops accepting and running work the moment the kill fires, exactly as
/// if the process died. Campaign-day journals keep their durable prefix;
/// the control journal keeps every record already appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die after this many quanta completed (before their control-record
    /// update lands — the worst recovery case).
    AfterQuanta(usize),
    /// Die *inside* quantum number `quantum` (1-based admission order) by
    /// arming the campaign-day journal to crash after `events` appends.
    MidQuantum {
        /// 1-based admission sequence number to strike.
        quantum: usize,
        /// Journal events to allow before the crash.
        events: usize,
    },
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Run-queue shards (also the admission worker thread count).
    pub shards: usize,
    /// The cluster whose cores back the worker [`BudgetPool`].
    pub cluster: ClusterSpec,
    /// Auto-snapshot cadence for every journal the service opens.
    pub snapshot_every: usize,
    /// Injected kill point (tests only).
    pub kill: Option<KillPoint>,
    /// Continuous ops plane (rolling windows, SLOs, fairness audit,
    /// health, ops log under `<root>/ops/`); `None` disables it.
    pub ops: Option<OpsConfig>,
}

impl ServiceConfig {
    /// A small deterministic config for tests: 4 shards over a 64-core
    /// tiny cluster, ops plane on with its small defaults.
    pub fn small() -> Self {
        Self {
            shards: 4,
            cluster: ClusterSpec::tiny(8),
            snapshot_every: 64,
            kill: None,
            ops: Some(OpsConfig::small()),
        }
    }
}

/// What [`CampaignService::open`] recovered from the control journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceRecovery {
    /// Control-journal events replayed.
    pub control_events: usize,
    /// Tenants recovered.
    pub tenants: usize,
    /// Campaigns re-queued (were queued or mid-flight at the kill).
    pub requeued: usize,
    /// Campaigns already completed.
    pub completed: usize,
    /// Campaigns parked paused.
    pub paused: usize,
    /// Campaigns terminally cancelled.
    pub cancelled: usize,
}

/// One admission, for fairness audits: quantum `seq` (global order) was
/// shard-local admission number `shard_seq` on `shard`.
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// Global admission sequence (1-based).
    pub seq: usize,
    /// Shard that admitted it.
    pub shard: usize,
    /// Admission index within the shard (0-based).
    pub shard_seq: usize,
    /// Tenant admitted.
    pub tenant: String,
    /// Campaign admitted.
    pub campaign: String,
    /// Day index within the campaign.
    pub day_index: usize,
    /// Workers leased (post-clamp demand).
    pub workers: usize,
    /// The tenant's budget at admission time.
    pub budget_workers: usize,
}

/// Aggregate service state, derived from the control records.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Every campaign record, sorted by (tenant, name) — deterministic by
    /// the [`Ledger::list`] / BTreeMap ordering guarantee.
    pub campaigns: Vec<CampaignRecord>,
    /// Sum of per-campaign granules.
    pub granules: usize,
    /// Sum of per-campaign tile files.
    pub tile_files: usize,
    /// Sum of per-campaign tiles.
    pub total_tiles: f64,
    /// Sum of per-campaign labeled files.
    pub labeled_files: usize,
    /// Campaigns by terminal/parked status.
    pub completed: usize,
    /// Cancelled campaigns.
    pub cancelled: usize,
    /// Paused campaigns.
    pub paused: usize,
    /// Campaigns still queued or running.
    pub pending: usize,
    /// Quanta run by this service instance (not recovered ones).
    pub quanta: usize,
}

/// Control-plane state behind one mutex: the journal and the materialised
/// registry it encodes.
struct ControlPlane {
    journal: Journal<FileStorage>,
    tenants: BTreeMap<String, TenantSpec>,
    campaigns: BTreeMap<(String, String), CampaignRecord>,
    submit_seq: u64,
}

impl ControlPlane {
    fn record_tenant(&mut self, spec: &TenantSpec) -> Result<(), JournalError> {
        self.journal.append(JournalEvent::ServiceRecord {
            key: format!("tenant/{}", spec.id),
            value: spec.to_json(),
        })
    }

    fn record_campaign(&mut self, rec: &CampaignRecord) -> Result<(), JournalError> {
        self.journal.append(JournalEvent::ServiceRecord {
            key: CampaignRecord::key(&rec.tenant, &rec.name),
            value: rec.to_json(),
        })
    }
}

/// The multi-tenant campaign service. See the module docs for the
/// architecture; all methods take `&self` and are safe to call while
/// [`run_until_idle`] is draining on other threads.
///
/// [`run_until_idle`]: CampaignService::run_until_idle
pub struct CampaignService {
    root: PathBuf,
    config: ServiceConfig,
    obs: Arc<Obs>,
    pool: BudgetPool,
    control: Mutex<ControlPlane>,
    shards: Vec<Mutex<ShardQueue>>,
    tenant_ledgers: Mutex<BTreeMap<String, Arc<Ledger>>>,
    /// Wall-clock enqueue instants for time-to-first-granule.
    enqueued_at: Mutex<BTreeMap<(String, String), Instant>>,
    admissions: Mutex<Vec<Admission>>,
    shard_seqs: Vec<AtomicUsize>,
    quanta_admitted: AtomicUsize,
    quanta_done: AtomicUsize,
    halted: AtomicBool,
    /// Continuous ops plane (None when disabled). Lock order: the
    /// control mutex is never acquired while holding this one.
    ops: Option<Mutex<OpsPlane>>,
    /// Exclusive in-process locks on the control root and every tenant
    /// ledger root, held for the service lifetime: a second service over
    /// the same root gets a typed [`JournalError::Busy`].
    locks: Mutex<Vec<LedgerLock>>,
}

impl CampaignService {
    /// Open (or create) a service rooted at `root`, recovering every
    /// tenant and campaign the control journal records.
    pub fn open(
        root: impl AsRef<Path>,
        config: ServiceConfig,
    ) -> Result<(CampaignService, ServiceRecovery), ServiceError> {
        assert!(config.shards >= 1, "need at least one shard");
        let root = root.as_ref().to_path_buf();
        let obs = Obs::shared();
        let control_ledger = Ledger::new(root.join("control"))?
            .with_snapshot_every(config.snapshot_every)
            .with_auto_compact(4);
        let control_lock = control_ledger.lock_exclusive()?;
        let (journal, recovery_report) = control_ledger.open("service")?;
        let state = journal.state().clone();

        let mut control = ControlPlane {
            journal,
            tenants: BTreeMap::new(),
            campaigns: BTreeMap::new(),
            submit_seq: 0,
        };
        let mut recovery = ServiceRecovery {
            control_events: recovery_report.events,
            ..ServiceRecovery::default()
        };
        for (key, value) in &state.service_records {
            if let Some(id) = key.strip_prefix("tenant/") {
                let spec = TenantSpec::from_json(value).map_err(ServiceError::Invalid)?;
                debug_assert_eq!(spec.id, id);
                control.tenants.insert(spec.id.clone(), spec);
            } else if key.starts_with("campaign/") {
                let rec = CampaignRecord::from_json(value).map_err(ServiceError::Invalid)?;
                control.submit_seq = control.submit_seq.max(rec.submit_seq + 1);
                control
                    .campaigns
                    .insert((rec.tenant.clone(), rec.name.clone()), rec);
            }
        }
        recovery.tenants = control.tenants.len();

        let pool = BudgetPool::from_spec(&config.cluster);
        let shards: Vec<Mutex<ShardQueue>> = (0..config.shards)
            .map(|_| Mutex::new(ShardQueue::new()))
            .collect();
        let mut locks = vec![control_lock];
        let mut ledgers = BTreeMap::new();
        for spec in control.tenants.values() {
            let ledger = Self::make_tenant_ledger(&root, &config, &spec.id, &obs)?;
            locks.push(ledger.lock_exclusive()?);
            ledgers.insert(spec.id.clone(), Arc::new(ledger));
            shards[shard_of(&spec.id, config.shards)]
                .lock()
                .expect("shard poisoned")
                .ensure_tenant(&spec.id, spec.weight);
        }

        // Re-queue in submit order so recovery admission is deterministic.
        let mut requeue: Vec<&CampaignRecord> = Vec::new();
        for rec in control.campaigns.values() {
            match rec.status {
                CampaignStatus::Queued | CampaignStatus::Running => requeue.push(rec),
                CampaignStatus::Paused => recovery.paused += 1,
                CampaignStatus::Cancelled => recovery.cancelled += 1,
                CampaignStatus::Completed => recovery.completed += 1,
            }
        }
        requeue.sort_by_key(|r| r.submit_seq);
        let mut enqueued_at = BTreeMap::new();
        for rec in &requeue {
            let tenant = control
                .tenants
                .get(&rec.tenant)
                .ok_or_else(|| ServiceError::UnknownTenant(rec.tenant.clone()))?;
            shards[shard_of(&rec.tenant, config.shards)]
                .lock()
                .expect("shard poisoned")
                .enqueue(&rec.tenant, tenant.weight, &rec.name);
            enqueued_at.insert((rec.tenant.clone(), rec.name.clone()), Instant::now());
        }
        recovery.requeued = requeue.len();

        // Open the ops plane last: it rehydrates windows / SLO state /
        // audit tallies from `<root>/ops/` and logs the reopen, so a
        // restarted service continues the same operational history.
        let ops = match config.ops.clone() {
            Some(cfg) => {
                let mut plane = OpsPlane::open(&root.join("ops"), cfg)
                    .map_err(|e| ServiceError::Invalid(format!("ops plane: {e}")))?;
                plane.attach_alerts(&obs);
                plane.set_recovering(recovery.requeued > 0);
                plane.event(
                    "service_open",
                    json!({
                        "control_events": recovery.control_events as u64,
                        "tenants": recovery.tenants as u64,
                        "requeued": recovery.requeued as u64,
                        "completed": recovery.completed as u64,
                    }),
                );
                // Baseline verdict: always logged on open (recovery shows
                // up as a Degraded reason until the drain completes).
                let _ = plane.health();
                Some(Mutex::new(plane))
            }
            None => None,
        };

        let service = CampaignService {
            shard_seqs: (0..config.shards).map(|_| AtomicUsize::new(0)).collect(),
            root,
            config,
            obs,
            pool,
            control: Mutex::new(control),
            shards,
            tenant_ledgers: Mutex::new(ledgers),
            enqueued_at: Mutex::new(enqueued_at),
            admissions: Mutex::new(Vec::new()),
            quanta_admitted: AtomicUsize::new(0),
            quanta_done: AtomicUsize::new(0),
            halted: AtomicBool::new(false),
            ops,
            locks: Mutex::new(locks),
        };
        Ok((service, recovery))
    }

    fn make_tenant_ledger(
        root: &Path,
        config: &ServiceConfig,
        tenant: &str,
        obs: &Arc<Obs>,
    ) -> Result<Ledger, JournalError> {
        Ok(Ledger::new(root.join("tenants").join(tenant))?
            .with_snapshot_every(config.snapshot_every)
            .with_auto_compact(4)
            .with_obs(Arc::clone(obs)))
    }

    /// The shared observability hub all tenants report into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The worker budget pool (capacity = cluster cores).
    pub fn pool(&self) -> &BudgetPool {
        &self.pool
    }

    /// Current health verdict, or `None` when the ops plane is disabled.
    /// Evaluating logs a `health` ops event iff the state changed.
    pub fn health(&self) -> Option<HealthReport> {
        self.with_ops(|ops| ops.health())
    }

    /// The ops plane directory (`<root>/ops`, next to the ledger root).
    pub fn ops_dir(&self) -> PathBuf {
        self.root.join("ops")
    }

    /// The full ops event history (rotated segments oldest-first), empty
    /// when the ops plane is disabled.
    pub fn ops_log(&self) -> Vec<OpsEvent> {
        self.with_ops(|ops| ops.events()).unwrap_or_default()
    }

    /// Log a pointer to a recorded run archive into the ops log (no-op
    /// when the ops plane is disabled). The archive itself lives
    /// wherever the recorder put it; the ops log only remembers where,
    /// so a later `eoml-obsctl diff` can find any historical run's
    /// frozen artifacts from the durable event history alone.
    pub fn record_archive_pointer(&self, path: &Path, meta: &eoml_obs::RunMeta) {
        self.with_ops(|ops| ops.record_archive(&path.display().to_string(), meta));
    }

    /// Rolled metric windows currently held in the ring (oldest first).
    pub fn ops_windows(&self) -> Vec<WindowDelta> {
        self.with_ops(|ops| ops.windows().windows().cloned().collect())
            .unwrap_or_default()
    }

    /// Live Jain's fairness index over weighted admissions.
    pub fn fairness(&self) -> Option<f64> {
        self.with_ops(|ops| ops.fairness()).flatten()
    }

    /// Run `f` under the ops-plane lock, if the plane is enabled.
    fn with_ops<R>(&self, f: impl FnOnce(&mut OpsPlane) -> R) -> Option<R> {
        self.ops
            .as_ref()
            .map(|o| f(&mut o.lock().expect("ops plane poisoned")))
    }

    /// Append a lifecycle event to the ops log, if enabled.
    fn ops_event(&self, kind: &str, data: Value) {
        self.with_ops(|ops| ops.event(kind, data));
    }

    /// Stages with live work: tenants owning at least one Running or
    /// Paused campaign. Paused counts as active on purpose — a parked
    /// whale should keep accruing (bad) SLO windows, which is exactly the
    /// induced-degradation signal the soak test exercises.
    fn active_stages(&self) -> BTreeSet<String> {
        self.lock_control()
            .campaigns
            .values()
            .filter(|r| matches!(r.status, CampaignStatus::Running | CampaignStatus::Paused))
            .map(|r| Self::tenant_stage(&r.tenant))
            .collect()
    }

    /// The obs stage label carrying one tenant's metrics.
    pub fn tenant_stage(tenant: &str) -> String {
        format!("tenant:{tenant}")
    }

    /// Register a tenant. Fails with [`ServiceError::DuplicateTenant`] if
    /// the id is taken and [`ServiceError::Invalid`] on bad specs
    /// (including budgets larger than the cluster).
    pub fn register_tenant(&self, spec: TenantSpec) -> Result<(), ServiceError> {
        spec.validate().map_err(ServiceError::Invalid)?;
        if spec.budget_workers > self.pool.capacity() {
            return Err(ServiceError::Invalid(format!(
                "tenant {:?}: budget {} exceeds cluster capacity {}",
                spec.id,
                spec.budget_workers,
                self.pool.capacity()
            )));
        }
        let mut control = self.lock_control();
        if control.tenants.contains_key(&spec.id) {
            return Err(ServiceError::DuplicateTenant(spec.id));
        }
        control.record_tenant(&spec)?;
        let ledger = Self::make_tenant_ledger(&self.root, &self.config, &spec.id, &self.obs)?;
        self.locks
            .lock()
            .expect("locks poisoned")
            .push(ledger.lock_exclusive()?);
        self.tenant_ledgers
            .lock()
            .expect("ledgers poisoned")
            .insert(spec.id.clone(), Arc::new(ledger));
        self.shards[shard_of(&spec.id, self.config.shards)]
            .lock()
            .expect("shard poisoned")
            .ensure_tenant(&spec.id, spec.weight);
        self.obs.gauge_set(
            "budget_workers",
            &Self::tenant_stage(&spec.id),
            spec.budget_workers as f64,
        );
        let event = json!({
            "tenant": spec.id,
            "weight": spec.weight as u64,
            "budget_workers": spec.budget_workers as u64,
        });
        control.tenants.insert(spec.id.clone(), spec);
        drop(control);
        self.ops_event("tenant_registered", event);
        Ok(())
    }

    /// Registered tenants, sorted by id.
    pub fn tenants(&self) -> Vec<TenantSpec> {
        self.lock_control().tenants.values().cloned().collect()
    }

    /// Submit a campaign for `tenant`. The campaign is journaled as
    /// queued, its first quantum namespace is reserved in the tenant's
    /// ledger (a duplicate namespace on disk rejects the submit with a
    /// typed error), and it joins the tenant's shard queue.
    pub fn submit(
        &self,
        tenant: &str,
        campaign: &str,
        spec: CampaignSpec,
    ) -> Result<(), ServiceError> {
        check_campaign_name(campaign).map_err(ServiceError::Invalid)?;
        spec.validate().map_err(ServiceError::Invalid)?;
        let mut control = self.lock_control();
        let tenant_spec = control
            .tenants
            .get(tenant)
            .ok_or_else(|| ServiceError::UnknownTenant(tenant.to_string()))?
            .clone();
        let key = (tenant.to_string(), campaign.to_string());
        if control.campaigns.contains_key(&key) {
            return Err(ServiceError::DuplicateCampaign {
                tenant: tenant.to_string(),
                campaign: campaign.to_string(),
            });
        }
        let rec = CampaignRecord {
            tenant: tenant.to_string(),
            name: campaign.to_string(),
            spec,
            status: CampaignStatus::Queued,
            days_done: 0,
            submit_seq: control.submit_seq,
            totals: CampaignTotals::default(),
        };
        // Reserve the first quantum namespace on disk: a leftover journal
        // under the same name is a duplicate submit, rejected typed.
        let ledger = self.tenant_ledger(tenant)?;
        let (mut journal, _) = ledger.create(&rec.quantum_namespace(rec.spec.start))?;
        journal.append(JournalEvent::ServiceRecord {
            key: "reserved".into(),
            value: json!({ "tenant": tenant, "campaign": campaign }),
        })?;
        drop(journal);
        control.record_campaign(&rec)?;
        control.submit_seq += 1;
        control.campaigns.insert(key.clone(), rec);
        drop(control);
        let stage = Self::tenant_stage(tenant);
        let shard = shard_of(tenant, self.config.shards);
        let depth = {
            let mut q = self.shards[shard].lock().expect("shard poisoned");
            q.enqueue(tenant, tenant_spec.weight, campaign);
            q.tenant_depth(tenant)
        };
        self.enqueued_at
            .lock()
            .expect("enqueued poisoned")
            .insert(key, Instant::now());
        self.obs.counter_add("submitted", &stage, 1);
        self.obs.gauge_set("queue_depth", &stage, depth as f64);
        self.ops_event(
            "submit",
            json!({ "tenant": tenant, "campaign": campaign, "shard": shard as u64 }),
        );
        Ok(())
    }

    /// Pause a queued or running campaign. Running campaigns finish their
    /// current quantum, then park.
    pub fn pause(&self, tenant: &str, campaign: &str) -> Result<(), ServiceError> {
        self.transition(tenant, campaign, "pause", |status| match status {
            CampaignStatus::Queued | CampaignStatus::Running => Some(CampaignStatus::Paused),
            _ => None,
        })?;
        self.ops_event("pause", json!({ "tenant": tenant, "campaign": campaign }));
        Ok(())
    }

    /// Resume a paused campaign: back onto its shard queue.
    pub fn resume(&self, tenant: &str, campaign: &str) -> Result<(), ServiceError> {
        self.transition(tenant, campaign, "resume", |status| match status {
            CampaignStatus::Paused => Some(CampaignStatus::Queued),
            _ => None,
        })?;
        let weight = self
            .lock_control()
            .tenants
            .get(tenant)
            .map(|t| t.weight)
            .unwrap_or(1);
        self.shards[shard_of(tenant, self.config.shards)]
            .lock()
            .expect("shard poisoned")
            .enqueue(tenant, weight, campaign);
        self.enqueued_at
            .lock()
            .expect("enqueued poisoned")
            .insert((tenant.to_string(), campaign.to_string()), Instant::now());
        self.ops_event("resume", json!({ "tenant": tenant, "campaign": campaign }));
        Ok(())
    }

    /// Cancel a campaign: terminal, journaled, and its quantum namespaces
    /// are removed from the tenant's ledger (freeing their disk).
    pub fn cancel(&self, tenant: &str, campaign: &str) -> Result<(), ServiceError> {
        self.transition(tenant, campaign, "cancel", |status| match status {
            CampaignStatus::Queued | CampaignStatus::Running | CampaignStatus::Paused => {
                Some(CampaignStatus::Cancelled)
            }
            _ => None,
        })?;
        self.shards[shard_of(tenant, self.config.shards)]
            .lock()
            .expect("shard poisoned")
            .remove(tenant, campaign);
        // If a quantum is mid-flight on a shard worker, the worker removes
        // the namespaces when it observes the cancelled status; otherwise
        // clean up now.
        self.cleanup_campaign_namespaces(tenant, campaign)?;
        self.ops_event("cancel", json!({ "tenant": tenant, "campaign": campaign }));
        Ok(())
    }

    /// A campaign's current status.
    pub fn status(&self, tenant: &str, campaign: &str) -> Result<CampaignStatus, ServiceError> {
        self.lock_control()
            .campaigns
            .get(&(tenant.to_string(), campaign.to_string()))
            .map(|r| r.status)
            .ok_or_else(|| ServiceError::UnknownCampaign {
                tenant: tenant.to_string(),
                campaign: campaign.to_string(),
            })
    }

    /// Campaign records, sorted by (tenant, name); filter to one tenant
    /// with `Some(id)`. Ordering is deterministic across calls and
    /// restarts (BTreeMap + [`Ledger::list`] guarantees).
    pub fn list(&self, tenant: Option<&str>) -> Vec<CampaignRecord> {
        self.lock_control()
            .campaigns
            .values()
            .filter(|r| tenant.is_none_or(|t| r.tenant == t))
            .cloned()
            .collect()
    }

    /// The admission audit log (global order).
    pub fn admissions(&self) -> Vec<Admission> {
        self.admissions.lock().expect("admissions poisoned").clone()
    }

    /// The per-tenant [`ObsReport`] slice: only spans/metrics recorded
    /// under this tenant's stage label.
    pub fn tenant_report(&self, tenant: &str) -> ObsReport {
        ObsReport::for_stage_prefix(&self.obs, &Self::tenant_stage(tenant))
    }

    /// Aggregate report over every campaign record.
    pub fn service_report(&self) -> ServiceReport {
        let control = self.lock_control();
        let campaigns: Vec<CampaignRecord> = control.campaigns.values().cloned().collect();
        drop(control);
        let mut report = ServiceReport {
            granules: 0,
            tile_files: 0,
            total_tiles: 0.0,
            labeled_files: 0,
            completed: 0,
            cancelled: 0,
            paused: 0,
            pending: 0,
            quanta: self.quanta_done.load(Ordering::SeqCst),
            campaigns,
        };
        for rec in &report.campaigns {
            report.granules += rec.totals.granules;
            report.tile_files += rec.totals.tile_files;
            report.total_tiles += rec.totals.total_tiles;
            report.labeled_files += rec.totals.labeled_files;
            match rec.status {
                CampaignStatus::Completed => report.completed += 1,
                CampaignStatus::Cancelled => report.cancelled += 1,
                CampaignStatus::Paused => report.paused += 1,
                CampaignStatus::Queued | CampaignStatus::Running => report.pending += 1,
            }
        }
        report
    }

    /// Drain every shard: one worker thread per shard admits quanta by
    /// weighted round-robin until no runnable campaign remains (paused
    /// campaigns park; cancelled ones are skipped). Returns the aggregate
    /// report, or [`ServiceError::Killed`] when the configured kill point
    /// fired — reopen the service over the same root to recover.
    pub fn run_until_idle(&self) -> Result<ServiceReport, ServiceError> {
        if self.halted() {
            return Err(ServiceError::Killed);
        }
        let worker_errors: Mutex<Vec<ServiceError>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for shard in 0..self.config.shards {
                let errors = &worker_errors;
                scope.spawn(move || {
                    if let Err(e) = self.drain_shard(shard) {
                        errors.lock().expect("errors poisoned").push(e);
                    }
                });
            }
        });
        if self.halted() {
            return Err(ServiceError::Killed);
        }
        let mut errors = worker_errors.into_inner().expect("errors poisoned");
        match errors.pop() {
            Some(e) => Err(e),
            None => {
                // Quiesced cleanly: close out the partial window, clear
                // the recovery flag, and log the (possibly transitioned)
                // health verdict plus an idle marker.
                if self.ops.is_some() {
                    let active = self.active_stages();
                    self.with_ops(|ops| {
                        ops.force_roll(self.obs.metrics(), &active);
                        ops.set_recovering(false);
                        let _ = ops.health();
                        ops.event("idle", json!({}));
                    });
                }
                Ok(self.service_report())
            }
        }
    }

    // ------------------------------------------------------------ internals

    fn lock_control(&self) -> std::sync::MutexGuard<'_, ControlPlane> {
        self.control.lock().expect("control poisoned")
    }

    fn halted(&self) -> bool {
        self.halted.load(Ordering::SeqCst)
    }

    fn halt(&self) {
        self.halted.store(true, Ordering::SeqCst);
    }

    fn tenant_ledger(&self, tenant: &str) -> Result<Arc<Ledger>, ServiceError> {
        self.tenant_ledgers
            .lock()
            .expect("ledgers poisoned")
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownTenant(tenant.to_string()))
    }

    fn transition(
        &self,
        tenant: &str,
        campaign: &str,
        verb: &'static str,
        next: impl Fn(CampaignStatus) -> Option<CampaignStatus>,
    ) -> Result<(), ServiceError> {
        let mut control = self.lock_control();
        let key = (tenant.to_string(), campaign.to_string());
        let rec = control
            .campaigns
            .get(&key)
            .ok_or_else(|| ServiceError::UnknownCampaign {
                tenant: tenant.to_string(),
                campaign: campaign.to_string(),
            })?;
        let to = next(rec.status).ok_or_else(|| ServiceError::InvalidTransition {
            tenant: tenant.to_string(),
            campaign: campaign.to_string(),
            from: rec.status.as_str(),
            verb,
        })?;
        let mut rec = rec.clone();
        rec.status = to;
        control.record_campaign(&rec)?;
        control.campaigns.insert(key, rec);
        Ok(())
    }

    /// Remove every quantum namespace a campaign owns (exact date-derived
    /// names, so sibling campaigns sharing a prefix are untouched).
    fn cleanup_campaign_namespaces(
        &self,
        tenant: &str,
        campaign: &str,
    ) -> Result<(), ServiceError> {
        let rec = {
            let control = self.lock_control();
            match control
                .campaigns
                .get(&(tenant.to_string(), campaign.to_string()))
            {
                Some(rec) => rec.clone(),
                None => return Ok(()),
            }
        };
        let ledger = self.tenant_ledger(tenant)?;
        for date in rec.spec.start.iter_days(rec.spec.days) {
            match ledger.remove(&rec.quantum_namespace(date)) {
                Ok(()) => {}
                Err(JournalError::UnknownNamespace(_)) => {} // never ran
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn drain_shard(&self, shard: usize) -> Result<(), ServiceError> {
        loop {
            if self.halted() {
                return Ok(());
            }
            let next = self.shards[shard]
                .lock()
                .expect("shard poisoned")
                .admit_next();
            let Some((tenant, campaign)) = next else {
                return Ok(());
            };
            match self.run_quantum(shard, &tenant, &campaign) {
                Ok(()) => {}
                Err(ServiceError::Killed) => return Ok(()), // halted flag is set
                Err(e) => {
                    self.halt();
                    return Err(e);
                }
            }
        }
    }

    /// Run one admission quantum (one campaign day) end to end.
    fn run_quantum(&self, shard: usize, tenant: &str, campaign: &str) -> Result<(), ServiceError> {
        let stage = Self::tenant_stage(tenant);
        let key = (tenant.to_string(), campaign.to_string());

        // Admission: consult the control plane under its lock.
        let (rec, weight, budget) = {
            let mut control = self.lock_control();
            let Some(rec) = control.campaigns.get(&key) else {
                return Ok(()); // record vanished (should not happen) — skip
            };
            match rec.status {
                CampaignStatus::Paused | CampaignStatus::Cancelled | CampaignStatus::Completed => {
                    // Status changed after this campaign was queued; the
                    // pop already removed it from the queue, so parking or
                    // skipping is just "don't run, don't requeue".
                    return Ok(());
                }
                CampaignStatus::Queued | CampaignStatus::Running => {}
            }
            let tenant_spec = control
                .tenants
                .get(tenant)
                .ok_or_else(|| ServiceError::UnknownTenant(tenant.to_string()))?
                .clone();
            if rec.status == CampaignStatus::Queued {
                let mut running = rec.clone();
                running.status = CampaignStatus::Running;
                control.record_campaign(&running)?;
                control.campaigns.insert(key.clone(), running);
            }
            let rec = control.campaigns.get(&key).expect("just inserted").clone();
            (rec, tenant_spec.weight, tenant_spec.budget_workers)
        };

        let clamped = rec.spec.clamped_to(budget);
        let demand = clamped.worker_demand();
        let date = rec.quantum_date(rec.days_done);
        let namespace = rec.quantum_namespace(date);
        let seq = self.quanta_admitted.fetch_add(1, Ordering::SeqCst) + 1;
        let shard_seq = self.shard_seqs[shard].fetch_add(1, Ordering::SeqCst);
        self.admissions
            .lock()
            .expect("admissions poisoned")
            .push(Admission {
                seq,
                shard,
                shard_seq,
                tenant: tenant.to_string(),
                campaign: campaign.to_string(),
                day_index: rec.days_done,
                workers: demand,
                budget_workers: budget,
            });
        self.obs.counter_add("admitted", &stage, 1);
        self.obs
            .gauge_set("budget_utilization", &stage, demand as f64 / budget as f64);
        self.with_ops(|ops| {
            ops.record_audit(AuditRecord::Admission {
                tenant: tenant.to_string(),
                campaign: campaign.to_string(),
                day_index: rec.days_done,
                shard,
                workers: demand,
                weight: weight as u64,
            })
        });

        // Lease workers from the cluster pool (blocks until available),
        // then run the quantum through the single-day resumable driver.
        let lease = self
            .pool
            .acquire(demand)
            .map_err(|e| ServiceError::Invalid(e.to_string()))?;
        self.obs
            .observe("lease_wait_seconds", &stage, lease.wait_seconds());
        self.obs
            .gauge_set("pool_in_use", "pool", self.pool.in_use() as f64);
        self.obs
            .gauge_set("pool_outstanding", "pool", self.pool.outstanding() as f64);
        self.with_ops(|ops| {
            ops.record_audit(AuditRecord::LeaseAcquired {
                tenant: tenant.to_string(),
                campaign: campaign.to_string(),
                workers: demand,
                wait_s: lease.wait_seconds(),
                in_use: self.pool.in_use(),
            })
        });
        let ledger = self.tenant_ledger(tenant)?;
        let mut day_params = clamped.to_params();
        day_params.start = date;
        day_params.days = 1;

        let armed = match self.config.kill {
            Some(KillPoint::MidQuantum { quantum, events }) if quantum == seq => Some(events),
            _ => None,
        };
        // Per-quantum tick hook: observe the quantum's makespan into the
        // tenant's histogram the moment the day durably completes.
        let tick_obs = Arc::clone(&self.obs);
        let tick_stage = stage.clone();
        let tick = move |day: &DayRun| {
            tick_obs.observe("quantum_makespan_s", &tick_stage, day.report.makespan_s);
        };
        let day_run = {
            let _span = self.obs.span(&stage, "quantum");
            if let Some(events) = armed {
                // Injected mid-quantum death: arm the day journal, run the
                // driver directly, and treat the crash as process death.
                let (mut journal, _) = ledger.open(&namespace)?;
                journal.crash_after(events);
                match run_campaign_resumable(day_params.clone(), journal) {
                    Err(JournalError::Crashed) => {
                        self.halt();
                        return Err(ServiceError::Killed);
                    }
                    Err(e) => return Err(e.into()),
                    Ok(_) => {
                        // The kill point never fired (journal already past
                        // it); fall through via the normal path to compact
                        // and produce the DayRun bookkeeping.
                        run_day_in_namespace_ticked(
                            &day_params,
                            &ledger,
                            &namespace,
                            date,
                            Some(&tick),
                        )?
                    }
                }
            } else {
                run_day_in_namespace_ticked(&day_params, &ledger, &namespace, date, Some(&tick))?
            }
        };
        drop(lease);
        self.obs
            .gauge_set("pool_in_use", "pool", self.pool.in_use() as f64);
        self.obs
            .gauge_set("pool_outstanding", "pool", self.pool.outstanding() as f64);
        self.with_ops(|ops| {
            ops.record_audit(AuditRecord::LeaseReleased {
                tenant: tenant.to_string(),
                campaign: campaign.to_string(),
                workers: demand,
            })
        });
        // Files the download pool gave up on after its retry budget are
        // lost science: fold them into the plane's running tally so
        // health degrades past the policy allowance.
        let abandoned = day_run.report.download.failed.len() as u64;
        if abandoned > 0 {
            self.with_ops(|ops| ops.record_abandoned(abandoned));
        }

        // Injected whole-service death between a quantum completing and
        // its control record landing — the worst-case recovery window.
        let done = self.quanta_done.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(KillPoint::AfterQuanta(n)) = self.config.kill {
            if done >= n {
                self.halt();
                return Err(ServiceError::Killed);
            }
        }

        // Completion: fold the day into the control record.
        let mut control = self.lock_control();
        let Some(rec) = control.campaigns.get(&key) else {
            return Ok(());
        };
        let mut rec = rec.clone();
        let report = &day_run.report;
        let first_granules = rec.totals.granules == 0 && report.granules > 0;
        rec.totals.granules += report.granules;
        rec.totals.tile_files += report.tile_files;
        rec.totals.total_tiles += report.total_tiles;
        rec.totals.labeled_files += report.labeled_files;
        rec.totals.makespan_s += report.makespan_s;
        rec.days_done += 1;
        let finished = rec.days_done >= rec.spec.days;
        let status_now = rec.status;
        if finished && status_now == CampaignStatus::Running {
            rec.status = CampaignStatus::Completed;
        }
        control.record_campaign(&rec)?;
        control.campaigns.insert(key.clone(), rec.clone());
        drop(control);

        self.obs
            .counter_add("granules", &stage, report.granules as u64);
        self.obs
            .counter_add("tiles", &stage, report.total_tiles.round() as u64);
        self.obs
            .counter_add("labeled_files", &stage, report.labeled_files as u64);
        if first_granules {
            if let Some(enqueued) = self
                .enqueued_at
                .lock()
                .expect("enqueued poisoned")
                .get(&key)
            {
                self.obs
                    .observe("ttfg_seconds", &stage, enqueued.elapsed().as_secs_f64());
            }
        }

        // Advance the ops clock by this quantum's makespan — *after* the
        // control record and counters landed, so a window never contains
        // work that a kill could still retract. Control lock first (in
        // active_stages), then the plane lock, never nested.
        if self.ops.is_some() {
            let active = self.active_stages();
            self.with_ops(|ops| {
                ops.tick(report.makespan_s, self.obs.metrics(), &active);
            });
        }

        match status_now {
            CampaignStatus::Cancelled => {
                // Cancelled while this quantum ran: finish cleanup now.
                self.cleanup_campaign_namespaces(tenant, campaign)?;
            }
            CampaignStatus::Paused => {} // parked; resume() re-queues
            _ if finished => {
                self.obs.counter_add("completed_campaigns", &stage, 1);
                self.obs.gauge_set(
                    "queue_depth",
                    &stage,
                    self.shards[shard]
                        .lock()
                        .expect("shard poisoned")
                        .tenant_depth(tenant) as f64,
                );
            }
            _ => {
                // More days to run: back to the front of the tenant queue.
                self.shards[shard]
                    .lock()
                    .expect("shard poisoned")
                    .requeue_front(tenant, weight, campaign);
            }
        }
        Ok(())
    }
}

//! `eoml-service` — a long-lived, in-process, multi-tenant campaign
//! service over the resumable pipeline.
//!
//! The lower layers of this workspace run *one* campaign at a time: a
//! driver owns a [`Ledger`](eoml_journal::Ledger), runs days, and exits.
//! The facilities in the source paper don't work that way — a service
//! fronts the cluster, many research groups submit campaigns
//! concurrently, and the scheduler has to keep small interactive jobs
//! flowing while month-scale reprocessing campaigns grind in the
//! background. This crate is that service layer:
//!
//! * [`TenantSpec`] — identity, fair-share weight, worker budget.
//! * [`CampaignSpec`] — the durable, journalable campaign description.
//! * [`shard`] — FNV-sharded run queues with smooth weighted round-robin
//!   admission (whales interleave with small tenants, never starve them).
//! * [`CampaignService`] — tenant registration, journal-backed
//!   `submit`/`pause`/`resume`/`cancel`/`status`/`list` lifecycle, worker
//!   budget leasing from the cluster's core pool, and full restart
//!   recovery: reopen the service over the same root and every tenant,
//!   campaign, and queue position comes back.
//!
//! Everything is deterministic where it matters: shard assignment is a
//! stable hash, admission order within a shard is seeded by submit
//! sequence and tie-broken lexicographically, and a killed service
//! recovers to byte-equivalent campaign outputs (the tenant-storm test
//! asserts exactly that).

pub mod error;
pub mod service;
pub mod shard;
pub mod spec;
pub mod tenant;

pub use error::ServiceError;
pub use service::{
    Admission, CampaignRecord, CampaignService, CampaignStatus, CampaignTotals, KillPoint,
    ServiceConfig, ServiceRecovery, ServiceReport,
};
pub use shard::{shard_of, ShardQueue};
pub use spec::CampaignSpec;
pub use tenant::TenantSpec;

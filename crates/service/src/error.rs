//! Typed service failure modes.

use eoml_journal::JournalError;
use std::fmt;

/// Everything the campaign service can refuse or fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The underlying journal/ledger layer failed.
    Journal(JournalError),
    /// No tenant registered under this id.
    UnknownTenant(String),
    /// A tenant with this id is already registered.
    DuplicateTenant(String),
    /// No campaign with this name for this tenant.
    UnknownCampaign {
        /// Owning tenant.
        tenant: String,
        /// Campaign name.
        campaign: String,
    },
    /// The tenant already has a campaign with this name (any status) —
    /// duplicate submits are rejected, never silently merged.
    DuplicateCampaign {
        /// Owning tenant.
        tenant: String,
        /// Campaign name.
        campaign: String,
    },
    /// The requested lifecycle transition is not legal from the campaign's
    /// current status (e.g. resuming a cancelled campaign).
    InvalidTransition {
        /// Owning tenant.
        tenant: String,
        /// Campaign name.
        campaign: String,
        /// Status the campaign is in.
        from: &'static str,
        /// The operation that was attempted.
        verb: &'static str,
    },
    /// A tenant id or campaign spec failed validation.
    Invalid(String),
    /// The injected kill point fired: the service "process" died
    /// mid-storm. Reopen the service over the same root to recover.
    Killed,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Journal(e) => write!(f, "journal: {e}"),
            ServiceError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            ServiceError::DuplicateTenant(id) => write!(f, "tenant {id:?} already registered"),
            ServiceError::UnknownCampaign { tenant, campaign } => {
                write!(f, "tenant {tenant:?} has no campaign {campaign:?}")
            }
            ServiceError::DuplicateCampaign { tenant, campaign } => {
                write!(
                    f,
                    "tenant {tenant:?} already submitted campaign {campaign:?}"
                )
            }
            ServiceError::InvalidTransition {
                tenant,
                campaign,
                from,
                verb,
            } => write!(
                f,
                "cannot {verb} campaign {tenant:?}/{campaign:?} from status {from}"
            ),
            ServiceError::Invalid(msg) => write!(f, "invalid: {msg}"),
            ServiceError::Killed => write!(f, "service killed (injected kill point)"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<JournalError> for ServiceError {
    fn from(e: JournalError) -> Self {
        ServiceError::Journal(e)
    }
}

//! Sharded run queues with smooth weighted-round-robin admission.
//!
//! Tenants hash onto a fixed shard (FNV-1a over the tenant id), so one
//! tenant's campaigns are totally ordered by a single shard worker and
//! never race each other's journals. Within a shard, admission across
//! tenants uses *smooth* weighted round-robin (the nginx variant): every
//! pick adds each runnable tenant's weight to its running credit, admits
//! the tenant with the highest credit, then subtracts the total active
//! weight from the winner. A weight-`w` tenant gets `w` of every
//! `total_weight` quanta, interleaved rather than bursted — which is what
//! bounds every tenant's queue wait even when whale campaigns share the
//! shard. Ties break by tenant id, so admission order is deterministic.

use std::collections::{BTreeMap, VecDeque};

/// FNV-1a over the tenant id: stable across runs, platforms, and restarts
/// (shard assignment is part of the service's recovery contract).
pub fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Per-tenant state inside one shard.
#[derive(Debug)]
struct TenantSlot {
    weight: u32,
    /// Smooth-WRR running credit.
    credit: i64,
    /// Campaigns awaiting admission, FIFO per tenant.
    queue: VecDeque<String>,
}

/// One shard's admission queue.
#[derive(Debug, Default)]
pub struct ShardQueue {
    tenants: BTreeMap<String, TenantSlot>,
}

impl ShardQueue {
    /// Empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-weight) a tenant on this shard.
    pub fn ensure_tenant(&mut self, tenant: &str, weight: u32) {
        self.tenants
            .entry(tenant.to_string())
            .and_modify(|slot| slot.weight = weight)
            .or_insert(TenantSlot {
                weight,
                credit: 0,
                queue: VecDeque::new(),
            });
    }

    /// Append a campaign to the back of a tenant's queue.
    pub fn enqueue(&mut self, tenant: &str, weight: u32, campaign: &str) {
        self.ensure_tenant(tenant, weight);
        self.tenants
            .get_mut(tenant)
            .expect("just ensured")
            .queue
            .push_back(campaign.to_string());
    }

    /// Put a campaign back at the *front* of its tenant's queue (it has
    /// more quanta to run and must stay ahead of later submissions), but
    /// do not grant credit — the tenant rejoins the WRR cycle normally.
    pub fn requeue_front(&mut self, tenant: &str, weight: u32, campaign: &str) {
        self.ensure_tenant(tenant, weight);
        self.tenants
            .get_mut(tenant)
            .expect("just ensured")
            .queue
            .push_front(campaign.to_string());
    }

    /// Drop one queued campaign (cancellation); returns whether it was
    /// present.
    pub fn remove(&mut self, tenant: &str, campaign: &str) -> bool {
        match self.tenants.get_mut(tenant) {
            Some(slot) => {
                let before = slot.queue.len();
                slot.queue.retain(|c| c != campaign);
                before != slot.queue.len()
            }
            None => false,
        }
    }

    /// Campaigns queued across all tenants.
    pub fn depth(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Campaigns queued for one tenant.
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.queue.len())
    }

    /// Admit the next quantum: smooth weighted round-robin across tenants
    /// with non-empty queues. Returns `(tenant, campaign)` or `None` when
    /// the shard is drained.
    pub fn admit_next(&mut self) -> Option<(String, String)> {
        let total: i64 = self
            .tenants
            .values()
            .filter(|t| !t.queue.is_empty())
            .map(|t| t.weight as i64)
            .sum();
        if total == 0 {
            return None;
        }
        let mut best: Option<(&String, i64)> = None;
        for (id, slot) in self.tenants.iter_mut() {
            if slot.queue.is_empty() {
                continue;
            }
            slot.credit += slot.weight as i64;
            // Strict `>` keeps ties on the lexicographically first tenant
            // (BTreeMap iteration order), so admission is deterministic.
            if best.is_none_or(|(_, credit)| slot.credit > credit) {
                best = Some((id, slot.credit));
            }
        }
        let winner = best.expect("total > 0 implies a runnable tenant").0.clone();
        let slot = self.tenants.get_mut(&winner).expect("winner exists");
        slot.credit -= total;
        let campaign = slot.queue.pop_front().expect("winner queue non-empty");
        Some((winner, campaign))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hash_is_stable_and_spreads() {
        assert_eq!(shard_of("acme", 8), shard_of("acme", 8));
        let hits: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| shard_of(&format!("tenant-{i}"), 8))
            .collect();
        assert!(hits.len() >= 6, "poor spread: {hits:?}");
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn equal_weights_admit_round_robin() {
        let mut q = ShardQueue::new();
        for t in ["a", "b", "c"] {
            for i in 0..2 {
                q.enqueue(t, 1, &format!("{t}-camp-{i}"));
            }
        }
        let order: Vec<String> = std::iter::from_fn(|| q.admit_next())
            .map(|(t, _)| t)
            .collect();
        assert_eq!(order, vec!["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn weights_interleave_smoothly() {
        let mut q = ShardQueue::new();
        for i in 0..10 {
            q.enqueue("whale", 4, &format!("w-{i}"));
        }
        for t in ["s1", "s2"] {
            q.enqueue(t, 1, &format!("{t}-0"));
        }
        let order: Vec<String> = std::iter::from_fn(|| q.admit_next())
            .map(|(t, _)| t)
            .collect();
        // Small tenants are served within one weighted cycle (6 quanta),
        // not starved behind the whale's backlog.
        let s1 = order.iter().position(|t| t == "s1").unwrap();
        let s2 = order.iter().position(|t| t == "s2").unwrap();
        assert!(s1 < 6 && s2 < 6, "small tenants starved: {order:?}");
        // And the whale still gets its 4-of-6 share up front.
        assert_eq!(order.iter().take(6).filter(|t| *t == "whale").count(), 4);
    }

    #[test]
    fn requeue_front_keeps_campaign_order_per_tenant() {
        let mut q = ShardQueue::new();
        q.enqueue("a", 1, "first");
        q.enqueue("a", 1, "second");
        let (_, c) = q.admit_next().unwrap();
        assert_eq!(c, "first");
        q.requeue_front("a", 1, "first");
        assert_eq!(q.admit_next().unwrap().1, "first");
        assert_eq!(q.admit_next().unwrap().1, "second");
        assert!(q.admit_next().is_none());
    }

    #[test]
    fn remove_drops_only_the_named_campaign() {
        let mut q = ShardQueue::new();
        q.enqueue("a", 1, "one");
        q.enqueue("a", 1, "two");
        assert!(q.remove("a", "one"));
        assert!(!q.remove("a", "one"));
        assert!(!q.remove("ghost", "x"));
        assert_eq!(q.depth(), 1);
        assert_eq!(q.admit_next().unwrap().1, "two");
    }
}

//! Tenant-storm stress tests: a thousand small tenants plus whale
//! campaigns on one service, asserting the three service guarantees —
//! fair-share admission bounds, worker-budget ceilings, and
//! kill-and-recover equivalence.

use eoml_service::{
    shard_of, CampaignService, CampaignSpec, CampaignStatus, KillPoint, ServiceConfig,
    ServiceError, TenantSpec,
};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eoml-storm-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Totals keyed by (tenant, campaign) — the equivalence currency.
fn totals_by_campaign(
    service: &CampaignService,
) -> BTreeMap<(String, String), (usize, usize, usize, String)> {
    service
        .list(None)
        .into_iter()
        .map(|rec| {
            (
                (rec.tenant, rec.name),
                (
                    rec.totals.granules,
                    rec.totals.tile_files,
                    rec.totals.labeled_files,
                    rec.status.as_str().to_string(),
                ),
            )
        })
        .collect()
}

/// The storm: 1000 small tenants (one 1-day campaign each) and 3 whale
/// tenants (multi-day, many-file campaigns, weight 4) submitted together,
/// drained by weighted round-robin across 4 shards.
#[test]
fn thousand_tenant_storm_fairness_and_budgets() {
    let root = tempdir("storm");
    let config = ServiceConfig::small();
    let shards = config.shards;
    let capacity = config.cluster.total_cores();
    let (service, recovery) = CampaignService::open(&root, config).unwrap();
    assert_eq!(recovery.tenants, 0, "fresh root recovers nothing");

    const SMALL: usize = 1000;
    const WHALES: usize = 3;
    const WHALE_DAYS: usize = 3;
    let mut weights: BTreeMap<String, u32> = BTreeMap::new();
    for i in 0..SMALL {
        let id = format!("small-{i:04}");
        service
            .register_tenant(TenantSpec::new(&id, 1, 8).unwrap())
            .unwrap();
        service
            .submit(&id, "job", CampaignSpec::small(1000 + i as u64))
            .unwrap();
        weights.insert(id, 1);
    }
    for w in 0..WHALES {
        let id = format!("whale-{w}");
        service
            .register_tenant(TenantSpec::new(&id, 4, 24).unwrap())
            .unwrap();
        service
            .submit(
                &id,
                "reproc",
                CampaignSpec::whale(77 + w as u64, WHALE_DAYS),
            )
            .unwrap();
        weights.insert(id, 4);
    }

    let report = service.run_until_idle().unwrap();

    // Everything completed.
    assert_eq!(report.completed, SMALL + WHALES);
    assert_eq!(report.pending, 0);
    assert_eq!(report.quanta, SMALL + WHALES * WHALE_DAYS);
    assert!(report.granules > 0 && report.tile_files > 0);

    // --- Fairness: within each shard, every tenant's first admission
    // lands inside the first weighted round-robin cycle (the sum of the
    // shard's tenant weights). No tenant waits behind a whale's backlog.
    let admissions = service.admissions();
    assert_eq!(admissions.len(), report.quanta);
    let cycle: BTreeMap<usize, i64> = (0..shards)
        .map(|s| {
            (
                s,
                weights
                    .iter()
                    .filter(|(t, _)| shard_of(t, shards) == s)
                    .map(|(_, w)| *w as i64)
                    .sum(),
            )
        })
        .collect();
    let mut first_admission: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for a in &admissions {
        first_admission
            .entry(a.tenant.as_str())
            .or_insert((a.shard, a.shard_seq));
    }
    assert_eq!(
        first_admission.len(),
        SMALL + WHALES,
        "every tenant admitted"
    );
    for (tenant, (shard, shard_seq)) in &first_admission {
        let bound = cycle[shard] as usize;
        assert!(
            shard_seq < &bound,
            "tenant {tenant} first admitted at shard_seq {shard_seq}, \
             outside its shard's first WRR cycle of {bound}"
        );
    }
    // And the whales interleave rather than burst: each whale's quanta are
    // spread across its shard's admission order (its k-th quantum cannot
    // appear before k-1 full small-tenant rounds have had their chance).
    for w in 0..WHALES {
        let id = format!("whale-{w}");
        let seqs: Vec<usize> = admissions
            .iter()
            .filter(|a| a.tenant == id)
            .map(|a| a.shard_seq)
            .collect();
        assert_eq!(seqs.len(), WHALE_DAYS);
        assert!(
            seqs.windows(2).all(|p| p[0] < p[1]),
            "whale quanta admitted out of order: {seqs:?}"
        );
    }

    // --- Budgets: no admission exceeds its tenant's budget, and the pool
    // never leased past the cluster's cores.
    for a in &admissions {
        assert!(
            a.workers <= a.budget_workers,
            "admission {:?} leased {} workers over budget {}",
            a.tenant,
            a.workers,
            a.budget_workers
        );
    }
    let peak = service.pool().peak_in_use();
    assert!(
        peak > 0 && peak <= capacity,
        "peak {peak} vs capacity {capacity}"
    );
    assert_eq!(service.pool().in_use(), 0, "all leases returned");

    // Whale specs (demand 37) were clamped into their 24-worker budget.
    let whale_adm = admissions.iter().find(|a| a.tenant == "whale-0").unwrap();
    assert!(whale_adm.workers <= 24);

    // --- Per-tenant metrics slices: one tenant's report carries only its
    // own stages, and its counters survive the slice verification.
    let slice = service
        .obs()
        .metrics()
        .snapshot()
        .filter_stage_prefix("tenant:whale-0");
    assert!(
        slice
            .counters
            .iter()
            .all(|(k, _)| k.stage.starts_with("tenant:whale-0")),
        "foreign stages leaked into the tenant slice"
    );
    let granules = slice
        .counters
        .iter()
        .find(|(k, _)| k.name == "granules")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    let rec = &service.list(Some("whale-0"))[0];
    assert_eq!(granules as usize, rec.totals.granules);
    let report_slice = service.tenant_report("whale-0");
    assert!(report_slice.verify_against(&slice).is_empty());
    assert_eq!(
        report_slice.stage_span_counts().get("tenant:whale-0"),
        Some(&(WHALE_DAYS as u64)),
        "one quantum span per whale day"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// Submit the same population to two roots; kill one service mid-storm
/// (both kill flavors), recover it by reopening the root, and require the
/// recovered totals to equal the uninterrupted run's.
#[test]
fn kill_and_recover_matches_uninterrupted_run() {
    const SMALL: usize = 40;
    const WHALES: usize = 2;
    const WHALE_DAYS: usize = 2;
    let submit_all = |service: &CampaignService| {
        for i in 0..SMALL {
            let id = format!("s-{i:02}");
            service
                .register_tenant(TenantSpec::new(&id, 1, 8).unwrap())
                .unwrap();
            service
                .submit(&id, "job", CampaignSpec::small(5000 + i as u64))
                .unwrap();
        }
        for w in 0..WHALES {
            let id = format!("w-{w}");
            service
                .register_tenant(TenantSpec::new(&id, 4, 24).unwrap())
                .unwrap();
            service
                .submit(
                    &id,
                    "reproc",
                    CampaignSpec::whale(900 + w as u64, WHALE_DAYS),
                )
                .unwrap();
        }
    };

    // Reference: uninterrupted.
    let ref_root = tempdir("ref");
    let (reference, _) = CampaignService::open(&ref_root, ServiceConfig::small()).unwrap();
    submit_all(&reference);
    reference.run_until_idle().unwrap();
    let want = totals_by_campaign(&reference);
    drop(reference);

    for (tag, kill) in [
        ("after", KillPoint::AfterQuanta(13)),
        (
            "mid",
            KillPoint::MidQuantum {
                quantum: 9,
                events: 7,
            },
        ),
    ] {
        let root = tempdir(tag);
        let mut config = ServiceConfig::small();
        config.kill = Some(kill);
        let (victim, _) = CampaignService::open(&root, config).unwrap();
        submit_all(&victim);

        // A second service over a live root is refused with a typed error.
        match CampaignService::open(&root, ServiceConfig::small()) {
            Err(ServiceError::Journal(eoml_journal::JournalError::Busy(_))) => {}
            Err(other) => panic!("expected Busy opening a live root, got {other}"),
            Ok(_) => panic!("opening a live root must be refused"),
        }

        match victim.run_until_idle() {
            Err(ServiceError::Killed) => {}
            other => panic!("kill point never fired: {other:?}"),
        }
        let done_before = victim.service_report().quanta;
        assert!(done_before < SMALL + WHALES * WHALE_DAYS);
        drop(victim); // releases the root locks, like process death

        // Recovery: reopen the same root; tenants, campaigns, and queue
        // come back from the control journal alone.
        let (recovered, recovery) = CampaignService::open(&root, ServiceConfig::small()).unwrap();
        assert_eq!(recovery.tenants, SMALL + WHALES);
        assert!(recovery.requeued > 0, "killed mid-storm: work must remain");
        assert!(recovery.control_events > 0);
        recovered.run_until_idle().unwrap();

        let got = totals_by_campaign(&recovered);
        assert_eq!(
            got, want,
            "{tag}-kill recovery diverged from the uninterrupted run"
        );
        drop(recovered);
        std::fs::remove_dir_all(&root).ok();
    }
    std::fs::remove_dir_all(&ref_root).ok();
}

/// The journal-driven lifecycle: pause parks, resume re-queues, cancel is
/// terminal and frees the campaign's ledger namespaces; illegal
/// transitions and duplicates fail typed.
#[test]
fn lifecycle_transitions_and_typed_refusals() {
    let root = tempdir("lifecycle");
    let (service, _) = CampaignService::open(&root, ServiceConfig::small()).unwrap();
    service
        .register_tenant(TenantSpec::new("acme", 2, 16).unwrap())
        .unwrap();

    // Unknown tenant / bad names / duplicates are typed refusals.
    match service.submit("ghost", "job", CampaignSpec::small(1)) {
        Err(ServiceError::UnknownTenant(t)) => assert_eq!(t, "ghost"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    match service.register_tenant(TenantSpec::new("acme", 1, 8).unwrap()) {
        Err(ServiceError::DuplicateTenant(_)) => {}
        other => panic!("expected DuplicateTenant, got {other:?}"),
    }
    assert!(matches!(
        service.submit("acme", "bad.name", CampaignSpec::small(1)),
        Err(ServiceError::Invalid(_))
    ));

    service
        .submit("acme", "alpha", CampaignSpec::small(11))
        .unwrap();
    service
        .submit("acme", "beta", CampaignSpec::small(12))
        .unwrap();
    service
        .submit("acme", "gamma", CampaignSpec::whale(13, 2))
        .unwrap();
    match service.submit("acme", "alpha", CampaignSpec::small(11)) {
        Err(ServiceError::DuplicateCampaign { campaign, .. }) => assert_eq!(campaign, "alpha"),
        other => panic!("expected DuplicateCampaign, got {other:?}"),
    }

    // Pause one, cancel another, run: only the rest complete.
    service.pause("acme", "alpha").unwrap();
    service.cancel("acme", "gamma").unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(
        service.status("acme", "alpha").unwrap(),
        CampaignStatus::Paused
    );
    assert_eq!(
        service.status("acme", "beta").unwrap(),
        CampaignStatus::Completed
    );
    assert_eq!(
        service.status("acme", "gamma").unwrap(),
        CampaignStatus::Cancelled
    );

    // Illegal transitions are typed, with the blocking status named.
    match service.resume("acme", "gamma") {
        Err(ServiceError::InvalidTransition { from, verb, .. }) => {
            assert_eq!((from, verb), ("cancelled", "resume"));
        }
        other => panic!("expected InvalidTransition, got {other:?}"),
    }
    match service.pause("acme", "beta") {
        Err(ServiceError::InvalidTransition { from, .. }) => assert_eq!(from, "completed"),
        other => panic!("expected InvalidTransition, got {other:?}"),
    }

    // Resume the paused campaign; it completes on the next drain.
    service.resume("acme", "alpha").unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(
        service.status("acme", "alpha").unwrap(),
        CampaignStatus::Completed
    );

    // The cancelled campaign's quantum namespaces are gone from the
    // tenant's ledger (its disk is reclaimed); completed ones remain.
    let namespaces = eoml_journal::Ledger::new(root.join("tenants").join("acme"))
        .unwrap()
        .list()
        .unwrap();
    assert!(
        namespaces.iter().all(|ns| !ns.starts_with("gamma-day-")),
        "cancelled campaign left namespaces: {namespaces:?}"
    );
    assert!(namespaces.iter().any(|ns| ns.starts_with("alpha-day-")));

    // Listing is per-tenant filtered, sorted, and deterministic.
    let names: Vec<String> = service
        .list(Some("acme"))
        .into_iter()
        .map(|r| r.name)
        .collect();
    assert_eq!(names, vec!["alpha", "beta", "gamma"]);

    std::fs::remove_dir_all(&root).ok();
}

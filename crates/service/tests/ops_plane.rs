//! Ops-plane soak tests: a multi-day, multi-tenant run with the
//! continuous ops plane enabled must roll windows with real per-tenant
//! throughput, keep the scheduler fair, transition Degraded → Healthy
//! when a paused whale resumes, and write an ops log whose replay lands
//! on the same final health verdict — including across a kill/restart,
//! without double-counting the killed quantum's work.

use eoml_obs::{
    replay_final_health, stage_matches_prefix, HealthState, OpsConfig, SloKind, SloSpec,
};
use eoml_service::{
    CampaignService, CampaignSpec, KillPoint, ServiceConfig, ServiceError, TenantSpec,
};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eoml-opsplane-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One shard (deterministic window sequence), per-quantum windows, and a
/// per-tenant throughput SLO: every active tenant must move at least one
/// granule per window, half the windows must comply.
fn ops_service_config() -> ServiceConfig {
    let mut config = ServiceConfig::small();
    config.shards = 1;
    config.ops = Some(OpsConfig {
        window_s: 0.0,
        slo_lookback: 8,
        slos: vec![SloSpec {
            id: "tenant-throughput".to_string(),
            kind: SloKind::RateAtLeast {
                name: "granules".to_string(),
                min_per_window: 1.0,
            },
            target: 0.5,
        }],
        ..OpsConfig::small()
    });
    config
}

/// Per-tenant granule totals summed out of the `window_roll` ops events
/// (the windows' own accounting, not the campaign records).
fn windowed_granules_by_tenant(
    events: &[eoml_obs::OpsEvent],
    tenants: &[String],
) -> BTreeMap<String, u64> {
    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
    for event in events.iter().filter(|e| e.kind == "window_roll") {
        let Some(counters) = event.data["counters"].as_array() else {
            continue;
        };
        for c in counters {
            if c["name"].as_str() != Some("granules") {
                continue;
            }
            let stage = c["stage"].as_str().unwrap_or("");
            let delta = c["delta"].as_u64().unwrap_or(0);
            for tenant in tenants {
                if stage_matches_prefix(stage, &format!("tenant:{tenant}")) {
                    *sums.entry(tenant.clone()).or_default() += delta;
                }
            }
        }
    }
    sums
}

/// The soak: eight small tenants drain while a whale sits paused — every
/// window is bad for the whale, its error budget burns to 2.0, and the
/// idle health verdict degrades. Resuming the whale produces six good
/// windows, dilutes the burn below 1.0, and the service recovers. The
/// ops log records exactly that healthy → degraded → healthy arc and
/// replays to the live verdict.
#[test]
fn paused_whale_degrades_then_recovers_and_the_ops_log_replays_it() {
    const SMALL: usize = 8;
    const WHALE_DAYS: usize = 6;
    let root = tempdir("soak");
    let (service, recovery) = CampaignService::open(&root, ops_service_config()).unwrap();
    assert_eq!(recovery.tenants, 0);

    service
        .register_tenant(TenantSpec::new("whale", 4, 24).unwrap())
        .unwrap();
    service
        .submit("whale", "reproc", CampaignSpec::whale(42, WHALE_DAYS))
        .unwrap();
    service.pause("whale", "reproc").unwrap();
    for i in 0..SMALL {
        let id = format!("s-{i}");
        service
            .register_tenant(TenantSpec::new(&id, 1, 8).unwrap())
            .unwrap();
        service
            .submit(&id, "job", CampaignSpec::small(100 + i as u64))
            .unwrap();
    }

    // Phase 1: the smalls drain; the paused whale stays active for SLO
    // purposes and never moves a granule.
    let report = service.run_until_idle().unwrap();
    assert_eq!(report.completed, SMALL);
    assert_eq!(report.quanta, SMALL);

    let degraded = service.health().expect("ops plane is enabled");
    assert_eq!(degraded.state.label(), "degraded");
    assert!(
        degraded
            .state
            .reasons()
            .iter()
            .any(|r| r.contains("tenant-throughput") && r.contains("tenant:whale")),
        "whale burn must be the degradation reason: {:?}",
        degraded.state.reasons()
    );
    let whale_burn = degraded
        .slos
        .iter()
        .find(|s| s.stage == "tenant:whale")
        .expect("whale is still scored while paused");
    assert!((whale_burn.burn - 2.0).abs() < 1e-9, "all windows bad");

    // Per-quantum windows with real per-tenant throughput: each small's
    // quantum is its own window, so well over the required three windows
    // carry non-zero tenant granule deltas.
    let windows = service.ops_windows();
    assert_eq!(windows.len(), SMALL);
    let productive = windows
        .iter()
        .filter(|w| {
            w.counters
                .iter()
                .any(|(k, v)| k.name == "granules" && k.stage.starts_with("tenant:") && *v > 0)
        })
        .count();
    assert!(productive >= 3, "only {productive} productive windows");
    for i in 0..SMALL {
        let prefix = format!("tenant:s-{i}");
        assert!(
            windows
                .iter()
                .map(|w| w.counter_prefix("granules", &prefix))
                .sum::<u64>()
                > 0,
            "{prefix} produced nothing in any window"
        );
    }

    // Phase 2: the whale resumes and its six days roll six good windows.
    service.resume("whale", "reproc").unwrap();
    let report = service.run_until_idle().unwrap();
    assert_eq!(report.completed, SMALL + 1);
    assert_eq!(report.quanta, SMALL + WHALE_DAYS);

    let healthy = service.health().unwrap();
    assert_eq!(healthy.state, HealthState::Healthy);
    assert_eq!(healthy.windows, (SMALL + WHALE_DAYS) as u64);

    // Fairness stays within the storm's WRR bounds: weighted admission
    // shares are near-uniform (8 smalls at x=1, the whale at 6/4).
    let jain = service.fairness().expect("admissions were recorded");
    assert!(
        jain > 0.9 && jain <= 1.0,
        "Jain index {jain} outside WRR bounds"
    );
    // And nobody's first admission fell outside the single shard's first
    // weighted round-robin cycle (total weight 8*1 + 4 = 12).
    let mut first_seq: BTreeMap<&str, usize> = BTreeMap::new();
    let admissions = service.admissions();
    for a in &admissions {
        first_seq.entry(a.tenant.as_str()).or_insert(a.shard_seq);
    }
    assert_eq!(first_seq.len(), SMALL + 1);
    assert!(first_seq.values().all(|seq| *seq < 12));

    // The ops log recorded the exact health arc — the open baseline, the
    // paused-whale degradation, and the recovery — and replaying it
    // reproduces the live verdict, reasons included.
    let events = service.ops_log();
    let health_states: Vec<String> = events
        .iter()
        .filter(|e| e.kind == "health")
        .map(|e| e.data["state"].as_str().unwrap().to_string())
        .collect();
    assert_eq!(health_states, vec!["healthy", "degraded", "healthy"]);
    let replayed = replay_final_health(&events).unwrap();
    assert_eq!(replayed.state, healthy.state);
    assert_eq!(replayed.state.reasons(), healthy.state.reasons());
    assert_eq!(replayed.windows, healthy.windows);

    // The windows' own accounting matches the campaign ledger exactly.
    let tenants: Vec<String> = (0..SMALL)
        .map(|i| format!("s-{i}"))
        .chain(std::iter::once("whale".to_string()))
        .collect();
    let windowed = windowed_granules_by_tenant(&events, &tenants);
    for rec in service.list(None) {
        assert_eq!(
            windowed.get(&rec.tenant).copied().unwrap_or(0),
            rec.totals.granules as u64,
            "windowed granules diverge from ledger for {}",
            rec.tenant
        );
    }

    std::fs::remove_dir_all(&root).ok();
}

/// Kill the service mid-storm, reopen the same root, and require the
/// ops plane to continue the same history: the window ring rehydrates
/// from the ops log, indices keep increasing, recovery shows up as a
/// Degraded phase that clears on drain, and summing granule deltas over
/// every window (pre- and post-kill) equals the final campaign totals —
/// the killed quantum's work is counted exactly once.
#[test]
fn windows_resume_across_restart_without_double_counting() {
    let root = tempdir("restart");
    let mut config = ops_service_config();
    config.kill = Some(KillPoint::AfterQuanta(3));
    let (victim, _) = CampaignService::open(&root, config).unwrap();

    for i in 0..2 {
        let id = format!("s-{i}");
        victim
            .register_tenant(TenantSpec::new(&id, 1, 8).unwrap())
            .unwrap();
        victim
            .submit(&id, "job", CampaignSpec::small(500 + i as u64))
            .unwrap();
    }
    victim
        .register_tenant(TenantSpec::new("w", 4, 24).unwrap())
        .unwrap();
    victim
        .submit("w", "reproc", CampaignSpec::whale(900, 4))
        .unwrap();

    match victim.run_until_idle() {
        Err(ServiceError::Killed) => {}
        other => panic!("kill point never fired: {other:?}"),
    }
    let windows_before = victim.ops_windows();
    assert!(
        !windows_before.is_empty(),
        "some windows must roll before the kill"
    );
    drop(victim);

    // Reopen: the plane rehydrates the ring from the ops log and flags
    // the journal replay as a Degraded "recovery in progress" phase.
    let (recovered, recovery) = CampaignService::open(&root, ops_service_config()).unwrap();
    assert!(recovery.requeued > 0, "killed mid-storm: work must remain");
    let rehydrated = recovered.ops_windows();
    assert_eq!(rehydrated.len(), windows_before.len());
    for (a, b) in rehydrated.iter().zip(&windows_before) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.counters, b.counters);
    }
    let during_recovery = recovered.health().unwrap();
    assert_eq!(during_recovery.state.label(), "degraded");
    assert!(during_recovery.recovering);
    assert!(during_recovery
        .state
        .reasons()
        .iter()
        .any(|r| r.contains("recovery in progress")));

    recovered.run_until_idle().unwrap();
    let final_health = recovered.health().unwrap();
    assert_eq!(final_health.state, HealthState::Healthy);
    assert!(!final_health.recovering);

    // One continuous window history: indices are exactly 0..n across
    // both service lifetimes.
    let events = recovered.ops_log();
    let indices: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == "window_roll")
        .map(|e| e.data["index"].as_u64().unwrap())
        .collect();
    let expected: Vec<u64> = (0..indices.len() as u64).collect();
    assert_eq!(indices, expected);
    assert!(indices.len() > windows_before.len());

    // No double-counting: the killed quantum's granules appear in
    // exactly one window, so the windowed sums equal the ledger totals.
    let tenants = vec!["s-0".to_string(), "s-1".to_string(), "w".to_string()];
    let windowed = windowed_granules_by_tenant(&events, &tenants);
    for rec in recovered.list(None) {
        assert!(rec.totals.granules > 0);
        assert_eq!(
            windowed.get(&rec.tenant).copied().unwrap_or(0),
            rec.totals.granules as u64,
            "windowed granules diverge from ledger for {} after restart",
            rec.tenant
        );
    }

    // The replayed final verdict is the live one.
    let replayed = replay_final_health(&events).unwrap();
    assert_eq!(replayed.state, final_health.state);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn archive_pointers_land_in_the_durable_ops_log() {
    let root = tempdir("archive-ptr");
    let (service, _) = CampaignService::open(&root, ops_service_config()).unwrap();
    let meta = eoml_obs::RunMeta::new("nightly", "cafebabe12345678", 2022);
    service.record_archive_pointer(&root.join("archives/nightly"), &meta);
    drop(service);

    // A reopened service replays the pointer out of the rotated log.
    let (service, _) = CampaignService::open(&root, ops_service_config()).unwrap();
    let events = service.ops_log();
    let ptr = events
        .iter()
        .find(|e| e.kind == "archive_recorded")
        .expect("archive pointer survives restart");
    assert!(ptr.data["path"]
        .as_str()
        .unwrap()
        .ends_with("archives/nightly"));
    assert_eq!(ptr.data["config_digest"].as_str(), Some("cafebabe12345678"));
    assert_eq!(ptr.data["label"].as_str(), Some("nightly"));

    std::fs::remove_dir_all(&root).ok();
}

//! Prometheus text exposition exporter.
//!
//! Renders the registry snapshot in the classic text format: counters
//! as `eoml_<name>_total`, gauges as `eoml_<name>`, histograms as the
//! `_bucket`/`_sum`/`_count` triple with cumulative `le` bounds (plus
//! `+Inf`). The `stage` label carries the pipeline stage. Metric names
//! are sanitized to `[a-zA-Z0-9_]` so span names can double as metric
//! families without further ceremony. Every family gets `# HELP` and
//! `# TYPE` lines, and label values are escaped per the exposition
//! format (`\` → `\\`, `"` → `\"`, newline → `\n`) so tenant ids with
//! odd characters cannot corrupt the output.

use crate::metrics::{LogHistogram, MetricKey, MetricsSnapshot};
use std::fmt::Write;

/// Sanitize a metric name fragment to Prometheus' charset.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape `# HELP` text (backslash and newline only, per the format).
fn escape_help(value: &str) -> String {
    value.replace('\\', "\\\\").replace('\n', "\\n")
}

fn family<V>(items: &[(MetricKey, V)]) -> Vec<(&str, &[(MetricKey, V)])> {
    let mut out: Vec<(&str, &[(MetricKey, V)])> = Vec::new();
    let mut start = 0;
    for i in 0..=items.len() {
        let boundary = i == items.len() || (i > start && items[i].0.name != items[start].0.name);
        if boundary {
            if i > start {
                out.push((items[start].0.name.as_str(), &items[start..i]));
            }
            start = i;
        }
    }
    out
}

fn write_histogram(out: &mut String, fam: &str, key: &MetricKey, h: &LogHistogram) {
    let stage = escape_label(&key.stage);
    let mut cum = 0u64;
    for (bound, cum_count) in h.cumulative_buckets() {
        cum = cum_count;
        let _ = writeln!(
            out,
            "{fam}_bucket{{stage=\"{stage}\",le=\"{bound:e}\"}} {cum_count}"
        );
    }
    debug_assert_eq!(cum, h.count());
    let _ = writeln!(
        out,
        "{fam}_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}",
        h.count()
    );
    let _ = writeln!(out, "{fam}_sum{{stage=\"{stage}\"}} {}", h.sum());
    let _ = writeln!(out, "{fam}_count{{stage=\"{stage}\"}} {}", h.count());
}

/// Render a registry snapshot in Prometheus text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, group) in family(&snapshot.counters) {
        let fam = format!("eoml_{}_total", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {fam} Monotonic total of '{}' events per stage.",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {fam} counter");
        for (key, value) in group {
            let _ = writeln!(
                out,
                "{fam}{{stage=\"{}\"}} {value}",
                escape_label(&key.stage)
            );
        }
    }
    for (name, group) in family(&snapshot.gauges) {
        let fam = format!("eoml_{}", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {fam} Last observed value of '{}' per stage.",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {fam} gauge");
        for (key, value) in group {
            let _ = writeln!(
                out,
                "{fam}{{stage=\"{}\"}} {value}",
                escape_label(&key.stage)
            );
        }
    }
    for (name, group) in family(&snapshot.histograms) {
        let fam = format!("eoml_{}", sanitize(name));
        let _ = writeln!(
            out,
            "# HELP {fam} Log-bucketed distribution of '{}' per stage.",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {fam} histogram");
        for (key, h) in group {
            write_histogram(&mut out, &fam, key, h);
        }
    }
    out
}

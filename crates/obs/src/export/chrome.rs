//! Chrome `trace_event` JSON exporter.
//!
//! Emits the "JSON object format" (`{"traceEvents": [...]}`) with one
//! complete event (`ph: "X"`) per span, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Timestamps are
//! microseconds; sim-stamped spans use the virtual timeline, wall-only
//! spans (real runs) use nanoseconds-since-epoch / 1000, so a given
//! trace file lives on whichever clock the run used. The span id and
//! parent id ride along in `args` so tooling (and the round-trip tests)
//! can reconstruct the hierarchy exactly.

use crate::span::SpanRecord;
use serde_json::{Map, Value};

/// Timestamp in trace microseconds: sim time when stamped, else wall.
fn ts_us(span: &SpanRecord) -> (f64, f64) {
    match (span.sim_start, span.sim_end) {
        (Some(s), Some(e)) => (s.as_secs_f64() * 1e6, (e - s).as_secs_f64() * 1e6),
        _ => (
            span.wall_start_ns as f64 / 1e3,
            span.wall_end_ns.saturating_sub(span.wall_start_ns) as f64 / 1e3,
        ),
    }
}

fn event(span: &SpanRecord) -> Value {
    let (ts, dur) = ts_us(span);
    let mut args = Map::new();
    args.insert("span_id".to_string(), Value::from(span.id as f64));
    args.insert(
        "parent_id".to_string(),
        match span.parent {
            Some(p) => Value::from(p as f64),
            None => Value::Null,
        },
    );
    args.insert(
        "clock".to_string(),
        Value::from(if span.sim_start.is_some() {
            "sim"
        } else {
            "wall"
        }),
    );
    args.insert(
        "wall_start_s".to_string(),
        Value::from(span.wall_start_ns as f64 * 1e-9),
    );
    if let Some(trace_id) = span.trace_id.as_deref() {
        args.insert("trace_id".to_string(), Value::from(trace_id));
    }
    for (k, v) in &span.attrs {
        args.insert(format!("attr.{k}"), Value::from(v.as_str()));
    }
    let mut ev = Map::new();
    ev.insert("name".to_string(), Value::from(span.name.as_str()));
    ev.insert("cat".to_string(), Value::from(span.stage.as_str()));
    ev.insert("ph".to_string(), Value::from("X"));
    ev.insert("pid".to_string(), Value::from(1.0));
    ev.insert("tid".to_string(), Value::from(span.tid as f64));
    ev.insert("ts".to_string(), Value::from(ts));
    ev.insert("dur".to_string(), Value::from(dur));
    ev.insert("args".to_string(), Value::Object(args));
    Value::Object(ev)
}

/// Render spans as a Chrome-trace JSON document.
pub fn render(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by(|a, b| {
        ts_us(a)
            .0
            .partial_cmp(&ts_us(b).0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    let events: Vec<Value> = ordered.into_iter().map(event).collect();
    let mut root = Map::new();
    root.insert("traceEvents".to_string(), Value::from(events));
    root.insert("displayTimeUnit".to_string(), Value::from("ms"));
    serde_json::to_string(&Value::Object(root)).expect("trace serialization is infallible")
}
